"""Setup shim.

The execution environment has no network access and no `wheel` package, so
PEP 517 editable installs (which build a wheel) fail.  With this setup.py
present and no [build-system] table in pyproject.toml, pip falls back to
the legacy `setup.py develop` editable path, which needs only setuptools.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Distributed domination on graph classes of bounded expansion "
        "(SPAA 2018 reproduction)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24", "scipy>=1.9", "networkx>=3.0"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
)
