"""Sparse r-neighborhood covers — Theorem 4 (Grohe et al. [26]).

Given an order L witnessing ``wcol_2r(G) <= c``, the clusters::

    X_v = { w : v in WReach_2r[G, L, w] }

form an r-neighborhood cover of radius <= 2r and degree <= c:

* **cover**: for every w, ``N_r[w] ⊆ X_u`` where
  ``u = min WReach_r[G, L, w]`` (Lemma 6);
* **radius**: every w in X_v connects to v through L-greater vertices by
  a path of length <= 2r inside X_v;
* **degree**: w lies in exactly ``|WReach_2r[w]| <= c`` clusters.

The :class:`NeighborhoodCover` object materializes the clusters plus the
assignment ``w -> min WReach_r[w]`` and offers the validity measurements
the T2 experiment reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import OrderError
from repro.graphs.graph import Graph
from repro.graphs.traversal import ball, induced_radius
from repro.orders.linear_order import LinearOrder
from repro.orders.wreach import (
    RankedAdjacency,
    WReachCSR,
    ranked_adjacency,
    wreach_csr,
    wreach_sets,
)

__all__ = [
    "NeighborhoodCover",
    "build_cover",
    "build_cover_lists",
    "cover_stats",
    "CoverStats",
]


@dataclass(frozen=True)
class NeighborhoodCover:
    """An r-neighborhood cover built from weak reachability sets.

    Attributes
    ----------
    radius_param:
        The r the cover serves (``N_r[w]`` containment).
    clusters:
        Mapping ``v -> sorted members of X_v`` for all nonempty X_v.
    home_cluster:
        ``home_cluster[w] = min WReach_r[w]`` — the cluster center whose
        cluster is guaranteed to contain ``N_r[w]``.
    degree_per_vertex:
        ``|{v : w in X_v}| = |WReach_2r[w]|`` for each w.
    """

    radius_param: int
    clusters: dict[int, tuple[int, ...]]
    home_cluster: np.ndarray
    degree_per_vertex: np.ndarray

    @property
    def degree(self) -> int:
        """Max number of clusters any vertex belongs to (the cover degree)."""
        return int(self.degree_per_vertex.max()) if len(self.degree_per_vertex) else 0

    @property
    def num_clusters(self) -> int:
        return len(self.clusters)


def build_cover(
    g: Graph,
    order: LinearOrder,
    radius: int,
    *,
    adj: RankedAdjacency | None = None,
    csr2: WReachCSR | None = None,
    csr1: WReachCSR | None = None,
) -> NeighborhoodCover:
    """Materialize the Theorem-4 cover for the given order and r.

    Vectorized over the CSR WReach representation: the cluster map is
    the transpose of the ``WReach_2r`` incidence — one stable sort of
    the flat members array by center — the degree profile is
    ``np.diff`` of its offsets, and the home assignment is the L-least
    gather of ``WReach_r`` (rows are rank-sorted, so it is the first
    member per row).  No per-vertex Python lists are built; the two
    sweeps share one :class:`RankedAdjacency`.  ``csr2`` / ``csr1`` may
    be supplied precomputed (``PrecomputeCache.wreach_csr`` at reach
    ``2r`` / ``r``) to share work across calls.
    """
    if g.n != order.n:
        raise OrderError("order size does not match graph")
    if radius < 0:
        raise OrderError("radius must be >= 0")
    if csr2 is None or csr1 is None:
        adj = ranked_adjacency(g, order, adj)
        if csr2 is None:
            csr2 = wreach_csr(g, order, 2 * radius, adj=adj)
        if csr1 is None:
            csr1 = wreach_csr(g, order, radius, adj=adj)
    for csr, want in ((csr2, 2 * radius), (csr1, radius)):
        if not csr.matches(g, order, want):
            raise OrderError(
                f"precomputed CSR (n={csr.n}, reach={csr.reach}) does not "
                f"match (n={g.n}, reach={want}) or was built for a "
                f"different order"
            )
    degree = csr2.sizes
    home = csr1.least() if g.n else np.full(0, -1, dtype=np.int64)
    # X_v = {w : v in WReach_2r[w]}: transpose the flat incidence by a
    # stable sort on the center column; row-major generation order makes
    # the members of each cluster come out already ascending.
    centers = csr2.members
    targets = np.repeat(np.arange(g.n, dtype=np.int64), degree)
    sel = np.argsort(centers, kind="stable")
    centers_s = centers[sel]
    heads = np.flatnonzero(np.diff(centers_s, prepend=-1))
    bounds = np.append(heads, len(centers_s)).tolist()
    center_ids = centers_s[heads].tolist()
    targets_list = targets[sel].tolist()
    clusters = {
        v: tuple(targets_list[a:b])
        for v, a, b in zip(center_ids, bounds, bounds[1:], strict=False)
    }
    return NeighborhoodCover(
        radius_param=radius,
        clusters=clusters,
        home_cluster=home,
        degree_per_vertex=degree,
    )


def build_cover_lists(g: Graph, order: LinearOrder, radius: int) -> NeighborhoodCover:
    """List-walking reference for :func:`build_cover`, kept verbatim.

    The parity tests assert the vectorized CSR pass reproduces this
    exactly; the P1 benchmark times the two against each other.
    """
    if g.n != order.n:
        raise OrderError("order size does not match graph")
    if radius < 0:
        raise OrderError("radius must be >= 0")
    w2r = wreach_sets(g, order, 2 * radius)
    wr = wreach_sets(g, order, radius)
    clusters: dict[int, list[int]] = {}
    degree = np.zeros(g.n, dtype=np.int64)
    for w in range(g.n):
        degree[w] = len(w2r[w])
        for v in w2r[w]:
            clusters.setdefault(v, []).append(w)
    home = np.full(g.n, -1, dtype=np.int64)
    for w in range(g.n):
        home[w] = order.min_of(wr[w])
    return NeighborhoodCover(
        radius_param=radius,
        clusters={v: tuple(sorted(ms)) for v, ms in clusters.items()},
        home_cluster=home,
        degree_per_vertex=degree,
    )


@dataclass(frozen=True)
class CoverStats:
    """Measured cover quality (what T2 prints against the paper's bounds)."""

    radius_param: int
    num_clusters: int
    degree: int
    max_cluster_radius: int
    max_cluster_size: int
    covers_all_balls: bool

    def within_bounds(self, c: int) -> bool:
        """Check the Theorem 4 guarantees: radius <= 2r and degree <= c."""
        return (
            self.max_cluster_radius <= 2 * self.radius_param
            and self.degree <= c
            and self.covers_all_balls
        )


def cover_stats(g: Graph, cover: NeighborhoodCover) -> CoverStats:
    """Measure radius / degree / coverage of a cover (exact, BFS-based)."""
    r = cover.radius_param
    max_rad = 0
    max_size = 0
    for v, members in cover.clusters.items():
        max_size = max(max_size, len(members))
        if len(members) > 1:
            max_rad = max(max_rad, induced_radius(g, members))
    covers = True
    for w in range(g.n):
        home = int(cover.home_cluster[w])
        cluster = set(cover.clusters.get(home, ()))
        need = ball(g, w, r)
        if not all(int(x) in cluster for x in need):
            covers = False
            break
    return CoverStats(
        radius_param=r,
        num_clusters=cover.num_clusters,
        degree=cover.degree,
        max_cluster_radius=max_rad,
        max_cluster_size=max_size,
        covers_all_balls=covers,
    )
