"""Dominating-set pruning — an extension beyond the paper.

The elect-min-WReach rule (Theorem 5) has the best known *worst-case*
ratio on bounded expansion classes, but empirically produces redundant
dominators (a vertex is added whenever it is the minimum of anyone's
weak-reach set).  Pruning removes dominators whose r-ball is already
covered twice over:

    v is removable  iff  every w in N_r[v] has >= 2 dominators in N_r[w]

Processing candidates in a fixed order keeps the result deterministic;
the output is an (inclusion-wise minimal-ish) subset that still
dominates.  The check is local — a vertex can evaluate it from its
radius-2r ball — so the same rule runs in 2r+1 LOCAL rounds; we provide
the sequential form and charge that round cost in the pipelines that
use it.  Experiment T1 reports sizes with and without pruning.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.traversal import ball

__all__ = ["prune_dominating_set", "PRUNE_LOCAL_ROUNDS"]


def PRUNE_LOCAL_ROUNDS(radius: int) -> int:
    """LOCAL rounds to run the pruning rule distributively (2r + 1)."""
    return 2 * radius + 1


def prune_dominating_set(
    g: Graph, dominators: Iterable[int], radius: int, order: str = "desc_degree"
) -> tuple[int, ...]:
    """Remove redundant dominators while preserving distance-r domination.

    ``order`` fixes the candidate processing sequence: ``"desc_degree"``
    (default — drop high-degree/central vertices first tends to prune
    more), ``"asc_id"`` or ``"desc_id"``.
    """
    base = sorted(set(int(v) for v in dominators))
    if not base:
        if g.n:
            raise GraphError("empty dominating set cannot be pruned")
        return ()
    balls = {v: ball(g, v, radius) for v in base}
    cover_count = np.zeros(g.n, dtype=np.int64)
    for v in base:
        cover_count[balls[v]] += 1
    if np.any(cover_count == 0):
        raise GraphError("input is not a distance-r dominating set")
    if order == "desc_degree":
        candidates = sorted(base, key=lambda v: (-g.degree(v), v))
    elif order == "asc_id":
        candidates = list(base)
    elif order == "desc_id":
        candidates = list(reversed(base))
    else:
        raise GraphError(f"unknown prune order {order!r}")
    kept = set(base)
    for v in candidates:
        b = balls[v]
        if np.all(cover_count[b] >= 2):
            kept.discard(v)
            cover_count[b] -= 1
    return tuple(sorted(kept))
