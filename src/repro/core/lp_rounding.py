"""Bansal–Umboh LP rounding for dominating set on bounded arboricity [10].

The paper's conclusion singles this result out: on graphs of arboricity
``a``, rounding the covering LP at threshold ``1/(3a)`` gives a
3a-approximation of MDS, and no (a−1−ε)-approximation is possible
(NP-hard).  It is the natural *sequential* LP baseline to set against
the combinatorial order-based algorithm of Theorem 5.

Construction (for distance-1 domination; [10] is stated for MDS):

1. solve the covering LP  min Σx_v  s.t.  Σ_{u ∈ N[w]} x_u ≥ 1;
2. ``S = {v : x_v ≥ 1/(3a)}`` — a 3a·LP-cost set;
3. every vertex w not dominated by S joins itself (``U``): the LP mass
   of N[w] is spread over > 3a vertices each below threshold, and the
   arboricity argument bounds |U| by 2·LP-cost... measured, not assumed.

Output D = S ∪ U is always a valid dominating set; the bench reports
its realized ratio next to the other baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exact import coverage_matrix
from repro.errors import SolverError
from repro.graphs.expansion import degeneracy
from repro.graphs.graph import Graph

__all__ = ["lp_rounding_domset", "LPRoundingResult"]


@dataclass(frozen=True)
class LPRoundingResult:
    dominators: tuple[int, ...]
    radius: int
    lp_value: float
    threshold: float
    rounded: int   # |S|, the thresholded vertices
    fixed_up: int  # |U|, the self-joining uncovered vertices

    @property
    def size(self) -> int:
        return len(self.dominators)


def lp_rounding_domset(
    g: Graph, radius: int = 1, arboricity: int | None = None
) -> LPRoundingResult:
    """Round the distance-r covering LP at threshold ``1/(3a)``.

    ``arboricity`` defaults to the degeneracy (an upper bound on
    arboricity within a factor 2 — the guarantee degrades gracefully
    with the bound used, and we *measure* the outcome anyway).
    """
    from scipy.optimize import linprog

    if radius < 1:
        raise SolverError("radius must be >= 1")
    if g.n == 0:
        return LPRoundingResult((), radius, 0.0, 0.0, 0, 0)
    a = max(1, degeneracy(g)) if arboricity is None else max(1, int(arboricity))
    cov = coverage_matrix(g, radius)
    res = linprog(
        c=np.ones(g.n),
        A_ub=-cov,
        b_ub=-np.ones(g.n),
        bounds=(0, 1),
        method="highs",
    )
    if not res.success:
        raise SolverError(f"covering LP failed: {res.message}")
    x = np.asarray(res.x)
    threshold = 1.0 / (3.0 * a)
    s_mask = x >= threshold - 1e-12
    covered = np.asarray((cov @ s_mask.astype(np.int64)) > 0).ravel()
    u_mask = ~covered
    chosen = np.flatnonzero(s_mask | u_mask)
    return LPRoundingResult(
        dominators=tuple(int(v) for v in chosen),
        radius=radius,
        lp_value=float(res.fun),
        threshold=threshold,
        rounded=int(s_mask.sum()),
        fixed_up=int(u_mask.sum()),
    )
