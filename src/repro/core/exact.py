"""Exact optima and lower bounds for distance-r domination.

The paper proves multiplicative guarantees against OPT; to *measure*
realized approximation ratios the harness needs OPT (or a lower bound):

* :func:`exact_domset` — integer program  min 1'x  s.t.  A x >= 1,
  x binary, where row w of A is the indicator of ``N_r[w]``; solved with
  scipy's HiGHS MILP.  Practical to a few thousand vertices on the
  benchmark families.
* :func:`lp_lower_bound` — the LP relaxation value, always <= OPT.
  ``ceil(LP)`` is the lower bound T1 reports when MILP is too slow.
* :func:`brute_force_domset` — subset enumeration for tiny graphs;
  used in tests as an oracle for the MILP path.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np
import scipy.sparse as sp
from scipy.optimize import LinearConstraint, linprog, milp

from repro.errors import SolverError
from repro.graphs.graph import Graph
from repro.graphs.traversal import ball

__all__ = ["coverage_matrix", "exact_domset", "lp_lower_bound", "brute_force_domset"]

#: brute force cost guard: ~ n * 2^n set operations
_BRUTE_LIMIT = 22


def coverage_matrix(g: Graph, radius: int) -> sp.csr_matrix:
    """Sparse 0/1 matrix A with ``A[w, v] = 1`` iff ``dist(w, v) <= radius``."""
    rows: list[int] = []
    cols: list[int] = []
    for w in range(g.n):
        members = ball(g, w, radius)
        rows.extend([w] * len(members))
        cols.extend(int(x) for x in members)
    data = np.ones(len(rows), dtype=np.int8)
    return sp.csr_matrix((data, (rows, cols)), shape=(g.n, g.n))


def exact_domset(g: Graph, radius: int, time_limit: float = 60.0) -> tuple[int, list[int]]:
    """Minimum distance-r dominating set via MILP (HiGHS).

    Returns ``(size, vertices)``.  Raises :class:`SolverError` if the
    solver does not reach proven optimality within ``time_limit``.
    """
    if g.n == 0:
        return 0, []
    a = coverage_matrix(g, radius)
    constraint = LinearConstraint(a, lb=np.ones(g.n), ub=np.inf)
    res = milp(
        c=np.ones(g.n),
        integrality=np.ones(g.n),
        bounds=(0, 1),
        constraints=[constraint],
        options={"time_limit": time_limit},
    )
    if not res.success or res.status != 0:
        raise SolverError(f"MILP failed or timed out: {res.message}")
    x = np.asarray(res.x).round().astype(int)
    chosen = [int(v) for v in np.flatnonzero(x)]
    return len(chosen), chosen


def lp_lower_bound(g: Graph, radius: int) -> float:
    """Optimal value of the covering LP relaxation (a lower bound on OPT)."""
    if g.n == 0:
        return 0.0
    a = coverage_matrix(g, radius)
    res = linprog(
        c=np.ones(g.n),
        A_ub=-a,
        b_ub=-np.ones(g.n),
        bounds=(0, 1),
        method="highs",
    )
    if not res.success:
        raise SolverError(f"LP failed: {res.message}")
    return float(res.fun)


def brute_force_domset(g: Graph, radius: int) -> tuple[int, list[int]]:
    """Exact optimum by subset enumeration (n <= 22 enforced)."""
    n = g.n
    if n > _BRUTE_LIMIT:
        raise SolverError(f"brute force limited to n <= {_BRUTE_LIMIT}")
    if n == 0:
        return 0, []
    masks = []
    for v in range(n):
        mask = 0
        for x in ball(g, v, radius):
            mask |= 1 << int(x)
        masks.append(mask)
    full = (1 << n) - 1
    for k in range(1, n + 1):
        for combo in combinations(range(n), k):
            acc = 0
            for v in combo:
                acc |= masks[v]
            if acc == full:
                return k, list(combo)
    raise SolverError("unreachable: full vertex set always dominates")
