"""Sequential distance-r dominating set — Theorem 5 (Algorithms 1–3).

Given a linear order ``L``, the algorithm outputs::

    D = { min WReach_r[G, L, w] : w in V(G) }

i.e. every vertex elects the L-least vertex of its weak r-reachability
set, and the elected vertices form the dominating set.  The proof of
Theorem 5 shows ``|D| <= c * |OPT|`` where
``c = max_v |WReach_2r[G, L, v]|`` — for *any* order; bounded expansion
guarantees an order with bounded ``c`` exists.

Implementations (cross-checked in tests):

* :func:`domset_sequential` — the paper's Algorithm 1: iterate vertices
  in increasing L-order; run the restricted truncated BFS (Algorithm 3)
  over the cached rank-sorted rows of
  :class:`~repro.orders.wreach.RankedAdjacency`; add the root iff it
  reaches a not-yet-dominated vertex.
* :func:`domset_by_wreach` — the definitional version over the CSR
  representation: ``WReach_r`` rows are rank-sorted, so the election
  ``min WReach_r[w]`` is the first member of each row —
  ``members[indptr[:-1]]`` — and the whole algorithm is two vectorized
  gathers, no per-vertex Python lists.
* :func:`domset_by_wreach_lists` — the original list-walking version,
  retained verbatim as the parity reference for the vectorized pass
  (and as the perf baseline the P1 benchmark times it against).

All return identical sets (a unit-test invariant, mirroring the
equality (2) in the paper's proof).
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import OrderError
from repro.graphs.graph import Graph
from repro.orders.linear_order import LinearOrder
from repro.orders.wreach import (
    RankedAdjacency,
    WReachCSR,
    ranked_adjacency,
    wreach_csr,
)

__all__ = [
    "DomSetResult",
    "domset_sequential",
    "domset_by_wreach",
    "domset_by_wreach_lists",
]


@dataclass(frozen=True)
class DomSetResult:
    """Output of a dominating-set computation.

    Attributes
    ----------
    dominators:
        Sorted vertex ids of the dominating set ``D``.
    dominator_of:
        ``dominator_of[w]`` is the elected dominator of ``w`` —
        ``min WReach_r[G, L, w]`` for order-based algorithms, or the
        covering choice for baselines; always within distance r of w.
    radius:
        The distance parameter r.
    """

    dominators: tuple[int, ...]
    dominator_of: np.ndarray
    radius: int

    @property
    def size(self) -> int:
        return len(self.dominators)

    def membership(self, n: int) -> np.ndarray:
        out = np.zeros(n, dtype=bool)
        out[list(self.dominators)] = True
        return out


def domset_sequential(
    g: Graph,
    order: LinearOrder,
    radius: int,
    *,
    adj: RankedAdjacency | None = None,
) -> DomSetResult:
    """Algorithm 1 (``DomSet``): linear-time c(r)-approximation.

    Iterates vertices in increasing L-order.  For each root v it runs the
    Algorithm-3 BFS (restricted to L-greater vertices, depth <= r) and
    adds v to D iff the BFS reaches a vertex that no earlier root
    dominated.  The rank-sorted adjacency (Algorithm 2's SortLists) comes
    from :meth:`RankedAdjacency.rows` — built and cached once per
    ``(graph, order)`` — so the eligible neighbors of each visited vertex
    are a row suffix located by one binary search; pass ``adj`` to share
    the cached instance across calls.
    """
    if g.n != order.n:
        raise OrderError("order size does not match graph")
    if radius < 0:
        raise OrderError("radius must be >= 0")
    adj = ranked_adjacency(g, order, adj)
    rows, row_ranks = adj.rows()
    rank = order.rank
    dominated = np.zeros(g.n, dtype=bool)
    dominator_of = np.full(g.n, -1, dtype=np.int64)
    dominators: list[int] = []
    for i in range(g.n):
        v = int(order.by_rank[i])
        # Algorithm 3: BFS over {u : u >_L v}, depth <= radius; the
        # eligible neighbors are the suffix of each rank-sorted row
        # strictly above the root's rank.
        visited = {v}
        newly: list[int] = [] if dominated[v] else [v]
        q: deque[tuple[int, int]] = deque([(v, 0)])
        reach = [v]
        while q:
            w, dist = q.popleft()
            if dist >= radius:
                continue
            rr = row_ranks[w]
            for u in rows[w][bisect_right(rr, i) :]:
                if u not in visited:
                    visited.add(u)
                    reach.append(u)
                    q.append((u, dist + 1))
                    if not dominated[u]:
                        newly.append(u)
        if newly:
            dominators.append(v)
            for u in reach:
                if not dominated[u]:
                    dominated[u] = True
                    dominator_of[u] = v
    return DomSetResult(tuple(sorted(dominators)), dominator_of, radius)


def domset_by_wreach(
    g: Graph,
    order: LinearOrder,
    radius: int,
    wreach: list[list[int]] | None = None,
    *,
    csr: WReachCSR | None = None,
    adj: RankedAdjacency | None = None,
) -> DomSetResult:
    """Definitional version: ``D = { min WReach_r[w] : w }`` (equation (2)).

    Runs as two vectorized gathers over the CSR arrays of
    :func:`~repro.orders.wreach.wreach_csr`: rows are rank-sorted, so
    the elected dominator of ``w`` is the first member of row ``w``, and
    ``D`` is the unique set of those.  ``csr`` may be supplied
    precomputed (``PrecomputeCache.wreach_csr``) to share work across
    calls; passing the legacy ``wreach`` lists instead routes through
    :func:`domset_by_wreach_lists`, the retained reference path.
    """
    if wreach is not None:
        return domset_by_wreach_lists(g, order, radius, wreach)
    if g.n != order.n:
        raise OrderError("order size does not match graph")
    if csr is None:
        csr = wreach_csr(g, order, radius, adj=adj)
    elif not csr.matches(g, order, radius):
        raise OrderError(
            f"precomputed CSR (n={csr.n}, reach={csr.reach}) does not match "
            f"(n={g.n}, reach={radius}) or was built for a different order"
        )
    dominator_of = csr.least()
    dominators = tuple(np.unique(dominator_of).tolist())
    return DomSetResult(dominators, dominator_of, radius)


def domset_by_wreach_lists(
    g: Graph,
    order: LinearOrder,
    radius: int,
    wreach: list[list[int]] | None = None,
) -> DomSetResult:
    """List-walking reference for :func:`domset_by_wreach`.

    The original per-vertex ``min_of`` election, kept verbatim: the
    parity tests assert the vectorized CSR pass reproduces it exactly,
    and the P1 benchmark times the two against each other.  ``wreach``
    may be supplied precomputed (``wreach_sets(g, order, radius)``).
    """
    from repro.orders.wreach import wreach_sets

    if g.n != order.n:
        raise OrderError("order size does not match graph")
    if wreach is None:
        wreach = wreach_sets(g, order, radius)
    dominator_of = np.full(g.n, -1, dtype=np.int64)
    chosen: set[int] = set()
    for w in range(g.n):
        d = order.min_of(wreach[w])
        dominator_of[w] = d
        chosen.add(d)
    return DomSetResult(tuple(sorted(chosen)), dominator_of, radius)
