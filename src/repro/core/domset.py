"""Sequential distance-r dominating set — Theorem 5 (Algorithms 1–3).

Given a linear order ``L``, the algorithm outputs::

    D = { min WReach_r[G, L, w] : w in V(G) }

i.e. every vertex elects the L-least vertex of its weak r-reachability
set, and the elected vertices form the dominating set.  The proof of
Theorem 5 shows ``|D| <= c * |OPT|`` where
``c = max_v |WReach_2r[G, L, v]|`` — for *any* order; bounded expansion
guarantees an order with bounded ``c`` exists.

Two implementations are provided and cross-checked in tests:

* :func:`domset_sequential` — the paper's Algorithm 1: iterate vertices
  in increasing L-order; run the restricted truncated BFS (Algorithm 3);
  add the root iff it reaches a not-yet-dominated vertex.
* :func:`domset_by_wreach` — the definitional version: materialize
  ``WReach_r`` and elect minima.

Both return identical sets (a unit-test invariant, mirroring the
equality (2) in the paper's proof).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import OrderError
from repro.graphs.graph import Graph
from repro.orders.linear_order import LinearOrder
from repro.orders.wreach import wreach_sets

__all__ = ["DomSetResult", "domset_sequential", "domset_by_wreach"]


@dataclass(frozen=True)
class DomSetResult:
    """Output of a dominating-set computation.

    Attributes
    ----------
    dominators:
        Sorted vertex ids of the dominating set ``D``.
    dominator_of:
        ``dominator_of[w]`` is the elected dominator of ``w`` —
        ``min WReach_r[G, L, w]`` for order-based algorithms, or the
        covering choice for baselines; always within distance r of w.
    radius:
        The distance parameter r.
    """

    dominators: tuple[int, ...]
    dominator_of: np.ndarray
    radius: int

    @property
    def size(self) -> int:
        return len(self.dominators)

    def membership(self, n: int) -> np.ndarray:
        out = np.zeros(n, dtype=bool)
        out[list(self.dominators)] = True
        return out


def domset_sequential(g: Graph, order: LinearOrder, radius: int) -> DomSetResult:
    """Algorithm 1 (``DomSet``): linear-time c(r)-approximation.

    Iterates vertices in increasing L-order.  For each root v it runs the
    Algorithm-3 BFS (restricted to L-greater vertices, depth <= r, with
    the sorted-adjacency early exit) and adds v to D iff the BFS reaches
    a vertex that no earlier root dominated.
    """
    if g.n != order.n:
        raise OrderError("order size does not match graph")
    if radius < 0:
        raise OrderError("radius must be >= 0")
    rank = order.rank
    # Algorithm 2 (SortLists): adjacency sorted ascending by L-rank.
    sorted_adj = order.sorted_adjacency(g)
    dominated = np.zeros(g.n, dtype=bool)
    dominator_of = np.full(g.n, -1, dtype=np.int64)
    dominators: list[int] = []
    for i in range(g.n):
        v = int(order.by_rank[i])
        # Algorithm 3: BFS over {u : u >_L v}, depth <= radius.  The
        # sorted adjacency lets us scan each list from the greatest rank
        # downward and stop at the first vertex <=_L v.
        visited = {v}
        newly: list[int] = [] if dominated[v] else [v]
        q: deque[tuple[int, int]] = deque([(v, 0)])
        reach = [v]
        while q:
            w, dist = q.popleft()
            if dist >= radius:
                continue
            row = sorted_adj[w]
            for k in range(len(row) - 1, -1, -1):
                u = int(row[k])
                if rank[u] <= rank[v]:
                    break  # all remaining are L-smaller: early exit
                if u not in visited:
                    visited.add(u)
                    reach.append(u)
                    q.append((u, dist + 1))
                    if not dominated[u]:
                        newly.append(u)
        if newly:
            dominators.append(v)
            for u in reach:
                if not dominated[u]:
                    dominated[u] = True
                    dominator_of[u] = v
    return DomSetResult(tuple(sorted(dominators)), dominator_of, radius)


def domset_by_wreach(
    g: Graph,
    order: LinearOrder,
    radius: int,
    wreach: list[list[int]] | None = None,
) -> DomSetResult:
    """Definitional version: ``D = { min WReach_r[w] : w }`` (equation (2)).

    Quadratic-ish but direct; used as the oracle for Algorithm 1 and as
    the sequential reference that the distributed Theorem 9 algorithm
    must reproduce exactly.  ``wreach`` may be supplied precomputed
    (``wreach_sets(g, order, radius)``) to share work across calls.
    """
    if g.n != order.n:
        raise OrderError("order size does not match graph")
    if wreach is None:
        wreach = wreach_sets(g, order, radius)
    dominator_of = np.full(g.n, -1, dtype=np.int64)
    chosen: set[int] = set()
    for w in range(g.n):
        d = order.min_of(wreach[w])
        dominator_of[w] = d
        chosen.add(d)
    return DomSetResult(tuple(sorted(chosen)), dominator_of, radius)
