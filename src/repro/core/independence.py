"""Scattered sets: combinatorial lower bounds for distance-r domination.

A set S of vertices with pairwise distance > 2r is *2r-scattered*; no
vertex can distance-r dominate two members of S, so

    |S|  <=  gamma_r(G)          (the distance-r domination number).

Greedy scattering therefore yields a solver-free lower bound that
complements the LP bound: on large instances where the MILP is out of
reach the harness reports ``max(|S|, ceil(LP))``.  The sandwich

    |S|  <=  LP  is NOT guaranteed (either may win),   but
    |S|  <=  OPT  and  LP <= OPT  always hold

— both directions are property-tested.  Duality with the paper: the
proof of Theorem 5 implicitly pairs every dominator with a cluster that
any optimum must hit; a scattered set is the explicit combinatorial
version of that pairing.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.traversal import UNREACHED, bfs_distances

__all__ = ["greedy_scattered_set", "is_scattered", "scattered_lower_bound"]


def is_scattered(g: Graph, vertices: Iterable[int], separation: int) -> bool:
    """True iff all pairwise distances exceed ``separation``."""
    vs = sorted(set(int(v) for v in vertices))
    for i, v in enumerate(vs):
        if not (0 <= v < g.n):
            raise GraphError(f"vertex {v} out of range")
        dist = bfs_distances(g, v, max_dist=separation)
        for u in vs[i + 1 :]:
            if dist[u] != UNREACHED:
                return False
    return True


def greedy_scattered_set(
    g: Graph, separation: int, order: Iterable[int] | None = None
) -> tuple[int, ...]:
    """Greedy maximal set with pairwise distance > ``separation``.

    Vertices are tried in the given order (default: ascending degree,
    ties by id — low-degree vertices tend to be spreadable).  The result
    is maximal: every remaining vertex is within ``separation`` of a
    member.
    """
    if separation < 0:
        raise GraphError("separation must be >= 0")
    if order is None:
        degs = g.degrees()
        candidates = sorted(range(g.n), key=lambda v: (int(degs[v]), v))
    else:
        candidates = [int(v) for v in order]
    blocked = np.zeros(g.n, dtype=bool)
    chosen: list[int] = []
    for v in candidates:
        if blocked[v]:
            continue
        chosen.append(v)
        dist = bfs_distances(g, v, max_dist=separation)
        blocked[dist != UNREACHED] = True
    return tuple(sorted(chosen))


def scattered_lower_bound(g: Graph, radius: int) -> int:
    """``gamma_r(G) >= |greedy 2r-scattered set|`` (solver-free)."""
    if radius < 0:
        raise GraphError("radius must be >= 0")
    return len(greedy_scattered_set(g, 2 * radius))
