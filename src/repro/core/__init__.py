"""Core algorithms: the paper's contribution plus baselines."""

from repro.core.domset import (
    domset_by_wreach,
    domset_by_wreach_lists,
    domset_sequential,
    DomSetResult,
)
from repro.core.dvorak import domset_dvorak
from repro.core.greedy import domset_greedy
from repro.core.covers import (
    NeighborhoodCover,
    build_cover,
    build_cover_lists,
    cover_stats,
)
from repro.core.connect import (
    connect_via_wreach,
    connect_via_minor,
    steiner_connect_baseline,
)
from repro.core.certify import certify_run, Certificate
from repro.core.exact import (
    exact_domset,
    lp_lower_bound,
    brute_force_domset,
)
from repro.core.prune import prune_dominating_set
from repro.core.tree_exact import tree_domset_exact, is_tree
from repro.core.independence import (
    greedy_scattered_set,
    is_scattered,
    scattered_lower_bound,
)
from repro.core.lp_rounding import lp_rounding_domset

__all__ = [
    "domset_by_wreach",
    "domset_by_wreach_lists",
    "domset_sequential",
    "DomSetResult",
    "domset_dvorak",
    "domset_greedy",
    "NeighborhoodCover",
    "build_cover",
    "build_cover_lists",
    "cover_stats",
    "connect_via_wreach",
    "connect_via_minor",
    "steiner_connect_baseline",
    "certify_run",
    "Certificate",
    "exact_domset",
    "lp_lower_bound",
    "brute_force_domset",
    "prune_dominating_set",
    "tree_domset_exact",
    "is_tree",
    "greedy_scattered_set",
    "is_scattered",
    "scattered_lower_bound",
    "lp_rounding_domset",
]
