"""Connecting dominating sets — Corollary 13 and Lemmas 14–16.

Two constructions from the paper plus a centralized reference baseline:

* :func:`connect_via_wreach` (Corollary 13, the engine of Theorem 10):
  from each dominator v add a stored weak-reachability path to every
  ``w ∈ WReach_{2r+1}[G, L, v]``.  Any two dominators at distance
  <= 2r+1 share the L-least vertex of a connecting path (Lemma 12),
  so the union is connected (Lemma 11).  Size <= c' * (2r+2) * |D|.

* :func:`connect_via_minor` (Lemmas 14–16, the engine of Theorem 17):
  partition V into balls ``B(v)`` around dominators via lexicographic
  shortest paths, contract to the connected depth-r minor ``H(D)``,
  and realize each minor edge by the lexicographically least shortest
  path (length <= 2r+1) between its dominators.  On a class whose
  depth-r minors have edge density d this yields
  ``|D'| <= 2r * d * |D| + |D|`` — e.g. factor 6 + 1 on planar graphs
  at r = 1.

* :func:`steiner_connect_baseline`: Prim-style shortest-path merging,
  the "what a centralized algorithm would do" size reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.traversal import UNREACHED, bfs_distances, multi_source_distances
from repro.orders.linear_order import LinearOrder
from repro.orders.wreach import RankedAdjacency, wreach_sets_with_paths

__all__ = [
    "ConnectResult",
    "connect_via_wreach",
    "connect_via_minor",
    "lex_ball_partition",
    "minor_of_domset",
    "steiner_connect_baseline",
]


@dataclass(frozen=True)
class ConnectResult:
    """A connected (distance-r) dominating set and how it was assembled.

    ``added_paths`` maps a pair of endpoint vertices to the vertex tuple
    of the path that was glued in for them (diagnostic only).
    """

    vertices: tuple[int, ...]
    base_size: int
    radius: int
    added_paths: dict[tuple[int, int], tuple[int, ...]]

    @property
    def size(self) -> int:
        return len(self.vertices)

    @property
    def blowup(self) -> float:
        """``|D'| / |D|`` — the quantity Theorem 10 / Lemma 16 bound."""
        return self.size / self.base_size if self.base_size else 0.0


def connect_via_wreach(
    g: Graph,
    order: LinearOrder,
    dominators: Iterable[int],
    radius: int,
    *,
    adj: RankedAdjacency | None = None,
) -> ConnectResult:
    """Corollary 13: add weak-reachability paths from every dominator.

    Requires an order computed for parameter ``2 * radius + 1`` for the
    theory bound, but works (and is certified per-instance) for any
    order.  The witness paths come from the vectorized batch path
    kernel; pass ``adj`` (``PrecomputeCache.rank_adjacency``) to share
    the rank-sorted adjacency with the other WReach computations on the
    same order.
    """
    base = sorted(set(int(v) for v in dominators))
    if not base:
        raise GraphError("cannot connect an empty dominating set")
    reach_len = 2 * radius + 1
    _, paths = wreach_sets_with_paths(g, order, reach_len, adj=adj)
    out: set[int] = set(base)
    added: dict[tuple[int, int], tuple[int, ...]] = {}
    for v in base:
        for u, path in paths[v].items():
            out.update(path)
            added[(v, int(u))] = path
    return ConnectResult(tuple(sorted(out)), len(base), radius, added)


def lex_ball_partition(
    g: Graph, dominators: Sequence[int], radius: int | None
) -> tuple[np.ndarray, list[tuple[int, ...] | None]]:
    """The ``B(v)`` partition of Lemma 14 via lexicographic shortest paths.

    Returns ``(owner, label)`` where ``owner[w]`` is the dominator whose
    ball contains w and ``label[w]`` is the id sequence of the
    lexicographically least shortest path from ``owner[w]`` to ``w``.

    Built layer by layer: a vertex at distance d from the dominating set
    extends the lexicographically least label among its layer-(d-1)
    neighbors.  This reproduces the paper's global definition because
    ``<=_lex`` compares length first and the common last element makes
    prefix comparison decisive.

    With ``radius = None`` the coverage check is skipped and vertices
    unreachable from the dominators get ``owner = -1`` / ``label =
    None`` — the mode the LOCAL algorithm uses on ball subgraphs, where
    boundary vertices may lie beyond every in-ball dominator.
    """
    base = sorted(set(int(v) for v in dominators))
    dist = multi_source_distances(g, base, max_dist=None)
    if radius is not None:
        if np.any(dist == UNREACHED):
            raise GraphError("dominating set does not reach every vertex")
        if int(dist.max()) > radius:
            raise GraphError("input is not a distance-r dominating set")
    label: list[tuple[int, ...] | None] = [None] * g.n
    for v in base:
        label[v] = (v,)
    order_by_layer = np.argsort(dist, kind="stable")
    for w in order_by_layer:
        w = int(w)
        if dist[w] <= 0:  # a dominator, or unreachable (dist == UNREACHED)
            continue
        best: tuple[int, ...] | None = None
        for x in g.neighbors(w):
            x = int(x)
            if dist[x] == dist[w] - 1:
                cand = label[x]
                if cand is not None and (best is None or cand < best):
                    best = cand
        assert best is not None, "layered BFS invariant broken"
        label[w] = best + (w,)
    owner = np.asarray(
        [lab[0] if lab is not None else -1 for lab in label], dtype=np.int64
    )
    return owner, label


def minor_of_domset(g: Graph, dominators: Sequence[int], radius: int) -> list[tuple[int, int]]:
    """Edges of the depth-r minor ``H(D)`` of Lemma 15 (dominator id pairs)."""
    owner, _ = lex_ball_partition(g, dominators, radius)
    edges = set()
    for u, v in g.edges():
        a, b = int(owner[u]), int(owner[v])
        if a != b:
            edges.add((min(a, b), max(a, b)))
    return sorted(edges)


def _lex_shortest_path(g: Graph, u: int, v: int, max_len: int) -> tuple[int, ...] | None:
    """Lexicographically least shortest path u -> v of length <= max_len.

    Same layered-label technique as :func:`lex_ball_partition`, single
    source.  Both endpoints of a minor edge compute this identical path
    in the LOCAL algorithm, which is why determinism matters.
    """
    dist = bfs_distances(g, u, max_dist=max_len)
    if dist[v] == UNREACHED:
        return None
    label: dict[int, tuple[int, ...]] = {u: (u,)}
    frontier = [u]
    d = 0
    target_d = int(dist[v])
    while d < target_d:
        nxt: dict[int, tuple[int, ...]] = {}
        for w in frontier:
            for x in g.neighbors(w):
                x = int(x)
                if dist[x] == d + 1:
                    cand = label[w] + (x,)
                    if x not in nxt or cand < nxt[x]:
                        nxt[x] = cand
        for x, lab in nxt.items():
            label[x] = lab
        frontier = sorted(nxt)
        d += 1
    return label[v]


def canonical_lex_path(g: Graph, a: int, b: int, max_len: int) -> tuple[int, ...] | None:
    """The unique path both endpoints of a minor edge agree on.

    Lexicographically least shortest path read from the smaller-id
    endpoint — symmetric in (a, b), so u and v "fix the same path P_uv"
    as Lemma 16 requires.
    """
    lo, hi = (a, b) if a < b else (b, a)
    return _lex_shortest_path(g, lo, hi, max_len)


def connect_via_minor(
    g: Graph, dominators: Sequence[int], radius: int
) -> ConnectResult:
    """Lemma 16: connect ``D`` through the minor ``H(D)``'s realized edges."""
    base = sorted(set(int(v) for v in dominators))
    h_edges = minor_of_domset(g, base, radius)
    out: set[int] = set(base)
    added: dict[tuple[int, int], tuple[int, ...]] = {}
    max_len = 2 * radius + 1
    for u, v in h_edges:
        path = _lex_shortest_path(g, u, v, max_len)
        if path is None:  # pragma: no cover - H-edges are always realizable
            raise GraphError(f"minor edge ({u},{v}) not realizable within {max_len}")
        out.update(path)
        added[(u, v)] = path
    return ConnectResult(tuple(sorted(out)), len(base), radius, added)


def steiner_connect_baseline(
    g: Graph, dominators: Sequence[int], radius: int
) -> ConnectResult:
    """Centralized Prim-style connector (size reference, not distributed).

    Grows a connected component from the L-least dominator, repeatedly
    attaching the nearest not-yet-connected dominator via a shortest path.
    """
    base = sorted(set(int(v) for v in dominators))
    if not base:
        raise GraphError("cannot connect an empty dominating set")
    connected: set[int] = {base[0]}
    todo = set(base[1:])
    added: dict[tuple[int, int], tuple[int, ...]] = {}
    out: set[int] = set(base)
    while todo:
        dist = multi_source_distances(g, connected)
        target = min(todo, key=lambda v: (int(dist[v]), v))
        if dist[target] == UNREACHED:
            raise GraphError("dominators span multiple components")
        # Walk back from target to the connected set along decreasing dist.
        path = [target]
        cur = target
        while dist[cur] != 0:
            nxt = min(
                (int(x) for x in g.neighbors(cur) if dist[int(x)] == dist[cur] - 1),
            )
            path.append(nxt)
            cur = nxt
        out.update(path)
        added[(path[-1], target)] = tuple(reversed(path))
        connected.update(path)
        todo.discard(target)
    return ConnectResult(tuple(sorted(out)), len(base), radius, added)
