"""Orientation-based approximate distance-r dominating set.

The fast tier for million-node instances, in the style of
spacegraphcats' rdomset: instead of materializing ``WReach_r`` (whose
rows cost O(wcol_r) each), run ``r`` rounds of *in-neighbor label
propagation* over the low-degree orientation the degeneracy order
induces — every vertex repeatedly adopts the smallest rank reachable
through strictly rank-decreasing arcs:

.. code-block:: text

    best_0(v)   = rank(v)
    best_i+1(v) = min(best_i(v), min { best_i(u) : u in N(v), rank(u) < rank(v) })
    e(v)        = by_rank[best_r(v)];   D = { e(v) : v }

Correctness is by construction: ``best_r(v)`` is witnessed by a path
``v = u_0, u_1, ..., u_k = e(v)`` (k <= r) whose ranks *strictly
decrease*, so e(v) is the L-least vertex on that path — i.e.
``e(v) ∈ WReach_r[G, L, v]`` — and in particular within distance r of
v.  D is therefore a valid distance-r dominating set, and every
elected vertex is an L-least weak-reachability witness, so the
Theorem-5 certificate machinery (``wcol_{2r}`` of the same order)
applies to it unchanged.

What is *not* guaranteed is the full Theorem-5 bound ``|D| <= c * OPT``
with the same constant: the definitional election
(:func:`repro.core.domset.domset_by_wreach`) minimizes over all weakly
reachable vertices, while this tier only sees monotone (strictly
descending) paths — a subset — so ``best_r(v) >= rank(min WReach_r[v])``
and the set can only be *larger*, never smaller.  The gap is small in
practice (the parity suite pins a ratio bound) and the price drops
from O(sum_v |WReach_r[v]|) to O(r * m) flat numpy passes with O(n + m)
scratch — no per-vertex membership lists at all, which is what lets a
10^6-vertex graph solve in a few array sweeps.

Each round is one segment-min (``np.minimum.reduceat``) over the
in-neighbor CSR, using the *previous* round's labels (Jacobi, not
Gauss-Seidel: in-place updates would chain arbitrarily many hops in
one round and break the distance-r witness above).
"""

from __future__ import annotations

import numpy as np

from repro.core.domset import DomSetResult
from repro.errors import OrderError
from repro.graphs.graph import Graph
from repro.orders.linear_order import LinearOrder
from repro.orders.wreach import RankedAdjacency, ranked_adjacency

__all__ = ["rdomset_orient"]


def rdomset_orient(
    g: Graph,
    order: LinearOrder,
    radius: int,
    *,
    adj: RankedAdjacency | None = None,
) -> DomSetResult:
    """Distance-``radius`` dominating set via in-neighbor propagation.

    Returns a :class:`~repro.core.domset.DomSetResult` whose
    ``dominator_of[v]`` is always a member of ``WReach_radius[v]``
    within distance ``radius`` of ``v`` (see the module docstring for
    the witness argument).  Pass ``adj`` to reuse the cached
    rank-permuted adjacency; only its prefix structure (rows ascending
    by rank) is consumed.
    """
    if g.n != order.n:
        raise OrderError("order size does not match graph")
    if radius < 0:
        raise OrderError("radius must be >= 0")
    adj = ranked_adjacency(g, order, adj)
    n = g.n
    if n == 0:
        return DomSetResult((), np.empty(0, dtype=np.int64), radius)
    rank = np.asarray(adj.rank, dtype=np.int64)
    best = rank.copy()
    if radius > 0 and len(adj.nbrs):
        # In-arcs of the orientation: rows are rank-sorted, so the
        # L-smaller neighbors are a prefix of each row — at most
        # degeneracy-many per vertex by the order's construction.
        counts = np.diff(adj.indptr)
        row_ids = np.repeat(np.arange(n, dtype=np.int64), counts)
        in_mask = adj.nbr_ranks < rank[row_ids]
        in_nbrs = adj.nbrs[in_mask]
        in_counts = np.bincount(row_ids[in_mask], minlength=n)
        in_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(in_counts, out=in_indptr[1:])
        has_in = in_counts > 0
        # reduceat segments must be nonempty: empty rows would make a
        # segment start equal the next and misread a neighbor's value,
        # so reduce only the nonempty rows and scatter through has_in.
        starts = in_indptr[:-1][has_in]
        if starts.size:
            for _round in range(radius):
                prev = best
                mins = np.minimum.reduceat(prev[in_nbrs], starts)
                best = prev.copy()
                best[has_in] = np.minimum(prev[has_in], mins)
                if np.array_equal(best, prev):
                    break
    dominator_of = adj.by_rank[best]
    dominators = tuple(np.unique(dominator_of).tolist())
    return DomSetResult(dominators, dominator_of, radius)
