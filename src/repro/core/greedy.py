"""Classical greedy set-cover baseline for distance-r domination.

Repeatedly pick the vertex whose r-ball covers the most uncovered
vertices.  Achieves the (essentially optimal for general graphs)
``ln n`` approximation ratio [15, 39]; on bounded-expansion inputs the
order-based algorithms beat its *guarantee* but greedy is a strong
*empirical* size baseline, which is exactly how T1 uses it.

Implemented with lazy re-evaluation on a max-heap: ball coverage counts
only shrink as the cover grows, so a stale heap entry can be refreshed
on pop (standard lazy-greedy trick; avoids rescanning all balls per
iteration).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import GraphError
from repro.core.domset import DomSetResult
from repro.graphs.graph import Graph
from repro.graphs.traversal import ball

__all__ = ["domset_greedy"]


def domset_greedy(g: Graph, radius: int) -> DomSetResult:
    """Greedy max-coverage distance-r dominating set."""
    if radius < 0:
        raise GraphError("radius must be >= 0")
    n = g.n
    if n == 0:
        return DomSetResult((), np.empty(0, dtype=np.int64), radius)
    balls = [ball(g, v, radius) for v in range(n)]
    covered = np.zeros(n, dtype=bool)
    dominator_of = np.full(n, -1, dtype=np.int64)
    # Heap of (-gain, vertex); gains are lazily refreshed.
    heap = [(-len(balls[v]), v) for v in range(n)]
    heapq.heapify(heap)
    dominators: list[int] = []
    remaining = n
    while remaining > 0:
        neg_gain, v = heapq.heappop(heap)
        gain = int(np.count_nonzero(~covered[balls[v]]))
        if gain < -neg_gain:
            if gain > 0:
                heapq.heappush(heap, (-gain, v))
            continue
        if gain == 0:  # pragma: no cover - only if graph got fully covered
            continue
        dominators.append(v)
        newly = balls[v][~covered[balls[v]]]
        covered[newly] = True
        dominator_of[newly] = v
        remaining -= len(newly)
    return DomSetResult(tuple(sorted(dominators)), dominator_of, radius)
