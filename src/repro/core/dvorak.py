"""Dvořák-style baseline [21]: the c(r)^2-approximation the paper improves.

The algorithm is the order-greedy rule: walk the vertices in increasing
L-order and add a vertex to ``D`` iff it is not yet within distance r of
``D``.  Validity is immediate (every vertex is checked), and Dvořák's
analysis bounds the size by ``wcol_2r(G)^2 * |OPT|`` — one factor more
than Theorem 5's bound for the same order, which is the improvement the
paper claims (Contribution 1).  The T1 benchmark compares the two.
"""

from __future__ import annotations

import numpy as np

from repro.errors import OrderError
from repro.graphs.graph import Graph
from repro.core.domset import DomSetResult
from repro.orders.linear_order import LinearOrder

__all__ = ["domset_dvorak"]


def domset_dvorak(g: Graph, order: LinearOrder, radius: int) -> DomSetResult:
    """Order-greedy c(r)^2-approximation of a distance-r dominating set."""
    if g.n != order.n:
        raise OrderError("order size does not match graph")
    if radius < 0:
        raise OrderError("radius must be >= 0")
    # dist_to_D[v] = current distance to D, capped at radius + 1.
    INF = radius + 1
    dist_to_d = np.full(g.n, INF, dtype=np.int64)
    dominator_of = np.full(g.n, -1, dtype=np.int64)
    dominators: list[int] = []
    for i in range(g.n):
        v = int(order.by_rank[i])
        if dist_to_d[v] <= radius:
            continue
        dominators.append(v)
        # Truncated BFS refresh from the new dominator.
        dist_to_d[v] = 0
        dominator_of[v] = v
        frontier = [v]
        d = 0
        while frontier and d < radius:
            nxt = []
            for w in frontier:
                for u in g.neighbors(w):
                    u = int(u)
                    if dist_to_d[u] > d + 1:
                        dist_to_d[u] = d + 1
                        dominator_of[u] = v
                        nxt.append(u)
            frontier = nxt
            d += 1
    return DomSetResult(tuple(sorted(dominators)), dominator_of, radius)
