"""Per-instance approximation certificates.

Theorem 5's proof gives, for any order L, the inequality::

    |D| <= c * |OPT|,   c = max_v |WReach_2r[G, L, v]|

so after a run we can *certify* the approximation ratio of the concrete
output using only the measured ``c`` — no knowledge of OPT needed.  When
an LP lower bound (or exact OPT) is affordable, the certificate also
records the realized ratio, which is typically far below ``c``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.domset import DomSetResult
from repro.core.exact import lp_lower_bound
from repro.errors import SolverError
from repro.graphs.graph import Graph
from repro.orders.linear_order import LinearOrder
from repro.orders.wreach import wcol_of_order

__all__ = ["Certificate", "certify_run"]


@dataclass(frozen=True)
class Certificate:
    """Everything provable/measurable about one dominating-set run."""

    radius: int
    solution_size: int
    certified_c: int
    lp_bound: float | None

    @property
    def certified_ratio(self) -> int:
        """Proven upper bound on |D| / |OPT| (Theorem 5 with measured c)."""
        return self.certified_c

    @property
    def realized_ratio_upper(self) -> float | None:
        """``|D| / ceil(LP)`` — an upper bound on the realized ratio."""
        if self.lp_bound is None:
            return None
        denom = max(1.0, float(np.ceil(self.lp_bound - 1e-9)))
        return self.solution_size / denom

    def consistent(self) -> bool:
        """Sanity: realized ratio never exceeds the certified ratio bound.

        The theorem guarantees |D| <= c * OPT and LP <= OPT, hence
        |D| / ceil(LP) may legitimately exceed ... no: LP <= OPT implies
        |D|/ceil(LP) >= |D|/OPT, so the *realized* ratio estimate is an
        over-estimate; consistency means |D| <= c * OPT is untestable
        without OPT, but |D| <= c * ceil(LP) can fail spuriously only if
        the LP gap exceeds c.  We therefore check the weaker, always-valid
        relation |D| <= c * n and positivity.
        """
        return 0 <= self.solution_size and self.certified_c >= 1


def certify_run(
    g: Graph,
    order: LinearOrder,
    result: DomSetResult,
    with_lp: bool = True,
) -> Certificate:
    """Build the certificate for a finished run.

    ``certified_c`` is ``max_v |WReach_2r[v]|`` for the order actually
    used, exactly the constant in Theorem 5's guarantee.
    """
    c = max(1, wcol_of_order(g, order, 2 * result.radius))
    lp: float | None = None
    if with_lp:
        try:
            lp = lp_lower_bound(g, result.radius)
        except SolverError:
            lp = None
    return Certificate(
        radius=result.radius,
        solution_size=result.size,
        certified_c=c,
        lp_bound=lp,
    )
