"""Exact distance-r domination on trees (linear time).

The classical bottom-up greedy (Slater-style; optimal for trees):
process vertices from the leaves up; at each vertex track

* ``cov`` — distance to the nearest selected dominator in the subtree
  (``> r`` means "nothing useful selected yet"), and
* ``need`` — distance to the farthest *not-yet-covered* vertex in the
  subtree (``None`` if everything below is covered).

A dominator must be placed at vertex v exactly when some uncovered
descendant sits at distance r (it would become uncoverable above v).
Cross-subtree cancellation (a dominator in one child's subtree covering
uncovered vertices in a sibling's) is the ``need + cov <= r`` rule.

This gives exact optima for tree workloads of any size — the MILP in
:mod:`repro.core.exact` is only needed for non-trees — and doubles as
an independent oracle for the MILP path in tests.
"""

from __future__ import annotations


from repro.errors import GraphError, SolverError
from repro.graphs.components import connected_components
from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_tree

__all__ = ["tree_domset_exact", "is_tree"]


def is_tree(g: Graph) -> bool:
    """Connected and acyclic (n-1 edges)."""
    if g.n == 0:
        return True
    from repro.graphs.components import is_connected

    return g.m == g.n - 1 and is_connected(g)


def _forest_roots(g: Graph) -> list[int]:
    labels = connected_components(g)
    roots: dict[int, int] = {}
    for v in range(g.n):
        roots.setdefault(int(labels[v]), v)
    return [roots[c] for c in sorted(roots)]


def tree_domset_exact(g: Graph, radius: int) -> tuple[int, list[int]]:
    """Minimum distance-r dominating set of a forest (exact, O(n)).

    Works per connected component (so forests are fine); raises
    :class:`SolverError` if the graph contains a cycle.
    """
    if radius < 0:
        raise GraphError("radius must be >= 0")
    if g.m > g.n - 1 if g.n else g.m > 0:
        raise SolverError("input has a cycle; tree_domset_exact needs a forest")
    chosen: list[int] = []
    INF = radius + 1  # cov values above r behave identically; cap at r+1
    for root in _forest_roots(g):
        parent = bfs_tree(g, root)
        # Cycle check within the component.
        comp = [v for v in range(g.n) if parent[v] != -1 or v == root]
        edges_in_comp = sum(1 for v in comp if v != root)
        real_edges = sum(g.degree(v) for v in comp) // 2
        if real_edges != edges_in_comp:
            raise SolverError("input has a cycle; tree_domset_exact needs a forest")
        # Process vertices farthest-first (deepest BFS layer first).
        from repro.graphs.traversal import bfs_distances

        depth = bfs_distances(g, root)
        order = sorted(comp, key=lambda v: -int(depth[v]))
        cov = {v: INF for v in comp}   # distance to nearest chosen below
        need = {v: -1 for v in comp}   # farthest uncovered below; -1 = none
        children: dict[int, list[int]] = {v: [] for v in comp}
        for v in comp:
            if v != root:
                children[int(parent[v])].append(v)
        for v in order:
            c = INF
            nd = -1
            for ch in children[v]:
                c = min(c, cov[ch] + 1)
                if need[ch] >= 0:
                    nd = max(nd, need[ch] + 1)
            c = min(c, INF)
            # Cross-subtree cancellation and self-coverage.
            if nd >= 0 and nd + c <= radius:
                nd = -1
            if c > radius:
                nd = max(nd, 0)  # v itself is uncovered
            if nd >= radius:
                # Farthest uncovered vertex is at distance exactly r:
                # only v can still cover it -> select v.
                chosen.append(v)
                c = 0
                nd = -1
            cov[v] = c
            need[v] = nd
        if need[root] >= 0:
            chosen.append(root)
    return len(chosen), sorted(chosen)
