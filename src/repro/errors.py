"""Exception hierarchy for :mod:`repro`.

A small, explicit hierarchy so that callers can distinguish user errors
(bad input graphs or parameters) from violations of the distributed-model
contract (which indicate an algorithm bug, not a user bug).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class GraphError(ReproError):
    """Raised for malformed graph inputs (bad edges, out-of-range ids)."""


class OrderError(ReproError):
    """Raised for malformed linear orders (not a permutation, wrong size)."""


class ModelViolation(ReproError):
    """Raised when a node algorithm violates its communication model.

    Examples: sending more than one payload per round in CONGEST_BC, or
    exceeding the per-round bandwidth in strict mode.
    """


class SimulationError(ReproError):
    """Raised when a simulation cannot make progress (e.g. round limit)."""


class SolverError(ReproError):
    """Raised when an exact/LP solver fails or is given an oversized input."""


class RequestFailed(SolverError):
    """A submitted :class:`~repro.api.types.SolveRequest` failed in the
    pooled executor, with full request context attached.

    Raised through :meth:`~repro.api.workspace.SolveFuture.result` when
    the failure happened at the *pool* level (worker crash after retry
    exhaustion, deadline expiry, cancellation, or a group-level
    dispatch error) rather than inside the solver itself — the cases
    where a bare exception would otherwise carry no hint of which
    request died.

    Attributes
    ----------
    algorithm / graph_digest:
        The request's registry solver name and content digest.
    attempts:
        Dispatch attempts made (1 = no retries were needed or allowed).
    reason:
        ``"worker-crash"`` | ``"deadline"`` | ``"cancelled"`` |
        ``"error"``.
    """

    def __init__(
        self,
        message: str,
        *,
        algorithm: str = "",
        graph_digest: str = "",
        attempts: int = 0,
        reason: str = "error",
    ):
        super().__init__(message)
        self.algorithm = algorithm
        self.graph_digest = graph_digest
        self.attempts = attempts
        self.reason = reason
