"""Exception hierarchy for :mod:`repro`.

A small, explicit hierarchy so that callers can distinguish user errors
(bad input graphs or parameters) from violations of the distributed-model
contract (which indicate an algorithm bug, not a user bug).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class GraphError(ReproError):
    """Raised for malformed graph inputs (bad edges, out-of-range ids)."""


class OrderError(ReproError):
    """Raised for malformed linear orders (not a permutation, wrong size)."""


class ModelViolation(ReproError):
    """Raised when a node algorithm violates its communication model.

    Examples: sending more than one payload per round in CONGEST_BC, or
    exceeding the per-round bandwidth in strict mode.
    """


class SimulationError(ReproError):
    """Raised when a simulation cannot make progress (e.g. round limit)."""


class SolverError(ReproError):
    """Raised when an exact/LP solver fails or is given an oversized input."""
