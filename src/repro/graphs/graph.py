"""Immutable undirected simple graphs in CSR (compressed sparse row) form.

The CSR layout stores all adjacency lists in one contiguous ``indices``
array with an ``indptr`` offset array, the same layout scipy.sparse uses.
This keeps the hot loops (BFS sweeps, WReach computations) cache friendly
and lets most bulk operations run as numpy array expressions instead of
per-node Python objects.

Vertices are the integers ``0 .. n-1``.  Neighbor lists are sorted by
vertex id, which makes ``has_edge`` a binary search and gives every
algorithm a deterministic iteration order.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.errors import GraphError

__all__ = ["Graph"]


class Graph:
    """An immutable undirected simple graph.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; neighbors of ``v`` are
        ``indices[indptr[v]:indptr[v + 1]]``.
    indices:
        ``int32`` array of length ``2m`` holding all adjacency lists,
        each sorted ascending.

    Use :func:`repro.graphs.build.from_edges` (or the other constructors
    in :mod:`repro.graphs.build`) rather than calling this directly.
    """

    __slots__ = ("indptr", "indices", "n", "m")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, *, _checked: bool = False):
        self.indptr = indptr
        self.indices = indices
        self.n = int(len(indptr) - 1)
        self.m = int(len(indices) // 2)
        if not _checked:
            self._validate()
        # CSR arrays are logically frozen after construction.
        self.indptr.setflags(write=False)
        self.indices.setflags(write=False)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if self.indptr.ndim != 1 or self.indices.ndim != 1:
            raise GraphError("indptr/indices must be 1-d arrays")
        if self.n < 0:
            raise GraphError("indptr must have length >= 1")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise GraphError("indptr endpoints inconsistent with indices")
        if np.any(np.diff(self.indptr) < 0):
            raise GraphError("indptr must be nondecreasing")
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= self.n
        ):
            raise GraphError("neighbor id out of range")
        if len(self.indices) % 2 != 0:
            raise GraphError("odd total adjacency length; graph not undirected")
        for v in range(self.n):
            row = self.indices[self.indptr[v] : self.indptr[v + 1]]
            if np.any(np.diff(row) <= 0):
                raise GraphError(f"adjacency of {v} not strictly sorted (dup or unsorted)")
            if np.any(row == v):
                raise GraphError(f"self-loop at {v}")

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor array of ``v`` (a read-only view, no copy)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        """Number of neighbors of ``v``."""
        return int(self.indptr[v + 1] - self.indptr[v])

    def degrees(self) -> np.ndarray:
        """Array of all vertex degrees."""
        return np.diff(self.indptr)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge (binary search, O(log deg))."""
        if u == v:
            return False
        row = self.neighbors(u)
        i = int(np.searchsorted(row, v))
        return i < len(row) and int(row[i]) == v

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate each undirected edge once as ``(u, v)`` with ``u < v``."""
        for u in range(self.n):
            for v in self.neighbors(u):
                if u < v:
                    yield (u, int(v))

    def edge_array(self) -> np.ndarray:
        """All edges as an ``(m, 2)`` array with ``u < v`` per row."""
        if self.m == 0:
            return np.empty((0, 2), dtype=np.int64)
        src = np.repeat(np.arange(self.n, dtype=np.int64), self.degrees())
        dst = self.indices.astype(np.int64)
        keep = src < dst
        return np.stack([src[keep], dst[keep]], axis=1)

    def max_degree(self) -> int:
        """Maximum degree, 0 for the empty graph."""
        return int(self.degrees().max()) if self.n else 0

    def average_degree(self) -> float:
        """``2m / n`` (0.0 for the empty graph)."""
        return 2.0 * self.m / self.n if self.n else 0.0

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Iterable[int] | np.ndarray) -> tuple["Graph", np.ndarray]:
        """Induced subgraph on ``nodes``.

        Returns ``(H, mapping)`` where ``mapping[i]`` is the original id of
        the subgraph vertex ``i``.  Node order is preserved ascending.
        """
        sel = np.unique(np.asarray(list(nodes), dtype=np.int64))
        if len(sel) and (sel[0] < 0 or sel[-1] >= self.n):
            raise GraphError("subgraph node out of range")
        k = len(sel)
        new_id = np.full(self.n, -1, dtype=np.int64)
        new_id[sel] = np.arange(k)
        # One flat pass over the selected CSR rows: gather every arc of
        # the selected vertices, keep those whose endpoint is selected,
        # and count survivors per row.  new_id is monotone over sel, so
        # the relabelled rows stay sorted.
        starts = self.indptr[sel]
        counts = self.indptr[sel + 1] - starts
        total = int(counts.sum())
        if total:
            shifts = np.concatenate(
                (np.zeros(1, dtype=np.int64), np.cumsum(counts)[:-1])
            )
            arcs = self.indices[
                np.repeat(starts - shifts, counts) + np.arange(total, dtype=np.int64)
            ]
            mapped = new_id[arcs]
            keep = mapped >= 0
            kept_counts = np.bincount(
                np.repeat(np.arange(k), counts)[keep], minlength=k
            )
            flat = mapped[keep].astype(np.int32)
        else:
            kept_counts = np.zeros(k, dtype=np.int64)
            flat = np.empty(0, dtype=np.int32)
        indptr = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(kept_counts)))
        h = Graph(indptr.astype(np.int64), flat, _checked=True)
        return h, sel

    def copy_with_edges_removed(self, edges: Iterable[tuple[int, int]]) -> "Graph":
        """New graph with the given undirected edges deleted."""
        drop = {(min(u, v), max(u, v)) for u, v in edges}
        kept = [e for e in self.edges() if e not in drop]
        from repro.graphs.build import from_edges  # local import to avoid cycle

        return from_edges(self.n, kept)

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Graph(n={self.n}, m={self.m})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self.n == other.n
            and self.m == other.m
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def __hash__(self) -> int:
        return hash((self.n, self.m, self.indices.tobytes()))

    def adjacency_lists(self) -> list[list[int]]:
        """Plain Python adjacency lists (mainly for tests and debugging)."""
        return [self.neighbors(v).tolist() for v in range(self.n)]

    def degree_histogram(self) -> dict[int, int]:
        """Map degree -> count of vertices with that degree."""
        vals, counts = np.unique(self.degrees(), return_counts=True)
        return {int(d): int(c) for d, c in zip(vals, counts, strict=True)}
