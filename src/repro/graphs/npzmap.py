"""Zero-copy memory-mapped access to ``.npz`` members.

``np.load(..., mmap_mode="r")`` silently ignores the mmap request for
zipped ``.npz`` archives and reads members fully into memory.  Real
mapping is still possible because ``np.savez`` stores members
*uncompressed* (``ZIP_STORED``): each ``.npy`` member occupies one
contiguous byte range of the archive, so after locating that range via
the zip directory and parsing the npy header, ``np.memmap`` can map the
raw data in place.  Warm starts then cost page-ins proportional to the
bytes actually touched, not the full artifact size.

Every structural problem — compressed member, truncated data, header
mismatch, bad magic — raises ``ValueError``/``OSError``/``KeyError``,
the same error family :mod:`repro.api.store` already treats as a cache
miss.
"""

from __future__ import annotations

import os
import pathlib
import zipfile

import numpy as np

__all__ = ["mmap_npz"]

_LOCAL_HEADER_LEN = 30  # fixed part of a zip local file header
_LOCAL_MAGIC = b"PK\x03\x04"


def _member_data_range(
    fh, info: zipfile.ZipInfo
) -> tuple[int, int]:
    """``(start, size)`` of a stored member's raw bytes within the file."""
    if info.compress_type != zipfile.ZIP_STORED:
        raise ValueError(f"npz member {info.filename!r} is compressed; cannot mmap")
    if info.compress_size != info.file_size:
        raise ValueError(f"npz member {info.filename!r} has inconsistent sizes")
    fh.seek(info.header_offset)
    header = fh.read(_LOCAL_HEADER_LEN)
    if len(header) != _LOCAL_HEADER_LEN or header[:4] != _LOCAL_MAGIC:
        raise ValueError(f"bad local header for npz member {info.filename!r}")
    name_len = int.from_bytes(header[26:28], "little")
    extra_len = int.from_bytes(header[28:30], "little")
    start = info.header_offset + _LOCAL_HEADER_LEN + name_len + extra_len
    return start, info.file_size


def _map_member(
    path: pathlib.Path, fh, file_size: int, info: zipfile.ZipInfo
) -> np.ndarray:
    start, size = _member_data_range(fh, info)
    if start + size > file_size:
        raise ValueError(f"npz member {info.filename!r} truncated")
    fh.seek(start)
    version = np.lib.format.read_magic(fh)
    if version == (1, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
    elif version == (2, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
    else:
        raise ValueError(f"unsupported npy version {version} in {info.filename!r}")
    if dtype.hasobject:
        raise ValueError(f"npz member {info.filename!r} holds objects; cannot mmap")
    offset = fh.tell()
    expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    # The npy payload must fill the member exactly — a short member means
    # a write was interrupted after the header landed.
    if offset - start + expected != size:
        raise ValueError(f"npz member {info.filename!r} data length mismatch")
    if expected == 0:
        return np.empty(shape, dtype=dtype, order="F" if fortran else "C")
    return np.memmap(
        path,
        dtype=dtype,
        mode="r",
        offset=offset,
        shape=shape,
        order="F" if fortran else "C",
    )


def mmap_npz(path: str | os.PathLike, *names: str) -> tuple[np.ndarray, ...]:
    """Memory-map the named members of an uncompressed ``.npz`` archive.

    Returns one read-only array per name (``np.memmap`` instances;
    empty members come back as ordinary empty arrays).  Raises
    ``KeyError`` for a missing member and ``ValueError``/``OSError``
    for any malformed or truncated archive, so callers with
    miss-on-malformed semantics need no special cases.
    """
    p = pathlib.Path(path)
    file_size = p.stat().st_size
    out: list[np.ndarray] = []
    with zipfile.ZipFile(p) as zf, open(p, "rb") as fh:
        for name in names:
            member = name if name.endswith(".npy") else name + ".npy"
            out.append(_map_member(p, fh, file_size, zf.getinfo(member)))
    return tuple(out)
