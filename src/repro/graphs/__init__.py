"""Graph substrate: CSR graphs, traversal, generators, diagnostics."""

from repro.graphs.graph import Graph
from repro.graphs.build import (
    from_edges,
    from_edges_stream,
    from_adjacency,
    from_networkx,
    to_networkx,
)
from repro.graphs.traversal import (
    bfs_distances,
    bfs_tree,
    multi_source_distances,
    ball,
    closed_neighborhood,
    eccentricity,
    graph_radius,
    shortest_path,
    induced_radius,
)
from repro.graphs.components import connected_components, is_connected, largest_component

__all__ = [
    "Graph",
    "from_edges",
    "from_edges_stream",
    "from_adjacency",
    "from_networkx",
    "to_networkx",
    "bfs_distances",
    "bfs_tree",
    "multi_source_distances",
    "ball",
    "closed_neighborhood",
    "eccentricity",
    "graph_radius",
    "shortest_path",
    "induced_radius",
    "connected_components",
    "is_connected",
    "largest_component",
]
