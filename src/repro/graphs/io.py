"""Graph I/O: plain-text and binary ``.npz`` edge lists.

Text format: optional comment lines (``#``), one header line ``n m``,
then one ``u v`` pair per line.  Round-trips exactly through
:func:`repro.graphs.build.from_edges` normalization.

Binary format (``.npz``): two members, scalar ``n`` and an ``(m, 2)``
int64 ``edges`` array.  Reads stream through
:func:`repro.graphs.build.from_edges_stream` over a memory-mapped
edge array, so million-edge inputs parse without per-edge Python
objects and without reading bytes the chunk loop hasn't reached yet.
Both formats normalize to the same CSR for the same edge set.
"""

from __future__ import annotations

import pathlib
import zipfile

import numpy as np

from repro.errors import GraphError
from repro.graphs.build import from_edges, from_edges_stream
from repro.graphs.graph import Graph
from repro.graphs.npzmap import mmap_npz

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "loads",
    "dumps",
    "write_edge_npz",
    "read_edge_npz",
    "open_edge_npz",
    "iter_edge_chunks",
]

#: Default edges per streaming chunk (~64 MB of int64 pairs).
DEFAULT_CHUNK_EDGES = 1 << 22


def dumps(g: Graph) -> str:
    """Serialize a graph to the edge-list text format."""
    lines = [f"{g.n} {g.m}"]
    lines.extend(f"{u} {v}" for u, v in g.edges())
    return "\n".join(lines) + "\n"


def loads(text: str) -> Graph:
    """Parse the edge-list text format."""
    rows = [
        line.strip()
        for line in text.splitlines()
        if line.strip() and not line.lstrip().startswith("#")
    ]
    if not rows:
        raise GraphError("empty graph file")
    head = rows[0].split()
    if len(head) != 2:
        raise GraphError("header must be 'n m'")
    n, m = int(head[0]), int(head[1])
    edges = []
    for line in rows[1:]:
        parts = line.split()
        if len(parts) != 2:
            raise GraphError(f"bad edge line: {line!r}")
        edges.append((int(parts[0]), int(parts[1])))
    if len(edges) != m:
        raise GraphError(f"header says {m} edges, file has {len(edges)}")
    return from_edges(n, edges)


def write_edge_list(g: Graph, path: str | pathlib.Path) -> None:
    """Write a graph to a file in the edge-list format."""
    pathlib.Path(path).write_text(dumps(g))


def read_edge_list(path: str | pathlib.Path) -> Graph:
    """Read a graph from an edge-list file."""
    return loads(pathlib.Path(path).read_text())


# ----------------------------------------------------------------------
# Binary .npz edge lists
# ----------------------------------------------------------------------

def write_edge_npz(g: Graph, path: str | pathlib.Path) -> None:
    """Write a graph as a binary ``.npz`` edge list (uncompressed).

    Members: scalar ``n`` and the canonical ``(m, 2)`` edge array.
    Uncompressed so :func:`open_edge_npz` can memory-map the edges.
    """
    with open(path, "wb") as fh:
        np.savez(fh, n=np.int64(g.n), edges=g.edge_array())


def open_edge_npz(path: str | pathlib.Path) -> tuple[int, np.ndarray]:
    """``(n, edges)`` from a binary edge list, memory-mapped when possible.

    Falls back to a full read for compressed archives; any malformed or
    truncated file raises :class:`GraphError`.
    """
    p = pathlib.Path(path)
    try:
        n_arr, edges = mmap_npz(p, "n", "edges")
    except (KeyError, OSError, ValueError, zipfile.BadZipFile):
        try:
            with np.load(p) as data:
                n_arr, edges = data["n"], data["edges"]
        except Exception as exc:
            raise GraphError(f"malformed npz edge list {p}: {exc}") from exc
    if n_arr.shape not in ((), (1,)):
        raise GraphError(f"npz edge list {p}: 'n' must be a scalar")
    n = int(n_arr.reshape(())[()] if n_arr.shape == () else n_arr[0])
    if n < 0:
        raise GraphError(f"npz edge list {p}: n must be >= 0")
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise GraphError(f"npz edge list {p}: 'edges' must be (m, 2)")
    return n, edges


def iter_edge_chunks(
    edges: np.ndarray, chunk_edges: int = DEFAULT_CHUNK_EDGES
):
    """Yield ``(k, 2)`` row slices of an edge array, ``chunk_edges`` at a time."""
    if chunk_edges <= 0:
        raise GraphError("chunk_edges must be positive")
    for start in range(0, len(edges), chunk_edges):
        yield edges[start : start + chunk_edges]


def read_edge_npz(
    path: str | pathlib.Path, chunk_edges: int = DEFAULT_CHUNK_EDGES
) -> Graph:
    """Read a graph from a binary ``.npz`` edge list, streaming in chunks."""
    n, edges = open_edge_npz(path)
    return from_edges_stream(n, iter_edge_chunks(edges, chunk_edges))
