"""Plain-text graph I/O.

Format: optional comment lines (``#``), one header line ``n m``, then
one ``u v`` pair per line.  Round-trips exactly through
:func:`repro.graphs.build.from_edges` normalization.
"""

from __future__ import annotations

import pathlib
from repro.errors import GraphError
from repro.graphs.build import from_edges
from repro.graphs.graph import Graph

__all__ = ["write_edge_list", "read_edge_list", "loads", "dumps"]


def dumps(g: Graph) -> str:
    """Serialize a graph to the edge-list text format."""
    lines = [f"{g.n} {g.m}"]
    lines.extend(f"{u} {v}" for u, v in g.edges())
    return "\n".join(lines) + "\n"


def loads(text: str) -> Graph:
    """Parse the edge-list text format."""
    rows = [
        line.strip()
        for line in text.splitlines()
        if line.strip() and not line.lstrip().startswith("#")
    ]
    if not rows:
        raise GraphError("empty graph file")
    head = rows[0].split()
    if len(head) != 2:
        raise GraphError("header must be 'n m'")
    n, m = int(head[0]), int(head[1])
    edges = []
    for line in rows[1:]:
        parts = line.split()
        if len(parts) != 2:
            raise GraphError(f"bad edge line: {line!r}")
        edges.append((int(parts[0]), int(parts[1])))
    if len(edges) != m:
        raise GraphError(f"header says {m} edges, file has {len(edges)}")
    return from_edges(n, edges)


def write_edge_list(g: Graph, path: str | pathlib.Path) -> None:
    """Write a graph to a file in the edge-list format."""
    pathlib.Path(path).write_text(dumps(g))


def read_edge_list(path: str | pathlib.Path) -> Graph:
    """Read a graph from an edge-list file."""
    return loads(pathlib.Path(path).read_text())
