"""Connected components on CSR graphs."""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.traversal import UNREACHED, bfs_distances

__all__ = ["connected_components", "is_connected", "largest_component", "component_count"]


def connected_components(g: Graph) -> np.ndarray:
    """Component label per vertex (labels are 0,1,... in first-seen order)."""
    label = np.full(g.n, -1, dtype=np.int64)
    cur = 0
    for s in range(g.n):
        if label[s] != -1:
            continue
        dist = bfs_distances(g, s)
        label[dist != UNREACHED] = cur
        cur += 1
    return label


def component_count(g: Graph) -> int:
    """Number of connected components (0 for the empty graph)."""
    if g.n == 0:
        return 0
    return int(connected_components(g).max()) + 1


def is_connected(g: Graph) -> bool:
    """True iff the graph has exactly one component (empty graph: True)."""
    return component_count(g) <= 1


def largest_component(g: Graph) -> tuple[Graph, np.ndarray]:
    """Induced subgraph on the largest component; returns ``(H, mapping)``."""
    if g.n == 0:
        return g, np.empty(0, dtype=np.int64)
    label = connected_components(g)
    sizes = np.bincount(label)
    keep = np.flatnonzero(label == int(sizes.argmax()))
    return g.subgraph(keep)
