"""Constructors for :class:`repro.graphs.graph.Graph`.

All constructors normalize input (deduplicate edges, drop self-loops is an
error, sort adjacency) and produce the canonical CSR representation.

Two ingest shapes share one array-space core
(:func:`_csr_from_canonical`): :func:`from_edges` for in-memory edge
arrays and :func:`from_edges_stream` for chunked million-edge inputs
that must never materialize Python per-edge tuples.  Both produce
bit-identical CSRs for the same edge multiset.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph

__all__ = [
    "from_edges",
    "from_edges_stream",
    "from_adjacency",
    "from_networkx",
    "to_networkx",
    "empty_graph",
]


def empty_graph(n: int) -> Graph:
    """Graph with ``n`` vertices and no edges."""
    if n < 0:
        raise GraphError("n must be >= 0")
    return Graph(
        np.zeros(n + 1, dtype=np.int64), np.empty(0, dtype=np.int32), _checked=True
    )


def _canonical_keys(n: int, arr: np.ndarray) -> np.ndarray:
    """Validated, per-call-deduplicated canonical edge keys ``lo * n + hi``.

    ``arr`` is an ``(k, 2)`` int64 endpoint array.  The key encodes the
    undirected edge ``{lo, hi}`` as one int64, so global dedup and
    symmetrization both happen in flat array space.
    """
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphError("edges must be pairs")
    if arr.min() < 0 or arr.max() >= n:
        raise GraphError("edge endpoint out of range")
    if np.any(arr[:, 0] == arr[:, 1]):
        raise GraphError("self-loops are not allowed")
    lo = np.minimum(arr[:, 0], arr[:, 1])
    hi = np.maximum(arr[:, 0], arr[:, 1])
    return np.unique(lo * np.int64(n) + hi)


def _csr_from_canonical(n: int, lo: np.ndarray, hi: np.ndarray) -> Graph:
    """CSR from deduplicated canonical endpoints (``lo < hi`` per edge).

    Symmetrizes and buckets by source with a stable counting sort —
    the single normalization every constructor funnels through, so any
    ingest path yields the same bytes for the same edge set.
    """
    src = np.concatenate([lo, hi])
    dst = np.concatenate([hi, lo])
    order = np.argsort(src * np.int64(n) + dst, kind="stable")
    src, dst = src[order], dst[order]
    counts = np.bincount(src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return Graph(indptr, dst.astype(np.int32), _checked=True)


def from_edges(n: int, edges: Iterable[tuple[int, int]] | np.ndarray) -> Graph:
    """Build a graph on ``n`` vertices from an edge iterable.

    Duplicate edges are merged; self-loops raise :class:`GraphError`.
    """
    arr = np.asarray(
        list(edges) if not isinstance(edges, np.ndarray) else edges, dtype=np.int64
    )
    if arr.size == 0:
        return empty_graph(n)
    key = _canonical_keys(n, arr)
    return _csr_from_canonical(n, key // np.int64(n), key % np.int64(n))


def from_edges_stream(
    n: int, chunks: Iterable[np.ndarray | Sequence[tuple[int, int]]]
) -> Graph:
    """Build a graph from a stream of edge-array chunks.

    Each chunk is an ``(k, 2)`` endpoint array (any integer dtype; a
    sequence of pairs is converted).  Chunks are reduced to canonical
    dedup'd edge keys as they arrive, so peak memory is bounded by the
    *distinct* edge count plus one chunk — no Python adjacency lists or
    per-edge tuples are ever materialized.  Bit-identical to
    ``from_edges(n, concatenated_chunks)``: duplicates (within and
    across chunks) merge, self-loops raise, input order is irrelevant.
    """
    if n < 0:
        raise GraphError("n must be >= 0")
    parts: list[np.ndarray] = []
    for chunk in chunks:
        arr = np.asarray(chunk, dtype=np.int64)
        if arr.size == 0:
            continue
        parts.append(_canonical_keys(n, arr))
    if not parts:
        return empty_graph(n)
    key = parts[0] if len(parts) == 1 else np.unique(np.concatenate(parts))
    return _csr_from_canonical(n, key // np.int64(n), key % np.int64(n))


def from_adjacency(adjacency: Sequence[Iterable[int]]) -> Graph:
    """Build a graph from adjacency lists (must be symmetric)."""
    n = len(adjacency)
    rows = [np.fromiter((int(v) for v in row), dtype=np.int64) for row in adjacency]
    if not rows or all(r.size == 0 for r in rows):
        return empty_graph(n)
    counts = np.array([r.size for r in rows], dtype=np.int64)
    dst = np.concatenate(rows)
    if dst.min() < 0 or dst.max() >= n:
        raise GraphError("edge endpoint out of range")
    src = np.repeat(np.arange(n, dtype=np.int64), counts)
    # Symmetry check in array space: every directed arc (u, v) must have
    # its reverse present.  Dedup'd arc keys are sorted, so the reverse
    # lookup is one searchsorted — no Python set of 2m tuples.
    arcs = np.unique(src * np.int64(n) + dst)
    rev = (arcs % np.int64(n)) * np.int64(n) + arcs // np.int64(n)
    pos = np.searchsorted(arcs, rev)
    pos[pos == arcs.size] = 0
    missing = arcs[arcs[pos] != rev]
    if missing.size:
        u, v = int(missing[0] // n), int(missing[0] % n)
        raise GraphError(f"adjacency not symmetric: ({u},{v}) missing reverse")
    return from_edges(n, np.stack([src, dst], axis=1))


def from_networkx(nxg) -> tuple[Graph, list]:
    """Convert a networkx graph; returns ``(graph, node_list)``.

    ``node_list[i]`` is the original networkx node for vertex ``i``.
    """
    nodes = list(nxg.nodes())
    index = {u: i for i, u in enumerate(nodes)}
    edges = [(index[u], index[v]) for u, v in nxg.edges() if u != v]
    return from_edges(len(nodes), edges), nodes


def to_networkx(g: Graph):
    """Convert to a :class:`networkx.Graph` on nodes ``0..n-1``."""
    import networkx as nx

    nxg = nx.Graph()
    nxg.add_nodes_from(range(g.n))
    nxg.add_edges_from(g.edges())
    return nxg
