"""Constructors for :class:`repro.graphs.graph.Graph`.

All constructors normalize input (deduplicate edges, drop self-loops is an
error, sort adjacency) and produce the canonical CSR representation.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph

__all__ = ["from_edges", "from_adjacency", "from_networkx", "to_networkx", "empty_graph"]


def empty_graph(n: int) -> Graph:
    """Graph with ``n`` vertices and no edges."""
    if n < 0:
        raise GraphError("n must be >= 0")
    return Graph(
        np.zeros(n + 1, dtype=np.int64), np.empty(0, dtype=np.int32), _checked=True
    )


def from_edges(n: int, edges: Iterable[tuple[int, int]] | np.ndarray) -> Graph:
    """Build a graph on ``n`` vertices from an edge iterable.

    Duplicate edges are merged; self-loops raise :class:`GraphError`.
    """
    arr = np.asarray(
        list(edges) if not isinstance(edges, np.ndarray) else edges, dtype=np.int64
    )
    if arr.size == 0:
        return empty_graph(n)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphError("edges must be pairs")
    if arr.min() < 0 or arr.max() >= n:
        raise GraphError("edge endpoint out of range")
    if np.any(arr[:, 0] == arr[:, 1]):
        raise GraphError("self-loops are not allowed")
    lo = np.minimum(arr[:, 0], arr[:, 1])
    hi = np.maximum(arr[:, 0], arr[:, 1])
    key = lo * np.int64(n) + hi
    _, first = np.unique(key, return_index=True)
    lo, hi = lo[first], hi[first]
    # Symmetrize, then bucket by source with a stable counting sort.
    src = np.concatenate([lo, hi])
    dst = np.concatenate([hi, lo])
    order = np.argsort(src * np.int64(n) + dst, kind="stable")
    src, dst = src[order], dst[order]
    counts = np.bincount(src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return Graph(indptr, dst.astype(np.int32), _checked=True)


def from_adjacency(adjacency: Sequence[Iterable[int]]) -> Graph:
    """Build a graph from adjacency lists (must be symmetric)."""
    n = len(adjacency)
    edges = []
    for u, row in enumerate(adjacency):
        for v in row:
            edges.append((u, int(v)))
    g = from_edges(n, edges)
    # Symmetry check: every directed entry must have appeared both ways.
    total = sum(len(list(row)) for row in (list(r) for r in adjacency))
    if total != 2 * g.m:
        # Re-walk to produce a precise error.
        seen = {(u, int(v)) for u, row in enumerate(adjacency) for v in row}
        for u, v in seen:
            if (v, u) not in seen:
                raise GraphError(f"adjacency not symmetric: ({u},{v}) missing reverse")
    return g


def from_networkx(nxg) -> tuple[Graph, list]:
    """Convert a networkx graph; returns ``(graph, node_list)``.

    ``node_list[i]`` is the original networkx node for vertex ``i``.
    """
    nodes = list(nxg.nodes())
    index = {u: i for i, u in enumerate(nodes)}
    edges = [(index[u], index[v]) for u, v in nxg.edges() if u != v]
    return from_edges(len(nodes), edges), nodes


def to_networkx(g: Graph):
    """Convert to a :class:`networkx.Graph` on nodes ``0..n-1``."""
    import networkx as nx

    nxg = nx.Graph()
    nxg.add_nodes_from(range(g.n))
    nxg.add_edges_from(g.edges())
    return nxg
