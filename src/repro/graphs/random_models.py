"""Random graph models that a.a.s. have bounded expansion.

The paper cites [19] (Demaine et al.): Chung–Lu and configuration-model
graphs with suitable degree sequences have bounded expansion a.a.s.;
random geometric graphs at bounded density and Delaunay triangulations
are geometric bounded-expansion families [47, 27].  These models stand in
for "real-world sparse network" workloads.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graphs.build import from_edges
from repro.graphs.graph import Graph

__all__ = [
    "random_tree",
    "delaunay_graph",
    "random_geometric",
    "chung_lu",
    "configuration_model",
    "gnm_random",
    "random_planar_subgraph",
]


def random_tree(n: int, seed: int = 0) -> Graph:
    """Uniform random labelled tree via a random Prüfer-like attachment."""
    if n < 1:
        raise GraphError("tree needs n >= 1")
    rng = np.random.default_rng(seed)
    edges = [(int(rng.integers(v)), v) for v in range(1, n)]
    return from_edges(n, edges)


def _unique_points(rng: np.random.Generator, n: int) -> np.ndarray:
    pts = rng.random((n, 2))
    # scipy's Delaunay dislikes exact duplicates; nudge them deterministically.
    _, first = np.unique(pts.round(12), axis=0, return_index=True)
    while len(first) < n:  # pragma: no cover - probability ~0
        pts = rng.random((n, 2))
        _, first = np.unique(pts.round(12), axis=0, return_index=True)
    return pts


def delaunay_graph(n: int, seed: int = 0) -> tuple[Graph, np.ndarray]:
    """Delaunay triangulation of ``n`` uniform random points (planar).

    Returns ``(graph, points)``; points are useful for geometric examples.
    """
    if n < 3:
        raise GraphError("Delaunay needs n >= 3")
    from scipy.spatial import Delaunay

    rng = np.random.default_rng(seed)
    pts = _unique_points(rng, n)
    tri = Delaunay(pts)
    edges = set()
    for simplex in tri.simplices:
        a, b, c = (int(x) for x in simplex)
        edges.update({(a, b), (b, c), (a, c)})
    return from_edges(n, list(edges)), pts


def random_geometric(n: int, radius: float | None = None, seed: int = 0) -> tuple[Graph, np.ndarray]:
    """Random geometric (unit-disk style) graph at bounded expected density.

    Default radius ``sqrt(2.0 / n)`` keeps expected average degree constant
    (~2*pi), which is the bounded-expansion regime for geometric graphs.
    """
    if n < 1:
        raise GraphError("geometric graph needs n >= 1")
    from scipy.spatial import cKDTree

    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2))
    r = float(radius) if radius is not None else float(np.sqrt(2.0 / n))
    tree = cKDTree(pts)
    pairs = tree.query_pairs(r, output_type="ndarray")
    return from_edges(n, pairs), pts


def chung_lu(weights: np.ndarray, seed: int = 0) -> Graph:
    """Chung–Lu model: edge {u,v} with prob min(1, w_u w_v / sum w).

    With a bounded-ish weight sequence this family has bounded expansion
    a.a.s. [19].  Implemented exactly (O(n^2) pair sweep) for n up to a few
    thousand, which is all the benchmarks need.
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1 or len(w) == 0 or np.any(w < 0):
        raise GraphError("weights must be a nonnegative 1-d array")
    n = len(w)
    total = float(w.sum())
    if total <= 0:
        return from_edges(n, [])
    rng = np.random.default_rng(seed)
    # Vectorized upper-triangle Bernoulli draws, chunked by row.
    edges = []
    for u in range(n - 1):
        p = np.minimum(1.0, w[u] * w[u + 1 :] / total)
        hits = np.flatnonzero(rng.random(n - 1 - u) < p)
        for h in hits:
            edges.append((u, u + 1 + int(h)))
    return from_edges(n, edges)


def power_law_weights(n: int, exponent: float = 2.8, w_min: float = 1.0, w_max: float | None = None, seed: int = 0) -> np.ndarray:
    """Discrete power-law weight sequence for :func:`chung_lu`."""
    rng = np.random.default_rng(seed)
    if w_max is None:
        w_max = float(np.sqrt(n))
    u = rng.random(n)
    a = 1.0 - exponent
    w = (w_min**a + u * (w_max**a - w_min**a)) ** (1.0 / a)
    return w


def configuration_model(degrees: np.ndarray, seed: int = 0) -> Graph:
    """Configuration model (simple-graph projection: drop loops/multi-edges).

    The degree sequence must have even sum.  The projection to a simple
    graph is the standard practice and preserves bounded expansion a.a.s.
    for bounded-degree-moment sequences [19, 41].
    """
    deg = np.asarray(degrees, dtype=np.int64)
    if deg.ndim != 1 or np.any(deg < 0):
        raise GraphError("degrees must be nonnegative")
    if int(deg.sum()) % 2 != 0:
        raise GraphError("degree sum must be even")
    rng = np.random.default_rng(seed)
    stubs = np.repeat(np.arange(len(deg)), deg)
    rng.shuffle(stubs)
    pairs = stubs.reshape(-1, 2)
    keep = pairs[:, 0] != pairs[:, 1]
    return from_edges(len(deg), pairs[keep])


def gnm_random(n: int, m: int, seed: int = 0) -> Graph:
    """G(n, m) uniform random graph — sparse regime only is bounded expansion-ish.

    Used as a 'no structure' control workload.
    """
    if m < 0 or m > n * (n - 1) // 2:
        raise GraphError("m out of range")
    rng = np.random.default_rng(seed)
    seen: set[tuple[int, int]] = set()
    while len(seen) < m:
        u = int(rng.integers(n))
        v = int(rng.integers(n))
        if u == v:
            continue
        seen.add((min(u, v), max(u, v)))
    return from_edges(n, list(seen))


def random_planar_subgraph(n: int, keep_fraction: float = 0.7, seed: int = 0) -> Graph:
    """Random subgraph of a Delaunay triangulation (planar, irregular)."""
    if not 0.0 <= keep_fraction <= 1.0:
        raise GraphError("keep_fraction must be in [0, 1]")
    g, _ = delaunay_graph(n, seed=seed)
    rng = np.random.default_rng(seed + 1)
    edges = [e for e in g.edges() if rng.random() < keep_fraction]
    return from_edges(n, edges)
