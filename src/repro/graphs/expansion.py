"""Bounded-expansion diagnostics.

A class has bounded expansion iff depth-r minors have bounded average
degree (equivalently: bounded ``wcol_r``, Theorem 1/Zhu).  Verifying
bounded expansion exactly is not tractable, but two measurable proxies
are standard and are what the experiments report:

* degeneracy / arboricity (depth-0 expansion),
* the *shallow-minor density estimate*: contract disjoint radius-r balls
  around randomly chosen centers and measure the quotient's average
  degree.  On a bounded expansion class this stays bounded as n grows;
  on e.g. subdivided cliques it blows up once r reaches the subdivision
  length — exactly the separation the definition describes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.operations import contract_partition

__all__ = [
    "degeneracy",
    "degeneracy_orientation_bound",
    "arboricity_lower_bound",
    "shallow_minor_density",
    "is_valid_minor_model",
]


def degeneracy(g: Graph) -> int:
    """Exact degeneracy via smallest-last peeling (linear time)."""
    from repro.orders.degeneracy import degeneracy_order

    _, degen = degeneracy_order(g)
    return degen


def degeneracy_orientation_bound(g: Graph) -> int:
    """Upper bound on arboricity: degeneracy (every d-degenerate graph has arboricity <= d)."""
    return max(1, degeneracy(g)) if g.m else 0


def arboricity_lower_bound(g: Graph) -> float:
    """Nash-Williams style lower bound ``m / (n - 1)`` on arboricity."""
    if g.n <= 1:
        return 0.0
    return g.m / (g.n - 1)


def _greedy_ball_partition(g: Graph, radius: int, seed: int) -> np.ndarray:
    """Partition V into branch sets of radius <= ``radius``.

    Greedy: repeatedly pick an unassigned center (random order), grab its
    unassigned r-ball as one branch set.  Leftover singletons form their
    own sets.  Every class induces a connected subgraph of radius <= r,
    hence the quotient is a depth-r minor.
    """
    rng = np.random.default_rng(seed)
    labels = np.full(g.n, -1, dtype=np.int64)
    order = rng.permutation(g.n)
    cur = 0
    for c in order:
        if labels[c] != -1:
            continue
        # Truncated BFS from c restricted to unassigned vertices.
        labels[c] = cur
        frontier = [int(c)]
        d = 0
        while frontier and d < radius:
            nxt = []
            for v in frontier:
                for u in g.neighbors(v):
                    u = int(u)
                    if labels[u] == -1:
                        labels[u] = cur
                        nxt.append(u)
            frontier = nxt
            d += 1
        cur += 1
    return labels


def shallow_minor_density(g: Graph, radius: int, trials: int = 3, seed: int = 0) -> float:
    """Estimated max average degree over sampled depth-``radius`` minors.

    This is a *lower* bound on the true grad (greatest reduced average
    density): the true supremum ranges over all depth-r minor models; we
    sample ball partitions.  On bounded expansion inputs the estimate
    stays flat as n grows (experiment T7 companion).
    """
    if radius < 0:
        raise GraphError("radius must be >= 0")
    if g.n == 0:
        return 0.0
    best = g.average_degree()
    for t in range(trials):
        labels = _greedy_ball_partition(g, radius, seed + t)
        minor = contract_partition(g, labels)
        best = max(best, minor.average_degree())
    return best


def is_valid_minor_model(g: Graph, labels: np.ndarray, radius: int | None = None) -> bool:
    """Check that each label class induces a connected subgraph (and radius).

    ``labels`` may contain -1 for vertices not in any branch set.
    """
    lab = np.asarray(labels, dtype=np.int64)
    if lab.shape != (g.n,):
        raise GraphError("labels must have one entry per vertex")
    classes = [int(c) for c in np.unique(lab) if c >= 0]
    for c in classes:
        members = np.flatnonzero(lab == c)
        sub, _ = g.subgraph(members)
        from repro.graphs.components import is_connected

        if not is_connected(sub):
            return False
        if radius is not None and sub.n:
            from repro.graphs.traversal import graph_radius

            if graph_radius(sub) > radius:
                return False
    return True
