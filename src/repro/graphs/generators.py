"""Deterministic graph families with bounded expansion.

Every generator here produces a family that (provably or by construction)
has bounded expansion; planarity is noted per generator.  These are the
workloads behind the T1–T8 experiments.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graphs.build import from_edges
from repro.graphs.graph import Graph

__all__ = [
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "complete_bipartite",
    "grid_2d",
    "torus_2d",
    "triangular_grid",
    "king_graph",
    "hex_grid",
    "balanced_tree",
    "caterpillar",
    "k_tree",
    "maximal_outerplanar",
    "subdivide",
]


def path_graph(n: int) -> Graph:
    """Path on ``n`` vertices (planar, degeneracy 1)."""
    return from_edges(n, [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> Graph:
    """Cycle on ``n >= 3`` vertices (planar, degeneracy 2)."""
    if n < 3:
        raise GraphError("cycle needs n >= 3")
    return from_edges(n, [(i, (i + 1) % n) for i in range(n)])


def star_graph(n: int) -> Graph:
    """Star with one center and ``n - 1`` leaves."""
    if n < 1:
        raise GraphError("star needs n >= 1")
    return from_edges(n, [(0, i) for i in range(1, n)])


def complete_graph(n: int) -> Graph:
    """K_n — *not* bounded expansion as a family; used as a stress/negative case."""
    return from_edges(n, [(i, j) for i in range(n) for j in range(i + 1, n)])


def complete_bipartite(a: int, b: int) -> Graph:
    """K_{a,b} on vertices 0..a-1 and a..a+b-1."""
    return from_edges(a + b, [(i, a + j) for i in range(a) for j in range(b)])


def _grid_id(rows: int, cols: int):
    def vid(i: int, j: int) -> int:
        return i * cols + j

    return vid


def grid_2d(rows: int, cols: int) -> Graph:
    """rows x cols king-free grid (planar, max degree 4)."""
    if rows < 1 or cols < 1:
        raise GraphError("grid needs positive dimensions")
    vid = _grid_id(rows, cols)
    edges = []
    for i in range(rows):
        for j in range(cols):
            if j + 1 < cols:
                edges.append((vid(i, j), vid(i, j + 1)))
            if i + 1 < rows:
                edges.append((vid(i, j), vid(i + 1, j)))
    return from_edges(rows * cols, edges)


def torus_2d(rows: int, cols: int) -> Graph:
    """Toroidal grid (bounded expansion, NOT planar for rows,cols >= 3)."""
    if rows < 3 or cols < 3:
        raise GraphError("torus needs rows, cols >= 3")
    vid = _grid_id(rows, cols)
    edges = []
    for i in range(rows):
        for j in range(cols):
            edges.append((vid(i, j), vid(i, (j + 1) % cols)))
            edges.append((vid(i, j), vid((i + 1) % rows, j)))
    return from_edges(rows * cols, edges)


def triangular_grid(rows: int, cols: int) -> Graph:
    """Grid plus one diagonal per cell (planar triangulated grid, max degree 6)."""
    vid = _grid_id(rows, cols)
    edges = []
    for i in range(rows):
        for j in range(cols):
            if j + 1 < cols:
                edges.append((vid(i, j), vid(i, j + 1)))
            if i + 1 < rows:
                edges.append((vid(i, j), vid(i + 1, j)))
            if i + 1 < rows and j + 1 < cols:
                edges.append((vid(i, j), vid(i + 1, j + 1)))
    return from_edges(rows * cols, edges)


def king_graph(rows: int, cols: int) -> Graph:
    """King-move grid (bounded expansion geometric family, NOT planar)."""
    vid = _grid_id(rows, cols)
    edges = []
    for i in range(rows):
        for j in range(cols):
            for di, dj in ((0, 1), (1, 0), (1, 1), (1, -1)):
                a, b = i + di, j + dj
                if 0 <= a < rows and 0 <= b < cols:
                    edges.append((vid(i, j), vid(a, b)))
    return from_edges(rows * cols, edges)


def hex_grid(rows: int, cols: int) -> Graph:
    """Hexagonal (brick-wall) lattice patch (planar, max degree 3)."""
    vid = _grid_id(rows, cols)
    edges = []
    for i in range(rows):
        for j in range(cols):
            if j + 1 < cols:
                edges.append((vid(i, j), vid(i, j + 1)))
            # vertical edges only where (i + j) is even -> degree <= 3
            if i + 1 < rows and (i + j) % 2 == 0:
                edges.append((vid(i, j), vid(i + 1, j)))
    return from_edges(rows * cols, edges)


def balanced_tree(branching: int, height: int) -> Graph:
    """Complete ``branching``-ary tree of the given height (planar)."""
    if branching < 1 or height < 0:
        raise GraphError("branching >= 1 and height >= 0 required")
    edges = []
    total = 1
    level = [0]
    next_id = 1
    for _ in range(height):
        nxt = []
        for p in level:
            for _ in range(branching):
                edges.append((p, next_id))
                nxt.append(next_id)
                next_id += 1
        level = nxt
        total = next_id
    return from_edges(total, edges)


def caterpillar(spine: int, legs: int) -> Graph:
    """Path of length ``spine`` with ``legs`` pendant leaves per spine vertex."""
    if spine < 1 or legs < 0:
        raise GraphError("spine >= 1 and legs >= 0 required")
    edges = [(i, i + 1) for i in range(spine - 1)]
    nid = spine
    for i in range(spine):
        for _ in range(legs):
            edges.append((i, nid))
            nid += 1
    return from_edges(nid, edges)


def k_tree(n: int, k: int, seed: int = 0) -> Graph:
    """Random k-tree on ``n`` vertices (treewidth exactly k, bounded expansion).

    Starts from K_{k+1}; each new vertex attaches to a random existing
    k-clique.  Deterministic given ``seed``.
    """
    if n < k + 1:
        raise GraphError("k-tree needs n >= k + 1")
    rng = np.random.default_rng(seed)
    cliques = [tuple(range(k + 1))] if k >= 0 else []
    edges = [(i, j) for i in range(k + 1) for j in range(i + 1, k + 1)]
    # Track all k-subsets of the initial clique as attachable faces.
    faces: list[tuple[int, ...]] = []
    base = tuple(range(k + 1))
    for skip in range(k + 1):
        faces.append(tuple(x for x in base if x != base[skip]))
    for v in range(k + 1, n):
        face = faces[int(rng.integers(len(faces)))]
        for u in face:
            edges.append((u, v))
        for skip in range(k):
            new_face = tuple(x for x in face if x != face[skip]) + (v,)
            faces.append(new_face)
        faces.append(face)  # face stays attachable
        cliques.append(face + (v,))
    return from_edges(n, edges)


def maximal_outerplanar(n: int, seed: int = 0) -> Graph:
    """Maximal outerplanar graph: cycle 0..n-1 plus a random fan triangulation.

    Outerplanar graphs are planar with treewidth <= 2.
    """
    if n < 3:
        raise GraphError("outerplanar triangulation needs n >= 3")
    rng = np.random.default_rng(seed)
    edges = [(i, (i + 1) % n) for i in range(n)]

    def triangulate(lo: int, hi: int) -> None:
        # Triangulate the polygon arc lo..hi (indices along the outer cycle)
        # by picking a random ear apex and recursing on both sides.
        if hi - lo < 2:
            return
        mid = int(rng.integers(lo + 1, hi))
        if mid - lo >= 2:
            edges.append((lo, mid))
        if hi - mid >= 2:
            edges.append((mid, hi))
        triangulate(lo, mid)
        triangulate(mid, hi)

    triangulate(0, n - 1)
    return from_edges(n, edges)


def subdivide(g: Graph, times: int = 1) -> Graph:
    """Replace each edge by a path with ``times`` internal vertices.

    The ``times``-subdivision is the operation in the definition of
    bounded expansion: a class has bounded expansion iff graphs whose
    r-subdivisions appear in the class have bounded average degree.
    """
    if times < 0:
        raise GraphError("times must be >= 0")
    if times == 0:
        return g
    edges = []
    next_id = g.n
    for u, v in g.edges():
        prev = u
        for _ in range(times):
            edges.append((prev, next_id))
            prev = next_id
            next_id += 1
        edges.append((prev, v))
    return from_edges(next_id, edges)
