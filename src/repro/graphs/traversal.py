"""Breadth-first traversal primitives on CSR graphs.

These are the hot paths of the whole library (every WReach computation,
cover validation and dominating-set check reduces to truncated BFS), so
they work on flat numpy arrays with a frontier loop instead of per-node
Python containers.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph

__all__ = [
    "UNREACHED",
    "bfs_distances",
    "bfs_tree",
    "multi_source_distances",
    "ball",
    "closed_neighborhood",
    "eccentricity",
    "graph_radius",
    "induced_radius",
    "shortest_path",
]

#: Sentinel distance for unreachable vertices.
UNREACHED = -1


def _check_vertex(g: Graph, v: int) -> None:
    if not (0 <= v < g.n):
        raise GraphError(f"vertex {v} out of range for n={g.n}")


def bfs_distances(g: Graph, source: int, max_dist: int | None = None) -> np.ndarray:
    """Distances from ``source``; ``UNREACHED`` beyond ``max_dist`` or cut off."""
    _check_vertex(g, source)
    dist = np.full(g.n, UNREACHED, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    d = 0
    indptr, indices = g.indptr, g.indices
    while len(frontier):
        if max_dist is not None and d >= max_dist:
            break
        nxt: list[np.ndarray] = []
        for v in frontier:
            nxt.append(indices[indptr[v] : indptr[v + 1]])
        if not nxt:
            break
        cand = np.concatenate(nxt)
        cand = cand[dist[cand] == UNREACHED]
        if len(cand) == 0:
            break
        cand = np.unique(cand)
        d += 1
        dist[cand] = d
        frontier = cand
    return dist


def bfs_tree(g: Graph, source: int, max_dist: int | None = None) -> np.ndarray:
    """BFS parent array; ``parent[source] = source``, unreachable = -1.

    Ties are broken toward the smallest-id parent, so the tree (and every
    path read off it) is deterministic.
    """
    _check_vertex(g, source)
    parent = np.full(g.n, -1, dtype=np.int64)
    parent[source] = source
    frontier = [source]
    d = 0
    while frontier:
        if max_dist is not None and d >= max_dist:
            break
        nxt = []
        for v in frontier:  # frontier kept sorted -> smallest-id parent wins
            for u in g.neighbors(v):
                u = int(u)
                if parent[u] == -1:
                    parent[u] = v
                    nxt.append(u)
        frontier = sorted(nxt)
        d += 1
    return parent


def multi_source_distances(
    g: Graph, sources: Iterable[int], max_dist: int | None = None
) -> np.ndarray:
    """Distances to the nearest of ``sources`` (simultaneous BFS)."""
    dist = np.full(g.n, UNREACHED, dtype=np.int64)
    src = np.unique(np.asarray(list(sources), dtype=np.int64))
    if len(src) == 0:
        return dist
    if src[0] < 0 or src[-1] >= g.n:
        raise GraphError("source out of range")
    dist[src] = 0
    frontier = src
    d = 0
    indptr, indices = g.indptr, g.indices
    while len(frontier):
        if max_dist is not None and d >= max_dist:
            break
        nxt = [indices[indptr[v] : indptr[v + 1]] for v in frontier]
        cand = np.concatenate(nxt) if nxt else np.empty(0, dtype=np.int32)
        cand = cand[dist[cand] == UNREACHED]
        if len(cand) == 0:
            break
        cand = np.unique(cand)
        d += 1
        dist[cand] = d
        frontier = cand
    return dist


def ball(g: Graph, v: int, radius: int) -> np.ndarray:
    """Sorted array of vertices within distance ``radius`` of ``v`` (incl. v)."""
    dist = bfs_distances(g, v, max_dist=radius)
    return np.flatnonzero(dist != UNREACHED)


def closed_neighborhood(g: Graph, v: int) -> np.ndarray:
    """``N[v]`` as a sorted array (neighbors plus ``v`` itself)."""
    return np.union1d(g.neighbors(v), [v])


def eccentricity(g: Graph, v: int) -> int:
    """Maximum distance from ``v`` to any reachable vertex."""
    dist = bfs_distances(g, v)
    reach = dist[dist != UNREACHED]
    return int(reach.max())


def graph_radius(g: Graph) -> int:
    """Exact radius (min eccentricity); graph must be connected and nonempty."""
    from repro.graphs.components import is_connected

    if g.n == 0:
        raise GraphError("radius of empty graph undefined")
    if not is_connected(g):
        raise GraphError("radius undefined for disconnected graph")
    return min(eccentricity(g, v) for v in range(g.n))


def induced_radius(g: Graph, cluster: Iterable[int]) -> int:
    """Radius of the induced subgraph ``G[cluster]``.

    Raises :class:`GraphError` if the induced subgraph is disconnected —
    the neighborhood-cover validity checks rely on this behaviour.
    """
    sub, _ = g.subgraph(cluster)
    return graph_radius(sub)


def shortest_path(g: Graph, u: int, v: int, max_dist: int | None = None) -> list[int] | None:
    """A shortest ``u``–``v`` path as a vertex list, or None if none exists.

    Deterministic: follows the smallest-id BFS tree from ``u``.
    """
    _check_vertex(g, v)
    parent = bfs_tree(g, u, max_dist=max_dist)
    if parent[v] == -1 and v != u:
        return None
    path = [v]
    while path[-1] != u:
        path.append(int(parent[path[-1]]))
    path.reverse()
    return path
