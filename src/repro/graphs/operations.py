"""Graph surgery: unions, relabelings, contractions.

Contractions of connected vertex sets are how shallow (depth-r) minors are
formed; they power the bounded-expansion diagnostics in
:mod:`repro.graphs.expansion` and the minor construction of Lemma 15.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import GraphError
from repro.graphs.build import from_edges
from repro.graphs.graph import Graph

__all__ = ["disjoint_union", "relabel", "contract_partition", "remove_vertices", "add_edges"]


def disjoint_union(graphs: Sequence[Graph]) -> Graph:
    """Disjoint union; vertex ids of graph ``i`` are shifted by the prefix sum."""
    offset = 0
    edges: list[tuple[int, int]] = []
    for g in graphs:
        edges.extend((u + offset, v + offset) for u, v in g.edges())
        offset += g.n
    return from_edges(offset, edges)


def relabel(g: Graph, mapping: np.ndarray) -> Graph:
    """Relabel vertices; ``mapping`` must be a permutation of ``0..n-1``."""
    perm = np.asarray(mapping, dtype=np.int64)
    if perm.shape != (g.n,) or not np.array_equal(np.sort(perm), np.arange(g.n)):
        raise GraphError("mapping must be a permutation of 0..n-1")
    return from_edges(g.n, [(int(perm[u]), int(perm[v])) for u, v in g.edges()])


def contract_partition(g: Graph, labels: np.ndarray) -> Graph:
    """Contract each label class to a single vertex (minor quotient graph).

    ``labels[v]`` in ``0..k-1`` assigns each vertex to a branch set; the
    result has ``k`` vertices and an edge between classes that are joined
    by at least one original edge.  Self-loops (intra-class edges) vanish.
    No connectivity check is performed here; callers building *minors*
    should verify each class induces a connected subgraph
    (see :func:`repro.graphs.expansion.is_valid_minor_model`).
    """
    lab = np.asarray(labels, dtype=np.int64)
    if lab.shape != (g.n,):
        raise GraphError("labels must have one entry per vertex")
    if g.n == 0:
        return from_edges(0, [])
    k = int(lab.max()) + 1
    if lab.min() < 0:
        raise GraphError("labels must be nonnegative")
    edges = set()
    for u, v in g.edges():
        a, b = int(lab[u]), int(lab[v])
        if a != b:
            edges.add((min(a, b), max(a, b)))
    return from_edges(k, list(edges))


def remove_vertices(g: Graph, drop: Iterable[int]) -> tuple[Graph, np.ndarray]:
    """Delete vertices; returns ``(H, mapping)`` like :meth:`Graph.subgraph`."""
    dropset = set(int(v) for v in drop)
    keep = [v for v in range(g.n) if v not in dropset]
    return g.subgraph(keep)


def add_edges(g: Graph, new_edges: Iterable[tuple[int, int]]) -> Graph:
    """Return ``g`` plus the given edges (duplicates are fine)."""
    edges = list(g.edges()) + [(int(u), int(v)) for u, v in new_edges]
    return from_edges(g.n, edges)
