"""repro — Distributed Domination on Graph Classes of Bounded Expansion.

A full reproduction of Amiri, Ossona de Mendez, Rabinovich, Siebertz
(SPAA 2018): sequential and distributed constant-factor approximation of
(connected) distance-r dominating sets on bounded expansion classes,
including the weak-coloring-order machinery, sparse neighborhood covers,
a synchronous LOCAL/CONGEST/CONGEST_BC simulator, and per-instance
approximation certificates.

Quickstart::

    from repro import generators, solve, list_solvers
    g = generators.grid_2d(32, 32)
    res = solve(g, radius=2, algorithm="seq.wreach",
                certify=True, with_lp=True)
    print(res.size, res.certificate.certified_ratio)
    print([info.name for info in list_solvers()])

Every algorithm (sequential Theorem 5, baselines, CONGEST_BC and LOCAL
pipelines) is reachable through :func:`repro.api.solve` /
:func:`repro.api.solve_batch`; the legacy ``*_pipeline`` functions
remain as deprecation shims routed through the same registry.  See
README.md for the architecture overview and the full solver table.
"""

from repro import graphs
from repro.graphs import generators, random_models
from repro.api import (
    ArtifactStore,
    GraphHandle,
    PrecomputeCache,
    SolveRequest,
    SolveResult,
    Workspace,
    list_solvers,
    register_solver,
    solve,
    solve_batch,
)
# Deprecation shims (pre-registry entry points), kept for compatibility.
from repro.pipelines import (
    congest_bc_pipeline,
    planar_cds_pipeline,
    sequential_pipeline,
    unified_bc_pipeline,
    make_order,
)
from repro.core import (
    domset_sequential,
    domset_by_wreach,
    domset_dvorak,
    domset_greedy,
    build_cover,
    connect_via_wreach,
    connect_via_minor,
    certify_run,
    exact_domset,
    lp_lower_bound,
    prune_dominating_set,
)
from repro.orders import (
    LinearOrder,
    WReachCSR,
    degeneracy_order,
    fraternal_augmentation_order,
    wreach_csr,
    wreach_sets,
    wcol_of_order,
)
from repro.analysis import (
    is_distance_r_dominating_set,
    is_connected_distance_r_dominating_set,
)

__version__ = "1.0.0"

__all__ = [
    "graphs",
    "generators",
    "random_models",
    "solve",
    "solve_batch",
    "list_solvers",
    "register_solver",
    "SolveRequest",
    "SolveResult",
    "GraphHandle",
    "PrecomputeCache",
    "ArtifactStore",
    "Workspace",
    "sequential_pipeline",
    "congest_bc_pipeline",
    "planar_cds_pipeline",
    "unified_bc_pipeline",
    "make_order",
    "domset_sequential",
    "domset_by_wreach",
    "domset_dvorak",
    "domset_greedy",
    "build_cover",
    "connect_via_wreach",
    "connect_via_minor",
    "certify_run",
    "exact_domset",
    "lp_lower_bound",
    "prune_dominating_set",
    "LinearOrder",
    "WReachCSR",
    "degeneracy_order",
    "fraternal_augmentation_order",
    "wreach_csr",
    "wreach_sets",
    "wcol_of_order",
    "is_distance_r_dominating_set",
    "is_connected_distance_r_dominating_set",
    "__version__",
]
