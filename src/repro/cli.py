"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``info <graph>``
    Structural summary: n, m, degeneracy, measured wcol_r, shallow-minor
    density estimates.
``solve <graph> -a ALGO -r R``
    Run any registered solver through the unified API (``--connect``,
    ``--prune``, ``--certify``, ``--lp``, ``--order``, ``--seed``,
    ``--param k=v``; ``--store DIR`` reads/writes precompute artifacts
    through a persistent workspace store).
``list-solvers``
    The solver registry: names, models, radius ranges, engines,
    guarantees.
``warm <graph> --store DIR -r R``
    Precompute and persist a graph's Theorem-5 artifacts (order,
    rank-CSR, WReach CSR at r and 2r, wcol) so later ``solve --store``
    runs — in any process — recompute nothing.
``workspace info --store DIR``
    Inspect a store: persisted graphs and per-category artifact counts
    and sizes.
``domset <graph> -r R``
    Theorem 5 dominating set with certificate (optionally ``--connect``,
    ``--prune``, ``--exact`` for small inputs).  Thin wrapper over
    ``solve -a seq.wreach``.
``distributed <graph> -r R``
    Theorem 9/10 CONGEST_BC pipeline with round/traffic accounting
    (``--order-mode h_partition|augmented``, ``--unified`` for the
    single-execution protocol).  Thin wrapper over ``solve -a
    dist.congest`` / ``dist.congest-unified``.
``generate <family> <args...> -o file``
    Write a named workload or generator output to an edge-list file.
``calibrate-engine [--quick] [-r R] [-o FILE]``
    Time both simulator engines on an instance ladder and write the
    measured cost model behind ``engine="auto"`` (the committed
    ``repro/api/engine_model.json`` by default).
``lint [paths...]``
    Static model-conformance / determinism / registry-discipline
    checker (``repro lint --list-rules``; see README "Static
    analysis").  Thin wrapper over ``python -m repro.lint``.

Graphs are edge-list files (see :mod:`repro.graphs.io`): plain text by
default, or the binary ``.npz`` format (suffix-dispatched everywhere a
command reads or writes a graph) whose reads stream through the chunked
CSR builder — the shape to use at 10^6+ vertices.
"""

from __future__ import annotations

import argparse
import sys

from repro.graphs.io import (
    read_edge_list,
    read_edge_npz,
    write_edge_list,
    write_edge_npz,
)

__all__ = ["main", "build_parser"]


def _load_graph(path):
    """Load a graph, dispatching on suffix: ``.npz`` binary, else text.

    The binary path streams through ``from_edges_stream`` over a
    memory-mapped edge array — the only ingest shape that stays flat at
    10^6+ vertices.
    """
    if str(path).endswith(".npz"):
        return read_edge_npz(path)
    return read_edge_list(path)


def _write_graph(g, path) -> None:
    """Write a graph, dispatching on suffix like :func:`_load_graph`."""
    if str(path).endswith(".npz"):
        write_edge_npz(g, path)
    else:
        write_edge_list(g, path)


def _cmd_info(args) -> int:
    from repro.graphs.expansion import shallow_minor_density
    from repro.orders.degeneracy import degeneracy_order
    from repro.orders.wreach import wcol_of_order

    g = _load_graph(args.graph)
    order, d = degeneracy_order(g)
    print(f"n = {g.n}, m = {g.m}, avg degree = {g.average_degree():.2f}, "
          f"max degree = {g.max_degree()}")
    print(f"degeneracy = {d}")
    for r in (1, 2, 3):
        print(f"wcol_{r} (degeneracy order) = {wcol_of_order(g, order, r)}")
    for r in (0, 1):
        print(f"shallow minor density (depth {r}) ~ "
              f"{shallow_minor_density(g, r, trials=2):.2f}")
    return 0


def _parse_params(pairs: list[str] | None) -> dict:
    """``--param key=value`` pairs -> dict with int/float coercion."""
    out: dict = {}
    for pair in pairs or []:
        key, sep, value = pair.partition("=")
        if not sep:
            raise SystemExit(f"--param expects key=value, got {pair!r}")
        for cast in (int, float):
            try:
                value = cast(value)
                break
            except ValueError:
                continue
        out[key] = value
    return out


def _store_cache(g, args):
    """The cache a solver command runs against: workspace-backed with
    ``--store`` (the graph is registered so artifacts persist), else the
    process default."""
    store = getattr(args, "store", None)
    if not store:
        return None
    from repro.api.workspace import Workspace

    ws = Workspace(store=store)
    ws.add(g)
    return ws.cache


def _run_solve(g, args, *, algorithm: str, params: dict | None = None):
    """Shared ``solve()`` invocation + report for solve/domset/distributed."""
    from repro.api import solve

    res = solve(
        g,
        getattr(args, "radius", 1),
        algorithm,
        order_strategy=getattr(args, "order", "degeneracy"),
        connect=getattr(args, "connect", False),
        prune=getattr(args, "prune", False),
        certify=getattr(args, "certify", False) or getattr(args, "lp", False),
        with_lp=getattr(args, "lp", False),
        validate=True,
        seed=getattr(args, "seed", 0),
        engine=getattr(args, "engine", "auto"),
        params=params or {},
        cache=_store_cache(g, args),
    )
    if not res.extras.get("valid", True):
        from repro.errors import SolverError

        raise SolverError(
            f"{res.algorithm} output failed independent validation "
            f"(not a distance-{res.radius} dominating set)"
        )
    return res


def _report_result(res, args) -> None:
    """Uniform result report shared by the solver-running commands."""
    raw_size = res.extras.get("raw_size")
    suffix = f" (raw {raw_size})" if raw_size is not None else ""
    print(f"|D| = {res.size}{suffix}")
    if res.certificate is not None:
        print(f"certified ratio <= {res.certificate.certified_ratio}")
        if res.certificate.lp_bound is not None:
            print(f"LP lower bound = {res.certificate.lp_bound:.2f}")
    if res.phase_rounds:
        for phase, rounds in res.phase_rounds.items():
            words = res.raw.phase_max_words[phase]
            print(f"  {phase:>9}: {rounds} rounds, max payload {words} words")
    if res.rounds is not None:
        traffic = f", total traffic = {res.total_words} words" \
            if res.total_words is not None else ""
        print(f"total rounds = {res.rounds}{traffic}")
    if res.connected_set is not None:
        valid = res.extras.get("valid", True)
        print(f"connected |D'| = {len(res.connected_set)} (valid: {valid})")
    if getattr(args, "show", False):
        print("D =", " ".join(map(str, res.dominators)))
    print(f"wall time = {res.wall_time_s * 1e3:.1f} ms")


def _cmd_solve(args) -> int:
    g = _load_graph(args.graph)
    res = _run_solve(
        g, args, algorithm=args.algorithm, params=_parse_params(args.param)
    )
    print(f"algorithm = {res.algorithm}")
    _report_result(res, args)
    return 0


def _cmd_list_solvers(args) -> int:
    from repro.api import list_solvers

    rows = [("name", "model", "radius", "connect", "engines", "guarantee")]
    for info in list_solvers():
        caps = info.capabilities
        rows.append((
            info.name,
            caps.model,
            caps.radius_range(),
            "yes" if caps.supports_connect else "no",
            "/".join(caps.engines) if caps.engines else "-",
            caps.guarantee,
        ))
    widths = [max(len(row[i]) for row in rows) for i in range(5)]
    for i, row in enumerate(rows):
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths, strict=False)) + f"  {row[5]}")
        if i == 0:
            print("-" * (sum(widths) + 10 + max(len(r[5]) for r in rows)))
    return 0


def _cmd_warm(args) -> int:
    from repro.api.workspace import Workspace

    g = _load_graph(args.graph)
    ws = Workspace(store=args.store)
    report = ws.warm(g, radius=args.radius, order_strategy=args.order)
    print(f"graph {report['digest']}: n = {report['n']}, m = {report['m']}")
    print(f"order strategy = {report['order_strategy']}, r = {report['radius']}, "
          f"reaches = {report['reaches']}")
    print(f"wcol_{report['reaches'][-1]} = {report['wcol']} "
          f"(the Theorem-5 certificate constant)")
    computed = sum(c.get("computed", 0) for c in report["stats"].values())
    loaded = sum(c.get("store_hits", 0) for c in report["stats"].values())
    print(f"artifacts: {computed} computed, {loaded} already in the store")
    print(f"store = {ws.store.root}")
    return 0


def _cmd_workspace(args) -> int:
    import pathlib

    from repro.api.store import ArtifactStore

    # Only "info" for now; argparse restricts the choices.  A read-only
    # command must not conjure an empty store out of a mistyped path.
    if not pathlib.Path(args.store).expanduser().is_dir():
        raise ValueError(f"no store at {args.store!r} (run 'warm' to create one)")
    info = ArtifactStore(args.store).describe()
    print(f"store = {info['root']}")
    print(f"graphs ({len(info['graphs'])}):")
    for row in info["graphs"]:
        print(f"  {row['digest']}  n = {row['n']:>7}  m = {row['m']:>8}  "
              f"{row['artifacts']} artifacts")
    print("categories:")
    for name, cat in info["categories"].items():
        print(f"  {name:>11}: {cat['artifacts']:>4} artifacts, "
              f"{cat['bytes'] / 1024:.1f} KiB")
    print(f"total size = {info['total_bytes'] / 1024:.1f} KiB")
    return 0


def _fmt_age(ts) -> str:
    import time as _time

    if ts is None:
        return "never"
    return f"{max(0.0, _time.time() - ts):.0f}s ago"


def _cmd_store(args) -> int:
    import pathlib

    from repro.api.store import ArtifactStore

    if not pathlib.Path(args.store).expanduser().is_dir():
        raise ValueError(f"no store at {args.store!r} (run 'warm' to create one)")
    store = ArtifactStore(args.store)
    if args.action == "gc":
        if args.max_bytes is None:
            raise ValueError("store gc requires --max-bytes")
        report = store.gc(args.max_bytes)
        print(f"store = {store.root}")
        print(f"size: {report['before_bytes'] / 1024:.1f} KiB -> "
              f"{report['after_bytes'] / 1024:.1f} KiB "
              f"(bound {report['max_bytes'] / 1024:.1f} KiB)")
        print(f"evicted {len(report['evicted'])} digest(s), "
              f"kept {report['kept']}, "
              f"skipped {len(report['skipped_leased'])} leased, "
              f"swept {len(report['swept_tmp'])} orphaned tmp file(s)")
        for digest in report["evicted"]:
            print(f"  evicted {digest}")
        for digest in report["skipped_leased"]:
            print(f"  kept (leased) {digest}")
        return 0
    info = store.status()
    print(f"store = {info['root']}")
    print(f"digests ({len(info['digests'])}):")
    for row in info["digests"]:
        lease = "leased" if row["leased"] else "free"
        if row["leased"] and row["lease_holder"]:
            lease += f" (pid {row['lease_holder'].get('pid')})"
        print(f"  {row['digest']}  {row['bytes'] / 1024:>9.1f} KiB  "
              f"{row['files']:>3} files  last used {_fmt_age(row['last_used']):>10}  "
              f"{lease}")
    print(f"total size = {info['total_bytes'] / 1024:.1f} KiB")
    if info["quarantine"]:
        print(f"quarantine ({len(info['quarantine'])}):")
        for q in info["quarantine"]:
            reason = f"  ({q['reason']})" if q["reason"] else ""
            print(f"  {q['path']}  {q['bytes']} B{reason}")
    else:
        print("quarantine: empty")
    return 0


def _cmd_domset(args) -> int:
    g = _load_graph(args.graph)
    args.certify = True  # the Theorem-5 command always certifies
    res = _run_solve(g, args, algorithm="seq.wreach")
    raw_size = res.extras.get("raw_size", res.size)
    print(f"|D| = {res.size} (raw {raw_size})")
    # The certificate describes the reported (pruned) set: pruning only
    # shrinks D, so |D_pruned| <= c * OPT still holds with the same c.
    print(f"certified ratio <= {res.certificate.certified_ratio}")
    if res.certificate.lp_bound is not None:
        print(f"LP lower bound = {res.certificate.lp_bound:.2f}")
    if args.exact:
        from repro.core.exact import exact_domset

        opt, _ = exact_domset(g, args.radius)
        print(f"exact OPT = {opt}  (realized ratio {res.size / max(opt, 1):.3f})")
    if args.show:
        print("D =", " ".join(map(str, res.dominators)))
    if args.connect:
        valid = res.extras.get("valid", False)
        print(f"connected |D'| = {len(res.connected_set)} (valid: {valid})")
    return 0


def _cmd_distributed(args) -> int:
    g = _load_graph(args.graph)
    if args.unified:
        res = _run_solve(g, args, algorithm="dist.congest-unified")
        print(f"|D| = {res.size}")
        print(f"total rounds = {res.rounds} "
              f"(fixed schedule), max payload "
              f"{res.extras['max_payload_words']} words, "
              f"total traffic = {res.total_words} words")
    else:
        res = _run_solve(
            g, args, algorithm="dist.congest",
            params={"order_mode": args.order_mode},
        )
        ds = res.raw
        print(f"|D| = {res.size}")
        for phase, rounds in res.phase_rounds.items():
            print(f"  {phase:>9}: {rounds} rounds, "
                  f"max payload {ds.phase_max_words[phase]} words")
        print(f"total rounds = {res.rounds}, total traffic = {res.total_words} words")
    if res.connected_set is not None:
        blowup = len(res.connected_set) / max(1, res.size)
        print(f"connected |D'| = {len(res.connected_set)} "
              f"(blowup {blowup:.2f})")
    return 0


def _cmd_generate(args) -> int:
    from repro.bench.workloads import WORKLOADS
    from repro.graphs import generators as gen
    from repro.graphs import random_models as rm

    if args.family in WORKLOADS:
        g = WORKLOADS[args.family].graph()
    elif args.family == "grid":
        g = gen.grid_2d(args.a, args.b or args.a)
    elif args.family == "tree":
        g = rm.random_tree(args.a, seed=args.seed)
    elif args.family == "delaunay":
        g, _ = rm.delaunay_graph(args.a, seed=args.seed)
    elif args.family == "ktree":
        g = gen.k_tree(args.a, args.b or 3, seed=args.seed)
    else:
        print(f"unknown family {args.family!r}; use a workload name, "
              f"grid, tree, delaunay or ktree", file=sys.stderr)
        return 2
    _write_graph(g, args.output)
    print(f"wrote {args.output}: n = {g.n}, m = {g.m}")
    return 0


def _cmd_calibrate_engine(args) -> int:
    from repro.api.engine_model import DEFAULT_MODEL_PATH, calibrate

    model = calibrate(quick=args.quick, radius=args.radius)
    out = args.output or DEFAULT_MODEL_PATH
    model.save(out)
    print(f"wrote {out}")
    for eng, c in model.coef.items():
        terms = ", ".join(f"{x:.3e}" for x in c)
        print(f"  {eng}: [{terms}]")
    from repro.api.engine_model import WAVE_PROTOCOLS

    for protocol in WAVE_PROTOCOLS:
        width = model.waves.get(protocol, model.waves.get("*", (0, 0)))
        print(
            f"  waves[{protocol}] = {width[0]}"
            + (f" (n >= {width[1]})" if width[0] else " (lockstep)")
        )
    return 0


def _cmd_lint(args) -> int:
    from repro.lint import main as lint_main

    forwarded = list(args.paths)
    if args.format != "text":
        forwarded += ["--format", args.format]
    if args.output:
        forwarded += ["--output", args.output]
    if args.show_suppressed:
        forwarded.append("--show-suppressed")
    if args.list_rules:
        forwarded.append("--list-rules")
    return lint_main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = p.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="structural summary of a graph file")
    p_info.add_argument("graph")
    p_info.set_defaults(fn=_cmd_info)

    p_solve = sub.add_parser(
        "solve", help="run any registered solver through the unified API"
    )
    p_solve.add_argument("graph")
    p_solve.add_argument("-a", "--algorithm", default="seq.wreach",
                         help="registry name (see list-solvers)")
    p_solve.add_argument("-r", "--radius", type=int, default=1)
    p_solve.add_argument("--order", default="degeneracy",
                         help="order strategy for order-based solvers")
    p_solve.add_argument("--connect", action="store_true")
    p_solve.add_argument("--prune", action="store_true")
    p_solve.add_argument("--certify", action="store_true")
    p_solve.add_argument("--lp", action="store_true",
                         help="certify with the LP lower bound")
    p_solve.add_argument("--seed", type=int, default=0)
    p_solve.add_argument("--engine", choices=("auto", "batch", "pernode"),
                         default="auto",
                         help="simulator path for distributed solvers")
    p_solve.add_argument("--param", action="append", metavar="KEY=VALUE",
                         help="solver-specific parameter (repeatable)")
    p_solve.add_argument("--show", action="store_true", help="print the set")
    p_solve.add_argument("--store", metavar="DIR",
                         help="persistent artifact store to read/write "
                         "precompute through (see 'warm')")
    p_solve.set_defaults(fn=_cmd_solve)

    p_ls = sub.add_parser("list-solvers", help="show the solver registry")
    p_ls.set_defaults(fn=_cmd_list_solvers)

    p_warm = sub.add_parser(
        "warm", help="precompute and persist a graph's solver artifacts"
    )
    p_warm.add_argument("graph")
    p_warm.add_argument("--store", metavar="DIR", required=True,
                        help="artifact store directory (created if missing)")
    p_warm.add_argument("-r", "--radius", type=int, default=1)
    p_warm.add_argument("--order", default="degeneracy",
                        help="order strategy to warm (default: degeneracy)")
    p_warm.set_defaults(fn=_cmd_warm)

    p_ws = sub.add_parser("workspace", help="inspect a persistent workspace store")
    p_ws.add_argument("action", choices=("info",))
    p_ws.add_argument("--store", metavar="DIR", required=True)
    p_ws.set_defaults(fn=_cmd_workspace)

    p_store = sub.add_parser(
        "store", help="store lifecycle: per-digest usage report and size-bounded GC"
    )
    p_store.add_argument("action", choices=("info", "gc"))
    p_store.add_argument("--store", metavar="DIR", required=True)
    p_store.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="gc: evict least-recently-used digests until the store fits N bytes",
    )
    p_store.set_defaults(fn=_cmd_store)

    p_dom = sub.add_parser("domset", help="Theorem 5 dominating set")
    p_dom.add_argument("graph")
    p_dom.add_argument("-r", "--radius", type=int, default=1)
    p_dom.add_argument("--order", default="degeneracy")
    p_dom.add_argument("--prune", action="store_true")
    p_dom.add_argument("--connect", action="store_true")
    p_dom.add_argument("--lp", action="store_true")
    p_dom.add_argument("--exact", action="store_true")
    p_dom.add_argument("--show", action="store_true", help="print the set")
    p_dom.add_argument("--store", metavar="DIR",
                       help="persistent artifact store (see 'warm')")
    p_dom.set_defaults(fn=_cmd_domset)

    p_dist = sub.add_parser("distributed", help="Theorem 9/10 CONGEST_BC pipeline")
    p_dist.add_argument("graph")
    p_dist.add_argument("-r", "--radius", type=int, default=1)
    p_dist.add_argument("--connect", action="store_true")
    p_dist.add_argument("--order-mode", choices=("h_partition", "augmented"),
                        default="h_partition",
                        help="distributed order construction (Theorem 3 vs 9)")
    p_dist.add_argument("--engine", choices=("auto", "batch", "pernode"),
                        default="auto",
                        help="simulator path: vectorized batch rounds "
                        "(default) or the per-node reference loop")
    p_dist.add_argument("--unified", action="store_true",
                        help="single continuous protocol (fixed phase budgets)")
    p_dist.add_argument("--store", metavar="DIR",
                        help="persistent artifact store (see 'warm')")
    p_dist.set_defaults(fn=_cmd_distributed)

    p_gen = sub.add_parser("generate", help="write a generator output to a file")
    p_gen.add_argument("family")
    p_gen.add_argument("a", type=int, nargs="?", default=16)
    p_gen.add_argument("b", type=int, nargs="?", default=None)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("-o", "--output", required=True)
    p_gen.set_defaults(fn=_cmd_generate)

    p_cal = sub.add_parser(
        "calibrate-engine",
        help="measure both simulator engines and refresh the auto cost model",
    )
    p_cal.add_argument("--quick", action="store_true",
                       help="reduced instance ladder (seconds, less precise)")
    p_cal.add_argument("-r", "--radius", type=int, default=2)
    p_cal.add_argument("-o", "--output", metavar="FILE", default=None,
                       help="write the model JSON here instead of the "
                            "committed artifact path")
    p_cal.set_defaults(fn=_cmd_calibrate_engine)

    sub.add_parser(
        "serve",
        help="long-lived solve daemon over a shared artifact store "
             "(all further arguments go to the daemon; see repro serve --help)",
    )

    p_lint = sub.add_parser(
        "lint", help="static model-conformance/determinism checker"
    )
    p_lint.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories (default: src)")
    p_lint.add_argument("--format", choices=("text", "json"), default="text")
    p_lint.add_argument("--output", metavar="FILE",
                        help="write the JSON report to FILE")
    p_lint.add_argument("--show-suppressed", action="store_true")
    p_lint.add_argument("--list-rules", action="store_true")
    p_lint.set_defaults(fn=_cmd_lint)
    return p


def main(argv: list[str] | None = None) -> int:
    from repro.errors import ReproError

    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "serve":
        # The daemon owns its full argument surface (and argparse's
        # REMAINDER can't forward leading optionals), so hand off before
        # parsing: ``repro serve ...`` == ``python -m repro.serve ...``.
        from repro.serve.__main__ import main as serve_main

        return serve_main(argv[1:])
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except (ReproError, ValueError, OSError) as exc:
        # Almost always user-facing (unknown solver or order strategy,
        # bad graph file, unsupported radius/connect combination).  A
        # genuine internal ValueError is swallowed too — the trade made
        # for clean CLI errors; rerun through the python API to debug.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
