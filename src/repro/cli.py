"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``info <graph>``
    Structural summary: n, m, degeneracy, measured wcol_r, shallow-minor
    density estimates.
``domset <graph> -r R``
    Theorem 5 dominating set with certificate (optionally ``--connect``,
    ``--prune``, ``--exact`` for small inputs).
``distributed <graph> -r R``
    Theorem 9/10 CONGEST_BC pipeline with round/traffic accounting.
``generate <family> <args...> -o file``
    Write a named workload or generator output to an edge-list file.

Graphs are plain edge-list text files (see :mod:`repro.graphs.io`).
"""

from __future__ import annotations

import argparse
import sys

from repro.graphs.io import read_edge_list, write_edge_list

__all__ = ["main", "build_parser"]


def _cmd_info(args) -> int:
    from repro.graphs.expansion import degeneracy, shallow_minor_density
    from repro.orders.degeneracy import degeneracy_order
    from repro.orders.wreach import wcol_of_order

    g = read_edge_list(args.graph)
    order, d = degeneracy_order(g)
    print(f"n = {g.n}, m = {g.m}, avg degree = {g.average_degree():.2f}, "
          f"max degree = {g.max_degree()}")
    print(f"degeneracy = {d}")
    for r in (1, 2, 3):
        print(f"wcol_{r} (degeneracy order) = {wcol_of_order(g, order, r)}")
    for r in (0, 1):
        print(f"shallow minor density (depth {r}) ~ "
              f"{shallow_minor_density(g, r, trials=2):.2f}")
    return 0


def _cmd_domset(args) -> int:
    from repro.analysis.validate import is_distance_r_dominating_set
    from repro.core.certify import certify_run
    from repro.core.domset import domset_sequential
    from repro.core.prune import prune_dominating_set
    from repro.pipelines import make_order

    g = read_edge_list(args.graph)
    order = make_order(g, args.radius, args.order)
    result = domset_sequential(g, order, args.radius)
    assert is_distance_r_dominating_set(g, result.dominators, args.radius)
    chosen = result.dominators
    if args.prune:
        chosen = prune_dominating_set(g, chosen, args.radius)
    cert = certify_run(g, order, result, with_lp=args.lp)
    print(f"|D| = {len(chosen)} (raw {result.size})")
    print(f"certified ratio <= {cert.certified_ratio}")
    if cert.lp_bound is not None:
        print(f"LP lower bound = {cert.lp_bound:.2f}")
    if args.exact:
        from repro.core.exact import exact_domset

        opt, _ = exact_domset(g, args.radius)
        print(f"exact OPT = {opt}  (realized ratio {len(chosen) / max(opt, 1):.3f})")
    if args.show:
        print("D =", " ".join(map(str, chosen)))
    if args.connect:
        from repro.analysis.validate import is_connected_distance_r_dominating_set
        from repro.core.connect import connect_via_wreach

        conn = connect_via_wreach(g, order, result.dominators, args.radius)
        ok = is_connected_distance_r_dominating_set(g, conn.vertices, args.radius)
        print(f"connected |D'| = {conn.size} (valid: {ok})")
    return 0


def _cmd_distributed(args) -> int:
    from repro.analysis.validate import is_distance_r_dominating_set
    from repro.pipelines import congest_bc_pipeline

    g = read_edge_list(args.graph)
    run = congest_bc_pipeline(g, args.radius, connect=args.connect)
    ds = run.domset
    assert is_distance_r_dominating_set(g, ds.dominators, args.radius)
    print(f"|D| = {ds.size}")
    for phase, rounds in ds.phase_rounds.items():
        print(f"  {phase:>9}: {rounds} rounds, "
              f"max payload {ds.phase_max_words[phase]} words")
    print(f"total rounds = {ds.total_rounds}, total traffic = {ds.total_words} words")
    if run.connected is not None:
        print(f"connected |D'| = {run.connected.size} "
              f"(blowup {run.connected.blowup:.2f})")
    return 0


def _cmd_generate(args) -> int:
    from repro.bench.workloads import WORKLOADS
    from repro.graphs import generators as gen
    from repro.graphs import random_models as rm

    if args.family in WORKLOADS:
        g = WORKLOADS[args.family].graph()
    elif args.family == "grid":
        g = gen.grid_2d(args.a, args.b or args.a)
    elif args.family == "tree":
        g = rm.random_tree(args.a, seed=args.seed)
    elif args.family == "delaunay":
        g, _ = rm.delaunay_graph(args.a, seed=args.seed)
    elif args.family == "ktree":
        g = gen.k_tree(args.a, args.b or 3, seed=args.seed)
    else:
        print(f"unknown family {args.family!r}; use a workload name, "
              f"grid, tree, delaunay or ktree", file=sys.stderr)
        return 2
    write_edge_list(g, args.output)
    print(f"wrote {args.output}: n = {g.n}, m = {g.m}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = p.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="structural summary of a graph file")
    p_info.add_argument("graph")
    p_info.set_defaults(fn=_cmd_info)

    p_dom = sub.add_parser("domset", help="Theorem 5 dominating set")
    p_dom.add_argument("graph")
    p_dom.add_argument("-r", "--radius", type=int, default=1)
    p_dom.add_argument("--order", default="degeneracy")
    p_dom.add_argument("--prune", action="store_true")
    p_dom.add_argument("--connect", action="store_true")
    p_dom.add_argument("--lp", action="store_true")
    p_dom.add_argument("--exact", action="store_true")
    p_dom.add_argument("--show", action="store_true", help="print the set")
    p_dom.set_defaults(fn=_cmd_domset)

    p_dist = sub.add_parser("distributed", help="Theorem 9/10 CONGEST_BC pipeline")
    p_dist.add_argument("graph")
    p_dist.add_argument("-r", "--radius", type=int, default=1)
    p_dist.add_argument("--connect", action="store_true")
    p_dist.set_defaults(fn=_cmd_distributed)

    p_gen = sub.add_parser("generate", help="write a generator output to a file")
    p_gen.add_argument("family")
    p_gen.add_argument("a", type=int, nargs="?", default=16)
    p_gen.add_argument("b", type=int, nargs="?", default=None)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("-o", "--output", required=True)
    p_gen.set_defaults(fn=_cmd_generate)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
