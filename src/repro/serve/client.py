"""Stdlib-only typed client for the ``repro.serve`` daemon.

One :class:`ServeClient` wraps one keep-alive
:class:`http.client.HTTPConnection` — *not* thread-safe; give each
client thread its own instance (that is also what makes a closed-loop
load generator honest: one in-flight request per connection).

Responses come back typed: ``solve`` returns a
:class:`~repro.api.types.SolveResult` rebuilt from the shared JSON
schema; HTTP-level failures raise :class:`ServeError` carrying the
status code, the structured error body, and the ``Retry-After`` hint
on overload.
"""

from __future__ import annotations

import http.client
import io
import json
from typing import Any, Mapping

import numpy as np

from repro.api.types import SolveResult
from repro.graphs.graph import Graph

__all__ = ["ServeClient", "ServeError"]


class ServeError(Exception):
    """A non-2xx daemon response: status, body, and retry hint."""

    def __init__(self, status: int, error: Mapping[str, Any],
                 retry_after_s: float | None = None):
        super().__init__(
            f"HTTP {status}: {error.get('message') or error.get('type') or error}"
        )
        self.status = int(status)
        self.error = dict(error)
        self.retry_after_s = retry_after_s

    @property
    def reason(self) -> str | None:
        """The structured failure reason, when the body carries one."""
        value = self.error.get("reason")
        return None if value is None else str(value)


def _npz_bytes(g: Graph) -> bytes:
    buf = io.BytesIO()
    np.savez(buf, n=np.int64(g.n), edges=g.edge_array())
    return buf.getvalue()


class ServeClient:
    """Typed access to one daemon (``host``/``port`` or a full ``url``)."""

    def __init__(
        self,
        url: str | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 8265,
        timeout_s: float = 300.0,
    ):
        if url is not None:
            stripped = url.removeprefix("http://").rstrip("/")
            host, _, port_s = stripped.partition(":")
            port = int(port_s or 80)
        self.host = host
        self.port = int(port)
        self.timeout_s = float(timeout_s)
        self._conn: http.client.HTTPConnection | None = None

    # -- transport -------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        content_type: str = "application/json",
    ) -> dict[str, Any]:
        headers = {"Content-Type": content_type} if body is not None else {}
        # One transparent retry on a stale keep-alive connection: the
        # server may have idle-closed it between calls.
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                break
            except (http.client.HTTPException, ConnectionError, OSError):
                self.close()
                if attempt:
                    raise
        raw = response.read()
        try:
            payload = json.loads(raw.decode() or "{}")
        except (ValueError, UnicodeDecodeError):
            payload = {"error": {"type": "BadResponse", "message": repr(raw[:200])}}
        if response.status >= 300:
            retry_after = response.getheader("Retry-After")
            raise ServeError(
                response.status,
                payload.get("error", payload),
                retry_after_s=None if retry_after is None else float(retry_after),
            )
        return payload

    def _post_json(self, path: str, body: Mapping[str, Any]) -> dict[str, Any]:
        return self._request("POST", path, json.dumps(body).encode())

    # -- endpoints -------------------------------------------------------
    def status(self, probe: bool = False) -> dict[str, Any]:
        return self._request("GET", "/v1/status" + ("?probe=1" if probe else ""))

    def solvers(self) -> dict[str, Any]:
        return self._request("GET", "/v1/solvers")["solvers"]

    def register(
        self,
        graph: Graph,
        *,
        npz: bool = True,
        warm: Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Register ``graph`` with the daemon; returns ``{digest, n, m}``.

        ``npz=True`` ships the binary edge list (the efficient path);
        ``npz=False`` sends the inline JSON shape.  ``warm`` forwards
        warm-start options (``{"radius": r}``) so the daemon precomputes
        the Theorem-5 inputs immediately.
        """
        if npz:
            path = "/v1/graphs"
            if warm is not None:
                path += f"?warm_radius={int(warm['radius'])}"
            return self._request(
                "POST", path, _npz_bytes(graph), "application/octet-stream"
            )
        body: dict[str, Any] = {
            "graph": {"n": graph.n, "edges": graph.edge_array().tolist()}
        }
        if warm is not None:
            body["warm"] = dict(warm)
        return self._post_json("/v1/graphs", body)

    def solve(
        self,
        *,
        digest: str | None = None,
        graph: Graph | None = None,
        raw: bool = False,
        **fields: Any,
    ) -> SolveResult | dict[str, Any]:
        """Solve on the daemon; returns the rebuilt :class:`SolveResult`.

        Exactly one of ``digest`` (hot path: the graph is already in the
        daemon's store) or ``graph`` (shipped inline) must be given;
        ``fields`` are the ``SolveRequest`` fields (``radius``,
        ``algorithm``, ``certify``, ``deadline_s``, ...).  ``raw=True``
        returns the undecoded response dict instead.
        """
        if (digest is None) == (graph is None):
            raise ValueError("exactly one of digest= or graph= is required")
        body = dict(fields)
        if digest is not None:
            body["digest"] = digest
        else:
            assert graph is not None
            body["graph"] = {"n": graph.n, "edges": graph.edge_array().tolist()}
        payload = self._post_json("/v1/solve", body)
        return payload if raw else SolveResult.from_dict(payload)
