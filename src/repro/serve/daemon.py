"""The ``repro.serve`` daemon: a warm Workspace behind a stdlib HTTP front.

One long-lived process owns the shared :class:`~repro.api.store.ArtifactStore`
and a :class:`~repro.api.workspace.Workspace` (orders, rank-CSR, WReach
CSR hot in its cache, ``mmap`` honored for large artifact loads), and
speaks the :class:`~repro.api.types.SolveResult` JSON schema over four
endpoints:

========================  =============================================
``POST /v1/solve``        run one request — graph by bare ``digest``
                          (the hot path), inline edge list, or npz body
``POST /v1/graphs``       register (and optionally warm) a graph;
                          returns its digest
``GET /v1/status``        uptime, request/latency counters, workspace +
                          store + shard stats (``?probe=1`` asks each
                          worker process what it actually holds)
``GET /v1/solvers``       the solver registry with capabilities
========================  =============================================

Execution: with ``workers=0`` requests solve in-process under one lock
(the cache is not thread-safe); with ``workers=N`` a
:class:`~repro.serve.shards.DigestShardPool` routes each digest to its
home supervised worker.  Admission is bounded per digest — exceeding
``queue_limit`` outstanding requests answers ``503`` with a
``Retry-After`` hint instead of queueing without bound.  Per-request
deadlines ride the supervisor's ``deadline_s`` timers; expiry answers
``504`` with the structured :class:`~repro.errors.RequestFailed` body.

Shutdown is a drain: stop accepting, let in-flight handlers finish,
drain the shard pool, close the workspace, and sweep any orphaned
``.tmp`` store files — SIGTERM leaves zero torn artifacts behind.
"""

from __future__ import annotations

import io
import json
import threading
import time
from dataclasses import replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Mapping
from urllib.parse import parse_qs, urlsplit

import numpy as np

from repro.api.registry import list_solvers
from repro.api.store import ArtifactStore
from repro.api.types import GraphHandle, SolveRequest
from repro.api.workspace import Workspace
from repro.errors import GraphError, RequestFailed, SolverError
from repro.graphs.build import from_edges
from repro.serve.metrics import LatencyTracker
from repro.serve.shards import DigestShardPool, Overloaded

__all__ = ["ServeDaemon"]

#: SolveRequest fields a /v1/solve JSON body may set besides the graph.
_REQUEST_FIELDS = (
    "radius", "algorithm", "order_strategy", "connect", "prune", "certify",
    "with_lp", "validate", "seed", "engine", "params", "deadline_s",
)


class _HTTPError(Exception):
    """An error with a ready-to-send status + JSON body."""

    def __init__(self, status: int, error: Mapping[str, Any],
                 retry_after_s: float | None = None):
        super().__init__(error.get("message", ""))
        self.status = int(status)
        self.error = dict(error)
        self.retry_after_s = retry_after_s


def _failure_body(exc: RequestFailed) -> dict[str, Any]:
    """The structured JSON body of a failed request."""
    return {
        "type": "RequestFailed",
        "message": str(exc),
        "reason": exc.reason,
        "algorithm": exc.algorithm,
        "graph_digest": exc.graph_digest,
        "attempts": exc.attempts,
    }


def _failure_status(exc: RequestFailed) -> int:
    """HTTP status for a structured failure (deadline is the client's)."""
    return 504 if exc.reason == "deadline" else 500


class ServeDaemon:
    """The solve daemon: construct, then :meth:`serve_forever` (or
    :meth:`start` for a background thread) and :meth:`shutdown`.

    Parameters
    ----------
    store:
        Store root path or :class:`ArtifactStore` — the artifact tier
        this daemon owns and serves from.
    host / port:
        Bind address; port 0 picks a free port (see :attr:`port`).
    workers:
        0 = in-process solving under one lock; N >= 1 = N digest-sharded
        single-process supervised workers.
    queue_limit:
        Per-digest outstanding-request bound before 503.
    default_deadline_s:
        Deadline applied to requests that do not set their own
        (``None`` = unbounded).
    mmap:
        Memory-map large store artifact loads (forwarded to
        :class:`ArtifactStore` when ``store`` is a path).
    """

    def __init__(
        self,
        store: ArtifactStore | str,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 0,
        queue_limit: int = 8,
        default_deadline_s: float | None = None,
        retry_after_s: float = 1.0,
        mmap: bool = True,
        backoff_base_s: float = 0.05,
        pool_factory: Callable[[], Any] | None = None,
        log: Callable[[str], None] | None = None,
    ):
        if not isinstance(store, ArtifactStore):
            store = ArtifactStore(store, mmap=mmap)
        self.store = store
        self.ws = Workspace(store=store)
        self.workers = int(workers)
        self.queue_limit = int(queue_limit)
        self.default_deadline_s = default_deadline_s
        self.metrics = LatencyTracker()
        self._log = log or (lambda _msg: None)
        self.pool: DigestShardPool | None = None
        if self.workers >= 1:
            self.pool = DigestShardPool(
                str(store.root),
                self.workers,
                queue_limit=self.queue_limit,
                retry_after_s=retry_after_s,
                backoff_base_s=backoff_base_s,
                pool_factory=pool_factory,
            )
        # One lock for every Workspace/cache touch (the cache is not
        # thread-safe); in-process solves hold it for the whole solve.
        self._ws_lock = threading.Lock()
        # In-process admission: outstanding requests per digest.
        self._local_in_flight: dict[str, int] = {}
        self._admission_lock = threading.Lock()
        self._active = 0
        self._active_cv = threading.Condition()
        self._closed = False
        self._close_lock = threading.Lock()
        self._started = time.monotonic()
        daemon = self

        class _Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"
            # Idle keep-alive connections die on their own instead of
            # pinning handler threads across a drain.
            timeout = 30.0

            def log_message(self, fmt: str, *args: Any) -> None:
                daemon._log(f"{self.address_string()} {fmt % args}")

            def do_GET(self) -> None:  # noqa: N802 - http.server contract
                daemon._dispatch(self, "GET")

            def do_POST(self) -> None:  # noqa: N802 - http.server contract
                daemon._dispatch(self, "POST")

        self._httpd = ThreadingHTTPServer((host, int(port)), _Handler)
        self._httpd.daemon_threads = True

    # -- addresses -------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle -------------------------------------------------------
    def serve_forever(self) -> None:
        """Serve until :meth:`shutdown`; returns after the drain."""
        try:
            self._httpd.serve_forever(poll_interval=0.1)
        finally:
            self._drain()

    def start(self) -> threading.Thread:
        """Serve on a background thread (tests, embedded use)."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    def shutdown(self) -> None:
        """Stop accepting, drain in-flight work, release everything.

        Idempotent and thread-safe; callable from any thread except a
        request handler's own (a handler cannot wait for itself to
        finish).  Signal handlers should call this from a fresh thread.
        """
        self._httpd.shutdown()
        self._drain()

    close = shutdown

    def __enter__(self) -> "ServeDaemon":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()

    def _drain(self) -> None:
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        with self._active_cv:
            self._active_cv.wait_for(lambda: self._active == 0, timeout=60.0)
        if self.pool is not None:
            self.pool.shutdown(wait=True)
        self.ws.close()
        # Atomic writes mean a clean daemon leaves nothing behind; a
        # crashed *worker* might, and the drain is the natural sweep
        # point (age 0: anything orphaned is by definition dead here,
        # since every writer this store had is now stopped).
        self.store.sweep_tmp(max_age_s=0.0)
        self._httpd.server_close()

    def uptime_s(self) -> float:
        return time.monotonic() - self._started

    # -- HTTP plumbing ---------------------------------------------------
    def _dispatch(self, handler: BaseHTTPRequestHandler, method: str) -> None:
        with self._active_cv:
            if self._closed:
                self._send(handler, 503, {"error": {
                    "type": "Draining", "message": "daemon is shutting down",
                }})
                return
            self._active += 1
        try:
            split = urlsplit(handler.path)
            route = (method, split.path)
            query = parse_qs(split.query)
            try:
                if route == ("GET", "/v1/status"):
                    status, body = 200, self.status(
                        probe="probe" in query and query["probe"][0] not in ("", "0")
                    )
                elif route == ("GET", "/v1/solvers"):
                    status, body = 200, self.solvers()
                elif route == ("POST", "/v1/solve"):
                    status, body = 200, self._handle_solve(handler, query)
                elif route == ("POST", "/v1/graphs"):
                    status, body = 200, self._handle_graphs(handler, query)
                else:
                    raise _HTTPError(404, {
                        "type": "NoSuchEndpoint",
                        "message": f"{method} {split.path} is not served here",
                    })
                self._send(handler, status, body)
            except _HTTPError as exc:
                self._send(handler, exc.status, {"error": exc.error},
                           retry_after_s=exc.retry_after_s)
            except Exception as exc:  # the daemon outlives any bad request
                self._send(handler, 500, {"error": {
                    "type": type(exc).__name__, "message": str(exc),
                }})
        except (BrokenPipeError, ConnectionResetError):  # client went away
            handler.close_connection = True
        finally:
            with self._active_cv:
                self._active -= 1
                self._active_cv.notify_all()

    def _send(
        self,
        handler: BaseHTTPRequestHandler,
        status: int,
        body: Mapping[str, Any],
        retry_after_s: float | None = None,
    ) -> None:
        payload = json.dumps(body).encode()
        handler.send_response(status)
        handler.send_header("Content-Type", "application/json")
        handler.send_header("Content-Length", str(len(payload)))
        if retry_after_s is not None:
            handler.send_header("Retry-After", str(max(1, round(retry_after_s))))
        handler.end_headers()
        handler.wfile.write(payload)

    @staticmethod
    def _read_body(handler: BaseHTTPRequestHandler) -> bytes:
        length = int(handler.headers.get("Content-Length") or 0)
        return handler.rfile.read(length) if length else b""

    @staticmethod
    def _json_body(raw: bytes) -> dict[str, Any]:
        try:
            body = json.loads(raw.decode() or "{}")
        except (ValueError, UnicodeDecodeError) as exc:
            raise _HTTPError(400, {
                "type": "BadRequest", "message": f"request body is not JSON: {exc}",
            }) from exc
        if not isinstance(body, dict):
            raise _HTTPError(400, {
                "type": "BadRequest",
                "message": "request body must be a JSON object",
            })
        return body

    # -- graph intake ----------------------------------------------------
    def _graph_from_npz(self, raw: bytes) -> GraphHandle:
        try:
            with np.load(io.BytesIO(raw)) as npz:
                n = int(npz["n"])
                edges = np.asarray(npz["edges"], dtype=np.int64)
            g = from_edges(n, edges)
        except (KeyError, ValueError, OSError, GraphError) as exc:
            raise _HTTPError(400, {
                "type": "BadGraph",
                "message": f"npz body is not a valid edge list: {exc}",
            }) from exc
        with self._ws_lock:
            return self.ws.add(g)

    def _graph_from_json(self, spec: Any) -> GraphHandle:
        if not isinstance(spec, dict) or "n" not in spec or "edges" not in spec:
            raise _HTTPError(400, {
                "type": "BadGraph",
                "message": 'inline graph must be {"n": int, "edges": [[u, v], ...]}',
            })
        try:
            edges = np.asarray(spec["edges"], dtype=np.int64).reshape(-1, 2)
            g = from_edges(int(spec["n"]), edges)
        except (TypeError, ValueError, GraphError) as exc:
            raise _HTTPError(400, {
                "type": "BadGraph", "message": f"bad inline edge list: {exc}",
            }) from exc
        with self._ws_lock:
            return self.ws.add(g)

    def _graph_from_digest(self, digest: str) -> GraphHandle:
        meta = self.store.graph_meta(str(digest))
        if meta is None:
            raise _HTTPError(404, {
                "type": "UnknownGraph",
                "message": f"graph {digest!r} is not in the store "
                           f"(register it via POST /v1/graphs)",
                "digest": str(digest),
            })
        return GraphHandle(digest=str(digest), n=meta[0], m=meta[1])

    # -- endpoints -------------------------------------------------------
    def _handle_graphs(
        self, handler: BaseHTTPRequestHandler, query: Mapping[str, list[str]]
    ) -> dict[str, Any]:
        raw = self._read_body(handler)
        content_type = (handler.headers.get("Content-Type") or "").split(";")[0]
        warm: dict[str, Any] | None = None
        if content_type == "application/octet-stream":
            handle = self._graph_from_npz(raw)
            if "warm_radius" in query:
                warm = {"radius": int(query["warm_radius"][0])}
        else:
            body = self._json_body(raw)
            unknown = set(body) - {"graph", "warm"}
            if unknown:
                raise _HTTPError(400, {
                    "type": "BadRequest",
                    "message": f"unknown fields: {sorted(unknown)}",
                })
            handle = self._graph_from_json(body.get("graph"))
            if body.get("warm") is not None:
                warm = dict(body["warm"])
        out: dict[str, Any] = {"digest": handle.digest, "n": handle.n, "m": handle.m}
        if warm is not None:
            allowed = {"radius", "order_strategy"}
            unknown = set(warm) - allowed
            if unknown:
                raise _HTTPError(400, {
                    "type": "BadRequest",
                    "message": f"unknown warm fields: {sorted(unknown)}",
                })
            with self._ws_lock:
                summary = self.ws.warm(handle, **warm)
            out["warmed"] = {
                k: summary[k] for k in ("order_strategy", "radius", "reaches", "wcol")
            }
        return out

    def _build_request(
        self, handler: BaseHTTPRequestHandler, query: Mapping[str, list[str]]
    ) -> tuple[SolveRequest, GraphHandle]:
        content_type = (handler.headers.get("Content-Type") or "").split(";")[0]
        raw = self._read_body(handler)
        if content_type == "application/octet-stream":
            # npz upload: solve parameters ride the query string.
            handle = self._graph_from_npz(raw)
            body: dict[str, Any] = {}
            for key, values in query.items():
                if key in ("radius", "seed"):
                    body[key] = int(values[0])
                elif key == "deadline_s":
                    body[key] = float(values[0])
                elif key in ("connect", "prune", "certify", "with_lp", "validate"):
                    body[key] = values[0] not in ("", "0", "false")
                else:
                    body[key] = values[0]
        else:
            body = self._json_body(raw)
            spec_keys = {"digest", "graph"} & set(body)
            if len(spec_keys) != 1:
                raise _HTTPError(400, {
                    "type": "BadRequest",
                    "message": 'exactly one of "digest" or "graph" must be given',
                })
            # Validate the field surface before touching the store, so a
            # malformed request is 400 even when its digest is unknown.
            unknown = set(body) - set(_REQUEST_FIELDS) - {"digest", "graph"}
            if unknown:
                raise _HTTPError(400, {
                    "type": "BadRequest",
                    "message": f"unknown request fields: {sorted(unknown)} "
                               f"(known: {sorted(_REQUEST_FIELDS)})",
                })
            if "digest" in body:
                handle = self._graph_from_digest(body.pop("digest"))
            else:
                handle = self._graph_from_json(body.pop("graph"))
        unknown = set(body) - set(_REQUEST_FIELDS)
        if unknown:
            raise _HTTPError(400, {
                "type": "BadRequest",
                "message": f"unknown request fields: {sorted(unknown)} "
                           f"(known: {sorted(_REQUEST_FIELDS)})",
            })
        if "params" in body and not isinstance(body["params"], dict):
            raise _HTTPError(400, {
                "type": "BadRequest", "message": '"params" must be an object',
            })
        try:
            request = SolveRequest(graph=handle, **body)
        except (TypeError, ValueError) as exc:
            raise _HTTPError(400, {
                "type": "BadRequest", "message": f"bad request fields: {exc}",
            }) from exc
        if request.deadline_s is None and self.default_deadline_s is not None:
            request = replace(request, deadline_s=float(self.default_deadline_s))
        return request, handle

    def _handle_solve(
        self, handler: BaseHTTPRequestHandler, query: Mapping[str, list[str]]
    ) -> dict[str, Any]:
        request, handle = self._build_request(handler, query)
        t0 = time.perf_counter()
        try:
            result = (
                self._solve_pooled(request, handle)
                if self.pool is not None
                else self._solve_local(request, handle)
            )
        except Overloaded as exc:
            self.metrics.count_overload()
            raise _HTTPError(503, {
                "type": "Overloaded",
                "message": str(exc),
                "digest": exc.digest,
                "in_flight": exc.in_flight,
                "queue_limit": exc.limit,
            }, retry_after_s=exc.retry_after_s) from exc
        except RequestFailed as exc:
            self.metrics.observe(
                request.algorithm, time.perf_counter() - t0, ok=False
            )
            raise _HTTPError(
                _failure_status(exc), _failure_body(exc)
            ) from exc
        except SolverError as exc:
            self.metrics.observe(
                request.algorithm, time.perf_counter() - t0, ok=False
            )
            raise _HTTPError(400, {
                "type": type(exc).__name__, "message": str(exc),
            }) from exc
        self.metrics.observe(request.algorithm, time.perf_counter() - t0)
        return result.to_dict()

    def _solve_pooled(self, request: SolveRequest, handle: GraphHandle) -> Any:
        assert self.pool is not None
        detached = replace(request, graph=handle.detached())
        future = self.pool.submit(
            handle.digest, [detached], deadlines_s=[request.deadline_s]
        )[0]
        tag, payload = future.result()
        if tag == "err":
            raise payload
        return payload

    def _solve_local(self, request: SolveRequest, handle: GraphHandle) -> Any:
        digest = handle.digest
        with self._admission_lock:
            outstanding = self._local_in_flight.get(digest, 0)
            if outstanding + 1 > self.queue_limit:
                raise Overloaded(digest, outstanding, self.queue_limit, 1.0)
            self._local_in_flight[digest] = outstanding + 1
        born = time.monotonic()
        try:
            with self._ws_lock:
                # The deadline covers queueing behind the solve lock too
                # (no mid-solve abort — matching deferred SolveFutures).
                deadline = request.deadline_s
                if deadline is not None and time.monotonic() - born > deadline:
                    raise RequestFailed(
                        f"{request.algorithm} on graph {digest}: deadline_s="
                        f"{deadline} expired while queued",
                        algorithm=request.algorithm,
                        graph_digest=digest,
                        attempts=1,
                        reason="deadline",
                    )
                return self.ws.solve_request(request)
        finally:
            with self._admission_lock:
                left = self._local_in_flight.get(digest, 0) - 1
                if left > 0:
                    self._local_in_flight[digest] = left
                else:
                    self._local_in_flight.pop(digest, None)

    def solvers(self) -> dict[str, Any]:
        """The registry dump behind ``GET /v1/solvers``."""
        out = {}
        for info in list_solvers():
            caps = info.capabilities
            out[info.name] = {
                "model": caps.model,
                "supports_connect": caps.supports_connect,
                "deterministic": caps.deterministic,
                "radius": caps.radius_range(),
                "requires": caps.requires,
                "guarantee": caps.guarantee,
                "description": caps.description,
                "engines": list(caps.engines),
            }
        return {"solvers": out}

    def status(self, probe: bool = False) -> dict[str, Any]:
        """The report behind ``GET /v1/status``."""
        with self._ws_lock:
            info = self.ws.info()
        out: dict[str, Any] = {
            "uptime_s": self.uptime_s(),
            "workers": self.workers,
            "queue_limit": self.queue_limit,
            "workspace": info,
            **self.metrics.snapshot(),
        }
        if self.pool is not None:
            out["shards"] = self.pool.stats()
            if probe:
                out["workers_probe"] = self.pool.probe()
        return out
