"""``python -m repro.serve`` — run the solve daemon until SIGTERM/SIGINT.

Prints one ``listening on http://HOST:PORT`` line once the socket is
bound (port 0 resolves to the real ephemeral port first), serves until
a termination signal, then drains: in-flight requests finish, the shard
pool shuts down, and orphaned store ``.tmp`` files are swept.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

from repro.serve.daemon import ServeDaemon

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro serve",
        description="long-lived solve daemon over a shared artifact store",
    )
    ap.add_argument("--store", required=True,
                    help="artifact store root (created if absent)")
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=0,
                    help="bind port (0 = pick a free one; default)")
    ap.add_argument("--workers", type=int, default=0,
                    help="digest-sharded worker processes "
                         "(0 = solve in-process; default)")
    ap.add_argument("--queue-limit", type=int, default=8,
                    help="max outstanding requests per graph digest "
                         "before 503 (default 8)")
    ap.add_argument("--deadline-s", type=float, default=None,
                    help="default per-request deadline in seconds "
                         "(requests may set their own)")
    ap.add_argument("--no-mmap", action="store_true",
                    help="disable memory-mapped store artifact loads")
    ap.add_argument("--verbose", action="store_true",
                    help="log each request to stderr")
    return ap


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    daemon = ServeDaemon(
        args.store,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        default_deadline_s=args.deadline_s,
        mmap=not args.no_mmap,
        log=(lambda msg: print(msg, file=sys.stderr, flush=True))
        if args.verbose
        else None,
    )

    def _terminate(signum: int, _frame: object) -> None:
        # shutdown() waits for the serve loop (= this main thread) to
        # stop, so it must run off-thread — the handler only kicks it.
        threading.Thread(target=daemon.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _terminate)
    signal.signal(signal.SIGINT, _terminate)
    print(f"listening on {daemon.url}", flush=True)
    daemon.serve_forever()
    print("drained", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
