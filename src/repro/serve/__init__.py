"""``repro.serve`` — the long-lived solve daemon over the artifact store.

Run it as a process (``python -m repro.serve --store PATH`` or
``repro serve --store PATH``), or embed it::

    from repro.serve import ServeDaemon, ServeClient

    with ServeDaemon("/var/lib/repro-store", workers=4) as daemon:
        daemon.start()
        client = ServeClient(daemon.url)
        digest = client.register(g, warm={"radius": 1})["digest"]
        result = client.solve(digest=digest, radius=1, algorithm="seq.wreach")

Layers: :mod:`repro.serve.daemon` (HTTP front + request admission),
:mod:`repro.serve.shards` (digest-sharded supervised workers),
:mod:`repro.serve.metrics` (latency tracking),
:mod:`repro.serve.client` (stdlib typed client).
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.daemon import ServeDaemon
from repro.serve.shards import DigestShardPool, Overloaded

__all__ = [
    "DigestShardPool",
    "Overloaded",
    "ServeClient",
    "ServeDaemon",
    "ServeError",
]
