"""Digest-sharded supervised workers: the service-boundary co-location rule.

:class:`~repro.api.workspace.Workspace` already co-locates a batch's
requests by graph digest so each worker's per-process graph registry and
precompute cache actually hit.  A daemon receives requests one at a
time over HTTP, so the same rule moves to admission: a stable hash of
the digest picks one of N single-process
:class:`~repro.api.supervisor.SupervisedExecutor` shards, and every
request for that graph — today, tomorrow, after a worker crash and
respawn — lands on the same shard.  The shard's worker keeps the graph
and its WReach/order artifacts hot in memory; other shards never load
it at all.

Admission is bounded per digest: more than ``queue_limit`` outstanding
requests for one graph raises :class:`Overloaded` (the daemon's
``503 + Retry-After``), protecting latency for other graphs instead of
queueing without bound behind a single hot digest.

Each shard wraps its own supervisor, so a crashed worker respawns and
re-dispatches exactly as in pooled :class:`Workspace` execution — the
fault-tolerance contract of PR 9 holds unchanged at the service
boundary, per shard.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable, Sequence

from repro.api.supervisor import SupervisedExecutor
from repro.api.types import SolveRequest
from repro.api.workspace import _execute_group

__all__ = ["DigestShardPool", "Overloaded", "shard_of"]


class Overloaded(Exception):
    """Admission rejected: the digest's queue is full (serve as 503)."""

    def __init__(self, digest: str, in_flight: int, limit: int,
                 retry_after_s: float):
        super().__init__(
            f"graph {digest[:12]}: {in_flight} requests in flight "
            f"(limit {limit}); retry after {retry_after_s:.1f}s"
        )
        self.digest = digest
        self.in_flight = in_flight
        self.limit = limit
        self.retry_after_s = retry_after_s


def shard_of(digest: str, shards: int) -> int:
    """Stable digest -> shard index (hex prefix modulo shard count)."""
    try:
        return int(digest[:8], 16) % shards
    except ValueError:
        # Non-hex digests (tests, probes): stable via codepoint sum.
        return sum(map(ord, digest)) % shards


class DigestShardPool:
    """N single-worker supervised shards with digest-stable routing.

    Parameters mirror :class:`~repro.api.workspace.Workspace` pooled
    mode where they overlap; ``queue_limit`` is the per-digest
    outstanding-request bound and ``retry_after_s`` the hint returned
    with :class:`Overloaded`.
    """

    def __init__(
        self,
        store_root: str,
        shards: int,
        *,
        queue_limit: int = 8,
        retry_after_s: float = 1.0,
        max_attempts: int = 3,
        backoff_base_s: float = 0.05,
        pool_factory: Callable[[], Any] | None = None,
    ):
        if shards < 1:
            raise ValueError("DigestShardPool needs at least one shard")
        self.store_root = str(store_root)
        self.queue_limit = int(queue_limit)
        self.retry_after_s = float(retry_after_s)
        self._shards = [
            SupervisedExecutor(
                1,
                max_attempts=max_attempts,
                backoff_base_s=backoff_base_s,
                seed=i,
                pool_factory=pool_factory,
            )
            for i in range(int(shards))
        ]
        self._lock = threading.Lock()
        self._in_flight: dict[str, int] = {}
        #: Cumulative per-shard served-request counts by digest — the
        #: observable record of where traffic was routed.
        self._served: list[dict[str, int]] = [{} for _ in self._shards]

    def __len__(self) -> int:
        return len(self._shards)

    def shard_of(self, digest: str) -> int:
        return shard_of(digest, len(self._shards))

    # -- dispatch --------------------------------------------------------
    def submit(
        self,
        digest: str,
        requests: Sequence[SolveRequest],
        *,
        deadlines_s: Sequence[float | None] | None = None,
    ) -> list[Any]:
        """Admit and dispatch one digest's requests to its home shard.

        Requests must carry detached handles (workers resolve the graph
        from the shared store).  Returns the supervisor's per-request
        outcome futures; raises :class:`Overloaded` when the digest's
        outstanding count would exceed ``queue_limit``.
        """
        reqs = list(requests)
        with self._lock:
            outstanding = self._in_flight.get(digest, 0)
            if outstanding + len(reqs) > self.queue_limit:
                raise Overloaded(
                    digest, outstanding, self.queue_limit, self.retry_after_s
                )
            self._in_flight[digest] = outstanding + len(reqs)
            served = self._served[self.shard_of(digest)]
            served[digest] = served.get(digest, 0) + len(reqs)
        shard = self._shards[self.shard_of(digest)]
        try:
            futures = shard.submit_group(
                _execute_group,
                (self.store_root, None, digest, reqs),
                digest=digest,
                algorithms=[r.algorithm for r in reqs],
                deadlines_s=deadlines_s,
            )
        except BaseException:
            with self._lock:
                self._release(digest, len(reqs))
            raise
        for fut in futures:
            fut.add_done_callback(lambda _f, d=digest: self._on_done(d))
        return futures

    def _release(self, digest: str, k: int) -> None:
        left = self._in_flight.get(digest, 0) - k
        if left > 0:
            self._in_flight[digest] = left
        else:
            self._in_flight.pop(digest, None)

    def _on_done(self, digest: str) -> None:
        with self._lock:
            self._release(digest, 1)

    # -- introspection ---------------------------------------------------
    def probe(self, timeout_s: float = 30.0) -> list[dict[str, Any]]:
        """Ask each shard's worker what it holds (pid, graphs, cache).

        Runs inside the worker process, so the answer is the ground
        truth the co-location tests assert against — not daemon-side
        bookkeeping.
        """
        futures = [
            shard.submit_group(
                _probe_group,
                (self.store_root,),
                digest=f"__probe_{i}__",
                algorithms=["__probe__"],
            )[0]
            for i, shard in enumerate(self._shards)
        ]
        out = []
        for i, fut in enumerate(futures):
            tag, payload = fut.result(timeout=timeout_s)
            if tag != "ok":
                raise payload
            out.append({"shard": i, **payload})
        return out

    def stats(self) -> dict[str, Any]:
        """Routing and supervision counters, JSON-shaped."""
        with self._lock:
            in_flight = dict(self._in_flight)
            served = [dict(s) for s in self._served]
        return {
            "shards": [
                {
                    "shard": i,
                    "served": served[i],
                    "supervisor": self._shards[i].stats(),
                }
                for i in range(len(self._shards))
            ],
            "in_flight": in_flight,
            "queue_limit": self.queue_limit,
        }

    def shutdown(self, wait: bool = True, cancel_pending: bool = False) -> None:
        for shard in self._shards:
            shard.shutdown(wait=wait, cancel_pending=cancel_pending)


def _probe_group(store_root: str, attempt: int = 0) -> list[tuple[str, Any]]:
    """Worker-side probe: report this process's resident graphs/cache."""
    from repro.api import workspace as _workspace

    cache = _workspace._WORKER_CACHES.get(store_root)
    return [
        (
            "ok",
            {
                "pid": os.getpid(),
                "graphs": list(_workspace._WORKER_GRAPHS),
                "cache": None if cache is None else cache.stats(),
            },
        )
    ]
