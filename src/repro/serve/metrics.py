"""Per-solver request counters and bounded latency reservoirs.

The daemon records one observation per served request — solver name,
wall seconds, and whether it succeeded — into a fixed-size ring per
solver.  ``snapshot()`` renders the counters plus p50/p95/p99 over the
retained window; keeping the reservoir bounded means a week-long daemon
answers ``/v1/status`` in O(window log window) regardless of how many
requests it has served.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Any

__all__ = ["LatencyTracker", "percentile"]

#: Retained samples per solver (newest-wins ring).
DEFAULT_WINDOW = 2048


def percentile(samples: list[float], q: float) -> float:
    """The nearest-rank ``q``-quantile of a non-empty sample."""
    if not samples:
        raise ValueError("percentile of an empty sample")
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


class LatencyTracker:
    """Thread-safe per-key counts, failures, and latency percentiles."""

    def __init__(self, window: int = DEFAULT_WINDOW):
        self._window = int(window)
        self._lock = threading.Lock()
        self._samples: dict[str, deque[float]] = {}
        self._total: dict[str, int] = {}
        self._failed: dict[str, int] = {}
        self.overloaded = 0

    def observe(self, key: str, seconds: float, ok: bool = True) -> None:
        """Record one served request for ``key``."""
        with self._lock:
            ring = self._samples.get(key)
            if ring is None:
                ring = self._samples[key] = deque(maxlen=self._window)
            ring.append(float(seconds))
            self._total[key] = self._total.get(key, 0) + 1
            if not ok:
                self._failed[key] = self._failed.get(key, 0) + 1

    def count_overload(self) -> None:
        """Record one admission rejection (503) — no latency sample."""
        with self._lock:
            self.overloaded += 1

    def snapshot(self) -> dict[str, Any]:
        """Counters plus windowed latency percentiles, JSON-shaped."""
        with self._lock:
            keys = sorted(self._total)
            totals = dict(self._total)
            failed = dict(self._failed)
            rings = {k: sorted(self._samples[k]) for k in keys}
            overloaded = self.overloaded
        latency = {}
        for key in keys:
            samples = rings[key]
            if samples:
                latency[key] = {
                    "count": len(samples),
                    "p50_ms": percentile(samples, 0.50) * 1e3,
                    "p95_ms": percentile(samples, 0.95) * 1e3,
                    "p99_ms": percentile(samples, 0.99) * 1e3,
                }
        return {
            "requests": {
                "total": sum(totals.values()),
                "failed": sum(failed.values()),
                "overloaded": overloaded,
                "by_solver": {
                    k: {"total": totals[k], "failed": failed.get(k, 0)}
                    for k in keys
                },
            },
            "latency_ms": latency,
        }
