"""Theorem 10 — distributed connected distance-r dominating set (CONGEST_BC).

Pipeline: order (for parameter 2r+1) -> WReachDist with horizon 2r+1 ->
election with the r-restricted minima (as in Theorem 9) -> **join
phase**: every dominator v routes a "join" token along its stored path
to every ``w ∈ WReach_{2r+1}[G, L, v]``; every vertex a token passes
through (and both endpoints) enters D'.

Corollary 13 proves D' is a connected distance-r dominating set: two
dominators within distance 2r+1 both weakly (2r+1)-reach the L-least
vertex of a connecting path (Lemma 12), so their added paths meet, and
Lemma 11 chains this connectivity across the whole (connected) graph.
Size: ``|D'| <= c' * (2r + 2) * |D|`` with ``c' = max |WReach_{2r+1}|``
— the measured bound experiment T5 reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributed.domset_bc import run_election
from repro.distributed.engine import (
    BatchContext,
    BatchEmission,
    TokenRoutingBatch,
    pick_deployment,
)
from repro.distributed.model import Model, merge_phase_stats
from repro.distributed.network import Network, RunResult
from repro.distributed.nd_order import OrderComputation, distributed_h_partition_order
from repro.distributed.node import Inbox, NodeAlgorithm, NodeContext
from repro.distributed.wreach_bc import WReachOutput, run_wreach_bc
from repro.errors import SimulationError
from repro.graphs.graph import Graph

__all__ = [
    "JoinNode",
    "JoinBatch",
    "DistributedConnectedDomSet",
    "run_connect_bc",
    "run_join",
]

#: ``payload_words("join")`` — the tag of every join message.
_TAG_WORDS = 1
#: Padding value in the fixed-width token matrix (not a vertex id).
_PAD = -1


class JoinNode(NodeAlgorithm):
    """Join-token routing: dominators pull all their stored paths into D'."""

    def __init__(self, radius: int, in_domset: bool) -> None:
        super().__init__()
        self.radius = radius
        self.in_dprime = in_domset
        self.is_dominator = in_domset
        self.round_no = 0

    def on_start(self, ctx: NodeContext):
        if not self.is_dominator:
            return None
        out: WReachOutput = ctx.advice["wreach_outputs"][ctx.node]
        # path = (u, ..., self); everyone on it must join D'.  Dedup in
        # a set and sort, so the stored-path dict's iteration order
        # never reaches the emission.
        tokens = sorted({path[:-1] for path in out.paths.values()})
        if not tokens:
            return None
        return ("join", tuple(tokens))

    def on_round(self, ctx: NodeContext, inbox: Inbox):
        self.round_no += 1
        forward: list[tuple[int, ...]] = []
        for _src, msg in inbox:
            if not (isinstance(msg, tuple) and len(msg) == 2 and msg[0] == "join"):
                continue
            for token in msg[1]:
                if token[-1] != ctx.node:
                    continue
                self.in_dprime = True
                if len(token) > 1:
                    forward.append(token[:-1])
        if self.round_no >= 2 * self.radius + 1:
            self.halted = True
            return None
        if not forward:
            return None
        return ("join", tuple(sorted(set(forward))))

    def output(self) -> dict:
        return {"in_dprime": self.in_dprime, "is_dominator": self.is_dominator}


class JoinBatch(TokenRoutingBatch):
    """Join-token routing over a flat token table (port of :class:`JoinNode`).

    Same :class:`~repro.distributed.engine.TokenRouter` mechanic as the
    election port, with the join semantics: *every* hop a token reaches
    enters D' (not only the final one), length-1 tokens stop, longer
    ones are truncated and re-sent, and everything halts at the fixed
    ``2r + 1`` budget.  Outputs and round statistics are bit-identical
    to the per-node reference.
    """

    tag_words = _TAG_WORDS

    def __init__(self, radius: int, in_domset: np.ndarray) -> None:
        super().__init__(width=max(2 * radius + 1, 1))
        self.radius = radius
        self.is_dominator = np.asarray(in_domset, dtype=bool)
        self.in_dprime: np.ndarray | None = None

    def on_start(self, ctx: BatchContext) -> BatchEmission | None:
        n = ctx.n
        outs: list[WReachOutput] = ctx.advice["wreach_outputs"]
        self.halted = np.zeros(n, dtype=bool)
        self.in_dprime = self.is_dominator.copy()
        tok_src: list[int] = []
        tok_rows: list[tuple[int, ...]] = []
        for v in np.flatnonzero(self.is_dominator).tolist():
            # Same dedup-and-sort as the per-node start, so the stored-
            # path dict's iteration order never reaches the emission.
            for t in sorted({path[:-1] for path in outs[v].paths.values()}):
                tok_src.append(v)
                tok_rows.append(t)
        senders = np.asarray(tok_src, dtype=np.int64)
        lens = np.asarray([len(t) for t in tok_rows], dtype=np.int64)
        rows = np.full((len(tok_rows), self.router.width), _PAD, dtype=np.int64)
        for i, t in enumerate(tok_rows):
            rows[i, : len(t)] = t
        return self.seed(senders, lens, rows)

    def on_round(self, ctx: BatchContext, round_index: int) -> BatchEmission | None:
        assert self.in_dprime is not None
        # Deliver: every addressed hop joins D'; tokens longer than one
        # entry continue backward.
        recv = self.router.receivers()
        if len(recv):
            self.in_dprime[recv] = True
            fwd = self.router.lens > 1
        else:
            fwd = np.zeros(0, dtype=bool)
        if round_index >= 2 * self.radius + 1:
            self.halted[:] = True
            self.router.clear()
            return None
        return self.router.advance(fwd)

    def outputs(self, ctx: BatchContext) -> dict[int, dict]:
        assert self.in_dprime is not None
        dp = self.in_dprime.tolist()
        dom = self.is_dominator.tolist()
        return {
            v: {"in_dprime": dp[v], "is_dominator": dom[v]} for v in range(ctx.n)
        }


def run_join(
    g: Graph,
    radius: int,
    in_domset: np.ndarray,
    wreach_outputs: list[WReachOutput],
    engine: str = "batch",
    wave_width: int = 0,
) -> tuple[dict[int, dict], RunResult]:
    """Run the Theorem-10 join phase on precomputed election results.

    ``in_domset`` is the per-vertex dominator mask from the election
    phase; ``wave_width`` > 0 executes independent token components as
    pipelined waves on the batch engine (identical results).
    """
    ind = np.asarray(in_domset, dtype=bool)
    factory = pick_deployment(
        engine,
        lambda: JoinBatch(radius, ind),
        lambda v: JoinNode(radius, bool(ind[v])),
    )
    net = Network(
        g,
        Model.CONGEST_BC,
        factory,
        advice={"wreach_outputs": wreach_outputs},
        wave_width=wave_width,
    )
    res = net.run()
    return res.outputs, res


@dataclass(frozen=True)
class DistributedConnectedDomSet:
    """Theorem-10 pipeline result."""

    connected_set: tuple[int, ...]
    dominators: tuple[int, ...]
    radius: int
    order: OrderComputation
    phase_rounds: dict[str, int]
    phase_max_words: dict[str, int]
    total_words: int

    @property
    def size(self) -> int:
        return len(self.connected_set)

    @property
    def blowup(self) -> float:
        return self.size / len(self.dominators) if self.dominators else 0.0

    @property
    def total_rounds(self) -> int:
        return sum(self.phase_rounds.values())


def run_connect_bc(
    g: Graph,
    radius: int,
    order_computation: OrderComputation | None = None,
    engine: str = "batch",
    wave_width: int = 0,
) -> DistributedConnectedDomSet:
    """Full Theorem-10 pipeline in CONGEST_BC.

    ``engine`` selects the simulator path of all four phases (vectorized
    ``"batch"`` by default, per-node ``"pernode"``), and ``wave_width``
    > 0 runs the election and join phases' independent token components
    as pipelined waves on the batch engine; results and accounting are
    identical either way.
    """
    if radius < 0:
        raise SimulationError("radius must be >= 0")
    oc = order_computation or distributed_h_partition_order(g, engine=engine)
    horizon = 2 * radius + 1
    wouts, wres = run_wreach_bc(g, oc.class_ids, horizon, engine=engine)
    eouts, eres = run_election(
        g, oc.class_ids, wouts, radius, engine=engine, wave_width=wave_width
    )
    in_domset = np.fromiter(
        (eouts[v]["in_domset"] for v in range(g.n)), dtype=bool, count=g.n
    )
    jouts, jres = run_join(
        g, radius, in_domset, wouts, engine=engine, wave_width=wave_width
    )
    dprime = tuple(sorted(v for v in range(g.n) if jouts[v]["in_dprime"]))
    dominators = tuple(sorted(np.flatnonzero(in_domset).tolist()))
    phase_rounds, phase_max_words, total_words = merge_phase_stats(
        {"order": oc, "wreach": wres, "election": eres, "join": jres}
    )
    return DistributedConnectedDomSet(
        connected_set=dprime,
        dominators=dominators,
        radius=radius,
        order=oc,
        phase_rounds=phase_rounds,
        phase_max_words=phase_max_words,
        total_words=total_words,
    )
