"""Theorem 10 — distributed connected distance-r dominating set (CONGEST_BC).

Pipeline: order (for parameter 2r+1) -> WReachDist with horizon 2r+1 ->
election with the r-restricted minima (as in Theorem 9) -> **join
phase**: every dominator v routes a "join" token along its stored path
to every ``w ∈ WReach_{2r+1}[G, L, v]``; every vertex a token passes
through (and both endpoints) enters D'.

Corollary 13 proves D' is a connected distance-r dominating set: two
dominators within distance 2r+1 both weakly (2r+1)-reach the L-least
vertex of a connecting path (Lemma 12), so their added paths meet, and
Lemma 11 chains this connectivity across the whole (connected) graph.
Size: ``|D'| <= c' * (2r + 2) * |D|`` with ``c' = max |WReach_{2r+1}|``
— the measured bound experiment T5 reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.distributed.domset_bc import run_election
from repro.distributed.model import Model
from repro.distributed.network import Network
from repro.distributed.nd_order import OrderComputation, distributed_h_partition_order
from repro.distributed.node import Inbox, NodeAlgorithm, NodeContext
from repro.distributed.wreach_bc import WReachOutput, run_wreach_bc
from repro.errors import SimulationError
from repro.graphs.graph import Graph

__all__ = ["JoinNode", "DistributedConnectedDomSet", "run_connect_bc"]


class JoinNode(NodeAlgorithm):
    """Join-token routing: dominators pull all their stored paths into D'."""

    def __init__(self, radius: int, in_domset: bool) -> None:
        super().__init__()
        self.radius = radius
        self.in_dprime = in_domset
        self.is_dominator = in_domset
        self.round_no = 0

    def on_start(self, ctx: NodeContext):
        if not self.is_dominator:
            return None
        out: WReachOutput = ctx.advice["wreach_outputs"][ctx.node]
        # path = (u, ..., self); everyone on it must join D'.  Dedup in
        # a set and sort, so the stored-path dict's iteration order
        # never reaches the emission.
        tokens = sorted({path[:-1] for path in out.paths.values()})
        if not tokens:
            return None
        return ("join", tuple(tokens))

    def on_round(self, ctx: NodeContext, inbox: Inbox):
        self.round_no += 1
        forward: list[tuple[int, ...]] = []
        for _src, msg in inbox:
            if not (isinstance(msg, tuple) and len(msg) == 2 and msg[0] == "join"):
                continue
            for token in msg[1]:
                if token[-1] != ctx.node:
                    continue
                self.in_dprime = True
                if len(token) > 1:
                    forward.append(token[:-1])
        if self.round_no >= 2 * self.radius + 1:
            self.halted = True
            return None
        if not forward:
            return None
        return ("join", tuple(sorted(set(forward))))

    def output(self) -> dict:
        return {"in_dprime": self.in_dprime, "is_dominator": self.is_dominator}


@dataclass(frozen=True)
class DistributedConnectedDomSet:
    """Theorem-10 pipeline result."""

    connected_set: tuple[int, ...]
    dominators: tuple[int, ...]
    radius: int
    order: OrderComputation
    phase_rounds: dict[str, int]
    phase_max_words: dict[str, int]
    total_words: int

    @property
    def size(self) -> int:
        return len(self.connected_set)

    @property
    def blowup(self) -> float:
        return self.size / len(self.dominators) if self.dominators else 0.0

    @property
    def total_rounds(self) -> int:
        return sum(self.phase_rounds.values())


def run_connect_bc(
    g: Graph,
    radius: int,
    order_computation: OrderComputation | None = None,
    engine: str = "batch",
) -> DistributedConnectedDomSet:
    """Full Theorem-10 pipeline in CONGEST_BC.

    ``engine`` selects the simulator path of the order / WReachDist /
    election phases (identical results either way); the join phase has
    no batch port yet and always runs per-node.
    """
    if radius < 0:
        raise SimulationError("radius must be >= 0")
    oc = order_computation or distributed_h_partition_order(g, engine=engine)
    horizon = 2 * radius + 1
    wouts, wres = run_wreach_bc(g, oc.class_ids, horizon, engine=engine)
    eouts, eres = run_election(g, oc.class_ids, wouts, radius, engine=engine)
    in_domset = {v: eouts[v]["in_domset"] for v in range(g.n)}
    net = Network(
        g,
        Model.CONGEST_BC,
        lambda v: JoinNode(radius, in_domset[v]),
        advice={"wreach_outputs": wouts},
    )
    jres = net.run()
    dprime = tuple(sorted(v for v in range(g.n) if jres.outputs[v]["in_dprime"]))
    dominators = tuple(sorted(v for v in range(g.n) if in_domset[v]))
    return DistributedConnectedDomSet(
        connected_set=dprime,
        dominators=dominators,
        radius=radius,
        order=oc,
        phase_rounds={
            "order": oc.rounds,
            "wreach": wres.rounds,
            "election": eres.rounds,
            "join": jres.rounds,
        },
        phase_max_words={
            "order": oc.max_payload_words,
            "wreach": wres.max_payload_words,
            "election": eres.max_payload_words,
            "join": jres.max_payload_words,
        },
        total_words=oc.total_words + wres.total_words + eres.total_words + jres.total_words,
    )
