"""Communication models and message-size accounting.

The paper's models (Section 2):

* **LOCAL** — per-round, per-edge messages of arbitrary size;
* **CONGEST** — per-round, per-edge messages of O(log n) bits;
* **CONGEST_BC** — per round each vertex *broadcasts* one O(log n)-bit
  message to all neighbors.

We measure payloads in *words*, where one word is an O(log n)-bit unit
(a vertex id, a class id, a small counter).  A CONGEST(-BC) algorithm
that sends a k-word payload in one logical round is accounted as
``ceil(k / words_per_round)`` *normalized* rounds — the standard
pipelining argument; the paper's O(r^2 log n) bounds absorb exactly this
factor (message size O(c^2 r log n) is noted after Theorem 3).  The
simulator reports both logical and normalized rounds so claims can be
checked without hiding constants.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import ModelViolation

__all__ = ["Model", "payload_words", "normalized_rounds"]


class Model(enum.Enum):
    """The three message-passing models used in the paper."""

    LOCAL = "LOCAL"
    CONGEST = "CONGEST"
    CONGEST_BC = "CONGEST_BC"

    @property
    def broadcast_only(self) -> bool:
        return self is Model.CONGEST_BC

    @property
    def bounded_bandwidth(self) -> bool:
        return self is not Model.LOCAL


def payload_words(payload: Any) -> int:
    """Size of a payload in O(log n)-bit words.

    Scalars (ints, floats, bools, None, enum members) count as one word;
    strings count one word per 4 characters (tags are short); containers
    are the sum of their elements plus nothing for structure (the
    receiver can parse a self-delimiting encoding within constant
    overhead per element, which we fold into the word).
    Objects may define ``__words__()`` to self-report.
    """
    if payload is None or isinstance(payload, (bool, int, float, enum.Enum)):
        return 1
    if isinstance(payload, str):
        return max(1, (len(payload) + 3) // 4)
    if isinstance(payload, (tuple, list, set, frozenset)):
        return sum(payload_words(x) for x in payload) if payload else 1
    if isinstance(payload, dict):
        if not payload:
            return 1
        return sum(payload_words(k) + payload_words(v) for k, v in payload.items())
    words = getattr(payload, "__words__", None)
    if callable(words):
        return int(words())
    raise ModelViolation(f"cannot size payload of type {type(payload).__name__}")


def normalized_rounds(max_words_per_round: list[int], words_per_round: int) -> int:
    """Bandwidth-normalized round count for a run.

    ``max_words_per_round[i]`` is the largest single payload sent in
    logical round i; a round costs ``ceil(max / words_per_round)``
    normalized rounds (all oversized messages pipeline in parallel).
    Rounds with no messages still cost one round (synchronous model).
    """
    if words_per_round < 1:
        raise ModelViolation("words_per_round must be >= 1")
    total = 0
    for w in max_words_per_round:
        total += max(1, -(-w // words_per_round))
    return total
