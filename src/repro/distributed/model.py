"""Communication models and message-size accounting.

The paper's models (Section 2):

* **LOCAL** — per-round, per-edge messages of arbitrary size;
* **CONGEST** — per-round, per-edge messages of O(log n) bits;
* **CONGEST_BC** — per round each vertex *broadcasts* one O(log n)-bit
  message to all neighbors.

We measure payloads in *words*, where one word is an O(log n)-bit unit
(a vertex id, a class id, a small counter).  A CONGEST(-BC) algorithm
that sends a k-word payload in one logical round is accounted as
``ceil(k / words_per_round)`` *normalized* rounds — the standard
pipelining argument; the paper's O(r^2 log n) bounds absorb exactly this
factor (message size O(c^2 r log n) is noted after Theorem 3).  The
simulator reports both logical and normalized rounds so claims can be
checked without hiding constants.

Algorithm code is held to these models statically as well:
:mod:`repro.lint` rejects protocols that step outside the node contract
or let nondeterminism reach an emission (README, "Static analysis").
"""

from __future__ import annotations

import enum
from typing import Any, Mapping

from repro.errors import ModelViolation

__all__ = ["Model", "payload_words", "normalized_rounds", "merge_phase_stats"]


class Model(enum.Enum):
    """The three message-passing models used in the paper."""

    LOCAL = "LOCAL"
    CONGEST = "CONGEST"
    CONGEST_BC = "CONGEST_BC"

    @property
    def broadcast_only(self) -> bool:
        return self is Model.CONGEST_BC

    @property
    def bounded_bandwidth(self) -> bool:
        return self is not Model.LOCAL


def payload_words(payload: Any, memo: dict | None = None) -> int:
    """Size of a payload in O(log n)-bit words.

    Scalars (ints, floats, bools, None, enum members) count as one word;
    strings count one word per 4 characters (tags are short); containers
    are the sum of their elements plus nothing for structure (the
    receiver can parse a self-delimiting encoding within constant
    overhead per element, which we fold into the word).
    Objects may define ``__words__()`` to self-report.

    ``memo`` (id -> ``(payload, words)``) caches the sizes of
    *recursively immutable* payloads — tag strings, super-id tuples,
    stored paths — across calls.  Message-heavy protocols re-broadcast
    the same frozen sub-objects round after round; with a memo each is
    recursed into once per object instead of once per appearance.  A
    tuple is only cached when every element is itself frozen (a tuple
    wrapping a list could grow behind the memo's back), and entries
    keep a strong reference to the sized object so a recycled ``id``
    can never alias a stale size (the caller bounds the memo's
    lifetime, e.g. one simulation round).
    """
    if memo is None:
        return _payload_words_plain(payload)
    return _payload_words_memo(payload, memo)[0]


def _payload_words_plain(payload: Any) -> int:
    if payload is None or isinstance(payload, (bool, int, float, enum.Enum)):
        return 1
    if isinstance(payload, str):
        return max(1, (len(payload) + 3) // 4)
    if isinstance(payload, (tuple, list, set, frozenset)):
        return sum(_payload_words_plain(x) for x in payload) if payload else 1
    if isinstance(payload, dict):
        if not payload:
            return 1
        return sum(
            _payload_words_plain(k) + _payload_words_plain(v)
            for k, v in payload.items()
        )
    words = getattr(payload, "__words__", None)
    if callable(words):
        return int(words())
    raise ModelViolation(f"cannot size payload of type {type(payload).__name__}")


def _payload_words_memo(payload: Any, memo: dict) -> tuple[int, bool]:
    """(words, recursively-immutable?) with memoized frozen containers."""
    if payload is None or isinstance(payload, (bool, int, float, enum.Enum)):
        return 1, True
    if isinstance(payload, str):
        return max(1, (len(payload) + 3) // 4), True
    if isinstance(payload, (tuple, frozenset)):
        hit = memo.get(id(payload))  # reprolint: ignore[D204] -- identity memo: strong ref kept (hit[0] is payload guard), never ordered or emitted
        if hit is not None and hit[0] is payload:
            return hit[1], True
        if not payload:
            memo[id(payload)] = (payload, 1)  # reprolint: ignore[D204] -- identity memo: strong ref kept, caller bounds lifetime to one round
            return 1, True
        total = 0
        frozen = True
        for x in payload:
            w, f = _payload_words_memo(x, memo)
            total += w
            frozen &= f
        if frozen:
            memo[id(payload)] = (payload, total)  # reprolint: ignore[D204] -- identity memo: strong ref kept, caller bounds lifetime to one round
        return total, frozen
    if isinstance(payload, (list, set)):
        total = sum(_payload_words_memo(x, memo)[0] for x in payload) if payload else 1
        return total, False
    if isinstance(payload, dict):
        if not payload:
            return 1, False
        return (
            sum(
                _payload_words_memo(k, memo)[0] + _payload_words_memo(v, memo)[0]
                for k, v in payload.items()
            ),
            False,
        )
    words = getattr(payload, "__words__", None)
    if callable(words):
        return int(words()), False
    raise ModelViolation(f"cannot size payload of type {type(payload).__name__}")


def merge_phase_stats(
    phases: Mapping[str, Any],
) -> tuple[dict[str, int], dict[str, int], int]:
    """Fold named phase results into pipeline-level accounting.

    Every phased runner (Theorem 8/9/10) sums the same three things over
    its sub-protocol runs: per-phase logical rounds, per-phase maximum
    payload, and the grand total words.  Each value in ``phases`` only
    needs ``rounds`` / ``max_payload_words`` / ``total_words``
    attributes (``RunResult`` and ``OrderComputation`` both qualify);
    insertion order of ``phases`` is the phase order of the pipeline.

    Returns ``(phase_rounds, phase_max_words, total_words)``.
    """
    phase_rounds = {name: int(res.rounds) for name, res in phases.items()}
    phase_max_words = {
        name: int(res.max_payload_words) for name, res in phases.items()
    }
    total_words = sum(int(res.total_words) for res in phases.values())
    return phase_rounds, phase_max_words, total_words


def normalized_rounds(max_words_per_round: list[int], words_per_round: int) -> int:
    """Bandwidth-normalized round count for a run.

    ``max_words_per_round[i]`` is the largest single payload sent in
    logical round i; a round costs ``ceil(max / words_per_round)``
    normalized rounds (all oversized messages pipeline in parallel).
    Rounds with no messages still cost one round (synchronous model).
    """
    if words_per_round < 1:
        raise ModelViolation("words_per_round must be >= 1")
    total = 0
    for w in max_words_per_round:
        total += max(1, -(-w // words_per_round))
    return total
