"""Lenzen–Pignolet–Wattenhofer-style planar MDS in constant LOCAL rounds.

The constant-round, constant-factor planar MDS algorithm of [36] (with
the tightened analysis of Wawrzyniak [57]) is the front-end the paper
composes with Theorem 17 to get constant-round connected dominating
sets on planar graphs.  Two phases, both purely local decisions:

* **Phase 1 (pair-domination rule).**  v joins ``D1`` iff no two other
  vertices dominate v's open neighborhood:
  ``¬ ∃ u1, u2 ≠ v : N(v) ⊆ N[u1] ∪ N[u2]``.
  On a planar graph |D1| = O(OPT) — the classic argument: a vertex
  whose neighborhood cannot be covered by two others forces structure
  that planarity only allows O(1) times per optimum vertex.

* **Phase 2 (residual-span election).**  Every vertex w still
  undominated by ``N[D1]`` elects from ``N[w]`` the vertex of maximum
  *residual span* ``|N[y] \\ N[D1]|`` (ties to the smaller id); elected
  vertices form ``D2``.  Output ``D = D1 ∪ D2``.

Every decision depends only on the radius-7 ball (phase-1 rules of
vertices within distance 4 feed phase-2 elections; see the locality
audit in the tests), so the whole algorithm is 7 LOCAL rounds via
:mod:`repro.distributed.local_engine` — constant, as [36] claims.  The
approximation factor is *measured* (T8) rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.distributed.local_engine import BallInfo, run_local_algorithm
from repro.graphs.graph import Graph

__all__ = ["lenzen_planar_mds", "LenzenResult", "GATHER_RADIUS"]

#: Ball radius that makes both phases pure functions of local knowledge.
GATHER_RADIUS = 7


@dataclass(frozen=True)
class LenzenResult:
    dominators: tuple[int, ...]
    d1: tuple[int, ...]
    d2: tuple[int, ...]
    rounds: int

    @property
    def size(self) -> int:
        return len(self.dominators)


def _neighbors_map(ball: BallInfo) -> dict[int, set[int]]:
    adj: dict[int, set[int]] = {v: set() for v in ball.vertices}
    for a, b in ball.edges:
        adj[a].add(b)
        adj[b].add(a)
    return adj


def _in_d1(adj: dict[int, set[int]], x: int) -> bool:
    """Phase-1 rule for x; only valid when ``N_3[x]`` is inside the ball."""
    open_n = adj[x]
    if not open_n:
        return False  # isolated: coverable vacuously; phase 2 self-elects
    # Candidate dominators: vertices whose closed neighborhood meets N(x).
    candidates: set[int] = set()
    for w in open_n:
        candidates.add(w)
        candidates.update(adj[w])
    candidates.discard(x)
    for u1 in sorted(candidates):
        rest = open_n - adj[u1] - {u1}
        if not rest:
            return False  # u1 alone covers N(x)
        w0 = min(rest)
        for u2 in sorted(adj[w0] | {w0}):
            if u2 == x:
                continue
            if rest <= (adj[u2] | {u2}):
                return False
    return True


def _node_rule(ball: BallInfo) -> dict:
    """Decide D1/D2 membership of the center from its radius-7 ball."""
    adj = _neighbors_map(ball)
    me = ball.center
    # Distances within the ball (true distances up to the ball radius).
    dist = {me: 0}
    frontier = [me]
    d = 0
    while frontier:
        nxt = []
        for x in frontier:
            for y in adj[x]:
                if y not in dist:
                    dist[y] = d + 1
                    nxt.append(y)
        frontier = sorted(nxt)
        d += 1

    def ball_members(radius: int) -> list[int]:
        return [v for v, dd in dist.items() if dd <= radius]

    # Phase-1 flags for everything within distance 4 (their N_3 is known).
    d1_flags: dict[int, bool] = {}
    for x in ball_members(4):
        d1_flags[x] = _in_d1(adj, x)

    def dominated(w: int) -> bool:
        """w dominated by N[D1]?  Needs D1 flags on N[w] (dist <= 4 ok)."""
        if d1_flags.get(w, False):
            return True
        return any(d1_flags.get(y, False) for y in adj[w])

    def span(y: int) -> int:
        """Residual span |N[y] \\ N[D1]| (valid for dist(y) <= 2)."""
        return sum(1 for z in (adj[y] | {y}) if not dominated(z))

    in_d1 = d1_flags[me]
    # Phase 2: me is elected iff some undominated w in N[me] picks me.
    in_d2 = False
    if not in_d1:
        for w in sorted(adj[me] | {me}):
            if dist[w] > 1:
                continue
            if dominated(w):
                continue
            cands = sorted(adj[w] | {w})
            elected = max(cands, key=lambda y: (span(y), -y))
            if elected == me:
                in_d2 = True
                break
    return {"d1": in_d1, "d2": in_d2}


def lenzen_planar_mds(g: Graph, mode: str = "oracle") -> LenzenResult:
    """Run the two-phase planar MDS algorithm in ``GATHER_RADIUS`` LOCAL rounds."""
    outputs, rounds = run_local_algorithm(g, GATHER_RADIUS, _node_rule, mode=mode)
    d1 = tuple(sorted(v for v, o in outputs.items() if o["d1"]))
    d2 = tuple(sorted(v for v, o in outputs.items() if o["d2"]))
    dom = tuple(sorted(set(d1) | set(d2)))
    return LenzenResult(dominators=dom, d1=d1, d2=d2, rounds=rounds)
