"""Distributed redundancy pruning in the LOCAL model (extension).

The sequential pruning of :mod:`repro.core.prune` removes dominators one
at a time, which is inherently sequential.  The distributed variant
removes in parallel but avoids conflicts with a local priority rule:

In each phase, a dominator v leaves D iff

* every vertex of ``N_r[v]`` has at least 2 dominators in its r-ball
  (v is redundant), **and**
* v has the highest priority ``(degree, id)`` among redundant
  dominators within distance 2r (two redundant dominators at distance
  <= 2r might each be the other's second cover; removing both could
  break domination, so only the local priority winner leaves).

Each phase reads the radius-2r ball (dominator flags + current cover
counts are determined by D within distance 2r), i.e. ``2r`` LOCAL
rounds per phase; the process reaches a fixpoint in at most |D| phases
and in practice in a handful.  The output remains a valid distance-r
dominating set after *every* phase — an anytime algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.traversal import ball

__all__ = ["local_prune", "LocalPruneResult"]


@dataclass(frozen=True)
class LocalPruneResult:
    dominators: tuple[int, ...]
    phases: int
    local_rounds: int  # 2r rounds per phase
    removed: int


def local_prune(
    g: Graph, dominators: Iterable[int], radius: int, max_phases: int | None = None
) -> LocalPruneResult:
    """Run parallel local pruning to a fixpoint (or ``max_phases``)."""
    if radius < 0:
        raise GraphError("radius must be >= 0")
    current = set(int(v) for v in dominators)
    if not current and g.n:
        raise GraphError("empty dominating set cannot be pruned")
    balls = {v: ball(g, v, radius) for v in current}
    cover = np.zeros(g.n, dtype=np.int64)
    for v in current:
        cover[balls[v]] += 1
    if g.n and np.any(cover == 0):
        raise GraphError("input is not a distance-r dominating set")
    phases = 0
    removed_total = 0
    limit = len(current) if max_phases is None else max_phases
    while phases < max(1, limit):
        phases += 1
        redundant = {
            v for v in current if bool(np.all(cover[balls[v]] >= 2))
        }
        if not redundant:
            phases -= 1  # the empty check phase is free: nothing changed
            break
        # Priority winners: highest (degree, id) among redundant within 2r.
        winners = []
        for v in redundant:
            reach = ball(g, v, 2 * radius) if radius > 0 else np.asarray([v])
            rivals = [u for u in reach if int(u) in redundant]
            best = max(rivals, key=lambda u: (g.degree(int(u)), int(u)))
            if int(best) == v:
                winners.append(v)
        if not winners:  # pragma: no cover - a max always exists
            break
        for v in winners:
            current.discard(v)
            cover[balls[v]] -= 1
            removed_total += 1
    return LocalPruneResult(
        dominators=tuple(sorted(current)),
        phases=phases,
        local_rounds=phases * max(1, 2 * radius),
        removed=removed_total,
    )
