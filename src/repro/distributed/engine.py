"""Batch round engine: vectorized execution of homogeneous protocols.

The paper's CONGEST_BC protocols are *homogeneous* — every vertex runs
the same small state machine per phase — which admits structure-of-
arrays execution: one :class:`BatchAlgorithm` instance holds the state
of *all* n vertices in flat numpy arrays (halted flags, counters, class
ids, candidate tables as CSR-style slices) and advances a whole round
with array operations instead of n Python method calls.

Messages never become per-node inboxes here.  A protocol keeps its
in-flight traffic as flat arrays (payload rows indexed by id, a
``(src, payload-id)`` pair per broadcast) and "delivers" by CSR fan-out
(:meth:`BatchContext.fan_out`).  What the engine needs for accounting
is only the :class:`BatchEmission` of each round: which vertices
broadcast and how many words each payload measures.  From the emission
it reproduces exactly the :class:`~repro.distributed.network.RoundStats`
the per-node path computes — ``total_words`` weights each payload by
its fan-out (per-edge accounting), ``broadcast_words`` counts each
payload once (distinct-broadcast accounting), and isolated senders are
dropped just as ``Network._collect`` drops broadcasts with no incident
edge.

The contract mirrors :class:`~repro.distributed.node.NodeAlgorithm`
round for round, so a batch port of a per-node protocol produces
bit-identical outputs *and* round/traffic statistics (pinned by
``tests/test_batch_engine_parity.py``):

* ``on_start(ctx)`` — round 0: initialize the state arrays, return the
  first emission (or ``None``);
* ``on_round(ctx, round_index)`` — consume the previous round's
  in-flight traffic (the algorithm's own arrays), transition, return
  this round's emission;
* ``halted`` — boolean array; the engine stops when every vertex has
  halted and nothing was emitted;
* ``outputs(ctx)`` — per-vertex final outputs, same objects the
  per-node original produces.

The engine is broadcast-shaped: an emission is one payload per sender,
heard by the whole neighborhood (the CONGEST_BC primitive).  Protocols
needing point-to-point addressing stay on the per-node path, which
:class:`~repro.distributed.network.Network` keeps verbatim as the
general/heterogeneous fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping

import numpy as np

from repro.distributed.model import Model
from repro.errors import ModelViolation, SimulationError
from repro.graphs.graph import Graph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (network imports us)
    from repro.distributed.network import RunResult

__all__ = [
    "BatchContext",
    "BatchEmission",
    "BatchAlgorithm",
    "execute_batch",
    "pick_deployment",
]


class BatchContext:
    """What a batch algorithm knows: the graph in CSR form plus advice.

    The per-node :class:`~repro.distributed.node.NodeContext` exposes one
    vertex's neighborhood; this is the same knowledge for all vertices at
    once, with the two CSR primitives every vectorized round reduces to.
    """

    __slots__ = ("graph", "model", "n", "indptr", "indices", "degrees", "advice")

    def __init__(self, graph: Graph, model: Model, advice: Mapping[str, Any]):
        self.graph = graph
        self.model = model
        self.n = graph.n
        self.indptr = graph.indptr
        self.indices = graph.indices
        self.degrees = np.diff(graph.indptr)
        self.advice = advice

    def neighbor_counts(self, mask: np.ndarray) -> np.ndarray:
        """Per-vertex count of neighbors with ``mask[u]`` set (int64).

        One cumulative sum over the arc array; empty rows come out 0
        without the ``reduceat`` empty-segment pitfall.
        """
        if len(self.indices) == 0:
            return np.zeros(self.n, dtype=np.int64)
        cs = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(mask[self.indices], dtype=np.int64))
        )
        return cs[self.indptr[1:]] - cs[self.indptr[:-1]]

    def fan_out(self, srcs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Expand broadcasts: ``(receivers, origin)`` for the given senders.

        ``receivers[i]`` hears the broadcast of ``srcs[origin[i]]``; one
        entry per (sender, incident edge) pair, senders kept in input
        order.  This is the flat-array materialization of delivering one
        broadcast per sender to its whole neighborhood.
        """
        counts = self.degrees[srcs]
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        starts = self.indptr[srcs]
        shifts = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(counts)[:-1]))
        pos = np.repeat(starts - shifts, counts) + np.arange(total, dtype=np.int64)
        receivers = self.indices[pos].astype(np.int64)
        origin = np.repeat(np.arange(len(srcs), dtype=np.int64), counts)
        return receivers, origin


@dataclass(frozen=True)
class BatchEmission:
    """One round's outgoing traffic: a payload per broadcasting vertex.

    ``senders[i]`` broadcasts a payload measuring ``words[i]`` words to
    its whole neighborhood.  Protocols keep the payload *contents* in
    their own flat arrays (payload-id indexed); the engine only needs
    sizes and senders to account the round.  Isolated senders are
    allowed — the engine drops them from the statistics exactly as the
    per-node collector drops broadcasts with no incident edge.
    """

    senders: np.ndarray  # int64 vertex ids
    words: np.ndarray  # int64 payload size per sender

    def __post_init__(self) -> None:
        if len(self.senders) != len(self.words):
            raise SimulationError("emission senders/words length mismatch")

    def __bool__(self) -> bool:
        return len(self.senders) > 0


def pick_deployment(
    engine: str, batch: Callable[[], "BatchAlgorithm"], pernode: Any
) -> Any:
    """The ``Network`` deployment for an ``engine`` name.

    Shared by the protocol ``run_*`` wrappers: validates the name, then
    returns either a fresh :class:`BatchAlgorithm` (``batch`` is a
    zero-argument constructor) or the per-node factory unchanged.
    """
    if engine == "batch":
        return batch()
    if engine == "pernode":
        return pernode
    raise SimulationError(f"unknown engine {engine!r} (use 'batch' or 'pernode')")


class BatchAlgorithm:
    """Base class for vectorized protocol phases (see module docstring)."""

    def __init__(self) -> None:
        self.halted = np.zeros(0, dtype=bool)

    # -- protocol ---------------------------------------------------------
    def on_start(self, ctx: BatchContext) -> BatchEmission | None:
        """Round-0 hook: allocate state arrays, emit the first broadcasts."""
        raise NotImplementedError

    def on_round(self, ctx: BatchContext, round_index: int) -> BatchEmission | None:
        """Per-round transition; must be overridden."""
        raise NotImplementedError

    def outputs(self, ctx: BatchContext) -> dict[int, Any]:
        """Per-vertex outputs after the run, keyed by vertex id."""
        raise NotImplementedError


def execute_batch(
    graph: Graph,
    model: Model,
    alg: BatchAlgorithm,
    advice: Mapping[str, Any],
    words_per_round: int,
    strict_bandwidth: bool,
    max_rounds: int,
) -> "RunResult":
    """Run one batch algorithm to global halt, mirroring ``Network.run``.

    The control flow is a transcription of the per-node loop at batch
    granularity: round 0 is ``on_start``, each later round is one
    ``on_round`` call, statistics are recorded only for rounds with
    traffic, and the run ends when every vertex has halted with nothing
    in flight.  ``rounds``, every :class:`RoundStats` field, and the
    outputs therefore match the per-node execution of the same protocol
    exactly.
    """
    from repro.distributed.network import RoundStats, RunResult

    ctx = BatchContext(graph, model, advice)
    check_bandwidth = strict_bandwidth and model.bounded_bandwidth

    def account(round_index: int, emission: BatchEmission) -> RoundStats | None:
        # Ascending-sender order, matching the per-node scan; degree-0
        # broadcasts vanish as in Network._collect.
        order = np.argsort(emission.senders, kind="stable")
        senders = emission.senders[order]
        words = emission.words[order]
        fan = ctx.degrees[senders]
        heard = fan > 0
        senders, words, fan = senders[heard], words[heard], fan[heard]
        if len(senders) == 0:
            return None
        if check_bandwidth:
            over = words > words_per_round
            if over.any():
                w = int(words[np.argmax(over)])
                raise ModelViolation(
                    f"round {round_index}: payload of {w} words exceeds "
                    f"bandwidth {words_per_round}"
                )
        return RoundStats(
            round_index=round_index,
            messages=int(fan.sum()),
            total_words=int((words * fan).sum()),
            max_payload_words=int(words.max()),
            broadcast_words=int(words.sum()),
        )

    stats: list[RoundStats] = []
    emission = alg.on_start(ctx)
    if len(alg.halted) != graph.n:
        raise SimulationError(
            f"batch algorithm must size halted to n={graph.n} in on_start "
            f"(got length {len(alg.halted)})"
        )
    pending = account(0, emission) if emission else None
    rounds = 0
    if pending is not None:
        stats.append(pending)
    # Quiet rounds (no traffic, no halts) are tolerated briefly, exactly
    # as in the per-node loop: phase-counting vertices wait silently, but
    # a long silent stretch with unhalted vertices is a deadlock.
    quiet_grace = max(64, 4 * graph.n)
    quiet = 0
    while True:
        if bool(alg.halted.all()) and pending is None:
            break
        if rounds >= max_rounds:
            raise SimulationError(f"no global halt within {max_rounds} rounds")
        rounds += 1
        halted_before = int(alg.halted.sum())
        delivered = pending is not None
        emission = alg.on_round(ctx, rounds)
        pending = account(rounds, emission) if emission else None
        if pending is not None:
            stats.append(pending)
        progressed = (
            pending is not None or delivered or int(alg.halted.sum()) != halted_before
        )
        quiet = 0 if progressed else quiet + 1
        if quiet > quiet_grace:
            stuck = np.flatnonzero(~alg.halted)[:5].tolist()
            raise SimulationError(f"deadlock: nodes {stuck} never halt")
    outputs = alg.outputs(ctx)
    return RunResult(model, rounds, stats, outputs)
