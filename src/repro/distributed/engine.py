"""Batch round engine: vectorized execution of homogeneous protocols.

The paper's CONGEST_BC protocols are *homogeneous* — every vertex runs
the same small state machine per phase — which admits structure-of-
arrays execution: one :class:`BatchAlgorithm` instance holds the state
of *all* n vertices in flat numpy arrays (halted flags, counters, class
ids, candidate tables as CSR-style slices) and advances a whole round
with array operations instead of n Python method calls.

Messages never become per-node inboxes here.  A protocol keeps its
in-flight traffic as flat arrays (payload rows indexed by id, a
``(src, payload-id)`` pair per broadcast) and "delivers" by CSR fan-out
(:meth:`BatchContext.fan_out`).  What the engine needs for accounting
is only the :class:`BatchEmission` of each round: which vertices
broadcast and how many words each payload measures.  From the emission
it reproduces exactly the :class:`~repro.distributed.network.RoundStats`
the per-node path computes — ``total_words`` weights each payload by
its fan-out (per-edge accounting), ``broadcast_words`` counts each
payload once (distinct-broadcast accounting), and isolated senders are
dropped just as ``Network._collect`` drops broadcasts with no incident
edge.

The contract mirrors :class:`~repro.distributed.node.NodeAlgorithm`
round for round, so a batch port of a per-node protocol produces
bit-identical outputs *and* round/traffic statistics (pinned by
``tests/test_batch_engine_parity.py``):

* ``on_start(ctx)`` — round 0: initialize the state arrays, return the
  first emission (or ``None``);
* ``on_round(ctx, round_index)`` — consume the previous round's
  in-flight traffic (the algorithm's own arrays), transition, return
  this round's emission;
* ``halted`` — boolean array; the engine stops when every vertex has
  halted and nothing was emitted;
* ``outputs(ctx)`` — per-vertex final outputs, same objects the
  per-node original produces.

The engine is broadcast-shaped: an emission is one payload per sender,
heard by the whole neighborhood (the CONGEST_BC primitive).  Protocols
needing point-to-point addressing stay on the per-node path, which
:class:`~repro.distributed.network.Network` keeps verbatim as the
general/heterogeneous fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping

import numpy as np

from repro.distributed.model import Model
from repro.errors import ModelViolation, SimulationError
from repro.graphs.graph import Graph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (network imports us)
    from repro.distributed.network import RunResult

__all__ = [
    "BatchContext",
    "BatchEmission",
    "BatchAlgorithm",
    "TokenRouter",
    "TokenRoutingBatch",
    "token_components",
    "execute_batch",
    "pick_deployment",
]

#: Padding value in fixed-width token matrices (never a vertex id).
_PAD = -1


class BatchContext:
    """What a batch algorithm knows: the graph in CSR form plus advice.

    The per-node :class:`~repro.distributed.node.NodeContext` exposes one
    vertex's neighborhood; this is the same knowledge for all vertices at
    once, with the two CSR primitives every vectorized round reduces to.
    """

    __slots__ = ("graph", "model", "n", "indptr", "indices", "degrees", "advice")

    def __init__(self, graph: Graph, model: Model, advice: Mapping[str, Any]):
        self.graph = graph
        self.model = model
        self.n = graph.n
        self.indptr = graph.indptr
        self.indices = graph.indices
        self.degrees = np.diff(graph.indptr)
        self.advice = advice

    def neighbor_counts(self, mask: np.ndarray) -> np.ndarray:
        """Per-vertex count of neighbors with ``mask[u]`` set (int64).

        One cumulative sum over the arc array; empty rows come out 0
        without the ``reduceat`` empty-segment pitfall.
        """
        if len(self.indices) == 0:
            return np.zeros(self.n, dtype=np.int64)
        cs = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(mask[self.indices], dtype=np.int64))
        )
        return cs[self.indptr[1:]] - cs[self.indptr[:-1]]

    def fan_out(self, srcs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Expand broadcasts: ``(receivers, origin)`` for the given senders.

        ``receivers[i]`` hears the broadcast of ``srcs[origin[i]]``; one
        entry per (sender, incident edge) pair, senders kept in input
        order.  This is the flat-array materialization of delivering one
        broadcast per sender to its whole neighborhood.
        """
        counts = self.degrees[srcs]
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        starts = self.indptr[srcs]
        shifts = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(counts)[:-1]))
        pos = np.repeat(starts - shifts, counts) + np.arange(total, dtype=np.int64)
        receivers = self.indices[pos].astype(np.int64)
        origin = np.repeat(np.arange(len(srcs), dtype=np.int64), counts)
        return receivers, origin


@dataclass(frozen=True)
class BatchEmission:
    """One round's outgoing traffic: a payload per broadcasting vertex.

    ``senders[i]`` broadcasts a payload measuring ``words[i]`` words to
    its whole neighborhood.  Protocols keep the payload *contents* in
    their own flat arrays (payload-id indexed); the engine only needs
    sizes and senders to account the round.  Isolated senders are
    allowed — the engine drops them from the statistics exactly as the
    per-node collector drops broadcasts with no incident edge.
    """

    senders: np.ndarray  # int64 vertex ids
    words: np.ndarray  # int64 payload size per sender

    def __post_init__(self) -> None:
        if len(self.senders) != len(self.words):
            raise SimulationError("emission senders/words length mismatch")

    def __bool__(self) -> bool:
        return len(self.senders) > 0


def pick_deployment(
    engine: str, batch: Callable[[], "BatchAlgorithm"], pernode: Any
) -> Any:
    """The ``Network`` deployment for an ``engine`` name.

    Shared by the protocol ``run_*`` wrappers: validates the name, then
    returns either a fresh :class:`BatchAlgorithm` (``batch`` is a
    zero-argument constructor) or the per-node factory unchanged.
    """
    if engine == "batch":
        return batch()
    if engine == "pernode":
        return pernode
    raise SimulationError(f"unknown engine {engine!r} (use 'batch' or 'pernode')")


class BatchAlgorithm:
    """Base class for vectorized protocol phases (see module docstring)."""

    def __init__(self) -> None:
        self.halted = np.zeros(0, dtype=bool)

    # -- protocol ---------------------------------------------------------
    def on_start(self, ctx: BatchContext) -> BatchEmission | None:
        """Round-0 hook: allocate state arrays, emit the first broadcasts."""
        raise NotImplementedError

    def on_round(self, ctx: BatchContext, round_index: int) -> BatchEmission | None:
        """Per-round transition; must be overridden."""
        raise NotImplementedError

    def outputs(self, ctx: BatchContext) -> dict[int, Any]:
        """Per-vertex outputs after the run, keyed by vertex id."""
        raise NotImplementedError

    # -- wave pipelining (optional) ---------------------------------------
    def wave_components(self, ctx: BatchContext) -> np.ndarray | None:
        """Per-vertex component labels for pipelined wave execution.

        A protocol whose round-0 traffic decomposes into groups that
        never exchange messages (nor ever share a broadcasting vertex)
        may return an int64 label per vertex (``-1`` for uninvolved
        vertices); the engine then re-runs the round schedule once per
        wave of components and merges the statistics by round index,
        which is exact precisely because the groups are independent.
        ``None`` (the default) keeps the single lockstep execution.
        """
        return None

    def wave_select(self, ctx: BatchContext, members: np.ndarray) -> BatchEmission | None:
        """Restrict round-0 state to one wave's component ``members`` mask.

        Must reset the per-round state (halted flags, in-flight traffic)
        to the post-``on_start`` snapshot filtered to the wave, while
        output arrays keep accumulating across waves.
        """
        raise SimulationError(
            f"{type(self).__name__} advertises wave components but does not "
            "implement wave_select"
        )


class TokenRouter:
    """Flat in-flight table for backward-routed path tokens.

    The elect/join/member protocols all move *tokens* — vertex-id
    prefixes of stored paths — backward along the path: the next hop of
    a token is its last entry, a forwarding vertex truncates the token
    and re-broadcasts, and each sender's per-round payload is the
    deduplicated, sorted set of tokens it forwards (what ``tuple(
    sorted(set(...)))`` builds on the per-node path).  This class is
    that mechanic over one ``(src, len, rows)`` matrix: ``rows`` is
    fixed-width (``_PAD``-padded), kept grouped by ascending sender so
    per-sender payload words fall out of one ``reduceat``.  Arrival
    semantics (at which length a token stops, what its delivery means)
    stay with the protocol.
    """

    __slots__ = ("width", "tag_words", "src", "lens", "rows")

    def __init__(self, width: int, tag_words: int) -> None:
        self.width = max(int(width), 1)
        self.tag_words = int(tag_words)
        self.src = np.empty(0, dtype=np.int64)
        self.lens = np.empty(0, dtype=np.int64)
        self.rows = np.empty((0, self.width), dtype=np.int64)

    def __len__(self) -> int:
        return len(self.src)

    def load(
        self, src: np.ndarray, lens: np.ndarray, rows: np.ndarray
    ) -> BatchEmission | None:
        """Install a token table (grouped by ascending sender) and emit it."""
        self.src = np.asarray(src, dtype=np.int64)
        self.lens = np.asarray(lens, dtype=np.int64)
        self.rows = np.asarray(rows, dtype=np.int64).reshape(len(self.src), self.width)
        return self._emission()

    def receivers(self) -> np.ndarray:
        """Next hop of every in-flight token (its last row entry)."""
        if len(self.src) == 0:
            return np.empty(0, dtype=np.int64)
        return self.rows[np.arange(len(self.src)), self.lens - 1]

    def advance(self, forward: np.ndarray) -> BatchEmission | None:
        """Truncate the ``forward``-masked tokens and re-emit them.

        The re-sender of a token is the hop that just received it (the
        entry being truncated away); identical (sender, token) rows are
        merged by one ``np.unique``, which reproduces the per-node
        ``sorted(set(...))`` payload and leaves the table grouped by
        ascending sender.
        """
        fwd = np.flatnonzero(forward)
        if len(fwd) == 0:
            self.clear()
            return None
        new_len = self.lens[fwd] - 1
        rows = self.rows[fwd].copy()
        idx = np.arange(len(fwd))
        senders = rows[idx, new_len]  # the hop that resends
        rows[idx, new_len] = _PAD  # truncate token[:-1]
        combined = np.unique(np.column_stack((senders, new_len, rows)), axis=0)
        self.src = combined[:, 0]
        self.lens = combined[:, 1]
        self.rows = combined[:, 2:]
        return self._emission()

    def clear(self) -> None:
        self.src = self.src[:0]
        self.lens = self.lens[:0]
        self.rows = self.rows[:0]

    def _emission(self) -> BatchEmission | None:
        if len(self.src) == 0:
            return None
        lead = np.ones(len(self.src), dtype=bool)
        lead[1:] = self.src[1:] != self.src[:-1]
        starts = np.flatnonzero(lead)
        words = self.tag_words + np.add.reduceat(self.lens, starts)
        return BatchEmission(self.src[starts], words)


def token_components(n: int, src: np.ndarray, rows: np.ndarray) -> np.ndarray | None:
    """Connected components of the token-union graph, as vertex labels.

    Two tokens interact iff they share a vertex — as sender (one
    broadcast carries a sender's whole token set) or anywhere on their
    remaining path (a shared hop merges their forwards into one
    payload).  So the *exact* independence structure is the connected
    components of the hypergraph whose hyperedges are ``{sender} ∪
    row entries`` per token; waves built from these components produce
    bit-identical statistics to the lockstep run.

    Label propagation with pointer jumping: every vertex label is the
    id of some vertex of its own component and only ever decreases, so
    the fixpoint labels each component by its minimum vertex id.
    Returns int64 labels with ``-1`` for vertices not touching any
    token, or ``None`` when there are no tokens.
    """
    if len(src) == 0:
        return None
    ent = np.concatenate((np.asarray(src, dtype=np.int64)[:, None], rows), axis=1)
    ent = np.where(ent >= 0, ent, ent[:, :1])  # padding -> own sender
    flat = ent.reshape(-1)
    reps = ent.shape[1]
    lab = np.arange(n, dtype=np.int64)
    while True:
        token_lab = lab[ent].min(axis=1)
        new = lab.copy()
        np.minimum.at(new, flat, np.repeat(token_lab, reps))
        new = np.minimum(new, new[new])  # pointer jump (labels only decrease)
        if np.array_equal(new, lab):
            break
        lab = new
    out = np.full(n, -1, dtype=np.int64)
    touched = np.unique(flat)
    out[touched] = lab[touched]
    return out


class TokenRoutingBatch(BatchAlgorithm):
    """Base for batch protocols whose traffic is one :class:`TokenRouter`.

    Subclasses build their round-0 token table in ``on_start`` and hand
    it to :meth:`seed`; the snapshot kept there is what makes the wave
    hooks generic — components come from the seeded tokens, and
    selecting a wave reloads the filtered snapshot with halted flags
    reset to their post-start state (token protocols have no other
    per-round state; output arrays accumulate across waves).
    """

    #: ``payload_words(tag)`` of the protocol's message tag.
    tag_words = 1

    def __init__(self, width: int) -> None:
        super().__init__()
        self.router = TokenRouter(width, self.tag_words)
        self._seed_src = np.empty(0, dtype=np.int64)
        self._seed_len = np.empty(0, dtype=np.int64)
        self._seed_rows = np.empty((0, self.router.width), dtype=np.int64)
        self._halted0 = np.zeros(0, dtype=bool)

    def seed(
        self, src: np.ndarray, lens: np.ndarray, rows: np.ndarray
    ) -> BatchEmission | None:
        """Install the round-0 tokens (rows grouped by ascending sender)."""
        self._seed_src = np.asarray(src, dtype=np.int64)
        self._seed_len = np.asarray(lens, dtype=np.int64)
        self._seed_rows = np.asarray(rows, dtype=np.int64).reshape(
            len(self._seed_src), self.router.width
        )
        self._halted0 = self.halted.copy()
        return self.router.load(self._seed_src, self._seed_len, self._seed_rows)

    def wave_components(self, ctx: BatchContext) -> np.ndarray | None:
        if len(self._seed_src) == 0:
            return None
        return token_components(ctx.n, self._seed_src, self._seed_rows)

    def wave_select(self, ctx: BatchContext, members: np.ndarray) -> BatchEmission | None:
        keep = members[self._seed_src]
        self.halted = self._halted0.copy()
        return self.router.load(
            self._seed_src[keep], self._seed_len[keep], self._seed_rows[keep]
        )


def execute_batch(
    graph: Graph,
    model: Model,
    alg: BatchAlgorithm,
    advice: Mapping[str, Any],
    words_per_round: int,
    strict_bandwidth: bool,
    max_rounds: int,
    wave_width: int = 0,
) -> "RunResult":
    """Run one batch algorithm to global halt, mirroring ``Network.run``.

    The control flow is a transcription of the per-node loop at batch
    granularity: round 0 is ``on_start``, each later round is one
    ``on_round`` call, statistics are recorded only for rounds with
    traffic, and the run ends when every vertex has halted with nothing
    in flight.  ``rounds``, every :class:`RoundStats` field, and the
    outputs therefore match the per-node execution of the same protocol
    exactly.

    With ``wave_width > 0`` and an algorithm exposing
    :meth:`BatchAlgorithm.wave_components`, the independent component
    groups are executed as pipelined *waves* of ``wave_width``
    components each instead of one global-lockstep run: each wave
    replays the round schedule on its own frontier (no barrier against
    the other waves' rounds), and per-round statistics from different
    waves are summed by round index — exact, because components never
    share a sender or receiver.  Rounds, statistics, and outputs remain
    bit-identical to the lockstep execution.
    """
    from repro.distributed.network import RoundStats, RunResult

    ctx = BatchContext(graph, model, advice)
    check_bandwidth = strict_bandwidth and model.bounded_bandwidth

    def account(round_index: int, emission: BatchEmission) -> RoundStats | None:
        # Ascending-sender order, matching the per-node scan; degree-0
        # broadcasts vanish as in Network._collect.
        order = np.argsort(emission.senders, kind="stable")
        senders = emission.senders[order]
        words = emission.words[order]
        fan = ctx.degrees[senders]
        heard = fan > 0
        senders, words, fan = senders[heard], words[heard], fan[heard]
        if len(senders) == 0:
            return None
        if check_bandwidth:
            over = words > words_per_round
            if over.any():
                w = int(words[np.argmax(over)])
                raise ModelViolation(
                    f"round {round_index}: payload of {w} words exceeds "
                    f"bandwidth {words_per_round}"
                )
        return RoundStats(
            round_index=round_index,
            messages=int(fan.sum()),
            total_words=int((words * fan).sum()),
            max_payload_words=int(words.max()),
            broadcast_words=int(words.sum()),
        )

    merged: dict[int, RoundStats] = {}

    def record(stat: RoundStats) -> None:
        cur = merged.get(stat.round_index)
        if cur is None:
            merged[stat.round_index] = stat
        else:
            # Waves never share a sender in any round, so their stats
            # are disjoint summands of the lockstep round's totals.
            merged[stat.round_index] = RoundStats(
                round_index=stat.round_index,
                messages=cur.messages + stat.messages,
                total_words=cur.total_words + stat.total_words,
                max_payload_words=max(cur.max_payload_words, stat.max_payload_words),
                broadcast_words=cur.broadcast_words + stat.broadcast_words,
            )

    def drive(emission: BatchEmission | None) -> int:
        """One run of the round loop from a round-0 emission to halt."""
        pending = account(0, emission) if emission else None
        if pending is not None:
            record(pending)
        rounds = 0
        # Quiet rounds (no traffic, no halts) are tolerated briefly,
        # exactly as in the per-node loop: phase-counting vertices wait
        # silently, but a long silent stretch with unhalted vertices is
        # a deadlock.
        quiet_grace = max(64, 4 * graph.n)
        quiet = 0
        while True:
            if bool(alg.halted.all()) and pending is None:
                break
            if rounds >= max_rounds:
                raise SimulationError(f"no global halt within {max_rounds} rounds")
            rounds += 1
            halted_before = int(alg.halted.sum())
            delivered = pending is not None
            emission = alg.on_round(ctx, rounds)
            pending = account(rounds, emission) if emission else None
            if pending is not None:
                record(pending)
            progressed = (
                pending is not None
                or delivered
                or int(alg.halted.sum()) != halted_before
            )
            quiet = 0 if progressed else quiet + 1
            if quiet > quiet_grace:
                stuck = np.flatnonzero(~alg.halted)[:5].tolist()
                raise SimulationError(f"deadlock: nodes {stuck} never halt")
        return rounds

    emission = alg.on_start(ctx)
    if len(alg.halted) != graph.n:
        raise SimulationError(
            f"batch algorithm must size halted to n={graph.n} in on_start "
            f"(got length {len(alg.halted)})"
        )
    labels = alg.wave_components(ctx) if wave_width > 0 else None
    comps = np.unique(labels[labels >= 0]) if labels is not None else None
    if comps is None or len(comps) < 2:
        rounds = drive(emission)
    else:
        rounds = 0
        for i in range(0, len(comps), wave_width):
            members = np.isin(labels, comps[i : i + wave_width])
            rounds = max(rounds, drive(alg.wave_select(ctx, members)))
    outputs = alg.outputs(ctx)
    stats = [merged[k] for k in sorted(merged)]
    return RunResult(model, rounds, stats, outputs)
