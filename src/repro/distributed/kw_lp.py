"""LP-based distributed dominating set (Kuhn–Wattenhofer-style [34]).

The paper's introduction discusses the LP-based line of distributed
dominating set algorithms (Kuhn et al.): approximately solve the
covering LP with local fractional raises, then round randomly.  We
implement that two-stage shape, labelled *-style* because the
schedule is the nomination-parallel variant rather than the exact
published constants:

* **Fractional stage** (deterministic): thresholds sweep ``2^i``
  downward over the *dynamic degree* (number of LP-uncovered vertices
  in the r-ball).  Within a threshold, rounds repeat until quiescent:
  every uncovered vertex nominates the maximum-dynamic-degree vertex of
  its ball (ties to smaller id), and a nominee with dynamic degree at
  least the threshold raises ``x_v`` by ``1/threshold``.  A vertex is
  LP-covered once its ball's fractional mass reaches 1.  Nomination
  keeps simultaneous raises from flooding (without it, the threshold-1
  pass would raise every boundary vertex at once).  The final x is
  always feasible.  Each inner round costs 2r+1 LOCAL rounds.
* **Rounding stage** (seeded): include v with probability
  ``min(1, x_v · ln(Δ_B + 1))`` where ``Δ_B`` is the max ball size;
  still-uncovered vertices elect the id-least member of their ball, so
  the output is always a valid distance-r dominating set.

Measured, not asserted: the realized ratio (classically O(log Δ) in
expectation); the T9 companion rows report it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.traversal import ball

__all__ = ["kw_lp_domset", "KWResult"]


@dataclass(frozen=True)
class KWResult:
    dominators: tuple[int, ...]
    radius: int
    fractional_cost: float
    phases: int        # threshold levels swept
    raise_rounds: int  # inner nomination/raise rounds across all phases
    local_rounds: int  # (2r+1) LOCAL rounds per raise round + rounding sweep
    rounded: int       # vertices picked by randomized rounding
    fixed_up: int      # vertices added by the coverage fix-up sweep

    @property
    def size(self) -> int:
        return len(self.dominators)


def kw_lp_domset(g: Graph, radius: int, seed: int = 0) -> KWResult:
    """Run the fractional stage + randomized rounding + fix-up."""
    if radius < 0:
        raise GraphError("radius must be >= 0")
    n = g.n
    if n == 0:
        return KWResult((), radius, 0.0, 0, 0, 0, 0, 0)
    balls = [ball(g, v, radius) for v in range(n)]
    max_ball = max(len(b) for b in balls)
    x = np.zeros(n, dtype=np.float64)
    mass = np.zeros(n, dtype=np.float64)  # mass[w] = sum of x over N_r[w]

    threshold = 1
    while threshold * 2 <= max_ball:
        threshold *= 2
    phases = 0
    raise_rounds = 0
    while threshold >= 1:
        phases += 1
        while True:
            uncovered = mass < 1.0 - 1e-12
            if not uncovered.any():
                break
            dyn = np.asarray(
                [int(np.count_nonzero(uncovered[balls[v]])) for v in range(n)]
            )
            nominees: set[int] = set()
            for w in np.flatnonzero(uncovered):
                cands = balls[w]
                best = int(min((-dyn[int(v)], int(v)) for v in cands)[1])
                nominees.add(best)
            raisers = sorted(v for v in nominees if dyn[v] >= threshold)
            if not raisers:
                break
            raise_rounds += 1
            inc = 1.0 / threshold
            for v in raisers:
                x[v] += inc
                mass[balls[v]] += inc
        threshold //= 2
    assert bool(np.all(mass >= 1.0 - 1e-9)), "fractional stage must be feasible"
    fractional_cost = float(x.sum())

    # Randomized rounding.
    rng = np.random.default_rng(seed)
    scale = math.log(max_ball + 1.0)
    p = np.minimum(1.0, x * scale)
    picked = rng.random(n) < p
    covered = np.zeros(n, dtype=bool)
    for v in np.flatnonzero(picked):
        covered[balls[v]] = True
    # Fix-up: uncovered vertices elect the least id in their ball.
    fixed = set()
    for w in range(n):
        if not covered[w]:
            fixed.add(int(balls[w][0]))
    dominators = sorted(set(int(v) for v in np.flatnonzero(picked)) | fixed)
    return KWResult(
        dominators=tuple(dominators),
        radius=radius,
        fractional_cost=fractional_cost,
        phases=phases,
        raise_rounds=raise_rounds,
        local_rounds=(raise_rounds + 1) * (2 * radius + 1),
        rounded=int(picked.sum()),
        fixed_up=len(fixed),
    )
