"""Ruling-set style distance-r dominating sets (Kutten–Peleg-flavoured).

The related work the paper contrasts with ([35, 49]): distributed
algorithms that produce a distance-r dominating set of *absolute* size
O(n/r) with NO relation to OPT.  The canonical construction is a
maximal r-independent set — an MIS of the r-th power graph G^r:

* pairwise distance > r  (independence in G^r), and
* every vertex within distance r of a member (maximality in G^r)
  — i.e. a valid distance-r dominating set.

We run Luby's algorithm on G^r by simulation: one G^r phase costs r
G-rounds (priorities flood r hops; knock-outs flood r hops), giving
O(r log n) rounds w.h.p. — matching the O(r · polylog) shape of the
cited algorithms.  For the library we execute the power-graph MIS on a
materialized G^r with per-phase cost accounting (2r G-rounds per
phase), keeping the node logic identical to :mod:`repro.distributed.mis`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributed.mis import run_luby_mis
from repro.errors import GraphError
from repro.graphs.build import from_edges
from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_distances

__all__ = ["power_graph", "ruling_domset", "RulingResult"]


def power_graph(g: Graph, r: int) -> Graph:
    """G^r: edge {u, v} iff 1 <= dist_G(u, v) <= r."""
    if r < 1:
        raise GraphError("power needs r >= 1")
    if r == 1:
        return g
    edges = []
    for v in range(g.n):
        dist = bfs_distances(g, v, max_dist=r)
        for u in np.flatnonzero(dist > 0):
            if int(u) > v:
                edges.append((v, int(u)))
    return from_edges(g.n, edges)


@dataclass(frozen=True)
class RulingResult:
    """A maximal r-independent set used as a distance-r dominating set."""

    dominators: tuple[int, ...]
    radius: int
    power_phases: int      # Luby phases on G^r
    g_rounds: int          # charged G-rounds: 2r per phase

    @property
    def size(self) -> int:
        return len(self.dominators)


def ruling_domset(g: Graph, radius: int, seed: int = 0) -> RulingResult:
    """Maximal r-independent set via Luby's MIS on G^radius.

    Valid distance-r dominating set by maximality; pairwise distances
    exceed ``radius`` by independence.  Size carries no OPT guarantee —
    the baseline property the paper's related-work section points out.
    """
    if radius < 1:
        raise GraphError("radius must be >= 1")
    gp = power_graph(g, radius)
    mis, res = run_luby_mis(gp, seed=seed)
    phases = (res.rounds + 1) // 2
    return RulingResult(
        dominators=tuple(mis),
        radius=radius,
        power_phases=phases,
        g_rounds=2 * radius * phases,
    )
