"""Lenzen–Wattenhofer-style parallel greedy dominating set [38].

The deterministic bounded-arboricity baseline from the paper's related
work: greedy, but parallelized by *span thresholds*.  In phase
i = ceil(log2 Δ) .. 0, every vertex whose residual span (number of
still-uncovered vertices in its closed r-ball) is at least 2^i joins
the dominating set; covered vertices drop out.  O(log Δ) phases, each a
constant number of LOCAL rounds (2r+1 to re-evaluate spans).

On bounded-arboricity graphs this parallel greedy is an O(a log Δ)
approximation [38]; we measure its realized quality in the T9 baseline
comparison rather than assume it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.traversal import ball

__all__ = ["parallel_greedy_domset", "ParallelGreedyResult"]


@dataclass(frozen=True)
class ParallelGreedyResult:
    dominators: tuple[int, ...]
    radius: int
    phases: int
    local_rounds: int  # (2r+1) rounds per phase to re-evaluate spans

    @property
    def size(self) -> int:
        return len(self.dominators)


def parallel_greedy_domset(g: Graph, radius: int) -> ParallelGreedyResult:
    """Threshold-parallel greedy distance-r dominating set.

    Deterministic.  Per phase, every still-uncovered vertex *nominates*
    the vertex of maximum residual span in its closed r-ball (ties to
    the smaller id — the same election rule as [36]'s phase 2), and a
    nominee joins if its span meets the current threshold.  Restricting
    joiners to nominees is what keeps simultaneous joins from flooding
    the set in the low-threshold phases.
    """
    if radius < 0:
        raise GraphError("radius must be >= 0")
    n = g.n
    if n == 0:
        return ParallelGreedyResult((), radius, 0, 0)
    balls = [ball(g, v, radius) for v in range(n)]
    covered = np.zeros(n, dtype=bool)
    chosen: list[int] = []
    max_span = max(len(b) for b in balls)
    threshold = 1
    while threshold * 2 <= max_span:
        threshold *= 2
    phases = 0
    while threshold >= 1:
        phases += 1
        spans = np.array(
            [int(np.count_nonzero(~covered[balls[v]])) for v in range(n)]
        )
        nominees: set[int] = set()
        for w in range(n):
            if covered[w]:
                continue
            cands = balls[w]
            best = int(min((-spans[int(x)], int(x)) for x in cands)[1])
            nominees.add(best)
        joiners = sorted(v for v in nominees if spans[v] >= threshold)
        for v in joiners:
            chosen.append(v)
        for v in joiners:
            covered[balls[v]] = True
        threshold //= 2
    assert covered.all(), "threshold sweep must end at 1 and cover everything"
    return ParallelGreedyResult(
        dominators=tuple(sorted(set(chosen))),
        radius=radius,
        phases=phases,
        local_rounds=phases * (2 * radius + 1),
    )
