"""Physical pipelining: run broadcast protocols at bounded bandwidth.

The paper's round bounds absorb message sizes above O(log n) bits via
the standard pipelining argument ("a k-word message costs k rounds").
Everywhere else the simulator merely *accounts* for that
(``RunResult.normalized_rounds``); this module *executes* it: any
CONGEST_BC :class:`~repro.distributed.node.NodeAlgorithm` is wrapped so
that each logical broadcast is serialized into one-word tokens and
transmitted ``words_per_round`` tokens per physical round, with frame
reassembly and logical-round lockstep on the receiver side.

Guarantees (enforced by tests):

* outputs are bit-identical to the unpipelined run;
* every physical broadcast is at most ``words_per_round + 2`` words
  (payload tokens + frame-header amortization), checkable with the
  simulator's ``strict_bandwidth`` mode;
* physical rounds land within the ``normalized_rounds`` estimate's
  regime — the measured gap IS the pipelining cost of Theorem 9's
  pipeline (experiment A2).

Frame format (token = one O(log n)-bit word): ``[t, k, *payload]``
where t is the logical round and k the payload token count (k = 0
means "no broadcast that round", k = -1 is the end-of-stream sentinel
emitted when the inner algorithm halts).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.distributed.model import Model
from repro.distributed.network import Network, RunResult
from repro.distributed.node import Inbox, NodeAlgorithm, NodeContext
from repro.errors import ModelViolation, SimulationError
from repro.graphs.graph import Graph

__all__ = ["encode_payload", "decode_payload", "PipelinedNode", "run_pipelined"]


# ---------------------------------------------------------------------------
# Token codec: arbitrary nested payloads <-> flat int tokens (1 token = 1 word)
# ---------------------------------------------------------------------------
_T_NONE, _T_FALSE, _T_TRUE, _T_INT, _T_FLOAT, _T_STR, _T_TUPLE = range(7)


def encode_payload(payload: Any, out: list[int] | None = None) -> list[int]:
    """Flatten a payload into int tokens (self-delimiting prefix code)."""
    if out is None:
        out = []
    if payload is None:
        out.append(_T_NONE)
    elif payload is True:
        out.append(_T_TRUE)
    elif payload is False:
        out.append(_T_FALSE)
    elif isinstance(payload, int):
        out.extend((_T_INT, int(payload)))
    elif isinstance(payload, float):
        import struct

        bits = struct.unpack("<q", struct.pack("<d", payload))[0]
        out.extend((_T_FLOAT, bits))
    elif isinstance(payload, str):
        data = payload.encode("utf-8")
        out.extend((_T_STR, len(data)))
        out.extend(data)  # one byte per token; generous but simple
    elif isinstance(payload, tuple):
        out.extend((_T_TUPLE, len(payload)))
        for item in payload:
            encode_payload(item, out)
    else:
        raise ModelViolation(
            f"pipelining codec cannot serialize {type(payload).__name__}"
        )
    return out


def _decode(tokens: list[int], pos: int) -> tuple[Any, int]:
    tag = tokens[pos]
    if tag == _T_NONE:
        return None, pos + 1
    if tag == _T_TRUE:
        return True, pos + 1
    if tag == _T_FALSE:
        return False, pos + 1
    if tag == _T_INT:
        return int(tokens[pos + 1]), pos + 2
    if tag == _T_FLOAT:
        import struct

        return struct.unpack("<d", struct.pack("<q", tokens[pos + 1]))[0], pos + 2
    if tag == _T_STR:
        length = tokens[pos + 1]
        data = bytes(tokens[pos + 2 : pos + 2 + length])
        return data.decode("utf-8"), pos + 2 + length
    if tag == _T_TUPLE:
        length = tokens[pos + 1]
        pos += 2
        items = []
        for _ in range(length):
            item, pos = _decode(tokens, pos)
            items.append(item)
        return tuple(items), pos
    raise ModelViolation(f"bad token tag {tag}")


def decode_payload(tokens: list[int]) -> Any:
    """Inverse of :func:`encode_payload`."""
    value, pos = _decode(tokens, 0)
    if pos != len(tokens):
        raise ModelViolation("trailing tokens after payload")
    return value


# ---------------------------------------------------------------------------
# The pipelined wrapper node
# ---------------------------------------------------------------------------
class _NeighborStream:
    """Incremental frame parser for one neighbor's token stream."""

    __slots__ = ("buffer", "frames", "ended")

    def __init__(self) -> None:
        self.buffer: list[int] = []
        self.frames: dict[int, Any] = {}  # logical round -> payload | None
        self.ended = False

    def feed(self, tokens: tuple[int, ...]) -> None:
        self.buffer.extend(tokens)
        self._parse()

    def _parse(self) -> None:
        while len(self.buffer) >= 2:
            t, k = self.buffer[0], self.buffer[1]
            if k == -1:
                self.ended = True
                self.buffer = self.buffer[2:]
                continue
            if len(self.buffer) < 2 + k:
                return
            body = self.buffer[2 : 2 + k]
            self.buffer = self.buffer[2 + k :]
            self.frames[t] = decode_payload(body) if k else None

    def ready(self, t: int) -> bool:
        return t in self.frames or self.ended

    def take(self, t: int) -> Any:
        return self.frames.pop(t, None)


class PipelinedNode(NodeAlgorithm):
    """Runs an inner CONGEST_BC algorithm at ``words_per_round`` bandwidth."""

    def __init__(self, inner: NodeAlgorithm, words_per_round: int) -> None:
        super().__init__()
        if words_per_round < 1:
            raise SimulationError("words_per_round must be >= 1")
        self.inner = inner
        self.w = words_per_round
        self.stream_out: list[int] = []
        self.neighbors: dict[int, _NeighborStream] = {}
        self.logical = 0  # next logical round whose inbox we are waiting for
        self.sent_end = False

    # -- frame helpers ---------------------------------------------------
    def _emit(self, payload: Any) -> None:
        if isinstance(payload, dict):
            raise ModelViolation("pipelining supports broadcast payloads only")
        if payload is None:
            self.stream_out.extend((self.logical, 0))
        else:
            body = encode_payload(payload)
            self.stream_out.extend((self.logical, len(body)))
            self.stream_out.extend(body)

    def _emit_end(self) -> None:
        if not self.sent_end:
            self.stream_out.extend((self.logical, -1))
            self.sent_end = True

    def _chunk(self) -> tuple[int, ...] | None:
        if not self.stream_out:
            return None
        chunk = tuple(self.stream_out[: self.w])
        del self.stream_out[: self.w]
        return chunk

    # -- protocol ----------------------------------------------------------
    def on_start(self, ctx: NodeContext):
        self.neighbors = {u: _NeighborStream() for u in ctx.neighbors}
        out = self.inner.on_start(ctx)
        self._emit(out)  # frame for logical round 0
        self.logical = 0
        if self.inner.halted:
            self.logical += 1
            self._emit_end()
        return self._chunk()

    def on_round(self, ctx: NodeContext, inbox: Inbox):
        for src, tokens in inbox:
            if isinstance(tokens, tuple):
                self.neighbors[src].feed(tokens)
        # Drive as many logical rounds as the received frames allow.
        spins = 0
        while not self.inner.halted and all(
            s.ready(self.logical) for s in self.neighbors.values()
        ):
            spins += 1
            if spins > 100_000:
                raise SimulationError(
                    "inner algorithm drives unboundedly without halting"
                )
            logical_inbox = []
            for src in sorted(self.neighbors):
                payload = self.neighbors[src].take(self.logical)
                if payload is not None:
                    logical_inbox.append((src, payload))
            self.logical += 1
            out = self.inner.on_round(ctx, logical_inbox)
            if self.inner.halted:
                if out is not None:
                    self._emit(out)
                self._emit_end()
                break
            self._emit(out)
        if self.inner.halted and not self.sent_end:
            self._emit_end()
        chunk = self._chunk()
        if self.inner.halted and not self.stream_out and chunk is None:
            self.halted = True
        return chunk

    def output(self) -> Any:
        return self.inner.output()


def run_pipelined(
    g: Graph,
    factory: Callable[[int], NodeAlgorithm],
    words_per_round: int = 1,
    advice: dict | None = None,
    max_rounds: int = 1_000_000,
    strict: bool = True,
) -> RunResult:
    """Execute a CONGEST_BC algorithm at true bounded bandwidth.

    ``strict=True`` additionally makes the simulator reject any physical
    broadcast above ``words_per_round`` words (chunks are exactly that
    size, so this is a self-check of the executor).
    """
    net = Network(
        g,
        Model.CONGEST_BC,
        lambda v: PipelinedNode(factory(v), words_per_round),
        advice=advice,
        words_per_round=words_per_round,
        strict_bandwidth=strict,
    )
    return net.run(max_rounds=max_rounds)
