"""Theorem 8 — distributed sparse r-neighborhood covers (CONGEST_BC).

The WReachDist outputs *are* the distributed cover representation: after
Algorithm 4 with horizon 2r, every vertex w knows ``WReach_2r[w]`` — the
set of cluster centers v with ``w ∈ X_v`` — plus a length-<=2r routing
path to each of them, and its *home* cluster center
``min WReach_r[w]`` whose cluster contains ``N_r[w]`` (Lemma 6).

The membership lists themselves live at the *members*, not the centers;
the **cluster phase** below makes them explicit cluster-side: every
vertex w routes a "member" token backward along its stored path to each
center v ∈ WReach_2r[w], so after 2r more rounds every center knows
``X_v`` verbatim.  :func:`run_cover_bc` runs the pipeline and assembles
the (logically distributed) membership lists into a
:class:`NeighborhoodCover` so the sequential validators of
:mod:`repro.analysis.validate` can certify it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.covers import NeighborhoodCover
from repro.distributed.engine import (
    BatchContext,
    BatchEmission,
    TokenRoutingBatch,
    pick_deployment,
)
from repro.distributed.model import Model, merge_phase_stats
from repro.distributed.network import Network, RunResult
from repro.distributed.nd_order import OrderComputation, distributed_h_partition_order
from repro.distributed.node import Inbox, NodeAlgorithm, NodeContext
from repro.distributed.wreach_bc import WReachOutput, run_wreach_bc
from repro.errors import SimulationError
from repro.graphs.graph import Graph

__all__ = [
    "ClusterNode",
    "ClusterBatch",
    "DistributedCover",
    "run_cover_bc",
    "run_cluster",
]

#: ``payload_words("member")`` — the tag of every cluster message.
_TAG_WORDS = 2
#: Padding value in the fixed-width token matrix (not a vertex id).
_PAD = -1


class ClusterNode(NodeAlgorithm):
    """Cluster phase: members announce themselves to their centers.

    Every vertex w sends, for each stored path to a center
    ``v ∈ WReach_2r[w]``, the token ``(w,) + path[:-1]`` — the member id
    prefixed to the reversed routing prefix.  Tokens hop backward along
    the path (next hop = last entry); a token of length 2 has reached
    its center ``token[1]``, which records member ``token[0]``.  The
    home center and cluster degree are known locally from the
    WReachDist outputs; the fixed budget is ``2r`` rounds (a stored
    path has at most 2r edges).
    """

    def __init__(self, radius: int) -> None:
        super().__init__()
        self.radius = radius
        self.round_no = 0
        self.home = -1
        self.degree = 0
        self.members: set[int] = set()

    def on_start(self, ctx: NodeContext):
        out: WReachOutput = ctx.advice["wreach_outputs"][ctx.node]
        class_ids = ctx.advice["class_ids"]
        self.degree = len(out.wreach)
        self.members = {ctx.node}
        # Home cluster: L-least center reachable by a stored path of
        # length <= r (v itself always qualifies).
        best = (int(class_ids[ctx.node]), ctx.node)
        for u, path in out.paths.items():  # reprolint: ignore[D202] -- strict min over unique super-ids; any iteration order yields the same winner
            if len(path) - 1 <= self.radius:
                sid = (int(class_ids[u]), int(u))
                if sid < best:
                    best = sid
        self.home = best[1]
        if self.radius == 0:
            self.halted = True
            return None
        tokens = sorted((ctx.node,) + path[:-1] for path in out.paths.values())
        if not tokens:
            return None
        return ("member", tuple(tokens))

    def on_round(self, ctx: NodeContext, inbox: Inbox):
        self.round_no += 1
        forward: list[tuple[int, ...]] = []
        for _src, msg in inbox:
            if not (isinstance(msg, tuple) and len(msg) == 2 and msg[0] == "member"):
                continue
            for token in msg[1]:
                if token[-1] != ctx.node:
                    continue  # not the next hop
                if len(token) == 2:
                    self.members.add(token[0])  # token reached its center
                else:
                    forward.append(token[:-1])
        if self.round_no >= 2 * self.radius:
            self.halted = True
            return None
        if not forward:
            return None
        return ("member", tuple(sorted(set(forward))))

    def output(self) -> dict:
        return {
            "home": self.home,
            "degree": self.degree,
            "members": tuple(sorted(self.members)),
        }


class ClusterBatch(TokenRoutingBatch):
    """Cluster phase over a flat token table (port of :class:`ClusterNode`).

    Same :class:`~repro.distributed.engine.TokenRouter` mechanic as the
    election/join ports; the member semantics: a token of length 2 has
    arrived — its center (last entry) records the member (first entry)
    — longer ones are truncated and re-sent, and everything halts at
    the fixed ``2r`` budget.  Arrivals accumulate as flat
    (center, member) pair arrays grouped once in ``outputs``; results
    and round statistics are bit-identical to the per-node reference.
    """

    tag_words = _TAG_WORDS

    def __init__(self, radius: int) -> None:
        super().__init__(width=max(2 * radius + 1, 1))
        self.radius = radius
        self.home: np.ndarray | None = None
        self.degree: np.ndarray | None = None
        self._arr_centers: list[np.ndarray] = []
        self._arr_members: list[np.ndarray] = []

    def on_start(self, ctx: BatchContext) -> BatchEmission | None:
        n = ctx.n
        outs: list[WReachOutput] = ctx.advice["wreach_outputs"]
        class_ids = ctx.advice["class_ids"]
        classes = np.asarray(class_ids, dtype=np.int64).tolist()
        radius = self.radius
        self.halted = np.zeros(n, dtype=bool)
        home = np.empty(n, dtype=np.int64)
        degree = np.empty(n, dtype=np.int64)
        tok_src: list[int] = []
        tok_rows: list[tuple[int, ...]] = []
        for v in range(n):
            out = outs[v]
            degree[v] = len(out.wreach)
            best = (classes[v], v)
            for u, path in out.paths.items():
                if len(path) - 1 <= radius:
                    sid = (classes[u], u)
                    if sid < best:
                        best = sid
            home[v] = best[1]
            if radius == 0:
                continue
            for path in out.paths.values():
                tok_src.append(v)
                tok_rows.append((v,) + path[:-1])
        self.home = home
        self.degree = degree
        if radius == 0:
            self.halted[:] = True
        senders = np.asarray(tok_src, dtype=np.int64)
        lens = np.asarray([len(t) for t in tok_rows], dtype=np.int64)
        rows = np.full((len(tok_rows), self.router.width), _PAD, dtype=np.int64)
        for i, t in enumerate(tok_rows):
            rows[i, : len(t)] = t
        return self.seed(senders, lens, rows)

    def on_round(self, ctx: BatchContext, round_index: int) -> BatchEmission | None:
        # Deliver: length-2 tokens have reached their center, the rest
        # hop backward.
        recv = self.router.receivers()
        if len(recv):
            arrived = self.router.lens == 2
            if arrived.any():
                self._arr_centers.append(recv[arrived].copy())
                self._arr_members.append(self.router.rows[arrived, 0].copy())
            fwd = ~arrived
        else:
            fwd = np.zeros(0, dtype=bool)
        if round_index >= 2 * self.radius:
            self.halted[:] = True
            self.router.clear()
            return None
        return self.router.advance(fwd)

    def outputs(self, ctx: BatchContext) -> dict[int, dict]:
        assert self.home is not None and self.degree is not None
        n = ctx.n
        own = np.arange(n, dtype=np.int64)  # every vertex is its own member
        centers = np.concatenate([own] + self._arr_centers)
        members = np.concatenate([own] + self._arr_members)
        order = np.lexsort((members, centers))
        centers, members = centers[order], members[order]
        bounds = np.searchsorted(centers, np.arange(n + 1, dtype=np.int64))
        mlist = members.tolist()
        homes = self.home.tolist()
        degs = self.degree.tolist()
        return {
            v: {
                "home": homes[v],
                "degree": degs[v],
                "members": tuple(mlist[bounds[v] : bounds[v + 1]]),
            }
            for v in range(n)
        }


def run_cluster(
    g: Graph,
    class_ids: np.ndarray,
    wreach_outputs: list[WReachOutput],
    radius: int,
    engine: str = "batch",
    wave_width: int = 0,
) -> tuple[dict[int, dict], RunResult]:
    """Run the cluster phase on precomputed weak-reachability outputs.

    ``wave_width`` > 0 executes independent token components as
    pipelined waves on the batch engine (identical results).
    """
    factory = pick_deployment(
        engine, lambda: ClusterBatch(radius), lambda v: ClusterNode(radius)
    )
    net = Network(
        g,
        Model.CONGEST_BC,
        factory,
        advice={
            "class_ids": np.asarray(class_ids, dtype=np.int64),
            "wreach_outputs": wreach_outputs,
        },
        wave_width=wave_width,
    )
    res = net.run()
    return res.outputs, res


@dataclass(frozen=True)
class DistributedCover:
    """Theorem-8 result: the cover plus routing info and accounting."""

    cover: NeighborhoodCover
    routing: list[dict[int, tuple[int, ...]]]  # per node: center -> path
    order: OrderComputation
    phase_rounds: dict[str, int]
    phase_max_words: dict[str, int]
    rounds: int
    max_payload_words: int
    total_words: int


def run_cover_bc(
    g: Graph,
    radius: int,
    order_computation: OrderComputation | None = None,
    engine: str = "batch",
    wave_width: int = 0,
) -> DistributedCover:
    """Compute the Theorem-8 cover representation in CONGEST_BC.

    ``engine`` selects the simulator path of all three phases
    (vectorized ``"batch"`` by default, per-node ``"pernode"``), and
    ``wave_width`` > 0 runs the cluster phase's independent token
    components as pipelined waves; the cover and all accounting are
    identical either way.
    """
    if radius < 0:
        raise SimulationError("radius must be >= 0")
    oc = order_computation or distributed_h_partition_order(g, engine=engine)
    wouts, wres = run_wreach_bc(g, oc.class_ids, 2 * radius, engine=engine)
    couts, cres = run_cluster(
        g, oc.class_ids, wouts, radius, engine=engine, wave_width=wave_width
    )
    home = np.fromiter((couts[v]["home"] for v in range(g.n)), dtype=np.int64, count=g.n)
    degree = np.fromiter(
        (couts[v]["degree"] for v in range(g.n)), dtype=np.int64, count=g.n
    )
    routing = [dict(wouts[v].paths) for v in range(g.n)]
    cover = NeighborhoodCover(
        radius_param=radius,
        clusters={v: couts[v]["members"] for v in range(g.n)},
        home_cluster=home,
        degree_per_vertex=degree,
    )
    phase_rounds, phase_max_words, total_words = merge_phase_stats(
        {"order": oc, "wreach": wres, "cluster": cres}
    )
    return DistributedCover(
        cover=cover,
        routing=routing,
        order=oc,
        phase_rounds=phase_rounds,
        phase_max_words=phase_max_words,
        rounds=sum(phase_rounds.values()),
        max_payload_words=max(phase_max_words.values()),
        total_words=total_words,
    )
