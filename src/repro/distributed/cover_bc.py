"""Theorem 8 — distributed sparse r-neighborhood covers (CONGEST_BC).

The WReachDist outputs *are* the distributed cover representation: after
Algorithm 4 with horizon 2r, every vertex w knows ``WReach_2r[w]`` — the
set of cluster centers v with ``w ∈ X_v`` — plus a length-<=2r routing
path to each of them, and its *home* cluster center
``min WReach_r[w]`` whose cluster contains ``N_r[w]`` (Lemma 6).

:func:`run_cover_bc` runs the pipeline and assembles the (logically
distributed) membership lists into a :class:`NeighborhoodCover` so the
sequential validators of :mod:`repro.analysis.validate` can certify it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.covers import NeighborhoodCover
from repro.distributed.nd_order import OrderComputation, distributed_h_partition_order
from repro.distributed.wreach_bc import WReachOutput, run_wreach_bc
from repro.errors import SimulationError
from repro.graphs.graph import Graph

__all__ = ["DistributedCover", "run_cover_bc"]


@dataclass(frozen=True)
class DistributedCover:
    """Theorem-8 result: the cover plus routing info and accounting."""

    cover: NeighborhoodCover
    routing: list[dict[int, tuple[int, ...]]]  # per node: center -> path
    order: OrderComputation
    rounds: int
    max_payload_words: int
    total_words: int


def run_cover_bc(
    g: Graph,
    radius: int,
    order_computation: OrderComputation | None = None,
) -> DistributedCover:
    """Compute the Theorem-8 cover representation in CONGEST_BC."""
    if radius < 0:
        raise SimulationError("radius must be >= 0")
    oc = order_computation or distributed_h_partition_order(g)
    wouts, wres = run_wreach_bc(g, oc.class_ids, 2 * radius)
    class_ids = oc.class_ids
    clusters: dict[int, list[int]] = {}
    degree = np.zeros(g.n, dtype=np.int64)
    home = np.full(g.n, -1, dtype=np.int64)
    routing: list[dict[int, tuple[int, ...]]] = []
    for v in range(g.n):
        out: WReachOutput = wouts[v]
        degree[v] = len(out.wreach)
        for center in out.wreach:
            clusters.setdefault(int(center), []).append(v)
        # Home cluster: L-least center reachable by a stored path of
        # length <= r (v itself always qualifies).
        best = (int(class_ids[v]), v)
        for u, path in out.paths.items():
            if len(path) - 1 <= radius:
                sid = (int(class_ids[u]), int(u))
                if sid < best:
                    best = sid
        home[v] = best[1]
        routing.append(dict(out.paths))
    cover = NeighborhoodCover(
        radius_param=radius,
        clusters={v: tuple(sorted(ms)) for v, ms in clusters.items()},
        home_cluster=home,
        degree_per_vertex=degree,
    )
    return DistributedCover(
        cover=cover,
        routing=routing,
        order=oc,
        rounds=oc.rounds + wres.rounds,
        max_payload_words=max(oc.max_payload_words, wres.max_payload_words),
        total_words=oc.total_words + wres.total_words,
    )
