"""Barenboim–Elkin H-partition [11] in CONGEST_BC.

The primitive behind Theorem 3's order computation: partition V into
levels 1, 2, ... such that every vertex at level l has at most
``threshold`` neighbors at levels >= l.  For threshold >= (2 + eps) * a
on a graph of arboricity a, O(log n) levels suffice (each phase peels a
constant fraction of the remaining vertices, because a graph of
arboricity a has average degree < 2a, so at least half the active
vertices have active-degree <= (2+eps)a... the standard argument).

Protocol (2 rounds per phase, 1-word broadcasts):

* round A: every still-active vertex broadcasts ``("active",)``;
* round B: a vertex that counted at most ``threshold`` active neighbors
  joins the current level and broadcasts ``("joined", level)``; everyone
  updates its local view of neighbor levels.

Each node's output: its level and its neighbors' levels — enough to
orient every edge toward the (level, id)-greater endpoint with
out-degree <= threshold, and to define the linear order
"higher level first, then smaller id" under which every vertex has at
most ``threshold`` L-smaller neighbors (i.e. wcol_1 <= threshold + 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributed.engine import (
    BatchAlgorithm,
    BatchContext,
    BatchEmission,
    pick_deployment,
)
from repro.distributed.model import Model
from repro.distributed.network import Network, RunResult
from repro.distributed.node import Inbox, NodeAlgorithm, NodeContext
from repro.errors import SimulationError
from repro.graphs.graph import Graph

__all__ = [
    "HPartitionNode",
    "HPartitionBatch",
    "HPartitionOutput",
    "run_h_partition",
]

# ``("active",)`` and ``("joined", level)`` measured by payload_words:
# the tag strings count (len + 3) // 4 words, the level one word.
_ACTIVE_WORDS = 2
_JOINED_WORDS = 3


@dataclass(frozen=True)
class HPartitionOutput:
    """Per-node result of the H-partition protocol."""

    level: int
    neighbor_levels: dict[int, int]


class HPartitionNode(NodeAlgorithm):
    """One vertex of the Barenboim–Elkin peeling protocol."""

    def __init__(self) -> None:
        super().__init__()
        self.level = -1
        self.neighbor_levels: dict[int, int] = {}
        self.active_neighbors: set[int] = set()
        self.phase = 0
        self.expect = "activity"  # alternates: activity-count / join-announce

    # The protocol needs the class threshold from advice.
    def _threshold(self, ctx: NodeContext) -> int:
        return int(ctx.advice["threshold"])

    def on_start(self, ctx: NodeContext):
        self.active_neighbors = set(ctx.neighbors)
        self.phase = 1
        return ("active",)

    def on_round(self, ctx: NodeContext, inbox: Inbox):
        if self.expect == "activity":
            # Inbox holds "active" pings from still-active neighbors.
            currently_active = {src for src, msg in inbox if msg == ("active",)}
            self.active_neighbors = currently_active
            self.expect = "join"
            if self.level == -1 and len(currently_active) <= self._threshold(ctx):
                self.level = self.phase
                return ("joined", self.level)
            return None
        # "join" round: record neighbors that joined this phase.
        for src, msg in inbox:
            if isinstance(msg, tuple) and len(msg) == 2 and msg[0] == "joined":
                self.neighbor_levels[src] = int(msg[1])
        self.expect = "activity"
        self.phase += 1
        if self.level != -1:
            # Joined already; stay alive one extra join-listening round so
            # same-phase neighbors' announcements are not missed, then halt.
            if all(u in self.neighbor_levels for u in ctx.neighbors):
                self.halted = True
                return None
            # Keep listening (late neighbors still to join); send nothing.
            return None
        return ("active",)

    def output(self) -> HPartitionOutput:
        return HPartitionOutput(self.level, dict(self.neighbor_levels))


class HPartitionBatch(BatchAlgorithm):
    """All vertices of the peeling protocol as structure-of-arrays state.

    One transition per round over ``level`` / halted arrays; the
    "active" pings of a round are not materialized as messages at all —
    the receiving side of the protocol only ever needs the per-vertex
    *count* of active neighbors, which is one CSR segment sum over the
    previous round's sender mask.  Round schedule, emissions, and
    outputs replicate :class:`HPartitionNode` exactly.
    """

    def __init__(self) -> None:
        super().__init__()
        self.level: np.ndarray | None = None
        self.phase = 0
        self.expect = "activity"  # alternates like the per-node state
        self.prev_active: np.ndarray | None = None

    def on_start(self, ctx: BatchContext) -> BatchEmission | None:
        n = ctx.n
        self.halted = np.zeros(n, dtype=bool)
        self.level = np.full(n, -1, dtype=np.int64)
        self.phase = 1
        self.expect = "activity"
        # Everyone broadcasts ("active",); the engine drops isolated
        # senders from the statistics, the count below never sees them.
        self.prev_active = np.ones(n, dtype=bool)
        senders = np.arange(n, dtype=np.int64)
        return BatchEmission(senders, np.full(n, _ACTIVE_WORDS, dtype=np.int64))

    def on_round(self, ctx: BatchContext, round_index: int) -> BatchEmission | None:
        thr = int(ctx.advice["threshold"])
        level = self.level
        assert level is not None and self.prev_active is not None
        if self.expect == "activity":
            # Delivered this round: "active" pings from the previous
            # round's senders.  A still-unleveled vertex with at most
            # ``threshold`` active neighbors joins and announces.
            active_cnt = ctx.neighbor_counts(self.prev_active)
            joiners = (level == -1) & (active_cnt <= thr)
            level[joiners] = self.phase
            self.expect = "join"
            senders = np.flatnonzero(joiners)
            if len(senders) == 0:
                return None
            return BatchEmission(senders, np.full(len(senders), _JOINED_WORDS, dtype=np.int64))
        # "join" round: the announcements are already visible in ``level``
        # (exactly the joins a per-node vertex has received by now); a
        # joined vertex halts once every neighbor's level is known.
        unjoined_nbrs = ctx.neighbor_counts(level == -1)
        self.halted |= (level != -1) & (unjoined_nbrs == 0)
        self.expect = "activity"
        self.phase += 1
        still_active = level == -1
        self.prev_active = still_active
        senders = np.flatnonzero(still_active)
        if len(senders) == 0:
            return None
        return BatchEmission(senders, np.full(len(senders), _ACTIVE_WORDS, dtype=np.int64))

    def outputs(self, ctx: BatchContext) -> dict[int, HPartitionOutput]:
        level = self.level
        assert level is not None
        levels = level.tolist()
        g = ctx.graph
        out = {}
        for v in range(ctx.n):
            nbrs = g.neighbors(v).tolist()
            out[v] = HPartitionOutput(levels[v], {u: levels[u] for u in nbrs})
        return out


def run_h_partition(
    g: Graph, threshold: int, max_rounds: int = 10_000, engine: str = "batch"
) -> tuple[list[HPartitionOutput], RunResult]:
    """Run the protocol; returns per-node outputs and the traffic record.

    ``engine`` picks the execution path: ``"batch"`` (default) runs the
    vectorized :class:`HPartitionBatch` on the batch engine,
    ``"pernode"`` the original :class:`HPartitionNode` loop.  Outputs
    and statistics are identical either way.
    """
    if threshold < 1:
        raise SimulationError("threshold must be >= 1")
    factory = pick_deployment(engine, HPartitionBatch, lambda v: HPartitionNode())
    net = Network(
        g,
        Model.CONGEST_BC,
        factory,
        advice={"threshold": threshold},
    )
    res = net.run(max_rounds=max_rounds)
    outs = [res.outputs[v] for v in range(g.n)]
    if any(o.level == -1 for o in outs):  # pragma: no cover - protocol always peels
        raise SimulationError("H-partition left unleveled vertices")
    return outs, res
