"""Lemma 16 / Theorem 17 — LOCAL connectifier in 3r+1 rounds.

Input: any distance-r dominating set D (each vertex knows whether it is
in D).  Output: a connected distance-r dominating set D' with
``|D'| <= 2r * d * |D| + |D|`` where d bounds the edge density of
depth-r minors of the class (planar: d = 3, so factor 6 + 1 at r = 1).

Protocol, exactly as the paper's proof of Lemma 16:

1. every v ∈ D learns ``N_{2r+1}[v]`` — 2r+1 rounds;
2. from that ball alone, v computes (no communication):
   the lexicographic ball partition ``B(·)`` restricted to its ball
   (correct for every vertex within distance r+1 — the locality audit
   is in DESIGN.md and the tests), its neighbors in the depth-r minor
   ``H(D)``, and the canonical lexicographically-least shortest path
   ``P_uv`` (length <= 2r+1) to each minor neighbor — both endpoints
   compute the *same* path;
3. path vertices are notified in r more rounds (each endpoint covers
   its half of the path; every path vertex is within r of an endpoint).

Total: 3r+1 rounds.  The sequential reference
:func:`repro.core.connect.connect_via_minor` computes the same D' from
the global graph; equality of the two outputs is a test invariant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.connect import canonical_lex_path, lex_ball_partition
from repro.distributed.local_engine import BallInfo, run_local_algorithm
from repro.errors import SimulationError
from repro.graphs.graph import Graph

__all__ = ["local_connectify", "LocalConnectResult"]


@dataclass(frozen=True)
class LocalConnectResult:
    """Output of the LOCAL connectifier."""

    connected_set: tuple[int, ...]
    base_size: int
    radius: int
    rounds: int
    minor_edges: tuple[tuple[int, int], ...]

    @property
    def size(self) -> int:
        return len(self.connected_set)

    @property
    def blowup(self) -> float:
        return self.size / self.base_size if self.base_size else 0.0


def _dominator_rule(radius: int):
    """Build the per-node pure function for the gather-then-decide engine."""

    def rule(ball: BallInfo) -> dict:
        me = ball.center
        if not ball.data.get(me, False):
            return {"paths": ()}  # non-dominators stay silent in this phase
        bg, local = ball.graph()
        back = {i: v for v, i in local.items()}
        ball_doms = [local[v] for v in ball.vertices if ball.data.get(v, False)]
        owner_local, _ = lex_ball_partition(bg, ball_doms, None)
        me_local = local[me]

        # Distances from me inside the ball (= true distances up to 2r+1).
        from repro.graphs.traversal import bfs_distances

        dist = bfs_distances(bg, me_local)

        # B(me): vertices within r owned by me; owner values are correct
        # for everything within distance r+1 of me (locality audit).
        h_neighbors: set[int] = set()
        for xl in range(bg.n):
            if dist[xl] <= radius and owner_local[xl] == me_local:
                for yl in bg.neighbors(xl):
                    yl = int(yl)
                    own = int(owner_local[yl])
                    if own != me_local and own >= 0:
                        h_neighbors.add(own)
        paths = []
        for ul in sorted(h_neighbors):
            # Canonical path computed on the ball graph; local ids are
            # order-isomorphic to global ids, so both endpoints and the
            # global reference agree on the same path.
            p = canonical_lex_path(bg, ul, me_local, 2 * radius + 1)
            if p is None:  # pragma: no cover - H-neighbors are always close
                raise SimulationError("minor edge beyond 2r+1 inside ball")
            paths.append(tuple(back[i] for i in p))
        return {"paths": tuple(paths)}

    return rule


def local_connectify(
    g: Graph,
    dominators: Iterable[int],
    radius: int,
    mode: str = "oracle",
) -> LocalConnectResult:
    """Run the 3r+1-round LOCAL connectifier on a given dominating set."""
    base = sorted(set(int(v) for v in dominators))
    if not base:
        raise SimulationError("cannot connectify an empty dominating set")
    flags = {v: (v in set(base)) for v in range(g.n)}
    outputs, gather_rounds = run_local_algorithm(
        g, 2 * radius + 1, _dominator_rule(radius), node_data=flags, mode=mode
    )
    out: set[int] = set(base)
    minor_edges: set[tuple[int, int]] = set()
    for v, o in outputs.items():
        for path in o["paths"]:
            out.update(path)
            a, b = path[0], path[-1]
            minor_edges.add((min(a, b), max(a, b)))
    # Notification of path vertices costs r additional rounds (each
    # endpoint covers its half); total 3r+1 as in Lemma 16.
    rounds = gather_rounds + radius
    return LocalConnectResult(
        connected_set=tuple(sorted(out)),
        base_size=len(base),
        radius=radius,
        rounds=rounds,
        minor_edges=tuple(sorted(minor_edges)),
    )
