"""LOCAL-model execution engine: gather a ball, decide locally.

Every LOCAL algorithm in the paper follows the same shape: spend k
rounds learning the radius-k ball (topology + per-node inputs), then
decide from that knowledge alone.  The engine factors this out:

* ``node_fn(ball: BallInfo) -> output`` is a *pure function* of the
  ball — the algorithm;
* the engine produces each node's :class:`BallInfo` either by

  - ``mode="oracle"`` — read N_k[v] directly off the graph and charge
    k rounds (fast; what benchmarks use), or
  - ``mode="messages"`` — run k real LOCAL flooding rounds in the
    simulator and reconstruct the ball from received messages.

Tests assert the two modes produce *identical* BallInfo, which is the
formal justification for using the oracle in benchmarks (DESIGN.md §2,
fidelity decision 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

import numpy as np

from repro.distributed.model import Model
from repro.distributed.network import Network
from repro.distributed.node import Inbox, NodeAlgorithm, NodeContext
from repro.errors import SimulationError
from repro.graphs.build import from_edges
from repro.graphs.graph import Graph
from repro.graphs.traversal import UNREACHED, bfs_distances

__all__ = ["BallInfo", "run_local_algorithm"]


@dataclass(frozen=True)
class BallInfo:
    """Everything a node knows after k LOCAL rounds.

    ``vertices`` is ``N_k[center]`` (sorted); ``edges`` are exactly the
    edges of the subgraph induced by ``vertices``; ``data`` holds the
    per-node algorithm inputs for every vertex in the ball.
    """

    center: int
    radius: int
    vertices: tuple[int, ...]
    edges: tuple[tuple[int, int], ...]
    data: Mapping[int, Any]

    def graph(self) -> tuple[Graph, dict[int, int]]:
        """The induced ball as a Graph plus ``original_id -> local_id``."""
        local = {v: i for i, v in enumerate(self.vertices)}
        edges = [(local[u], local[v]) for u, v in self.edges]
        return from_edges(len(self.vertices), edges), local


def _oracle_ball(g: Graph, v: int, k: int, data: Mapping[int, Any]) -> BallInfo:
    dist = bfs_distances(g, v, max_dist=k)
    members = np.flatnonzero(dist != UNREACHED)
    member_set = set(int(x) for x in members)
    edges = []
    for u in member_set:
        for w in g.neighbors(u):
            w = int(w)
            if u < w and w in member_set:
                edges.append((u, w))
    return BallInfo(
        center=v,
        radius=k,
        vertices=tuple(sorted(member_set)),
        edges=tuple(sorted(edges)),
        data={u: data[u] for u in sorted(member_set)},
    )


class _GatherNode(NodeAlgorithm):
    """k rounds of LOCAL flooding of edges and node data."""

    def __init__(self, k: int) -> None:
        super().__init__()
        self.k = k
        self.round_no = 0
        self.known_edges: set[tuple[int, int]] = set()
        self.known_data: dict[int, Any] = {}

    def on_start(self, ctx: NodeContext):
        my_edges = tuple(
            (min(ctx.node, u), max(ctx.node, u)) for u in ctx.neighbors
        )
        self.known_edges.update(my_edges)
        my_datum = ctx.advice["node_data"][ctx.node]
        self.known_data[ctx.node] = my_datum
        if self.k == 0:
            self.halted = True
            return None
        return ("info", my_edges, ((ctx.node, my_datum),))

    def on_round(self, ctx: NodeContext, inbox: Inbox):
        self.round_no += 1
        new_edges: set[tuple[int, int]] = set()
        new_data: dict[int, Any] = {}
        for _src, msg in inbox:
            if not (isinstance(msg, tuple) and len(msg) == 3 and msg[0] == "info"):
                continue
            for e in msg[1]:
                if e not in self.known_edges:
                    self.known_edges.add(e)
                    new_edges.add(e)
            for node, datum in msg[2]:
                if node not in self.known_data:
                    self.known_data[node] = datum
                    new_data[node] = datum
        if self.round_no >= self.k:
            self.halted = True
            return None
        if not new_edges and not new_data:
            return None
        return ("info", tuple(sorted(new_edges)), tuple(sorted(new_data.items())))

    def output(self):
        return (frozenset(self.known_edges), dict(self.known_data))


def _ball_from_knowledge(
    v: int, k: int, known_edges: frozenset, known_data: dict[int, Any]
) -> BallInfo:
    """Reconstruct N_k[v] from flooded knowledge (may exceed the ball)."""
    adj: dict[int, list[int]] = {}
    for a, b in known_edges:
        adj.setdefault(a, []).append(b)
        adj.setdefault(b, []).append(a)
    dist = {v: 0}
    frontier = [v]
    d = 0
    while frontier and d < k:
        nxt = []
        for x in frontier:
            for y in adj.get(x, ()):
                if y not in dist:
                    dist[y] = d + 1
                    nxt.append(y)
        frontier = sorted(nxt)
        d += 1
    members = set(dist)
    edges = tuple(
        sorted((a, b) for a, b in known_edges if a in members and b in members)
    )
    return BallInfo(
        center=v,
        radius=k,
        vertices=tuple(sorted(members)),
        edges=edges,
        data={u: known_data[u] for u in sorted(members)},
    )


def gather_balls(
    g: Graph,
    k: int,
    node_data: Mapping[int, Any] | None = None,
    mode: str = "oracle",
) -> tuple[list[BallInfo], int]:
    """All nodes' radius-k balls and the LOCAL round cost (= k)."""
    if k < 0:
        raise SimulationError("ball radius must be >= 0")
    data = dict(node_data) if node_data is not None else {v: None for v in range(g.n)}
    for v in range(g.n):
        data.setdefault(v, None)
    if mode == "oracle":
        return [_oracle_ball(g, v, k, data) for v in range(g.n)], k
    if mode != "messages":
        raise SimulationError(f"unknown mode {mode!r}")
    net = Network(
        g, Model.LOCAL, lambda v: _GatherNode(k), advice={"node_data": data}
    )
    res = net.run()
    balls = []
    for v in range(g.n):
        known_edges, known_data = res.outputs[v]
        balls.append(_ball_from_knowledge(v, k, known_edges, known_data))
    return balls, k


def run_local_algorithm(
    g: Graph,
    k: int,
    node_fn: Callable[[BallInfo], Any],
    node_data: Mapping[int, Any] | None = None,
    mode: str = "oracle",
) -> tuple[dict[int, Any], int]:
    """Gather radius-k balls, apply ``node_fn`` everywhere.

    Returns ``(outputs, rounds)`` with ``rounds = k`` (the LOCAL cost of
    the gather; any extra notification rounds are charged by callers).
    """
    balls, rounds = gather_balls(g, k, node_data, mode)
    return {v: node_fn(balls[v]) for v in range(g.n)}, rounds
