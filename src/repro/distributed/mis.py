"""Luby's randomized maximal independent set in CONGEST_BC.

A classic distributed substrate (the paper's related work compares
against MIS-based constructions [35, 49]): in each phase every live
vertex draws a random priority, strict local minima join the MIS, and
joined vertices knock out their neighbors.  O(log n) phases w.h.p.,
two rounds per phase, one/two-word messages — broadcast-only, so it
runs unchanged in CONGEST_BC.

Liveness bookkeeping is implicit: live vertices broadcast a priority
every phase, so "my live neighbors" is exactly "whoever sent me a
priority this phase" — no departure announcements needed.

Randomness is seeded per node (``seed + node id``) so runs are
deterministic and reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.model import Model
from repro.distributed.network import Network, RunResult
from repro.distributed.node import Inbox, NodeAlgorithm, NodeContext
from repro.graphs.graph import Graph

__all__ = ["LubyMISNode", "run_luby_mis"]


class LubyMISNode(NodeAlgorithm):
    """One vertex of Luby's algorithm (priority / decide alternation)."""

    def __init__(self, seed: int) -> None:
        super().__init__()
        self.seed = seed
        self.state = "live"  # live -> in_mis | out
        self.expect = "priority"
        self.rng: np.random.Generator | None = None
        self.my_priority = 0.0

    def on_start(self, ctx: NodeContext):
        self.rng = np.random.default_rng(self.seed + ctx.node)
        self.my_priority = float(self.rng.random())
        return ("prio", self.my_priority)

    def on_round(self, ctx: NodeContext, inbox: Inbox):
        assert self.rng is not None
        if self.expect == "priority":
            # Whoever sent a priority this phase is a live neighbor.
            prios = {
                src: msg[1]
                for src, msg in inbox
                if isinstance(msg, tuple) and len(msg) == 2 and msg[0] == "prio"
            }
            self.expect = "decide"
            has_lower = any(
                (p, u) < (self.my_priority, ctx.node)
                for u, p in prios.items()
            )
            if not has_lower:
                self.state = "in_mis"
                return ("joined",)
            return None
        # Decide round: a joined neighbor knocks us out.
        joined = any(msg == ("joined",) for _src, msg in inbox)
        self.expect = "priority"
        if self.state == "in_mis":
            self.halted = True
            return None
        if joined:
            self.state = "out"
            self.halted = True
            return None
        self.my_priority = float(self.rng.random())
        return ("prio", self.my_priority)

    def output(self) -> bool:
        return self.state == "in_mis"


def run_luby_mis(g: Graph, seed: int = 0, max_rounds: int = 10_000) -> tuple[list[int], RunResult]:
    """Run Luby's MIS; returns the independent set and the traffic record."""
    net = Network(g, Model.CONGEST_BC, lambda v: LubyMISNode(seed))
    res = net.run(max_rounds=max_rounds)
    mis = sorted(v for v in range(g.n) if res.outputs[v])
    return mis, res
