"""Algorithm 4 — ``WReachDist``: distributed weak-reachability in CONGEST_BC.

Every vertex w learns ``WReach_2r[G, L, w]`` together with, for each
``v`` in it, a stored path of length <= 2r from v to w that is a
shortest path inside the cluster ``X_v`` (Lemma 7).  The linear order L
is given by *super-ids* ``sid(v) = (class_id(v), id(v))`` computed by
the order phase (:mod:`repro.distributed.nd_order`).

Protocol (2r receive rounds after the initial broadcast):

* each vertex starts by broadcasting the length-0 path ``(sid(w),)``;
* on receiving a path ``p`` (ending at the sender) a vertex w forms the
  candidate ``p + (sid(w),)``, drops it if w already lies on p or if
  ``sid(p[0]) >= sid(w)``, and otherwise keeps the best path per source
  under the (length, sid-sequence) order — exactly the paper's
  "shortest, break ties using super-ids";
* only *newly improved* paths are re-broadcast, which is why no vertex
  ever forwards information about more than ``c`` sources
  (every stored source is in its own WReach set — the congestion bound
  in Lemma 7's proof).

The payload of a round is the set of improved paths, each path at most
2r+1 super-ids of 2 words each; experiment T4 confirms the measured
maximum matches the paper's O(c^2 * r * log n) bound with small
constants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributed.model import Model
from repro.distributed.network import Network, RunResult
from repro.distributed.node import Inbox, NodeAlgorithm, NodeContext
from repro.errors import SimulationError
from repro.graphs.graph import Graph

__all__ = ["WReachNode", "WReachOutput", "run_wreach_bc"]

Sid = tuple  # (class_id, vertex_id)


def _seq_key(path: tuple[Sid, ...]) -> tuple[int, tuple[Sid, ...]]:
    """(length, sid sequence): the comparison Algorithm 4 uses."""
    return (len(path), path)


@dataclass(frozen=True)
class WReachOutput:
    """Per-node result of WReachDist.

    ``paths[u]`` is the stored path as a tuple of *vertex ids* from
    ``u`` (the weakly reached, L-smaller vertex) to this node.
    ``wreach`` contains this node itself.
    """

    node: int
    sid: Sid
    wreach: tuple[int, ...]
    paths: dict[int, tuple[int, ...]]

    def wreach_within(self, length: int) -> tuple[int, ...]:
        """Members whose stored path has length <= ``length`` (plus self)."""
        members = [u for u, p in self.paths.items() if len(p) - 1 <= length]
        return tuple(sorted(members + [self.node]))


class WReachNode(NodeAlgorithm):
    """One vertex of the WReachDist protocol.

    The super-id normally comes from the order phase via the
    ``class_ids`` advice array; the unified single-execution pipeline
    passes the locally learned ``sid`` directly instead.
    """

    def __init__(self, horizon: int, sid: Sid | None = None) -> None:
        super().__init__()
        if horizon < 0:
            raise SimulationError("horizon must be >= 0")
        self.horizon = horizon  # number of receive rounds (the paper's 2r)
        self.round_no = 0
        self.sid: Sid | None = sid
        # best[source_id] = path as tuple of sids, ending at self.
        self.best: dict[int, tuple[Sid, ...]] = {}

    def _my_sid(self, ctx: NodeContext) -> Sid:
        if self.sid is None:
            class_ids = ctx.advice["class_ids"]
            self.sid = (int(class_ids[ctx.node]), ctx.node)
        return self.sid

    def on_start(self, ctx: NodeContext):
        me = self._my_sid(ctx)
        if self.horizon == 0:
            self.halted = True
            return None
        return ("paths", ((me,),))

    def on_round(self, ctx: NodeContext, inbox: Inbox):
        me = self._my_sid(ctx)
        self.round_no += 1
        improved_sources: set[int] = set()
        for _src, msg in inbox:
            if not (isinstance(msg, tuple) and len(msg) == 2 and msg[0] == "paths"):
                continue
            for p in msg[1]:
                first = p[0]
                if first >= me:
                    continue  # source not L-smaller than us
                if any(s[1] == ctx.node for s in p):
                    continue  # would close a cycle
                cand = p + (me,)
                if len(cand) - 1 > self.horizon:
                    continue
                src_id = int(first[1])
                cur = self.best.get(src_id)
                if cur is None or _seq_key(cand) < _seq_key(cur):
                    self.best[src_id] = cand
                    improved_sources.add(src_id)
        if self.round_no >= self.horizon:
            self.halted = True
            return None
        if not improved_sources:
            return None
        # Forward one path per improved source — the final best of the
        # round, keeping the per-round payload at <= c paths (Lemma 7).
        payload = tuple(self.best[s] for s in sorted(improved_sources))
        return ("paths", payload)

    def output(self) -> WReachOutput:
        assert self.sid is not None
        members = sorted(self.best) + [self.sid[1]]
        paths = {u: tuple(s[1] for s in p) for u, p in self.best.items()}
        return WReachOutput(
            node=self.sid[1],
            sid=self.sid,
            wreach=tuple(sorted(members)),
            paths=paths,
        )


def run_wreach_bc(
    g: Graph,
    class_ids: np.ndarray,
    horizon: int,
    max_rounds: int = 10_000,
) -> tuple[list[WReachOutput], RunResult]:
    """Run WReachDist with the given super-id classes and path horizon.

    ``horizon`` is the maximal path length learned (the paper's ``2r``;
    Theorem 10 uses ``2r + 1``).
    """
    net = Network(
        g,
        Model.CONGEST_BC,
        lambda v: WReachNode(horizon),
        advice={"class_ids": np.asarray(class_ids, dtype=np.int64)},
    )
    res = net.run(max_rounds=max_rounds)
    outs = [res.outputs[v] for v in range(g.n)]
    return outs, res
