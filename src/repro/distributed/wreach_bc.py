"""Algorithm 4 — ``WReachDist``: distributed weak-reachability in CONGEST_BC.

Every vertex w learns ``WReach_2r[G, L, w]`` together with, for each
``v`` in it, a stored path of length <= 2r from v to w that is a
shortest path inside the cluster ``X_v`` (Lemma 7).  The linear order L
is given by *super-ids* ``sid(v) = (class_id(v), id(v))`` computed by
the order phase (:mod:`repro.distributed.nd_order`).

Protocol (2r receive rounds after the initial broadcast):

* each vertex starts by broadcasting the length-0 path ``(sid(w),)``;
* on receiving a path ``p`` (ending at the sender) a vertex w forms the
  candidate ``p + (sid(w),)``, drops it if w already lies on p or if
  ``sid(p[0]) >= sid(w)``, and otherwise keeps the best path per source
  under the (length, sid-sequence) order — exactly the paper's
  "shortest, break ties using super-ids";
* only *newly improved* paths are re-broadcast, which is why no vertex
  ever forwards information about more than ``c`` sources
  (every stored source is in its own WReach set — the congestion bound
  in Lemma 7's proof).

The payload of a round is the set of improved paths, each path at most
2r+1 super-ids of 2 words each; experiment T4 confirms the measured
maximum matches the paper's O(c^2 * r * log n) bound with small
constants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributed.engine import (
    BatchAlgorithm,
    BatchContext,
    BatchEmission,
    pick_deployment,
)
from repro.distributed.model import Model
from repro.distributed.network import Network, RunResult
from repro.distributed.node import Inbox, NodeAlgorithm, NodeContext
from repro.errors import SimulationError
from repro.graphs.graph import Graph

__all__ = ["WReachNode", "WReachBatch", "WReachOutput", "run_wreach_bc"]

Sid = tuple  # (class_id, vertex_id)

#: ``payload_words("paths")`` — the tag of every WReachDist message.
_TAG_WORDS = 2
#: Words per super-id on a stored path (class id + vertex id).
_SID_WORDS = 2
#: Padding value in fixed-width path matrices (never a valid sid key).
_PAD = -1


def _seq_key(path: tuple[Sid, ...]) -> tuple[int, tuple[Sid, ...]]:
    """(length, sid sequence): the comparison Algorithm 4 uses."""
    return (len(path), path)


@dataclass(frozen=True)
class WReachOutput:
    """Per-node result of WReachDist.

    ``paths[u]`` is the stored path as a tuple of *vertex ids* from
    ``u`` (the weakly reached, L-smaller vertex) to this node.
    ``wreach`` contains this node itself.
    """

    node: int
    sid: Sid
    wreach: tuple[int, ...]
    paths: dict[int, tuple[int, ...]]

    def wreach_within(self, length: int) -> tuple[int, ...]:
        """Members whose stored path has length <= ``length`` (plus self)."""
        members = [u for u, p in self.paths.items() if len(p) - 1 <= length]
        return tuple(sorted(members + [self.node]))


class WReachNode(NodeAlgorithm):
    """One vertex of the WReachDist protocol.

    The super-id normally comes from the order phase via the
    ``class_ids`` advice array; the unified single-execution pipeline
    passes the locally learned ``sid`` directly instead.
    """

    def __init__(self, horizon: int, sid: Sid | None = None) -> None:
        super().__init__()
        if horizon < 0:
            raise SimulationError("horizon must be >= 0")
        self.horizon = horizon  # number of receive rounds (the paper's 2r)
        self.round_no = 0
        self.sid: Sid | None = sid
        # best[source_id] = path as tuple of sids, ending at self.
        self.best: dict[int, tuple[Sid, ...]] = {}

    def _my_sid(self, ctx: NodeContext) -> Sid:
        if self.sid is None:
            class_ids = ctx.advice["class_ids"]
            self.sid = (int(class_ids[ctx.node]), ctx.node)
        return self.sid

    def on_start(self, ctx: NodeContext):
        me = self._my_sid(ctx)
        if self.horizon == 0:
            self.halted = True
            return None
        return ("paths", ((me,),))

    def on_round(self, ctx: NodeContext, inbox: Inbox):
        me = self._my_sid(ctx)
        self.round_no += 1
        improved_sources: set[int] = set()
        for _src, msg in inbox:
            if not (isinstance(msg, tuple) and len(msg) == 2 and msg[0] == "paths"):
                continue
            for p in msg[1]:
                first = p[0]
                if first >= me:
                    continue  # source not L-smaller than us
                if any(s[1] == ctx.node for s in p):
                    continue  # would close a cycle
                cand = p + (me,)
                if len(cand) - 1 > self.horizon:
                    continue
                src_id = int(first[1])
                cur = self.best.get(src_id)
                if cur is None or _seq_key(cand) < _seq_key(cur):
                    self.best[src_id] = cand
                    improved_sources.add(src_id)
        if self.round_no >= self.horizon:
            self.halted = True
            return None
        if not improved_sources:
            return None
        # Forward one path per improved source — the final best of the
        # round, keeping the per-round payload at <= c paths (Lemma 7).
        payload = tuple(self.best[s] for s in sorted(improved_sources))
        return ("paths", payload)

    def output(self) -> WReachOutput:
        assert self.sid is not None
        members = sorted(self.best) + [self.sid[1]]
        # Ascending-source insertion order: canonical, so the batch
        # engine's outputs build byte-identical dicts.
        paths = {u: tuple(s[1] for s in p) for u, p in sorted(self.best.items())}
        return WReachOutput(
            node=self.sid[1],
            sid=self.sid,
            wreach=tuple(sorted(members)),
            paths=paths,
        )


class WReachBatch(BatchAlgorithm):
    """All vertices of WReachDist as flat-array state.

    Super-ids are packed into single int64 keys (``(class - min_class) *
    n + id``) whose integer order equals the lexicographic sid order, so
    the protocol's "(length, sid-sequence)" comparison becomes a
    columnwise lexicographic comparison of fixed-width key matrices
    (paths are at most ``horizon + 1`` sids).  Per round:

    * the previous round's broadcasts live as a payload table
      ``(bp_src, bp_len, bp_seq)`` — one row per re-broadcast path, the
      ``(src, payload-id)`` representation of the traffic;
    * delivery is one CSR fan-out of the payload rows over the senders'
      neighborhoods, after which Algorithm 4's three drop rules (source
      not L-smaller, receiver already on the path, horizon overrun) are
      boolean masks;
    * the surviving candidates are reduced to the best per
      (receiver, source) with one ``lexsort``, then merged into the
      global best-path table (sorted by ``receiver * n + source``) by
      binary search; strictly improved rows are exactly the paths the
      per-node protocol re-broadcasts next round.

    Outputs and per-round traffic statistics are bit-identical to
    :class:`WReachNode` (the parity suite pins both).
    """

    def __init__(self, horizon: int, class_ids: np.ndarray | None = None) -> None:
        super().__init__()
        if horizon < 0:
            raise SimulationError("horizon must be >= 0")
        self.horizon = horizon
        self.width = horizon + 1  # fixed path-matrix width, in sids
        # Classes normally come from the ``class_ids`` advice array; the
        # unified single-execution pipeline passes the locally learned
        # levels directly instead (mirroring WReachNode's ``sid`` arg).
        self._class_ids = class_ids
        self.sid_key: np.ndarray | None = None
        self.min_class = 0
        # In-flight broadcasts (payload table): one row per path.
        self.bp_src = np.empty(0, dtype=np.int64)
        self.bp_len = np.empty(0, dtype=np.int64)
        self.bp_seq = np.empty((0, 0), dtype=np.int64)
        # Global best-path table, sorted by key = receiver * n + source.
        self.st_key = np.empty(0, dtype=np.int64)
        self.st_len = np.empty(0, dtype=np.int64)
        self.st_seq = np.empty((0, 0), dtype=np.int64)

    def _classes(self, ctx: BatchContext) -> np.ndarray:
        if self._class_ids is not None:
            return np.asarray(self._class_ids, dtype=np.int64)
        return np.asarray(ctx.advice["class_ids"], dtype=np.int64)

    def on_start(self, ctx: BatchContext) -> BatchEmission | None:
        n = ctx.n
        class_ids = self._classes(ctx)
        self.halted = np.zeros(n, dtype=bool)
        self.min_class = int(class_ids.min()) if n else 0
        self.sid_key = (class_ids - self.min_class) * n + np.arange(n, dtype=np.int64)
        self.bp_seq = np.empty((0, self.width), dtype=np.int64)
        self.st_seq = np.empty((0, self.width), dtype=np.int64)
        if self.horizon == 0 or n == 0:
            self.halted[:] = True
            return None
        # Every vertex broadcasts its own length-0 path ``(sid,)``.
        self.bp_src = np.arange(n, dtype=np.int64)
        self.bp_len = np.ones(n, dtype=np.int64)
        self.bp_seq = np.full((n, self.width), _PAD, dtype=np.int64)
        self.bp_seq[:, 0] = self.sid_key
        words = np.full(n, _TAG_WORDS + _SID_WORDS, dtype=np.int64)
        return BatchEmission(np.arange(n, dtype=np.int64), words)

    def _candidates(
        self, ctx: BatchContext
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fan out the in-flight paths and apply Algorithm 4's drop rules.

        Returns the surviving candidates reduced to the best per
        (receiver, source): ``(key, length, seq-matrix)`` with ``key =
        receiver * n + source`` in ascending order.
        """
        n = ctx.n
        sid_key = self.sid_key
        assert sid_key is not None
        empty = (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty((0, self.width), dtype=np.int64),
        )
        if len(self.bp_src) == 0:
            return empty
        receivers, pi = ctx.fan_out(self.bp_src)
        if len(receivers) == 0:
            return empty
        first = self.bp_seq[pi, 0]
        # Drop rule 1: the source must be strictly L-smaller than the
        # receiver.  Drop rule 3: extending must not exceed the horizon.
        ok = (first < sid_key[receivers]) & (self.bp_len[pi] <= self.horizon)
        # Drop rule 2: the receiver must not already lie on the path.  A
        # vertex has exactly one sid, so "receiver on path" is a key
        # match (padding is negative, keys are not).
        ok &= ~(self.bp_seq[pi] == sid_key[receivers, None]).any(axis=1)
        if not ok.any():
            return empty
        cr = receivers[ok]
        cp = pi[ok]
        cand_len = self.bp_len[cp] + 1
        cand_seq = self.bp_seq[cp].copy()
        cand_seq[np.arange(len(cp)), cand_len - 1] = sid_key[cr]
        cand_key = cr * n + first[ok] % n
        # Best candidate per (receiver, source) under (length, sequence):
        # one lexsort, least-significant key first, then first-of-group.
        sort_keys = tuple(cand_seq[:, j] for j in reversed(range(self.width)))
        perm = np.lexsort(sort_keys + (cand_len, cand_key))
        sorted_key = cand_key[perm]
        lead = np.ones(len(perm), dtype=bool)
        lead[1:] = sorted_key[1:] != sorted_key[:-1]
        sel = perm[lead]
        return cand_key[sel], cand_len[sel], cand_seq[sel]

    def _merge(
        self, ck: np.ndarray, clen: np.ndarray, cseq: np.ndarray
    ) -> np.ndarray:
        """Merge best candidates into the table; return the improved mask.

        A candidate improves if its (receiver, source) pair is new, or
        if it is strictly (length, sequence)-less than the stored path —
        exactly the per-node "newly improved" set that gets re-broadcast.
        """
        S = len(self.st_key)
        pos = np.searchsorted(self.st_key, ck)
        if S:
            found = (pos < S) & (self.st_key[np.minimum(pos, S - 1)] == ck)
        else:
            found = np.zeros(len(ck), dtype=bool)
        improved = ~found
        f = np.flatnonzero(found)
        if len(f):
            sp = pos[f]
            less = clen[f] < self.st_len[sp]
            tied = clen[f] == self.st_len[sp]
            for j in range(self.width):
                if not tied.any():
                    break
                a, b = cseq[f, j], self.st_seq[sp, j]
                less |= tied & (a < b)
                tied &= a == b
            improved[f] = less
            upd = f[less]
            if len(upd):
                self.st_len[pos[upd]] = clen[upd]
                self.st_seq[pos[upd]] = cseq[upd]
        fresh = np.flatnonzero(~found)
        if len(fresh):
            at = pos[fresh]
            self.st_key = np.insert(self.st_key, at, ck[fresh])
            self.st_len = np.insert(self.st_len, at, clen[fresh])
            self.st_seq = np.insert(self.st_seq, at, cseq[fresh], axis=0)
        return improved

    def on_round(self, ctx: BatchContext, round_index: int) -> BatchEmission | None:
        n = ctx.n
        ck, clen, cseq = self._candidates(ctx)
        improved = self._merge(ck, clen, cseq) if len(ck) else np.empty(0, dtype=bool)
        if round_index >= self.horizon:
            self.halted[:] = True
            self.bp_src = self.bp_src[:0]
            self.bp_len = self.bp_len[:0]
            self.bp_seq = self.bp_seq[:0]
            return None
        imp = np.flatnonzero(improved)
        if len(imp) == 0:
            self.bp_src = self.bp_src[:0]
            self.bp_len = self.bp_len[:0]
            self.bp_seq = self.bp_seq[:0]
            return None
        # Re-broadcast the improved best paths, grouped by their vertex
        # (ck is sorted, so rows are already grouped by receiver).
        ik, ilen, iseq = ck[imp], clen[imp], cseq[imp]
        w_of = ik // n
        lead = np.ones(len(w_of), dtype=bool)
        lead[1:] = w_of[1:] != w_of[:-1]
        starts = np.flatnonzero(lead)
        senders = w_of[starts]
        sid_sums = np.add.reduceat(ilen, starts)
        words = _TAG_WORDS + _SID_WORDS * sid_sums
        self.bp_src = w_of
        self.bp_len = ilen
        self.bp_seq = iseq
        return BatchEmission(senders, words)

    def outputs(self, ctx: BatchContext) -> dict[int, WReachOutput]:
        n = ctx.n
        classes = self._classes(ctx).tolist()
        bounds = np.searchsorted(self.st_key, np.arange(n + 1, dtype=np.int64) * n)
        srcs = (self.st_key % n).tolist() if len(self.st_key) else []
        lens = self.st_len.tolist()
        verts = np.where(self.st_seq >= 0, self.st_seq % n, _PAD).tolist()
        out: dict[int, WReachOutput] = {}
        for w in range(n):
            lo, hi = int(bounds[w]), int(bounds[w + 1])
            paths = {srcs[i]: tuple(verts[i][: lens[i]]) for i in range(lo, hi)}
            out[w] = WReachOutput(
                node=w,
                sid=(classes[w], w),
                wreach=tuple(sorted(list(paths) + [w])),
                paths=paths,
            )
        return out


def run_wreach_bc(
    g: Graph,
    class_ids: np.ndarray,
    horizon: int,
    max_rounds: int = 10_000,
    engine: str = "batch",
) -> tuple[list[WReachOutput], RunResult]:
    """Run WReachDist with the given super-id classes and path horizon.

    ``horizon`` is the maximal path length learned (the paper's ``2r``;
    Theorem 10 uses ``2r + 1``).  ``engine`` selects the vectorized
    batch path (default) or the per-node original; outputs and
    statistics are identical.
    """
    factory = pick_deployment(
        engine, lambda: WReachBatch(horizon), lambda v: WReachNode(horizon)
    )
    net = Network(
        g,
        Model.CONGEST_BC,
        factory,
        advice={"class_ids": np.asarray(class_ids, dtype=np.int64)},
    )
    res = net.run(max_rounds=max_rounds)
    outs = [res.outputs[v] for v in range(g.n)]
    return outs, res
