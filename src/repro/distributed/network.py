"""Synchronous message-passing simulator.

Executes one :class:`NodeAlgorithm` per vertex in lock-step rounds with
deterministic delivery order, while recording the statistics the paper's
claims are checked against: logical rounds, per-round maximum payload
size (words), total traffic, and bandwidth-normalized rounds.

Model enforcement:

* CONGEST_BC — a node may return only a single payload per round (the
  broadcast); returning a dict raises :class:`ModelViolation`.
* CONGEST / LOCAL — a dict ``{neighbor: payload}`` addresses individual
  neighbors (unknown neighbor ids raise), any other value broadcasts.
* ``strict_bandwidth`` — optionally reject any payload larger than
  ``words_per_round`` words instead of accounting it as pipelined.

Hot-path design: outgoing traffic is kept as ``(src, dsts, payload,
words)`` records with ``dsts=None`` meaning "every neighbor", so a
CONGEST_BC broadcast costs one record, one ``payload_words``
measurement (taken once at collection, memoized across shared frozen
sub-payloads), and one shared inbox pair instead of a tuple per edge;
and because senders are always scanned in ascending id, inboxes arrive
sorted by source and the old per-node, per-round ``sorted()``
disappears.  Accounting reports both per-edge ``total_words`` and
per-source ``broadcast_words``.

Two execution paths share this module's ``RunResult`` shape: the
general per-node loop below (one ``on_round`` Python call per vertex
per round — the fallback for heterogeneous deployments and the parity
reference), and the vectorized fast path of
:mod:`repro.distributed.engine`, taken automatically when the deployment
is a single :class:`~repro.distributed.engine.BatchAlgorithm` covering
every vertex.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.distributed.engine import BatchAlgorithm, execute_batch
from repro.distributed.model import Model, normalized_rounds, payload_words
from repro.distributed.node import NodeAlgorithm, NodeContext
from repro.errors import ModelViolation, SimulationError
from repro.graphs.graph import Graph

__all__ = ["Network", "RunResult", "RoundStats"]


@dataclass(frozen=True)
class RoundStats:
    """Traffic measurements for one logical round.

    ``total_words`` counts every delivered copy of a payload — a
    broadcast of w words over d incident edges contributes ``d * w`` (the
    per-edge accounting the CONGEST bounds are stated in).
    ``broadcast_words`` counts each sender's payload once regardless of
    fan-out — the distinct-broadcast volume of a CONGEST_BC round, where
    a node utters one message per round however many neighbors hear it.
    For purely point-to-point rounds the two notions coincide.
    """

    round_index: int
    messages: int
    total_words: int
    max_payload_words: int
    broadcast_words: int = 0


@dataclass
class RunResult:
    """Everything measured in one simulation run."""

    model: Model
    rounds: int
    round_stats: list[RoundStats]
    outputs: dict[int, Any]

    @property
    def total_messages(self) -> int:
        return sum(s.messages for s in self.round_stats)

    @property
    def total_words(self) -> int:
        return sum(s.total_words for s in self.round_stats)

    @property
    def total_broadcast_words(self) -> int:
        """Distinct-broadcast traffic: each sender's payload counted once."""
        return sum(s.broadcast_words for s in self.round_stats)

    @property
    def max_payload_words(self) -> int:
        return max((s.max_payload_words for s in self.round_stats), default=0)

    def normalized_rounds(self, words_per_round: int = 1) -> int:
        """Rounds after pipelining payloads at the given bandwidth."""
        return normalized_rounds(
            [s.max_payload_words for s in self.round_stats], words_per_round
        )


class Network:
    """A synchronous network executing one algorithm instance per vertex.

    ``factory`` is either the usual per-vertex constructor (``v`` ->
    :class:`NodeAlgorithm`) or a single
    :class:`~repro.distributed.engine.BatchAlgorithm` instance covering
    all vertices at once.  The latter is the all-batch deployment
    ``run`` detects and executes on the vectorized fast path; anything
    else — including heterogeneous per-node deployments mixing
    algorithm classes — takes the per-node loop below unchanged.  The
    chosen path is exposed as ``engine`` (``"batch"`` / ``"pernode"``).
    """

    def __init__(
        self,
        graph: Graph,
        model: Model,
        factory: Callable[[int], NodeAlgorithm] | BatchAlgorithm,
        advice: Mapping[str, Any] | None = None,
        words_per_round: int = 1,
        strict_bandwidth: bool = False,
        wave_width: int = 0,
    ):
        self.graph = graph
        self.model = model
        self.words_per_round = int(words_per_round)
        self.strict_bandwidth = bool(strict_bandwidth)
        # Pipelined wave execution (batch deployments only): components
        # per wave, 0 = global lockstep.  Scheduling only — results and
        # statistics are identical at any width; the per-node loop runs
        # lockstep regardless.
        self.wave_width = int(wave_width)
        adv = dict(advice or {})
        self.advice = adv
        # Memo for payload sizing: id -> (payload, words).  The payload
        # reference keeps the id stable for the memo's lifetime, so the
        # table can never alias a recycled object; cleared every round,
        # which bounds retained payloads to one round's traffic while
        # keeping the within-round sharing (one broadcast's sub-objects
        # appearing across many records) that carries the win.
        self._payload_memo: dict[int, tuple[Any, int]] = {}
        if isinstance(factory, BatchAlgorithm):
            self.batch: BatchAlgorithm | None = factory
            self.contexts = []
            self.nodes = []
            return
        self.batch = None
        self.contexts = [
            NodeContext(
                node=v,
                neighbors=tuple(int(u) for u in graph.neighbors(v)),
                n=graph.n,
                advice=adv,
            )
            for v in range(graph.n)
        ]
        self.nodes = [factory(v) for v in range(graph.n)]

    @property
    def engine(self) -> str:
        """Which execution path ``run`` takes for this deployment."""
        return "batch" if self.batch is not None else "pernode"

    # ------------------------------------------------------------------
    # A pending entry is ``(src, dsts, payload, words)`` where ``dsts``
    # is None for a broadcast (implicitly the sender's whole
    # neighborhood).  A CONGEST_BC round over a graph with m edges is
    # thus m entries short of the per-edge triple representation it
    # replaced: the payload object, its measured word size, and its
    # inbox pair are all shared across the fan-out instead of
    # materialized once per edge.  The word size is measured here, once
    # per record, with the network's identity memo — re-broadcast frozen
    # sub-payloads (tag strings, super-id tuples, stored paths) are
    # sized once per object instead of once per appearance, which is
    # where message-heavy protocols like WReachDist spend their
    # accounting time.
    def _collect(
        self, v: int, outgoing: Any
    ) -> list[tuple[int, tuple[int, ...] | None, Any, int]]:
        """Normalize a node's return value into (src, dsts, payload, words)."""
        if outgoing is None:
            return []
        ctx = self.contexts[v]
        if isinstance(outgoing, dict):
            if self.model.broadcast_only:
                raise ModelViolation(
                    f"node {v}: point-to-point messages not allowed in CONGEST_BC"
                )
            records = []
            nbrs = ctx.neighbor_set
            for dst, payload in outgoing.items():
                if dst not in nbrs:
                    raise ModelViolation(f"node {v}: {dst} is not a neighbor")
                records.append(
                    (v, (int(dst),), payload, payload_words(payload, self._payload_memo))
                )
            return records
        # Broadcast: same payload on every incident edge (none to send if
        # the vertex is isolated — matches the old per-edge expansion).
        if not ctx.neighbors:
            return []
        return [(v, None, outgoing, payload_words(outgoing, self._payload_memo))]

    def run(self, max_rounds: int = 10_000) -> RunResult:
        """Run to global halt (or raise after ``max_rounds``).

        All-batch deployments execute on the vectorized engine; the
        result is bit-identical to what the per-node loop would produce
        for the same protocol (the parity suite pins this).
        """
        if self.batch is not None:
            return execute_batch(
                self.graph,
                self.model,
                self.batch,
                self.advice,
                self.words_per_round,
                self.strict_bandwidth,
                max_rounds,
                wave_width=self.wave_width,
            )
        try:
            return self._run_pernode(max_rounds)
        finally:
            self._payload_memo.clear()

    def _run_pernode(self, max_rounds: int) -> RunResult:
        """The general per-node loop (heterogeneous-deployment fallback)."""
        stats: list[RoundStats] = []
        # Round 0: on_start.
        pending: list[tuple[int, tuple[int, ...] | None, Any, int]] = []
        for v in range(self.graph.n):
            if not self.nodes[v].halted:
                pending.extend(self._collect(v, self.nodes[v].on_start(self.contexts[v])))
        rounds = 0
        if pending:
            stats.append(self._account(0, pending))
        # Rounds with no traffic and no halts are tolerated briefly (phase-
        # counting algorithms wait silently), but a long quiet stretch with
        # unhalted nodes is a deadlock.
        quiet_grace = max(64, 4 * self.graph.n)
        quiet = 0
        while True:
            all_halted = all(node.halted for node in self.nodes)
            if all_halted and not pending:
                break
            if rounds >= max_rounds:
                raise SimulationError(f"no global halt within {max_rounds} rounds")
            rounds += 1
            # Pending records were appended while scanning senders in
            # ascending id, so each inbox is built already sorted by
            # sender — no per-round sort.
            inboxes: dict[int, list[tuple[int, Any]]] = {}
            for src, dsts, payload, _words in pending:
                entry = (src, payload)
                for dst in self.contexts[src].neighbors if dsts is None else dsts:
                    inboxes.setdefault(dst, []).append(entry)
            pending = []
            progressed = False
            for v in range(self.graph.n):
                node = self.nodes[v]
                if node.halted:
                    # Halted nodes drop incoming messages silently.
                    continue
                # Each node gets its own list: inboxes are part of the
                # public API and algorithms may mutate them freely.
                inbox = inboxes.get(v)
                if inbox is None:
                    inbox = []
                out = node.on_round(self.contexts[v], inbox)
                msgs = self._collect(v, out)
                if msgs or inbox or node.halted:
                    progressed = True
                pending.extend(msgs)
            if pending:
                stats.append(self._account(rounds, pending))
            # Bound the sizing memo to one round's traffic (the pending
            # records themselves keep this round's payloads alive for
            # delivery; only the size table is dropped).
            self._payload_memo.clear()
            quiet = 0 if (progressed or pending) else quiet + 1
            if quiet > quiet_grace:
                stuck = [v for v in range(self.graph.n) if not self.nodes[v].halted]
                raise SimulationError(f"deadlock: nodes {stuck[:5]} never halt")
        outputs = {v: self.nodes[v].output() for v in range(self.graph.n)}
        return RunResult(self.model, rounds, stats, outputs)

    def _account(
        self,
        round_index: int,
        msgs: Sequence[tuple[int, tuple[int, ...] | None, Any, int]],
    ) -> RoundStats:
        total = 0
        biggest = 0
        count = 0
        distinct = 0
        check_bandwidth = self.strict_bandwidth and self.model.bounded_bandwidth
        for src, dsts, _payload, w in msgs:
            fan_out = self.contexts[src].degree if dsts is None else len(dsts)
            count += fan_out
            total += w * fan_out
            distinct += w
            if w > biggest:
                biggest = w
            if check_bandwidth and w > self.words_per_round:
                raise ModelViolation(
                    f"round {round_index}: payload of {w} words exceeds "
                    f"bandwidth {self.words_per_round}"
                )
        return RoundStats(
            round_index=round_index,
            messages=count,
            total_words=total,
            max_payload_words=biggest,
            broadcast_words=distinct,
        )
