"""Synchronous message-passing simulator.

Executes one :class:`NodeAlgorithm` per vertex in lock-step rounds with
deterministic delivery order, while recording the statistics the paper's
claims are checked against: logical rounds, per-round maximum payload
size (words), total traffic, and bandwidth-normalized rounds.

Model enforcement:

* CONGEST_BC — a node may return only a single payload per round (the
  broadcast); returning a dict raises :class:`ModelViolation`.
* CONGEST / LOCAL — a dict ``{neighbor: payload}`` addresses individual
  neighbors (unknown neighbor ids raise), any other value broadcasts.
* ``strict_bandwidth`` — optionally reject any payload larger than
  ``words_per_round`` words instead of accounting it as pipelined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.distributed.model import Model, normalized_rounds, payload_words
from repro.distributed.node import NodeAlgorithm, NodeContext
from repro.errors import ModelViolation, SimulationError
from repro.graphs.graph import Graph

__all__ = ["Network", "RunResult", "RoundStats"]


@dataclass(frozen=True)
class RoundStats:
    """Traffic measurements for one logical round."""

    round_index: int
    messages: int
    total_words: int
    max_payload_words: int


@dataclass
class RunResult:
    """Everything measured in one simulation run."""

    model: Model
    rounds: int
    round_stats: list[RoundStats]
    outputs: dict[int, Any]

    @property
    def total_messages(self) -> int:
        return sum(s.messages for s in self.round_stats)

    @property
    def total_words(self) -> int:
        return sum(s.total_words for s in self.round_stats)

    @property
    def max_payload_words(self) -> int:
        return max((s.max_payload_words for s in self.round_stats), default=0)

    def normalized_rounds(self, words_per_round: int = 1) -> int:
        """Rounds after pipelining payloads at the given bandwidth."""
        return normalized_rounds(
            [s.max_payload_words for s in self.round_stats], words_per_round
        )


class Network:
    """A synchronous network executing one algorithm instance per vertex."""

    def __init__(
        self,
        graph: Graph,
        model: Model,
        factory: Callable[[int], NodeAlgorithm],
        advice: Mapping[str, Any] | None = None,
        words_per_round: int = 1,
        strict_bandwidth: bool = False,
    ):
        self.graph = graph
        self.model = model
        self.words_per_round = int(words_per_round)
        self.strict_bandwidth = bool(strict_bandwidth)
        adv = dict(advice or {})
        self.contexts = [
            NodeContext(
                node=v,
                neighbors=tuple(int(u) for u in graph.neighbors(v)),
                n=graph.n,
                advice=adv,
            )
            for v in range(graph.n)
        ]
        self.nodes = [factory(v) for v in range(graph.n)]

    # ------------------------------------------------------------------
    def _collect(self, v: int, outgoing: Any) -> list[tuple[int, int, Any]]:
        """Normalize a node's return value into (src, dst, payload) triples."""
        if outgoing is None:
            return []
        ctx = self.contexts[v]
        if isinstance(outgoing, dict):
            if self.model.broadcast_only:
                raise ModelViolation(
                    f"node {v}: point-to-point messages not allowed in CONGEST_BC"
                )
            triples = []
            nbrs = set(ctx.neighbors)
            for dst, payload in outgoing.items():
                if dst not in nbrs:
                    raise ModelViolation(f"node {v}: {dst} is not a neighbor")
                triples.append((v, int(dst), payload))
            return triples
        # Broadcast: same payload on every incident edge.
        return [(v, u, outgoing) for u in ctx.neighbors]

    def run(self, max_rounds: int = 10_000) -> RunResult:
        """Run to global halt (or raise after ``max_rounds``)."""
        stats: list[RoundStats] = []
        # Round 0: on_start.
        pending: list[tuple[int, int, Any]] = []
        for v in range(self.graph.n):
            if not self.nodes[v].halted:
                pending.extend(self._collect(v, self.nodes[v].on_start(self.contexts[v])))
        rounds = 0
        if pending:
            stats.append(self._account(0, pending))
        # Rounds with no traffic and no halts are tolerated briefly (phase-
        # counting algorithms wait silently), but a long quiet stretch with
        # unhalted nodes is a deadlock.
        quiet_grace = max(64, 4 * self.graph.n)
        quiet = 0
        while True:
            all_halted = all(node.halted for node in self.nodes)
            if all_halted and not pending:
                break
            if rounds >= max_rounds:
                raise SimulationError(f"no global halt within {max_rounds} rounds")
            rounds += 1
            inboxes: dict[int, list[tuple[int, Any]]] = {}
            for src, dst, payload in pending:
                inboxes.setdefault(dst, []).append((src, payload))
            pending = []
            progressed = False
            for v in range(self.graph.n):
                node = self.nodes[v]
                if node.halted:
                    # Halted nodes drop incoming messages silently.
                    continue
                inbox = sorted(inboxes.get(v, []), key=lambda t: t[0])
                out = node.on_round(self.contexts[v], inbox)
                msgs = self._collect(v, out)
                if msgs or inbox or node.halted:
                    progressed = True
                pending.extend(msgs)
            if pending:
                stats.append(self._account(rounds, pending))
            quiet = 0 if (progressed or pending) else quiet + 1
            if quiet > quiet_grace:
                stuck = [v for v in range(self.graph.n) if not self.nodes[v].halted]
                raise SimulationError(f"deadlock: nodes {stuck[:5]} never halt")
        outputs = {v: self.nodes[v].output() for v in range(self.graph.n)}
        return RunResult(self.model, rounds, stats, outputs)

    def _account(self, round_index: int, msgs: Sequence[tuple[int, int, Any]]) -> RoundStats:
        total = 0
        biggest = 0
        seen_payload_per_src: dict[int, int] = {}
        for src, _dst, payload in msgs:
            w = payload_words(payload)
            total += w
            biggest = max(biggest, w)
            if self.strict_bandwidth and self.model.bounded_bandwidth:
                if w > self.words_per_round:
                    raise ModelViolation(
                        f"round {round_index}: payload of {w} words exceeds "
                        f"bandwidth {self.words_per_round}"
                    )
            seen_payload_per_src[src] = w
        return RoundStats(
            round_index=round_index,
            messages=len(msgs),
            total_words=total,
            max_payload_words=biggest,
        )
