"""Single-execution CONGEST_BC pipeline (Theorems 9/10 as ONE protocol).

The phased runners (:mod:`repro.distributed.domset_bc`,
:mod:`repro.distributed.connect_bc`) execute order / WReach / election /
join as separate simulator runs, passing outputs through advice.  A real
network runs them as one continuous protocol; phase changes cannot be
globally coordinated except by *fixed round budgets* derived from known
quantities — exactly how the paper's O(r^2 log n) schedule composes.

This module implements that: a single :class:`UnifiedNode` whose local
clock drives the phase machine

* rounds ``[0, R1]``            — Barenboim–Elkin H-partition
  (budget ``R1 = 2 * (2 ceil(log2 n) + 8)``, ample for threshold
  >= 2 * degeneracy; a node finishing early idles),
* rounds ``(R1, R1 + H]``       — Algorithm 4 with horizon ``H``
  (= 2r, or 2r+1 when connecting), super-id ``(-level, id)``,
* rounds ``(R1+H, R1+H+r]``     — election token routing,
* rounds ``(R1+H+r, R1+H+3r+1]``— join-token routing (connect only).

Every node halts at the same predetermined round, and the *outputs are
bit-identical* to the phased pipeline run with the same threshold — a
test invariant.  Total logical rounds: O(log n + r), messages as in
Lemma 7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.distributed.beh_partition import HPartitionBatch, HPartitionNode
from repro.distributed.engine import (
    BatchAlgorithm,
    BatchContext,
    BatchEmission,
    TokenRouter,
    pick_deployment,
)
from repro.distributed.model import Model
from repro.distributed.network import Network
from repro.distributed.node import Inbox, NodeAlgorithm, NodeContext
from repro.distributed.wreach_bc import WReachBatch, WReachNode
from repro.errors import SimulationError
from repro.graphs.graph import Graph

__all__ = [
    "UnifiedNode",
    "UnifiedBatch",
    "UnifiedResult",
    "run_unified_bc",
    "order_budget",
]

#: Tags of the routed tokens: ``payload_words("elect")`` / ``("join")``.
_ELECT_TAG_WORDS = 2
_JOIN_TAG_WORDS = 1
#: Padding value in the fixed-width token matrices (not a vertex id).
_PAD = -1


def order_budget(n: int) -> int:
    """Fixed round budget for the H-partition phase (known from n)."""
    if n <= 1:
        return 2
    return 2 * (2 * math.ceil(math.log2(n)) + 8)


class UnifiedNode(NodeAlgorithm):
    """The whole Theorem 9/10 pipeline as one per-node protocol."""

    def __init__(self, radius: int, connect: bool) -> None:
        super().__init__()
        if radius < 1:
            raise SimulationError("unified pipeline needs radius >= 1")
        self.radius = radius
        self.connect = connect
        self.t = 0
        self.hp = HPartitionNode()
        self.wreach: WReachNode | None = None
        self.in_domset = False
        self.dominator = -1
        self.in_dprime = False

    # -- phase boundaries --------------------------------------------------
    def _r1(self, ctx: NodeContext) -> int:
        return order_budget(ctx.n)

    def _horizon(self) -> int:
        return 2 * self.radius + (1 if self.connect else 0)

    def on_start(self, ctx: NodeContext):
        return self.hp.on_start(ctx)

    def on_round(self, ctx: NodeContext, inbox: Inbox):
        self.t += 1
        r1 = self._r1(ctx)
        horizon = self._horizon()
        t_wreach_end = r1 + horizon
        t_elect_end = t_wreach_end + self.radius
        t_join_end = t_elect_end + 2 * self.radius + 1

        if self.t < r1:
            if self.hp.halted:
                return None
            return self.hp.on_round(ctx, inbox)
        if self.t == r1:
            # Consume the final order-phase inbox, then open Algorithm 4.
            if not self.hp.halted:
                leftover = self.hp.on_round(ctx, inbox)
                if not self.hp.halted or leftover is not None:
                    raise SimulationError(
                        "order phase exceeded its round budget; "
                        "raise the threshold or the budget"
                    )
            sid = (-self.hp.level, ctx.node)
            self.wreach = WReachNode(horizon, sid=sid)
            return self.wreach.on_start(ctx)
        if self.t < t_wreach_end:
            assert self.wreach is not None
            return self.wreach.on_round(ctx, inbox)
        if self.t == t_wreach_end:
            # Final WReach inbox, then elect min WReach_r.
            assert self.wreach is not None
            self.wreach.on_round(ctx, inbox)
            me = self.wreach.sid
            assert me is not None
            best_sid = me
            best_path: tuple | None = None
            for src, path in self.wreach.best.items():  # reprolint: ignore[D202] -- strict min over unique super-ids; any iteration order yields the same winner
                if len(path) - 1 <= self.radius and path[0] < best_sid:
                    best_sid = path[0]
                    best_path = path
            self.dominator = int(best_sid[1])
            if self.dominator == ctx.node:
                self.in_domset = True
                return None
            assert best_path is not None
            token = tuple(s[1] for s in best_path[:-1])
            return ("elect", (token,))
        if self.t <= t_elect_end:
            out = self._route(ctx, inbox, "elect")
            if self.t == t_elect_end:
                # Election settled; dominators pull in their paths.
                if self.in_domset:
                    self.in_dprime = True
                if not self.connect:
                    self.halted = True
                    return None
                if self.in_domset:
                    assert self.wreach is not None
                    joins = tuple(
                        sorted(
                            tuple(s[1] for s in path[:-1])
                            for path in self.wreach.best.values()
                        )
                    )
                    return ("join", joins) if joins else None
                return None
            return out
        # Join routing until the fixed final round.
        out = self._route(ctx, inbox, "join")
        if self.t >= t_join_end:
            self.halted = True
            return None
        return out

    def _route(self, ctx: NodeContext, inbox: Inbox, kind: str):
        """Shared token-forwarding step for elect/join messages."""
        forward: list[tuple[int, ...]] = []
        for _src, msg in inbox:
            if not (isinstance(msg, tuple) and len(msg) == 2 and msg[0] == kind):
                continue
            for token in msg[1]:
                if token[-1] != ctx.node:
                    continue
                if kind == "elect":
                    if len(token) == 1:
                        self.in_domset = True
                        continue
                else:
                    self.in_dprime = True
                if len(token) > 1:
                    forward.append(token[:-1])
                elif kind == "join":
                    continue
        if not forward:
            return None
        return (kind, tuple(sorted(set(forward))))

    def output(self) -> dict:
        return {
            "level": self.hp.level,
            "in_domset": self.in_domset,
            "dominator": self.dominator,
            "in_dprime": self.in_dprime or (self.in_domset and not self.connect),
        }


class UnifiedBatch(BatchAlgorithm):
    """The whole unified pipeline as one batch state machine.

    Composes the already-vectorized phase algorithms on the *same* fixed
    round schedule :class:`UnifiedNode` runs: the global clock
    (``round_index``) drives :class:`HPartitionBatch` until the order
    budget, a :class:`WReachBatch` seeded with the learned ``(-level,
    id)`` super-ids until the horizon, then the election and join token
    tables through two :class:`~repro.distributed.engine.TokenRouter`
    instances until their fixed budgets.  The election itself — the
    L-least stored path of length <= r per vertex — is a single
    ``np.minimum.at`` over the WReach table's packed sid keys, and both
    token launches are mask-selected slices of the same table.  Outputs
    and per-round statistics are bit-identical to the per-node run.
    """

    def __init__(self, radius: int, connect: bool) -> None:
        super().__init__()
        if radius < 1:
            raise SimulationError("unified pipeline needs radius >= 1")
        self.radius = radius
        self.connect = connect
        self.hp = HPartitionBatch()
        self.wreach: WReachBatch | None = None
        self.elect = TokenRouter(max(radius, 1), _ELECT_TAG_WORDS)
        self.join = TokenRouter(2 * radius + 1, _JOIN_TAG_WORDS)
        self.in_domset: np.ndarray | None = None
        self.dominator: np.ndarray | None = None
        self.in_dprime: np.ndarray | None = None

    def _horizon(self) -> int:
        return 2 * self.radius + (1 if self.connect else 0)

    def on_start(self, ctx: BatchContext) -> BatchEmission | None:
        n = ctx.n
        self.halted = np.zeros(n, dtype=bool)
        self.in_domset = np.zeros(n, dtype=bool)
        self.in_dprime = np.zeros(n, dtype=bool)
        return self.hp.on_start(ctx)

    def _token_table(
        self, n: int, width: int, sel: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Token rows (stored path minus its endpoint) for ``sel`` st rows.

        The WReach table is sorted by ``receiver * n + source``, so the
        senders come out grouped ascending as the routers require.
        """
        assert self.wreach is not None
        stk, stl = self.wreach.st_key[sel], self.wreach.st_len[sel]
        seq = self.wreach.st_seq[sel]
        senders = stk // n
        lens = stl - 1
        rows = np.full((len(senders), width), _PAD, dtype=np.int64)
        w = min(width, seq.shape[1])
        dec = np.where(seq[:, :w] >= 0, seq[:, :w] % n, _PAD)
        cols = np.arange(w, dtype=np.int64)
        rows[:, :w] = np.where(cols < lens[:, None], dec, _PAD)
        return senders, lens, rows

    def _open_election(self, ctx: BatchContext) -> BatchEmission | None:
        """Elect ``min WReach_r`` per vertex and launch the elect tokens."""
        n = ctx.n
        wr = self.wreach
        assert wr is not None and wr.sid_key is not None
        assert self.in_domset is not None
        best = wr.sid_key.copy()
        el = np.flatnonzero(wr.st_len - 1 <= self.radius)
        if len(el):
            np.minimum.at(best, wr.st_key[el] // n, wr.st_seq[el, 0])
        dominator = best % n
        self.dominator = dominator
        self.in_domset |= dominator == np.arange(n, dtype=np.int64)
        # One token per non-dominator: its winning stored path, routed
        # backward (the winner's st row is exactly (vertex, dominator)).
        hit = np.flatnonzero(wr.st_key % n == dominator[wr.st_key // n])
        return self.elect.load(*self._token_table(n, self.elect.width, hit))

    def _settle_election(self, ctx: BatchContext) -> BatchEmission | None:
        """Final elect round: absorb arrivals, dominators launch joins."""
        assert self.in_domset is not None and self.in_dprime is not None
        self.elect.clear()
        self.in_dprime |= self.in_domset
        if not self.connect:
            self.halted[:] = True
            return None
        wr = self.wreach
        assert wr is not None
        n = ctx.n
        sel = np.flatnonzero(self.in_domset[wr.st_key // n])
        return self.join.load(*self._token_table(n, self.join.width, sel))

    def on_round(self, ctx: BatchContext, round_index: int) -> BatchEmission | None:
        t = round_index
        r1 = order_budget(ctx.n)
        horizon = self._horizon()
        t_wreach_end = r1 + horizon
        t_elect_end = t_wreach_end + self.radius
        t_join_end = t_elect_end + 2 * self.radius + 1

        if t < r1:
            if self.hp.halted.all():
                return None
            return self.hp.on_round(ctx, t)
        if t == r1:
            # Consume the final order-phase round, then open Algorithm 4.
            leftover = None
            if not self.hp.halted.all():
                leftover = self.hp.on_round(ctx, t)
            if leftover or not self.hp.halted.all():
                raise SimulationError(
                    "order phase exceeded its round budget; "
                    "raise the threshold or the budget"
                )
            assert self.hp.level is not None
            self.wreach = WReachBatch(horizon, class_ids=-self.hp.level)
            return self.wreach.on_start(ctx)
        if t < t_wreach_end:
            assert self.wreach is not None
            return self.wreach.on_round(ctx, t - r1)
        if t == t_wreach_end:
            # Final WReach inbox, then elect min WReach_r.
            assert self.wreach is not None
            self.wreach.on_round(ctx, t - r1)
            return self._open_election(ctx)
        if t <= t_elect_end:
            assert self.in_domset is not None
            # Deliver: length-1 tokens have reached their dominator.
            recv = self.elect.receivers()
            if len(recv):
                arrived = self.elect.lens == 1
                self.in_domset[recv[arrived]] = True
                fwd = ~arrived
            else:
                fwd = np.zeros(0, dtype=bool)
            if t == t_elect_end:
                # Forwards past the budget are discarded, as per-node.
                return self._settle_election(ctx)
            return self.elect.advance(fwd)
        # Join routing until the fixed final round: every addressed hop
        # joins D', tokens longer than one entry continue backward.
        assert self.in_dprime is not None
        recv = self.join.receivers()
        if len(recv):
            self.in_dprime[recv] = True
            fwd = self.join.lens > 1
        else:
            fwd = np.zeros(0, dtype=bool)
        if t >= t_join_end:
            self.halted[:] = True
            self.join.clear()
            return None
        return self.join.advance(fwd)

    def outputs(self, ctx: BatchContext) -> dict[int, dict]:
        assert self.hp.level is not None
        if ctx.n == 0:
            return {}
        assert self.in_domset is not None and self.in_dprime is not None
        assert self.dominator is not None
        levels = self.hp.level.tolist()
        ins = self.in_domset.tolist()
        doms = self.dominator.tolist()
        dps = self.in_dprime.tolist()
        return {
            v: {
                "level": levels[v],
                "in_domset": ins[v],
                "dominator": doms[v],
                "in_dprime": dps[v] or (ins[v] and not self.connect),
            }
            for v in range(ctx.n)
        }


@dataclass(frozen=True)
class UnifiedResult:
    """Outputs plus the (deterministic) schedule of the unified run."""

    dominators: tuple[int, ...]
    connected_set: tuple[int, ...]
    dominator_of: np.ndarray
    levels: np.ndarray
    radius: int
    connect: bool
    rounds: int
    max_payload_words: int
    total_words: int

    @property
    def size(self) -> int:
        return len(self.dominators)


def run_unified_bc(
    g: Graph,
    radius: int,
    connect: bool = False,
    threshold: int | None = None,
    max_rounds: int = 100_000,
    engine: str = "batch",
) -> UnifiedResult:
    """Run the single-execution pipeline on a graph.

    ``engine`` selects the simulator path (vectorized ``"batch"`` by
    default, per-node ``"pernode"``); outputs, rounds, and traffic
    statistics are identical either way.
    """
    from repro.distributed.nd_order import default_threshold

    thr = default_threshold(g) if threshold is None else int(threshold)
    factory = pick_deployment(
        engine,
        lambda: UnifiedBatch(radius, connect),
        lambda v: UnifiedNode(radius, connect),
    )
    net = Network(
        g,
        Model.CONGEST_BC,
        factory,
        advice={"threshold": thr},
    )
    res = net.run(max_rounds=max_rounds)
    dominators = tuple(sorted(v for v in range(g.n) if res.outputs[v]["in_domset"]))
    dprime = tuple(sorted(v for v in range(g.n) if res.outputs[v]["in_dprime"]))
    dominator_of = np.asarray(
        [res.outputs[v]["dominator"] for v in range(g.n)], dtype=np.int64
    )
    levels = np.asarray([res.outputs[v]["level"] for v in range(g.n)], dtype=np.int64)
    return UnifiedResult(
        dominators=dominators,
        connected_set=dprime if connect else dominators,
        dominator_of=dominator_of,
        levels=levels,
        radius=radius,
        connect=connect,
        rounds=res.rounds,
        max_payload_words=res.max_payload_words,
        total_words=res.total_words,
    )
