"""Theorem 9 — distributed distance-r dominating set in CONGEST_BC.

Composition of three phases (each a message-passing protocol; the round
and traffic totals are summed):

1. **order** — class ids from :mod:`repro.distributed.nd_order`
   (O(log n) rounds message-passing, or the Theorem-3-structured
   augmented variant);
2. **weak reachability** — Algorithm 4 with horizon 2r
   (:mod:`repro.distributed.wreach_bc`);
3. **election** — every vertex w sends an "elect" token along its
   stored path to ``min WReach_r[G, L, w]``; a vertex is in D iff it
   elects itself or receives a token.  Tokens are routed backward along
   stored paths; a vertex forwards all tokens passing through it as one
   broadcast (the set has at most c elements — Lemma 7's congestion
   argument — which T4 measures).

The output set equals the sequential ``domset_by_wreach`` for the same
order *exactly*; this is asserted in the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributed.model import Model
from repro.distributed.network import Network, RunResult
from repro.distributed.nd_order import (
    OrderComputation,
    distributed_h_partition_order,
)
from repro.distributed.node import Inbox, NodeAlgorithm, NodeContext
from repro.distributed.wreach_bc import WReachOutput, run_wreach_bc
from repro.errors import SimulationError
from repro.graphs.graph import Graph

__all__ = ["ElectionNode", "DistributedDomSet", "run_domset_bc", "run_election"]


class ElectionNode(NodeAlgorithm):
    """Election + token routing (phase 3 above)."""

    def __init__(self, radius: int) -> None:
        super().__init__()
        self.radius = radius
        self.round_no = 0
        self.in_domset = False
        self.dominator = -1
        self.outbox: list[tuple[int, ...]] = []

    def on_start(self, ctx: NodeContext):
        out: WReachOutput = ctx.advice["wreach_outputs"][ctx.node]
        class_ids = ctx.advice["class_ids"]
        # Candidates: self plus weakly r-reachable vertices (path <= r).
        best = (int(class_ids[ctx.node]), ctx.node)
        best_path: tuple[int, ...] | None = None
        for u, path in out.paths.items():
            if len(path) - 1 <= self.radius:
                sid = (int(class_ids[u]), int(u))
                if sid < best:
                    best = sid
                    best_path = path
        self.dominator = best[1]
        if self.dominator == ctx.node:
            self.in_domset = True
            if self.radius == 0:
                self.halted = True
            return None
        assert best_path is not None
        # best_path = (dominator, ..., self); strip self and route backward.
        token = best_path[:-1]
        if len(token) == 1:
            # Dominator is our neighbor on the path; token delivered next round.
            pass
        return ("elect", (token,))

    def on_round(self, ctx: NodeContext, inbox: Inbox):
        self.round_no += 1
        forward: list[tuple[int, ...]] = []
        for _src, msg in inbox:
            if not (isinstance(msg, tuple) and len(msg) == 2 and msg[0] == "elect"):
                continue
            for token in msg[1]:
                if token[-1] != ctx.node:
                    continue  # not the next hop
                if len(token) == 1:
                    self.in_domset = True  # token reached its dominator
                else:
                    forward.append(token[:-1])
        if self.round_no >= self.radius:
            self.halted = True
            return None
        if not forward:
            return None
        return ("elect", tuple(sorted(set(forward))))

    def output(self) -> dict:
        return {"in_domset": self.in_domset, "dominator": self.dominator}


def run_election(
    g: Graph,
    class_ids: np.ndarray,
    wreach_outputs: list[WReachOutput],
    radius: int,
) -> tuple[dict[int, dict], RunResult]:
    """Run the election phase on precomputed weak-reachability outputs."""
    net = Network(
        g,
        Model.CONGEST_BC,
        lambda v: ElectionNode(radius),
        advice={
            "class_ids": np.asarray(class_ids, dtype=np.int64),
            "wreach_outputs": wreach_outputs,
        },
    )
    res = net.run()
    return res.outputs, res


@dataclass(frozen=True)
class DistributedDomSet:
    """Full pipeline result with per-phase accounting (T3/T4 data)."""

    dominators: tuple[int, ...]
    dominator_of: np.ndarray
    radius: int
    order: OrderComputation
    phase_rounds: dict[str, int]
    phase_max_words: dict[str, int]
    total_words: int

    @property
    def size(self) -> int:
        return len(self.dominators)

    @property
    def total_rounds(self) -> int:
        return sum(self.phase_rounds.values())

    def normalized_total_rounds(self) -> int:
        """Pessimistic 1-word-per-round accounting across all phases.

        Each phase's logical rounds are multiplied by its largest payload
        (all payloads pipelined at one word per round); experiment A2c
        executes this for real via :mod:`repro.distributed.pipelining`.
        """
        return sum(
            rounds * max(1, self.phase_max_words[name])
            for name, rounds in self.phase_rounds.items()
        )


def run_domset_bc(
    g: Graph,
    radius: int,
    order_computation: OrderComputation | None = None,
    horizon: int | None = None,
) -> DistributedDomSet:
    """Run the full Theorem-9 pipeline in CONGEST_BC.

    ``horizon`` defaults to ``2 * radius`` (Theorem 9); Theorem 10 passes
    ``2 * radius + 1`` and reuses the outputs for the connection phase.
    """
    if radius < 0:
        raise SimulationError("radius must be >= 0")
    oc = order_computation or distributed_h_partition_order(g)
    hz = 2 * radius if horizon is None else int(horizon)
    wouts, wres = run_wreach_bc(g, oc.class_ids, hz)
    eouts, eres = run_election(g, oc.class_ids, wouts, radius)
    dominators = tuple(sorted(v for v, o in eouts.items() if o["in_domset"]))
    dominator_of = np.asarray([eouts[v]["dominator"] for v in range(g.n)], dtype=np.int64)
    return DistributedDomSet(
        dominators=dominators,
        dominator_of=dominator_of,
        radius=radius,
        order=oc,
        phase_rounds={
            "order": oc.rounds,
            "wreach": wres.rounds,
            "election": eres.rounds,
        },
        phase_max_words={
            "order": oc.max_payload_words,
            "wreach": wres.max_payload_words,
            "election": eres.max_payload_words,
        },
        total_words=oc.total_words + wres.total_words + eres.total_words,
    )
