"""Theorem 9 — distributed distance-r dominating set in CONGEST_BC.

Composition of three phases (each a message-passing protocol; the round
and traffic totals are summed):

1. **order** — class ids from :mod:`repro.distributed.nd_order`
   (O(log n) rounds message-passing, or the Theorem-3-structured
   augmented variant);
2. **weak reachability** — Algorithm 4 with horizon 2r
   (:mod:`repro.distributed.wreach_bc`);
3. **election** — every vertex w sends an "elect" token along its
   stored path to ``min WReach_r[G, L, w]``; a vertex is in D iff it
   elects itself or receives a token.  Tokens are routed backward along
   stored paths; a vertex forwards all tokens passing through it as one
   broadcast (the set has at most c elements — Lemma 7's congestion
   argument — which T4 measures).

The output set equals the sequential ``domset_by_wreach`` for the same
order *exactly*; this is asserted in the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributed.engine import (
    BatchContext,
    BatchEmission,
    TokenRoutingBatch,
    pick_deployment,
)
from repro.distributed.model import Model, merge_phase_stats
from repro.distributed.network import Network, RunResult
from repro.distributed.nd_order import (
    OrderComputation,
    distributed_h_partition_order,
)
from repro.distributed.node import Inbox, NodeAlgorithm, NodeContext
from repro.distributed.wreach_bc import WReachOutput, run_wreach_bc
from repro.errors import SimulationError
from repro.graphs.graph import Graph

__all__ = [
    "ElectionNode",
    "ElectionBatch",
    "DistributedDomSet",
    "run_domset_bc",
    "run_election",
]

#: ``payload_words("elect")`` — the tag of every election message.
_TAG_WORDS = 2
#: Padding value in the fixed-width token matrix (not a vertex id).
_PAD = -1


class ElectionNode(NodeAlgorithm):
    """Election + token routing (phase 3 above)."""

    def __init__(self, radius: int) -> None:
        super().__init__()
        self.radius = radius
        self.round_no = 0
        self.in_domset = False
        self.dominator = -1
        self.outbox: list[tuple[int, ...]] = []

    def on_start(self, ctx: NodeContext):
        out: WReachOutput = ctx.advice["wreach_outputs"][ctx.node]
        class_ids = ctx.advice["class_ids"]
        # Candidates: self plus weakly r-reachable vertices (path <= r).
        best = (int(class_ids[ctx.node]), ctx.node)
        best_path: tuple[int, ...] | None = None
        for u, path in out.paths.items():  # reprolint: ignore[D202] -- strict min over unique super-ids; any iteration order yields the same winner
            if len(path) - 1 <= self.radius:
                sid = (int(class_ids[u]), int(u))
                if sid < best:
                    best = sid
                    best_path = path
        self.dominator = best[1]
        if self.dominator == ctx.node:
            self.in_domset = True
            if self.radius == 0:
                self.halted = True
            return None
        assert best_path is not None
        # best_path = (dominator, ..., self); strip self and route backward.
        token = best_path[:-1]
        if len(token) == 1:
            # Dominator is our neighbor on the path; token delivered next round.
            pass
        return ("elect", (token,))

    def on_round(self, ctx: NodeContext, inbox: Inbox):
        self.round_no += 1
        forward: list[tuple[int, ...]] = []
        for _src, msg in inbox:
            if not (isinstance(msg, tuple) and len(msg) == 2 and msg[0] == "elect"):
                continue
            for token in msg[1]:
                if token[-1] != ctx.node:
                    continue  # not the next hop
                if len(token) == 1:
                    self.in_domset = True  # token reached its dominator
                else:
                    forward.append(token[:-1])
        if self.round_no >= self.radius:
            self.halted = True
            return None
        if not forward:
            return None
        return ("elect", tuple(sorted(set(forward))))

    def output(self) -> dict:
        return {"in_domset": self.in_domset, "dominator": self.dominator}


class ElectionBatch(TokenRoutingBatch):
    """Election + token routing over a flat token table.

    The in-flight "elect" tokens of a round are one
    :class:`~repro.distributed.engine.TokenRouter` matrix of vertex-id
    rows (fixed width ``radius``, padded) plus a sender per row — the
    ``(src, payload-id)`` form of the per-node outbox tuples.  Routing
    backward along stored paths is the router's generic mechanic; the
    election semantics live here: tokens of length 1 have arrived at
    their dominator, everything longer hops backward until the fixed
    ``radius`` budget.  Outputs and round statistics are bit-identical
    to :class:`ElectionNode`.
    """

    tag_words = _TAG_WORDS

    def __init__(self, radius: int) -> None:
        super().__init__(width=max(radius, 1))
        self.radius = radius
        self.in_domset: np.ndarray | None = None
        self.dominator: np.ndarray | None = None

    def on_start(self, ctx: BatchContext) -> BatchEmission | None:
        n = ctx.n
        outs: list[WReachOutput] = ctx.advice["wreach_outputs"]
        class_ids = ctx.advice["class_ids"]
        classes = np.asarray(class_ids, dtype=np.int64).tolist()
        radius = self.radius
        self.halted = np.zeros(n, dtype=bool)
        self.in_domset = np.zeros(n, dtype=bool)
        dominator = np.empty(n, dtype=np.int64)
        tok_src: list[int] = []
        tok_rows: list[tuple[int, ...]] = []
        for v in range(n):
            best = (classes[v], v)
            best_path: tuple[int, ...] | None = None
            for u, path in outs[v].paths.items():
                if len(path) - 1 <= radius:
                    sid = (classes[u], u)
                    if sid < best:
                        best = sid
                        best_path = path
            dominator[v] = best[1]
            if best[1] == v:
                self.in_domset[v] = True
                if radius == 0:
                    self.halted[v] = True
                continue
            assert best_path is not None
            tok_src.append(v)
            tok_rows.append(best_path[:-1])
        self.dominator = dominator
        senders = np.asarray(tok_src, dtype=np.int64)
        lens = np.asarray([len(t) for t in tok_rows], dtype=np.int64)
        rows = np.full((len(tok_rows), self.router.width), _PAD, dtype=np.int64)
        for i, t in enumerate(tok_rows):
            rows[i, : len(t)] = t
        return self.seed(senders, lens, rows)

    def on_round(self, ctx: BatchContext, round_index: int) -> BatchEmission | None:
        assert self.in_domset is not None
        # Deliver: length-1 tokens have reached their dominator, the
        # rest hop backward.
        recv = self.router.receivers()
        if len(recv):
            arrived = self.router.lens == 1
            self.in_domset[recv[arrived]] = True
            fwd = ~arrived
        else:
            fwd = np.zeros(0, dtype=bool)
        if round_index >= self.radius:
            self.halted[:] = True
            self.router.clear()
            return None
        return self.router.advance(fwd)

    def outputs(self, ctx: BatchContext) -> dict[int, dict]:
        assert self.in_domset is not None and self.dominator is not None
        ins = self.in_domset.tolist()
        doms = self.dominator.tolist()
        return {
            v: {"in_domset": ins[v], "dominator": doms[v]} for v in range(ctx.n)
        }


def run_election(
    g: Graph,
    class_ids: np.ndarray,
    wreach_outputs: list[WReachOutput],
    radius: int,
    engine: str = "batch",
    wave_width: int = 0,
) -> tuple[dict[int, dict], RunResult]:
    """Run the election phase on precomputed weak-reachability outputs.

    ``wave_width`` > 0 executes independent token components as
    pipelined waves on the batch engine (identical results).
    """
    factory = pick_deployment(
        engine, lambda: ElectionBatch(radius), lambda v: ElectionNode(radius)
    )
    net = Network(
        g,
        Model.CONGEST_BC,
        factory,
        advice={
            "class_ids": np.asarray(class_ids, dtype=np.int64),
            "wreach_outputs": wreach_outputs,
        },
        wave_width=wave_width,
    )
    res = net.run()
    return res.outputs, res


@dataclass(frozen=True)
class DistributedDomSet:
    """Full pipeline result with per-phase accounting (T3/T4 data)."""

    dominators: tuple[int, ...]
    dominator_of: np.ndarray
    radius: int
    order: OrderComputation
    phase_rounds: dict[str, int]
    phase_max_words: dict[str, int]
    total_words: int

    @property
    def size(self) -> int:
        return len(self.dominators)

    @property
    def total_rounds(self) -> int:
        return sum(self.phase_rounds.values())

    def normalized_total_rounds(self) -> int:
        """Pessimistic 1-word-per-round accounting across all phases.

        Each phase's logical rounds are multiplied by its largest payload
        (all payloads pipelined at one word per round); experiment A2c
        executes this for real via :mod:`repro.distributed.pipelining`.
        """
        return sum(
            rounds * max(1, self.phase_max_words[name])
            for name, rounds in self.phase_rounds.items()
        )


def run_domset_bc(
    g: Graph,
    radius: int,
    order_computation: OrderComputation | None = None,
    horizon: int | None = None,
    engine: str = "batch",
    wave_width: int = 0,
) -> DistributedDomSet:
    """Run the full Theorem-9 pipeline in CONGEST_BC.

    ``horizon`` defaults to ``2 * radius`` (Theorem 9); Theorem 10 passes
    ``2 * radius + 1`` and reuses the outputs for the connection phase.
    ``engine`` selects the simulator path for all three phases
    (vectorized ``"batch"`` by default, per-node ``"pernode"``), and
    ``wave_width`` > 0 runs the election phase's independent token
    components as pipelined waves; the dominating set and all
    accounting are identical either way.
    """
    if radius < 0:
        raise SimulationError("radius must be >= 0")
    oc = order_computation or distributed_h_partition_order(g, engine=engine)
    hz = 2 * radius if horizon is None else int(horizon)
    wouts, wres = run_wreach_bc(g, oc.class_ids, hz, engine=engine)
    eouts, eres = run_election(
        g, oc.class_ids, wouts, radius, engine=engine, wave_width=wave_width
    )
    dominators = tuple(sorted(v for v, o in eouts.items() if o["in_domset"]))
    dominator_of = np.asarray([eouts[v]["dominator"] for v in range(g.n)], dtype=np.int64)
    phase_rounds, phase_max_words, total_words = merge_phase_stats(
        {"order": oc, "wreach": wres, "election": eres}
    )
    return DistributedDomSet(
        dominators=dominators,
        dominator_of=dominator_of,
        radius=radius,
        order=oc,
        phase_rounds=phase_rounds,
        phase_max_words=phase_max_words,
        total_words=total_words,
    )
