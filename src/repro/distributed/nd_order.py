"""Distributed computation of wcol-witnessing orders (Theorem 3).

Theorem 3 (Nešetřil–Ossona de Mendez [46]) computes, in O(r^2 log n)
CONGEST_BC rounds, an order of V(G) witnessing ``wcol_r(G) <= d(r)`` on
any bounded expansion class.  The order is represented by a *class id*
per vertex; (class id, vertex id) is the "super-id" inducing the total
order.  Two constructions are provided:

* :func:`distributed_h_partition_order` — **fully message-passing.**
  One run of the Barenboim–Elkin H-partition; class id = (max_level -
  level), i.e. vertices peeled early are L-greatest.  Under this order
  every vertex has at most ``threshold`` L-smaller neighbors.  This is
  the practical default: O(log n) rounds, and the downstream guarantees
  are certified by the *measured* ``c = max |WReach_2r|`` (the paper's
  proofs hold for any order, see DESIGN.md §1).

* :func:`distributed_augmented_order` — **faithful to Theorem 3's
  structure.**  Runs the transitive-fraternal augmentation of
  [46]/Dvořák: H-partition-orient G, then for 2r-1 steps add
  transitive/fraternal arcs and orient fresh edges by an H-partition of
  the *augmentation graph*.  Message-passing is simulated for the base
  H-partition; the augmentation phases are computed with their
  communication *charged* according to the routing schedule of [46]
  (each step-i phase costs `path-weight x H-partition-phases` rounds,
  since virtual arcs of weight w are routed along length-w paths in G).
  The returned round count is therefore an honest estimate with
  measured constants, while the resulting order is exactly the
  sequential fraternal-augmentation order.

Both return an :class:`OrderComputation` carrying the order, per-node
class ids, and the round/traffic accounting used by experiment T3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributed.beh_partition import run_h_partition
from repro.graphs.graph import Graph
from repro.orders.degeneracy import degeneracy_order
from repro.orders.linear_order import LinearOrder

__all__ = ["OrderComputation", "distributed_h_partition_order", "distributed_augmented_order"]


@dataclass(frozen=True)
class OrderComputation:
    """A distributed order computation and its cost accounting."""

    order: LinearOrder
    class_ids: np.ndarray  # class id per vertex; sid = (class_id, vertex_id)
    rounds: int
    normalized_rounds: int
    max_payload_words: int
    total_words: int
    mode: str

    def super_ids(self) -> list[tuple[int, int]]:
        """The (class_id, id) pairs that induce the order."""
        return [(int(self.class_ids[v]), v) for v in range(len(self.class_ids))]


def default_threshold(g: Graph) -> int:
    """Class-constant advice: 2 * degeneracy (>= (2+eps) * arboricity).

    The theory assumes nodes know a class constant; for concrete inputs
    we hand them twice the degeneracy, which guarantees O(log n) peeling
    phases.
    """
    _, d = degeneracy_order(g)
    return max(1, 2 * d)


def distributed_h_partition_order(
    g: Graph, threshold: int | None = None, engine: str = "batch"
) -> OrderComputation:
    """Fully message-passing order: one H-partition run (see module doc).

    ``engine`` selects the simulator path (vectorized ``"batch"`` by
    default, per-node ``"pernode"``); the resulting order and cost
    accounting are identical either way.
    """
    if g.n == 0:
        return OrderComputation(
            LinearOrder.identity(0), np.zeros(0, dtype=np.int64), 0, 0, 0, 0, "h_partition"
        )
    thr = default_threshold(g) if threshold is None else int(threshold)
    outs, res = run_h_partition(g, thr, engine=engine)
    levels = np.asarray([o.level for o in outs], dtype=np.int64)
    max_level = int(levels.max())
    class_ids = max_level - levels  # early-peeled (low level) = L-greatest
    order = LinearOrder.from_keys([(int(class_ids[v]), v) for v in range(g.n)])
    return OrderComputation(
        order=order,
        class_ids=class_ids,
        rounds=res.rounds,
        normalized_rounds=res.normalized_rounds(1),
        max_payload_words=res.max_payload_words,
        total_words=res.total_words,
        mode="h_partition",
    )


def distributed_augmented_order(
    g: Graph, radius: int, threshold: int | None = None, engine: str = "batch"
) -> OrderComputation:
    """Theorem-3-structured order with charged augmentation phases."""
    from repro.graphs.build import from_edges
    from repro.orders.fraternal import _augment_once, orient_acyclic

    if g.n == 0:
        return OrderComputation(
            LinearOrder.identity(0), np.zeros(0, dtype=np.int64), 0, 0, 0, 0, "augmented"
        )
    thr = default_threshold(g) if threshold is None else int(threshold)
    # Base orientation: a real message-passing H-partition of G.
    base = distributed_h_partition_order(g, thr, engine=engine)
    rounds = base.rounds
    norm_rounds = base.normalized_rounds
    max_words = base.max_payload_words
    total_words = base.total_words

    arcs = [dict(row) for row in orient_acyclic(g, base.order)]
    horizon = max(1, 2 * radius)
    for step in range(2, horizon + 1):
        arcs, created = _augment_once(g.n, arcs, horizon)
        if created == 0:
            break
        # Fresh undirected augmentation graph at this step.
        aug_edges = set()
        for v in range(g.n):
            for u in arcs[v]:
                aug_edges.add((min(u, v), max(u, v)))
        aug = from_edges(g.n, list(aug_edges))
        # Charge: orienting the new edges takes an H-partition of the
        # augmentation graph whose messages travel along underlying paths
        # of length <= step; we run the H-partition for real (measuring
        # its phase count) and multiply its rounds by the routing factor.
        aug_thr = max(thr, default_threshold(aug))
        _, aug_res = run_h_partition(aug, aug_thr, engine=engine)
        rounds += aug_res.rounds * step
        norm_rounds += aug_res.normalized_rounds(1) * step
        max_words = max(max_words, aug_res.max_payload_words)
        total_words += aug_res.total_words * step
    # Final order: smallest-last on the augmented graph, expressed as
    # class ids so it fits the super-id representation.
    final_edges = set()
    for v in range(g.n):
        for u in arcs[v]:
            final_edges.add((min(u, v), max(u, v)))
    augmented = from_edges(g.n, list(final_edges))
    order, _ = degeneracy_order(augmented)
    class_ids = np.asarray(order.rank, dtype=np.int64)
    return OrderComputation(
        order=order,
        class_ids=class_ids,
        rounds=rounds,
        normalized_rounds=norm_rounds,
        max_payload_words=max_words,
        total_words=total_words,
        mode="augmented",
    )
