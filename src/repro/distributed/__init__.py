"""Distributed computing substrate and the paper's distributed algorithms."""

from repro.distributed.model import Model, payload_words
from repro.distributed.node import NodeAlgorithm, NodeContext
from repro.distributed.engine import BatchAlgorithm, BatchContext, BatchEmission
from repro.distributed.network import Network, RunResult, RoundStats
from repro.distributed.beh_partition import HPartitionNode, HPartitionBatch, run_h_partition
from repro.distributed.nd_order import (
    distributed_h_partition_order,
    distributed_augmented_order,
    OrderComputation,
)
from repro.distributed.wreach_bc import WReachNode, WReachBatch, run_wreach_bc, WReachOutput
from repro.distributed.domset_bc import run_domset_bc, DistributedDomSet, ElectionBatch
from repro.distributed.cover_bc import run_cover_bc
from repro.distributed.connect_bc import run_connect_bc, DistributedConnectedDomSet
from repro.distributed.local_engine import run_local_algorithm, BallInfo
from repro.distributed.lenzen import lenzen_planar_mds
from repro.distributed.connect_local import local_connectify
from repro.distributed.mis import run_luby_mis
from repro.distributed.ruling import ruling_domset, power_graph
from repro.distributed.parallel_greedy import parallel_greedy_domset
from repro.distributed.pipelining import run_pipelined, PipelinedNode
from repro.distributed.unified_bc import run_unified_bc, UnifiedNode
from repro.distributed.kw_lp import kw_lp_domset
from repro.distributed.prune_local import local_prune

__all__ = [
    "Model",
    "payload_words",
    "NodeAlgorithm",
    "NodeContext",
    "BatchAlgorithm",
    "BatchContext",
    "BatchEmission",
    "Network",
    "RunResult",
    "RoundStats",
    "HPartitionNode",
    "HPartitionBatch",
    "run_h_partition",
    "distributed_h_partition_order",
    "distributed_augmented_order",
    "OrderComputation",
    "WReachNode",
    "WReachBatch",
    "run_wreach_bc",
    "WReachOutput",
    "run_domset_bc",
    "DistributedDomSet",
    "ElectionBatch",
    "run_cover_bc",
    "run_connect_bc",
    "DistributedConnectedDomSet",
    "run_local_algorithm",
    "BallInfo",
    "lenzen_planar_mds",
    "local_connectify",
    "run_luby_mis",
    "ruling_domset",
    "power_graph",
    "parallel_greedy_domset",
    "run_pipelined",
    "PipelinedNode",
    "run_unified_bc",
    "UnifiedNode",
    "kw_lp_domset",
    "local_prune",
]
