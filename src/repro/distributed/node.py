"""Node-algorithm API for the synchronous simulator.

A distributed algorithm is a subclass of :class:`NodeAlgorithm`; one
instance runs at every vertex.  The contract mirrors the paper's model:

* ``on_start(ctx)`` — round 0, before any message: return the first
  outgoing message(s) or ``None``.
* ``on_round(ctx, inbox)`` — called each subsequent round with all
  messages received (list of ``(sender, payload)``); returns outgoing
  message(s) or ``None``.
* a node signals local termination by setting ``self.halted = True``;
  the network stops when every node has halted and no message is in
  flight.
* ``output()`` — the node's final local output (must be valid once
  halted), e.g. ``{"in_domset": True}``.

Outgoing message shape by model:

* CONGEST_BC: a single payload (broadcast to all neighbors);
* CONGEST / LOCAL: either a dict ``{neighbor_id: payload}`` for
  point-to-point or a single payload meaning broadcast.

What a node knows a priori (matching Section 2): its own id, its
neighbors' ids (ports with ids), ``n``, and any *advice* constants of
the graph class (e.g. a degeneracy bound) passed through the context.

This contract is machine-checked: :mod:`repro.lint` statically verifies
every :class:`NodeAlgorithm` subclass against it (rules M101–M105) and
against the determinism rules D201–D204 — see the README's "Static
analysis" section.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["NodeContext", "NodeAlgorithm", "Inbox"]

Inbox = list  # list[tuple[int, Any]]


@dataclass(frozen=True)
class NodeContext:
    """Immutable per-node knowledge provided by the runtime.

    ``neighbors`` is sorted ascending by id (the simulator builds it
    from the CSR adjacency); ``neighbor_set`` is the same ids as a
    frozenset, cached at construction so per-round membership tests
    (e.g. validating point-to-point addressing) cost O(1) instead of
    rebuilding a set from the tuple.
    """

    node: int
    neighbors: tuple[int, ...]
    n: int
    advice: Mapping[str, Any] = field(default_factory=dict)
    neighbor_set: frozenset = field(
        init=False, repr=False, compare=False, default=frozenset()
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "neighbor_set", frozenset(self.neighbors))

    @property
    def degree(self) -> int:
        return len(self.neighbors)


class NodeAlgorithm:
    """Base class for per-node algorithms (see module docstring)."""

    def __init__(self) -> None:
        self.halted = False

    # -- protocol ---------------------------------------------------------
    def on_start(self, ctx: NodeContext) -> Any:
        """Round-0 hook; default sends nothing."""
        return None

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> Any:
        """Per-round hook; must be overridden."""
        raise NotImplementedError

    def output(self) -> Any:
        """Local output after halting; default None."""
        return None
