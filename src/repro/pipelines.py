"""Legacy end-to-end pipelines — deprecation shims over :mod:`repro.api`.

These were the entry points the examples and benchmarks called before
the unified solver API existed:

* :func:`sequential_pipeline` — Theorem 5 (+ certificate, + optional
  Corollary-13 connection): order -> dominating set -> certify.
* :func:`congest_bc_pipeline` — Theorems 3+9 (+10): the full
  message-passing CONGEST_BC stack with round/traffic accounting.
* :func:`planar_cds_pipeline` — the paper's headline LOCAL corollary:
  Lenzen-et-al-style planar MDS composed with the Theorem-17
  connectifier, constant rounds overall, measured blowup <= 7 = 6 + 1
  (2rd = 6 path vertices per dominator plus D itself) on planar inputs.

Each now routes through the solver registry
(:func:`repro.api.solve`) and repackages the unified
:class:`~repro.api.types.SolveResult` into its historical return type,
so existing callers keep byte-identical outputs.  New code should call
``repro.api.solve`` directly.

:func:`make_order` remains the canonical order-construction dispatch
(the A1 ablation axis); the API's precompute cache builds on it.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.core.certify import Certificate
from repro.core.connect import ConnectResult
from repro.core.domset import DomSetResult
from repro.distributed.connect_bc import DistributedConnectedDomSet
from repro.distributed.connect_local import LocalConnectResult
from repro.distributed.domset_bc import DistributedDomSet
from repro.distributed.lenzen import LenzenResult
from repro.graphs.graph import Graph
from repro.orders.degeneracy import degeneracy_order
from repro.orders.fraternal import fraternal_augmentation_order
from repro.orders.linear_order import LinearOrder

__all__ = [
    "SequentialRun",
    "sequential_pipeline",
    "CongestRun",
    "congest_bc_pipeline",
    "unified_bc_pipeline",
    "PlanarCdsRun",
    "planar_cds_pipeline",
    "make_order",
]


def _deprecated(name: str) -> None:
    warnings.warn(
        f"repro.pipelines.{name} is deprecated; use repro.api.solve "
        f"(see list_solvers() for algorithm names)",
        DeprecationWarning,
        stacklevel=3,
    )


def make_order(g: Graph, radius: int, strategy: str = "degeneracy") -> LinearOrder:
    """Order construction by name (the ablation axis of experiment A1)."""
    if strategy == "degeneracy":
        order, _ = degeneracy_order(g)
        return order
    if strategy == "fraternal":
        return fraternal_augmentation_order(g, 2 * radius)
    if strategy == "identity":
        return LinearOrder.identity(g.n)
    if strategy == "random":
        from repro.orders.heuristics import random_order

        return random_order(g, seed=0)
    if strategy == "bfs":
        from repro.orders.heuristics import bfs_order

        return bfs_order(g, 0)
    if strategy == "wreach_sort":
        from repro.orders.heuristics import sort_by_wreach_order

        base, _ = degeneracy_order(g)
        return sort_by_wreach_order(g, base, 2 * radius)
    raise ValueError(f"unknown order strategy {strategy!r}")


@dataclass(frozen=True)
class SequentialRun:
    """Theorem 5 end-to-end output."""

    order: LinearOrder
    domset: DomSetResult
    certificate: Certificate
    connected: ConnectResult | None


def sequential_pipeline(
    g: Graph,
    radius: int,
    order_strategy: str = "degeneracy",
    connect: bool = False,
    with_lp: bool = False,
) -> SequentialRun:
    """Run the sequential Theorem-5 algorithm with certification.

    Deprecation shim over ``solve(g, radius, "seq.wreach", ...)``.
    """
    from repro.api import solve

    _deprecated("sequential_pipeline")
    res = solve(
        g,
        radius,
        "seq.wreach",
        order_strategy=order_strategy,
        connect=connect,
        certify=True,
        with_lp=with_lp,
    )
    return SequentialRun(
        order=res.extras["order"],
        domset=res.raw,
        certificate=res.certificate,
        connected=res.extras.get("connect_result"),
    )


@dataclass(frozen=True)
class CongestRun:
    """Theorem 9 / 10 end-to-end output with accounting."""

    domset: DistributedDomSet
    connected: DistributedConnectedDomSet | None


def congest_bc_pipeline(
    g: Graph,
    radius: int,
    connect: bool = False,
    order_mode: str = "h_partition",
) -> CongestRun:
    """Run the CONGEST_BC stack (order, WReachDist, election[, join]).

    Composes the *phased* runners (one simulation per phase, outputs
    handed over via advice).  For the single continuous execution with
    fixed phase budgets use :func:`unified_bc_pipeline`; both produce
    identical sets.

    Deprecation shim over ``solve(g, radius, "dist.congest", ...)``.
    """
    from repro.api import solve

    _deprecated("congest_bc_pipeline")
    params = {"order_mode": order_mode}
    # Historical contract: the Theorem-9 accounting object is always
    # returned, plus the Theorem-10 one when connecting.  The shared
    # default cache means the order simulation still runs only once.
    ds = solve(g, radius, "dist.congest", params=params).raw
    conn = (
        solve(g, radius, "dist.congest", connect=True, params=params).raw
        if connect
        else None
    )
    return CongestRun(domset=ds, connected=conn)


def unified_bc_pipeline(g: Graph, radius: int, connect: bool = False):
    """Theorems 9/10 as one continuous CONGEST_BC protocol.

    Returns a :class:`repro.distributed.unified_bc.UnifiedResult`; see
    that module for the fixed phase schedule.

    Deprecation shim over ``solve(g, radius, "dist.congest-unified", ...)``.
    """
    from repro.api import solve

    _deprecated("unified_bc_pipeline")
    return solve(g, radius, "dist.congest-unified", connect=connect).raw


@dataclass(frozen=True)
class PlanarCdsRun:
    """LOCAL planar connected-dominating-set pipeline output."""

    mds: LenzenResult
    cds: LocalConnectResult

    @property
    def total_rounds(self) -> int:
        return self.mds.rounds + self.cds.rounds

    @property
    def connect_blowup(self) -> float:
        """|CDS| / |MDS| — Theorem 17 bounds this by 2rd + 1 (= 7, planar r=1)."""
        return self.cds.blowup


def planar_cds_pipeline(g: Graph, mode: str = "oracle") -> PlanarCdsRun:
    """Lenzen-style planar MDS + Theorem-17 connectifier at r = 1.

    Deprecation shim over ``solve(g, 1, "local.planar-cds", connect=True)``.
    """
    from repro.api import solve

    _deprecated("planar_cds_pipeline")
    res = solve(g, 1, "local.planar-cds", connect=True, params={"mode": mode})
    return PlanarCdsRun(mds=res.raw, cds=res.extras["connect_result"])
