"""End-to-end pipelines composing the paper's results.

These are the entry points the examples and benchmarks call:

* :func:`sequential_pipeline` — Theorem 5 (+ certificate, + optional
  Corollary-13 connection): order -> dominating set -> certify.
* :func:`congest_bc_pipeline` — Theorems 3+9 (+10): the full
  message-passing CONGEST_BC stack with round/traffic accounting.
* :func:`planar_cds_pipeline` — the paper's headline LOCAL corollary:
  Lenzen-et-al-style planar MDS composed with the Theorem-17
  connectifier, constant rounds overall, measured blowup <= 7 = 6 + 1
  (2rd = 6 path vertices per dominator plus D itself) on planar inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.certify import Certificate, certify_run
from repro.core.connect import ConnectResult, connect_via_wreach
from repro.core.domset import DomSetResult, domset_sequential
from repro.distributed.connect_bc import DistributedConnectedDomSet, run_connect_bc
from repro.distributed.connect_local import LocalConnectResult, local_connectify
from repro.distributed.domset_bc import DistributedDomSet, run_domset_bc
from repro.distributed.lenzen import LenzenResult, lenzen_planar_mds
from repro.distributed.nd_order import (
    OrderComputation,
    distributed_h_partition_order,
)
from repro.graphs.graph import Graph
from repro.orders.degeneracy import degeneracy_order
from repro.orders.fraternal import fraternal_augmentation_order
from repro.orders.linear_order import LinearOrder

__all__ = [
    "SequentialRun",
    "sequential_pipeline",
    "CongestRun",
    "congest_bc_pipeline",
    "unified_bc_pipeline",
    "PlanarCdsRun",
    "planar_cds_pipeline",
    "make_order",
]


def make_order(g: Graph, radius: int, strategy: str = "degeneracy") -> LinearOrder:
    """Order construction by name (the ablation axis of experiment A1)."""
    if strategy == "degeneracy":
        order, _ = degeneracy_order(g)
        return order
    if strategy == "fraternal":
        return fraternal_augmentation_order(g, 2 * radius)
    if strategy == "identity":
        return LinearOrder.identity(g.n)
    if strategy == "random":
        from repro.orders.heuristics import random_order

        return random_order(g, seed=0)
    if strategy == "wreach_sort":
        from repro.orders.heuristics import sort_by_wreach_order

        base, _ = degeneracy_order(g)
        return sort_by_wreach_order(g, base, 2 * radius)
    raise ValueError(f"unknown order strategy {strategy!r}")


@dataclass(frozen=True)
class SequentialRun:
    """Theorem 5 end-to-end output."""

    order: LinearOrder
    domset: DomSetResult
    certificate: Certificate
    connected: ConnectResult | None


def sequential_pipeline(
    g: Graph,
    radius: int,
    order_strategy: str = "degeneracy",
    connect: bool = False,
    with_lp: bool = False,
) -> SequentialRun:
    """Run the sequential Theorem-5 algorithm with certification."""
    order = make_order(g, radius, order_strategy)
    ds = domset_sequential(g, order, radius)
    cert = certify_run(g, order, ds, with_lp=with_lp)
    conn = connect_via_wreach(g, order, ds.dominators, radius) if connect else None
    return SequentialRun(order=order, domset=ds, certificate=cert, connected=conn)


@dataclass(frozen=True)
class CongestRun:
    """Theorem 9 / 10 end-to-end output with accounting."""

    domset: DistributedDomSet
    connected: DistributedConnectedDomSet | None


def congest_bc_pipeline(
    g: Graph,
    radius: int,
    connect: bool = False,
    order_mode: str = "h_partition",
) -> CongestRun:
    """Run the CONGEST_BC stack (order, WReachDist, election[, join]).

    Composes the *phased* runners (one simulation per phase, outputs
    handed over via advice).  For the single continuous execution with
    fixed phase budgets use :func:`unified_bc_pipeline`; both produce
    identical sets.
    """
    if order_mode == "h_partition":
        oc: OrderComputation = distributed_h_partition_order(g)
    elif order_mode == "augmented":
        from repro.distributed.nd_order import distributed_augmented_order

        oc = distributed_augmented_order(g, radius)
    else:
        raise ValueError(f"unknown order mode {order_mode!r}")
    conn = run_connect_bc(g, radius, oc) if connect else None
    ds = run_domset_bc(g, radius, oc)
    return CongestRun(domset=ds, connected=conn)


def unified_bc_pipeline(g: Graph, radius: int, connect: bool = False):
    """Theorems 9/10 as one continuous CONGEST_BC protocol.

    Returns a :class:`repro.distributed.unified_bc.UnifiedResult`; see
    that module for the fixed phase schedule.
    """
    from repro.distributed.unified_bc import run_unified_bc

    return run_unified_bc(g, radius, connect=connect)


@dataclass(frozen=True)
class PlanarCdsRun:
    """LOCAL planar connected-dominating-set pipeline output."""

    mds: LenzenResult
    cds: LocalConnectResult

    @property
    def total_rounds(self) -> int:
        return self.mds.rounds + self.cds.rounds

    @property
    def connect_blowup(self) -> float:
        """|CDS| / |MDS| — Theorem 17 bounds this by 2rd + 1 (= 7, planar r=1)."""
        return self.cds.blowup


def planar_cds_pipeline(g: Graph, mode: str = "oracle") -> PlanarCdsRun:
    """Lenzen-style planar MDS + Theorem-17 connectifier at r = 1."""
    mds = lenzen_planar_mds(g, mode=mode)
    cds = local_connectify(g, mds.dominators, radius=1, mode=mode)
    return PlanarCdsRun(mds=mds, cds=cds)
