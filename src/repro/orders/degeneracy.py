"""Smallest-last (degeneracy) orders — flat-array peeling kernel.

The degeneracy order is the classical linear-time order (Matula–Beck):
repeatedly remove a vertex of minimum degree.  For a k-degenerate graph
every vertex has at most k *later* neighbors when read least-to-greatest
in removal order... but note the convention needed by weak reachability:
we want every vertex to have FEW SMALLER neighbors, so the order exposes
``wcol_1 = degeneracy + 1``.  We therefore rank vertices so that the
vertex removed first is the GREATEST.  Then each vertex has at most k
neighbors smaller than itself, i.e. |WReach_1| <= k + 1.

The peeling loop here is a flat kernel in the style of the WReach
scalar kernel (:mod:`repro.orders.wreach`): the CSR arrays are mirrored
into plain Python lists once, and the inner loop then runs entirely on
list indexing and a ``bytearray`` removed-flag — no per-element numpy
scalar boxing, which measures several times slower than list walks at
the bounded degrees these graph classes have.  Tie-breaking (the
bucket's lazy-deletion pop order) is bit-identical to the
definition-shaped reference retained in
:mod:`repro.orders.degeneracy_ref`, which the parity tests pin — every
order-derived golden value in the suite depends on this sequence.

One peel also records each vertex's degree at removal time, which is
exactly the quantity ``core_numbers`` needs: the k-core number of the
i-th removed vertex is the running maximum of removal degrees up to i,
so cores fall out of one ``np.maximum.accumulate`` instead of a second
peeling pass.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.orders.linear_order import LinearOrder

__all__ = ["degeneracy_order", "core_numbers"]


def _peel(g: Graph) -> tuple[list[int], list[int]]:
    """Flat-kernel peeling: (removal sequence, degree at removal per step).

    Buckets use lazy deletion: a popped entry is valid only if the vertex
    is still present and its recorded degree matches the bucket index.
    Each vertex is re-inserted at most deg(v) times, so this is O(n + m).

    The removed flag is folded into ``deg`` as a ``-1`` sentinel, which
    keeps the whole inner loop on one list: pop validity is ``deg[x] ==
    cur`` alone (a removed vertex's ``-1`` never equals ``cur >= 0``),
    and the neighbor decrement's ``d >= 0`` guard is exact — an
    unremoved neighbor of the vertex being removed still counts that
    vertex, so its degree is >= 1, while a removed neighbor lands at
    ``-2``.  Neighbor walks slice ``nbrs`` directly (one C-level copy
    per vertex beats per-element index arithmetic) and bucket appends
    are pre-bound methods.  A valid pop always satisfies ``deg[v] ==
    cur``, so the removal degree is ``cur`` itself.
    """
    n = g.n
    if n == 0:
        return [], []
    indptr = g.indptr.tolist()
    nbrs = g.indices.tolist()
    deg = np.diff(g.indptr).tolist()
    max_deg = max(deg)
    buckets: list[list[int]] = [[] for _ in range(max_deg + 1)]
    for v in range(n):
        buckets[deg[v]].append(v)
    appends = [b.append for b in buckets]
    seq: list[int] = []
    removal_deg: list[int] = []
    cur = 0
    for _ in range(n):
        while True:
            bucket = buckets[cur]
            while not bucket:
                cur += 1
                bucket = buckets[cur]
            v = bucket.pop()
            if deg[v] == cur:
                break
        deg[v] = -1
        seq.append(v)
        removal_deg.append(cur)
        for u in nbrs[indptr[v] : indptr[v + 1]]:
            d = deg[u] - 1
            if d >= 0:
                deg[u] = d
                appends[d](u)
                if d < cur:
                    cur = d
    return seq, removal_deg


def _smallest_last_sequence(g: Graph) -> tuple[list[int], int]:
    """Return (removal sequence, degeneracy); see :func:`_peel`."""
    seq, removal_deg = _peel(g)
    return seq, max(removal_deg, default=0)


def degeneracy_order(g: Graph) -> tuple[LinearOrder, int]:
    """Smallest-last order and the exact degeneracy.

    The first-removed vertex receives the *greatest* rank, so every vertex
    has at most ``degeneracy`` L-smaller neighbors.
    """
    seq, degen = _smallest_last_sequence(g)
    return LinearOrder.from_sequence(list(reversed(seq))), degen


def core_numbers(g: Graph) -> np.ndarray:
    """k-core number of each vertex (max k with v in a k-core)."""
    seq, removal_deg = _peel(g)
    core = np.zeros(g.n, dtype=np.int64)
    if seq:
        core[np.asarray(seq, dtype=np.int64)] = np.maximum.accumulate(
            np.asarray(removal_deg, dtype=np.int64)
        )
    return core
