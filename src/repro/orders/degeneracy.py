"""Smallest-last (degeneracy) orders.

The degeneracy order is the classical linear-time order (Matula–Beck):
repeatedly remove a vertex of minimum degree.  For a k-degenerate graph
every vertex has at most k *later* neighbors when read least-to-greatest
in removal order... but note the convention needed by weak reachability:
we want every vertex to have FEW SMALLER neighbors, so the order exposes
``wcol_1 = degeneracy + 1``.  We therefore rank vertices so that the
vertex removed first is the GREATEST.  Then each vertex has at most k
neighbors smaller than itself, i.e. |WReach_1| <= k + 1.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.orders.linear_order import LinearOrder

__all__ = ["degeneracy_order", "core_numbers"]


def _smallest_last_sequence(g: Graph) -> tuple[list[int], int]:
    """Return (removal sequence, degeneracy) via bucketed min-degree peeling.

    Buckets use lazy deletion: a popped entry is valid only if the vertex
    is still present and its recorded degree matches the bucket index.
    Each vertex is re-inserted at most deg(v) times, so this is O(n + m).
    """
    n = g.n
    deg = g.degrees().astype(np.int64).copy()
    max_deg = int(deg.max()) if n else 0
    buckets: list[list[int]] = [[] for _ in range(max_deg + 1)]
    for v in range(n):
        buckets[int(deg[v])].append(v)
    removed = np.zeros(n, dtype=bool)
    seq: list[int] = []
    degeneracy = 0
    cur = 0
    for _ in range(n):
        v = -1
        while v < 0:
            while cur <= max_deg and not buckets[cur]:
                cur += 1
            x = buckets[cur].pop()
            if not removed[x] and deg[x] == cur:
                v = x
        removed[v] = True
        seq.append(v)
        degeneracy = max(degeneracy, int(deg[v]))
        for u in g.neighbors(v):
            u = int(u)
            if not removed[u]:
                deg[u] -= 1
                buckets[int(deg[u])].append(u)
                if deg[u] < cur:
                    cur = int(deg[u])
    return seq, degeneracy


def degeneracy_order(g: Graph) -> tuple[LinearOrder, int]:
    """Smallest-last order and the exact degeneracy.

    The first-removed vertex receives the *greatest* rank, so every vertex
    has at most ``degeneracy`` L-smaller neighbors.
    """
    seq, degen = _smallest_last_sequence(g)
    return LinearOrder.from_sequence(list(reversed(seq))), degen


def core_numbers(g: Graph) -> np.ndarray:
    """k-core number of each vertex (max k with v in a k-core)."""
    n = g.n
    core = np.zeros(n, dtype=np.int64)
    seq, _ = _smallest_last_sequence(g)
    deg = g.degrees().astype(np.int64).copy()
    removed = np.zeros(n, dtype=bool)
    k = 0
    for v in seq:
        k = max(k, int(deg[v]))
        core[v] = k
        removed[v] = True
        for u in g.neighbors(v):
            u = int(u)
            if not removed[u]:
                deg[u] -= 1
    return core
