"""Linear orders on vertex sets.

A :class:`LinearOrder` is a permutation with O(1) rank comparison, the
object every theorem of the paper is parameterised by.  It also provides
the order-sorted adjacency structure of Algorithm 2 (``SortLists``): for
each vertex, its neighbors sorted ascending by rank, which lets the
restricted BFS of Algorithm 3 stop scanning early.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import OrderError
from repro.graphs.graph import Graph

__all__ = ["LinearOrder"]


class LinearOrder:
    """A linear order of ``0..n-1``.

    Attributes
    ----------
    rank:
        ``rank[v]`` is the position of ``v`` (0 = least).
    by_rank:
        ``by_rank[i]`` is the vertex at position ``i``.
    """

    __slots__ = ("rank", "by_rank", "n")

    def __init__(self, rank: np.ndarray | Sequence[int]):
        rank = np.asarray(rank, dtype=np.int64)
        n = len(rank)
        if rank.ndim != 1 or not np.array_equal(np.sort(rank), np.arange(n)):
            raise OrderError("rank must be a permutation of 0..n-1")
        self.rank = rank
        self.n = n
        self.by_rank = np.empty(n, dtype=np.int64)
        self.by_rank[rank] = np.arange(n)
        self.rank.setflags(write=False)
        self.by_rank.setflags(write=False)

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_sequence(cls, vertices: Iterable[int]) -> "LinearOrder":
        """Order given as the vertex sequence from least to greatest."""
        seq = np.asarray(list(vertices), dtype=np.int64)
        rank = np.empty(len(seq), dtype=np.int64)
        try:
            rank[seq] = np.arange(len(seq))
        except IndexError as exc:  # pragma: no cover - defensive
            raise OrderError("sequence entries out of range") from exc
        return cls(rank)

    @classmethod
    def identity(cls, n: int) -> "LinearOrder":
        """The order in which vertex ids are the ranks."""
        return cls(np.arange(n))

    @classmethod
    def from_keys(cls, keys: Sequence) -> "LinearOrder":
        """Order vertices by sort key (ties broken by vertex id).

        This realizes the paper's *super-id* construction: a key such as
        ``(class_id,)`` plus the id tiebreak yields a total order.
        """
        idx = sorted(range(len(keys)), key=lambda v: (keys[v], v))
        return cls.from_sequence(idx)

    # -- queries ---------------------------------------------------------
    def less(self, u: int, v: int) -> bool:
        """True iff ``u <_L v``."""
        return bool(self.rank[u] < self.rank[v])

    def min_of(self, vertices: Iterable[int]) -> int:
        """The L-least vertex of a nonempty collection."""
        vs = list(vertices)
        if not vs:
            raise OrderError("min of empty set")
        return int(min(vs, key=lambda v: self.rank[v]))

    def sorted_adjacency(self, g: Graph) -> list[np.ndarray]:
        """Adjacency lists sorted ascending by rank (Algorithm 2 output).

        Linear time overall: bucket every directed arc by the rank of its
        source, then append — exactly the two-pass SortLists idea.
        """
        if g.n != self.n:
            raise OrderError("order size does not match graph")
        out: list[list[int]] = [[] for _ in range(g.n)]
        for i in range(g.n):
            v = int(self.by_rank[i])
            for u in g.neighbors(v):
                out[int(u)].append(v)
        return [np.asarray(row, dtype=np.int64) for row in out]

    def restrict(self, vertices: Sequence[int]) -> "LinearOrder":
        """Induced order on a vertex subset, relabelled to 0..k-1.

        ``vertices[i]`` becomes vertex ``i`` of the restricted order.
        """
        vs = list(vertices)
        ranks = sorted(range(len(vs)), key=lambda i: self.rank[vs[i]])
        return LinearOrder.from_sequence(ranks)

    def __len__(self) -> int:
        return self.n

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinearOrder):
            return NotImplemented
        return np.array_equal(self.rank, other.rank)

    def __hash__(self) -> int:
        return hash(self.rank.tobytes())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LinearOrder(n={self.n})"
