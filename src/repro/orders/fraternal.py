"""Transitive-fraternal augmentation orders (Theorem 2 / Theorem 3 engine).

Nešetřil–Ossona de Mendez / Dvořák compute orders witnessing bounded
``wcol_r`` by *augmentation*: start from a low-out-degree acyclic
orientation of G, then repeatedly add

* **transitive** arcs  u→w whenever u→v→w  (combined length tracked), and
* **fraternal** edges {u, w} whenever v→u and v→w, oriented afterwards so
  out-degrees stay small.

On a bounded expansion class the out-degree after i steps is bounded by a
function of the class and i.  Any vertex weakly r-reachable from v is then
an out-neighbor of v in the length-r closure, so a smallest-last order of
the augmented graph witnesses bounded wcol_r.

This sequential implementation mirrors the structure the paper's Theorem 3
distributes; :mod:`repro.distributed.nd_order` contains the distributed
counterpart.  The guarantee the library reports downstream is always the
*measured* ``c = wcol_of_order(...)``, so correctness never depends on the
constants in the augmentation analysis.
"""

from __future__ import annotations

import numpy as np

from repro.errors import OrderError
from repro.graphs.build import from_edges
from repro.graphs.graph import Graph
from repro.orders.degeneracy import degeneracy_order
from repro.orders.linear_order import LinearOrder

__all__ = ["orient_acyclic", "fraternal_augmentation_order", "augmentation_out_degrees"]


def orient_acyclic(g: Graph, order: LinearOrder | None = None) -> list[list[tuple[int, int]]]:
    """Orient each edge from L-greater to L-smaller endpoint.

    With a degeneracy order (default) every vertex gets out-degree at most
    the degeneracy.  Returns out-adjacency ``arcs[v] = [(u, length), ...]``
    with ``length = 1`` for original edges.
    """
    if order is None:
        order, _ = degeneracy_order(g)
    rank = order.rank
    arcs: list[list[tuple[int, int]]] = [[] for _ in range(g.n)]
    for u, v in g.edges():
        if rank[u] < rank[v]:
            arcs[v].append((u, 1))
        else:
            arcs[u].append((v, 1))
    return arcs


def _orient_new_edges(n: int, new_edges: set[tuple[int, int]]) -> list[list[int]]:
    """Orient a set of fresh undirected edges with small out-degree.

    Builds the graph of new edges and orients along its degeneracy order
    (greater -> smaller), bounding out-degree by that graph's degeneracy.
    """
    if not new_edges:
        return [[] for _ in range(n)]
    h = from_edges(n, list(new_edges))
    order, _ = degeneracy_order(h)
    rank = order.rank
    out: list[list[int]] = [[] for _ in range(n)]
    for u, v in h.edges():
        if rank[u] < rank[v]:
            out[v].append(u)
        else:
            out[u].append(v)
    return out


def _augment_once(
    n: int,
    arcs: list[dict[int, int]],
    max_len: int,
) -> tuple[list[dict[int, int]], int]:
    """One transitive + fraternal step on weighted out-arc dicts.

    ``arcs[v]`` maps out-neighbor -> minimal represented path length.
    Returns updated arcs and the number of newly created adjacencies.
    """
    transitive: list[tuple[int, int, int]] = []  # (src, dst, length)
    fraternal: dict[tuple[int, int], int] = {}
    for v in range(n):
        out_v = list(arcs[v].items())
        # Transitive: v -> u -> w gives v -> w.
        for u, lu in out_v:
            for w, lw in arcs[u].items():
                lt = lu + lw
                if w != v and lt <= max_len:
                    transitive.append((v, w, lt))
        # Fraternal: v -> u, v -> w gives edge {u, w}.
        for i in range(len(out_v)):
            u, lu = out_v[i]
            for j in range(i + 1, len(out_v)):
                w, lw = out_v[j]
                lf = lu + lw
                if lf <= max_len:
                    key = (min(u, w), max(u, w))
                    if key not in fraternal or fraternal[key] > lf:
                        fraternal[key] = lf
    created = 0
    for v, w, lt in transitive:
        cur = arcs[v].get(w)
        if cur is None:
            arcs[v][w] = lt
            created += 1
        elif lt < cur:
            arcs[v][w] = lt
    # Fraternal pairs not already adjacent (in either direction) get
    # oriented en masse for small out-degree.
    fresh = {
        (a, b): l
        for (a, b), l in fraternal.items()
        if b not in arcs[a] and a not in arcs[b]
    }
    oriented = _orient_new_edges(n, set(fresh))
    for src in range(n):
        for dst in oriented[src]:
            key = (min(src, dst), max(src, dst))
            arcs[src][dst] = fresh[key]
            created += 1
    return arcs, created


def fraternal_augmentation_order(
    g: Graph, radius: int, max_steps: int | None = None
) -> LinearOrder:
    """Order witnessing small ``wcol_radius`` via transitive-fraternal augmentation.

    Performs ``radius - 1`` augmentation steps (capped at ``max_steps``),
    keeping only arcs representing paths of length <= radius, then returns
    the smallest-last order of the augmented *underlying undirected* graph.
    """
    if radius < 1:
        raise OrderError("radius must be >= 1")
    if g.n == 0:
        return LinearOrder.identity(0)
    base_order, _ = degeneracy_order(g)
    arcs_list = orient_acyclic(g, base_order)
    arcs: list[dict[int, int]] = [dict(row) for row in arcs_list]
    steps = radius - 1 if max_steps is None else min(radius - 1, max_steps)
    for _ in range(steps):
        arcs, created = _augment_once(g.n, arcs, radius)
        if created == 0:
            break
    edges = set()
    for v in range(g.n):
        for u in arcs[v]:
            edges.add((min(u, v), max(u, v)))
    augmented = from_edges(g.n, list(edges))
    order, _ = degeneracy_order(augmented)
    return order


def augmentation_out_degrees(g: Graph, radius: int) -> np.ndarray:
    """Out-degree profile of the augmented digraph (diagnostics for T7)."""
    if g.n == 0:
        return np.zeros(0, dtype=np.int64)
    base_order, _ = degeneracy_order(g)
    arcs = [dict(row) for row in orient_acyclic(g, base_order)]
    for _ in range(max(0, radius - 1)):
        arcs, created = _augment_once(g.n, arcs, radius)
        if created == 0:
            break
    return np.asarray([len(a) for a in arcs], dtype=np.int64)
