"""Order baselines and improvement heuristics.

Used by the A1 ablation: how much does the order construction matter for
the measured ``c`` (and hence for the certified approximation ratio)?
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.orders.linear_order import LinearOrder
from repro.orders.wreach import wreach_sizes

__all__ = ["random_order", "identity_order", "sort_by_wreach_order", "bfs_order"]


def random_order(g: Graph, seed: int = 0) -> LinearOrder:
    """Uniformly random order — the 'no structure' baseline."""
    rng = np.random.default_rng(seed)
    return LinearOrder.from_sequence(rng.permutation(g.n))


def identity_order(g: Graph) -> LinearOrder:
    """Vertex ids as ranks."""
    return LinearOrder.identity(g.n)


def bfs_order(g: Graph, root: int = 0) -> LinearOrder:
    """BFS layering order from ``root`` (unreached vertices go last by id)."""
    from repro.graphs.traversal import UNREACHED, bfs_distances

    if g.n == 0:
        return LinearOrder.identity(0)
    dist = bfs_distances(g, root)
    big = dist.max(initial=0) + 1
    keys = [int(d) if d != UNREACHED else int(big) for d in dist]
    return LinearOrder.from_keys(keys)


def sort_by_wreach_order(
    g: Graph, start: LinearOrder, radius: int, passes: int = 2
) -> LinearOrder:
    """Iterated sort-by-|WReach| improvement (Nadara et al., SEA 2019 idea).

    Each pass recomputes |WReach_radius| under the current order and
    re-sorts vertices ascending by it (stable, ties keep relative order).
    Vertices with large weak-reach move later, which tends to shrink the
    maximum.  Monotone improvement is not guaranteed; the best order over
    all passes is returned (measured by max |WReach|).
    """
    best = start
    if g.n == 0:
        return best
    best_score = int(wreach_sizes(g, best, radius).max())
    cur = start
    for _ in range(passes):
        sizes = wreach_sizes(g, cur, radius)
        seq = sorted(range(g.n), key=lambda v: (int(sizes[v]), int(cur.rank[v])))
        cur = LinearOrder.from_sequence(seq)
        score = int(wreach_sizes(g, cur, radius).max())
        if score < best_score:
            best, best_score = cur, score
    return best
