"""Weak reachability sets — flat-array kernels over the CSR graph.

``WReach_r[G, L, v]`` is the set of vertices ``u`` such that some path of
length at most r connects v to u and u is the L-least vertex on that path.
Everything in the paper is driven by these sets:

* ``D = {min WReach_r[w] : w}`` is the dominating set (Theorem 5),
* ``X_v = {w : v in WReach_2r[w]}`` are the cover clusters (Theorem 4),
* ``c(r) = max_v |WReach_2r[v]|`` is the certified approximation ratio.

Computation uses the standard inversion: for each u in *increasing* L
order, run a BFS from u truncated at depth r and restricted to vertices
L-greater than u; every vertex w it reaches has ``u ∈ WReach_r[w]``.
This restricted BFS is exactly Algorithm 3 of the paper, and the overall
cost is ``O(sum_v |X_v| * avg_deg)`` — near-linear when wcol is bounded.

The definition-shaped reference implementation lives in
:mod:`repro.orders.wreach_ref`; this module implements the same API with
flat-array kernels:

* a **bit-parallel batch kernel** for ``wreach_csr`` / ``wreach_sets``
  / ``wreach_sizes`` / ``wcol_of_order``: up to 512 consecutive roots
  (in L order) are swept at once, with a ``uint64`` reachability
  bitmask per vertex whose word count adapts to a memory budget (see
  :func:`set_kernel_budget_bytes`) so the dense mask window never
  outgrows its cap on million-vertex graphs.  The restriction "only
  vertices L-greater than the root" becomes a per-vertex
  *eligibility mask* — the low
  ``rank[v] - batch_base`` bits — so a single vectorized frontier
  expansion advances all 512 restricted BFS runs together and the
  per-root interpreter overhead amortizes away.  Between batches the
  shared mask array is cleared by rewriting only the touched words,
  never O(n).  The sweep's native output is :class:`WReachCSR` — the
  CSR-shaped ``(indptr, members)`` pair — which the sequential
  consumers (``core/domset.py``, ``core/covers.py``) traverse directly;
  ``wreach_sets`` is a thin list-materializing wrapper over it.
* a **batched flat-pair kernel** for ``wreach_sets_with_paths``: the
  same 512-root sweep shape, but carrying one flat record per reached
  ``(root lane, vertex)`` pair so per-layer predecessor selection can
  preserve Algorithm 4's exact tie rule.  Each layer gathers all arcs
  out of the frontier pairs, drops ineligible / already-visited
  candidates, and picks per pair the predecessor earliest in the
  frontier's discovery order (one ``lexsort``); keeping the frontier
  sorted by ``(lane, discovery key)`` makes that order a plain index
  compare.  Witness paths then come out of ``radius`` vectorized
  parent-pointer gathers (a saturating path matrix), never a scalar
  per-root BFS.
* an **epoch-stamped per-root kernel** for ``restricted_bfs`` and the
  small-graph fallbacks: one visited/parent scratch array reused
  across all n BFS roots, stamped with the root's rank so it is never
  cleared.  ``restricted_bfs`` filters neighbors with a vectorized
  ``rank[nbrs] > root_rank`` numpy mask; the scalar fallbacks walk the
  precomputed (and cached) rank-sorted rows of
  :meth:`RankedAdjacency.rows`, so the eligible neighbors are a suffix
  located by one binary search — no ``sorted()`` (and no per-element
  numpy scalar boxing, which measures slower than list walks at the
  bounded degrees these graph classes have) inside the innermost loop.

Both kernels run over a :class:`RankedAdjacency` — the CSR adjacency
re-sorted per row by L-rank (Algorithm 2's SortLists output in flat
form), built once per ``(graph, order)`` and memoized by
:meth:`repro.api.cache.PrecomputeCache.rank_adjacency`.  Rank-sorted
rows preserve the ascending-rank discovery order that Algorithm 4's
lexicographic tie-break requires.
"""

from __future__ import annotations

import os
import sys
from bisect import bisect_right

import numpy as np

from repro.errors import OrderError
from repro.graphs.graph import Graph
from repro.orders.linear_order import LinearOrder

__all__ = [
    "RankedAdjacency",
    "WReachCSR",
    "kernel_budget_bytes",
    "ranked_adjacency",
    "restricted_bfs",
    "set_kernel_budget_bytes",
    "wreach_csr",
    "wreach_sets",
    "wreach_sets_with_paths",
    "wreach_sizes",
    "wcol_of_order",
]

_WORD = 64  # bits per mask word
_WORDS_MAX = 8  # max words per batch (power of two) -> up to 512 roots at once
_FULL = np.uint64(0xFFFFFFFFFFFFFFFF)
# Below this size the scalar epoch-stamped kernel beats the batch kernel's
# fixed numpy setup cost (a single partial batch would run anyway).
_SMALL_N = 512

#: Dense-scratch budget (bytes) shared by both batch kernels.  The
#: membership sweep's ``(n, words)`` uint64 mask window and the path
#: sweep's ``(n, span)`` bool visited buffer are the only allocations
#: proportional to ``n * batch width``, so capping them caps the
#: kernels' resident growth: at 10^6 vertices the default keeps each
#: under 64 MB (8 mask words exactly fill it; beyond that the word
#: count halves), where the old fixed 512-root batch would have grown
#: the window without bound as n did.  Batch width is pure tiling —
#: outputs are bit-identical at any width (pinned by the parity suite).
_DEFAULT_BUDGET_BYTES = 64 << 20
_budget_bytes = int(
    os.environ.get("REPRO_KERNEL_BUDGET_BYTES", _DEFAULT_BUDGET_BYTES) or 0
) or _DEFAULT_BUDGET_BYTES


def kernel_budget_bytes() -> int:
    """The active dense-scratch budget for the batch kernels."""
    return _budget_bytes


def set_kernel_budget_bytes(budget: int | None) -> int:
    """Set (or with ``None`` reset) the kernel scratch budget; returns it.

    Tiling only — any budget produces identical outputs; small budgets
    narrow the batches (more sweeps), large ones widen them (more
    scratch).  The floor is one mask word / 64 path lanes.
    """
    global _budget_bytes
    _budget_bytes = _DEFAULT_BUDGET_BYTES if budget is None else max(1, int(budget))
    return _budget_bytes


def _mask_words(n: int) -> int:
    """Mask words per batch: the largest power of two within budget.

    The membership window is ``n * words * 8`` bytes; halve the word
    count until it fits (floor 1 word = 64 roots per batch).
    """
    words = _WORDS_MAX
    while words > 1 and n * words * 8 > _budget_bytes:
        words >>= 1
    return words


class RankedAdjacency:
    """Rank-permuted CSR adjacency for one ``(graph, order)`` pair.

    Attributes
    ----------
    indptr:
        The graph's CSR offsets (shared, not copied).
    nbrs:
        ``int64`` neighbor array with each row re-sorted ascending by
        L-rank (widened once so the hot kernels never convert dtypes).
    nbr_ranks:
        ``rank[nbrs]`` precomputed, so rank tests never gather twice.
    rank / by_rank:
        The order's arrays (shared).

    Construction is one global ``lexsort`` over all 2m arcs — O(m log m)
    once, versus the per-visit ``sorted()`` the naive kernel pays.  The
    Python-list mirrors used by the paths kernel are built lazily on
    first use.
    """

    __slots__ = (
        "indptr",
        "nbrs",
        "nbr_ranks",
        "packed",
        "rank",
        "by_rank",
        "n",
        "_rows_list",
        "_row_ranks_list",
    )

    def __init__(self, g: Graph, order: LinearOrder):
        if g.n != order.n:
            raise OrderError("order size does not match graph")
        self.n = g.n
        self.indptr = g.indptr
        self.rank = order.rank
        self.by_rank = order.by_rank
        if len(g.indices):
            row_ids = np.repeat(np.arange(g.n, dtype=np.int64), np.diff(g.indptr))
            perm = np.lexsort((order.rank[g.indices], row_ids))
            self.nbrs = g.indices[perm].astype(np.int64)
            self.nbr_ranks = order.rank[self.nbrs]
        else:
            self.nbrs = np.empty(0, dtype=np.int64)
            self.nbr_ranks = np.empty(0, dtype=np.int64)
        # Interleaved (neighbor, rank) pairs: the batch kernel's gathers
        # hit both fields of an arc on one cache line.
        self.packed = np.stack((self.nbrs, self.nbr_ranks), axis=1)
        self.nbrs.setflags(write=False)
        self.nbr_ranks.setflags(write=False)
        self.packed.setflags(write=False)
        self._rows_list: list[list[int]] | None = None
        self._row_ranks_list: list[list[int]] | None = None

    @classmethod
    def from_sorted_nbrs(
        cls, g: Graph, order: LinearOrder, nbrs: np.ndarray
    ) -> "RankedAdjacency":
        """Rebuild from a persisted rank-sorted neighbor array.

        The inverse of persisting :attr:`nbrs`
        (:meth:`repro.api.store.ArtifactStore.put_rank_adj`): skips the
        O(m log m) global lexsort and recovers the derived fields with
        one rank gather.  The row structure is validated against the
        graph; per-row rank-sortedness is the store's digest-keying
        contract and is not re-checked.
        """
        if g.n != order.n:
            raise OrderError("order size does not match graph")
        if len(nbrs) != len(g.indices):
            raise OrderError("stored neighbor array does not match graph")
        self = cls.__new__(cls)
        self.n = g.n
        self.indptr = g.indptr
        self.rank = order.rank
        self.by_rank = order.by_rank
        self.nbrs = np.ascontiguousarray(nbrs, dtype=np.int64)
        self.nbr_ranks = (
            order.rank[self.nbrs] if len(self.nbrs) else np.empty(0, dtype=np.int64)
        )
        self.packed = np.stack((self.nbrs, self.nbr_ranks), axis=1)
        self.nbrs.setflags(write=False)
        self.nbr_ranks.setflags(write=False)
        self.packed.setflags(write=False)
        self._rows_list = None
        self._row_ranks_list = None
        return self

    def rows(self) -> tuple[list[list[int]], list[list[int]]]:
        """Per-row ``(neighbors, their ranks)`` as plain Python lists.

        The scalar BFS of the paths kernel iterates these; Python-list
        walks beat numpy scalar iteration by ~10x at bounded degree.
        """
        if self._rows_list is None:
            nbrs = self.nbrs.tolist()
            ranks = self.nbr_ranks.tolist()
            bounds = self.indptr.tolist()
            self._rows_list = [
                nbrs[bounds[v] : bounds[v + 1]] for v in range(self.n)
            ]
            self._row_ranks_list = [
                ranks[bounds[v] : bounds[v + 1]] for v in range(self.n)
            ]
        return self._rows_list, self._row_ranks_list


def ranked_adjacency(
    g: Graph, order: LinearOrder, adj: RankedAdjacency | None = None
) -> RankedAdjacency:
    """Validate a shared :class:`RankedAdjacency`, or build a fresh one.

    Every kernel and CSR-consuming solver funnels through this, so a
    cached instance (``PrecomputeCache.rank_adjacency``) — including its
    memoized :meth:`RankedAdjacency.rows` materialization — is shared
    instead of being rebuilt per call.
    """
    if adj is None:
        return RankedAdjacency(g, order)
    if adj.n != g.n:
        raise OrderError("rank adjacency does not match graph")
    if adj.rank is not order.rank and not np.array_equal(adj.rank, order.rank):
        raise OrderError("rank adjacency was built for a different order")
    return adj


_require_adj = ranked_adjacency  # internal alias, kept for brevity


class WReachCSR:
    """CSR-shaped ``WReach_reach`` for one ``(graph, order, reach)``.

    The first-class array representation the bit-parallel sweep
    produces natively: vertex ``v``'s members are
    ``members[indptr[v]:indptr[v+1]]``, sorted ascending by L-rank.
    Rank-sorted rows make the hot consumers one-gather operations —
    ``members[indptr[v]]`` *is* the L-least member, i.e. the Theorem-5
    dominator election — and ``np.diff(indptr)`` *is* the size profile,
    so sets, sizes, and wcol all fall out of one sweep
    (:meth:`repro.api.cache.PrecomputeCache.wreach_csr` memoizes it).

    ``tolists()`` materializes the classic list-of-lists shape for
    callers that still want Python lists; the arrays are read-only so a
    cached instance can be shared safely.
    """

    __slots__ = ("indptr", "members", "n", "reach", "rank", "_lists")

    def __init__(
        self,
        indptr: np.ndarray,
        members: np.ndarray,
        reach: int,
        rank: np.ndarray,
    ):
        self.indptr = indptr
        self.members = members
        self.n = len(indptr) - 1
        self.reach = int(reach)
        #: The order's rank array (shared, read-only): consumers check
        #: it via :meth:`matches` so a CSR built for a different order
        #: of the same graph errors instead of silently mis-electing.
        self.rank = rank
        self.indptr.setflags(write=False)
        self.members.setflags(write=False)
        self._lists: list[list[int]] | None = None

    def matches(self, g: Graph, order: LinearOrder, reach: int) -> bool:
        """True iff this CSR was built for ``(g-sized, order, reach)``."""
        return (
            self.n == g.n
            and self.reach == int(reach)
            and (
                self.rank is order.rank
                or np.array_equal(self.rank, order.rank)
            )
        )

    @property
    def sizes(self) -> np.ndarray:
        """``|WReach_reach[v]|`` per vertex — one ``diff`` of the offsets."""
        return np.diff(self.indptr)

    def wcol(self) -> int:
        """``max_v |WReach_reach[v]|`` (0 on the empty graph)."""
        return int(self.sizes.max()) if self.n else 0

    def least(self) -> np.ndarray:
        """The L-least member of every set, in one gather.

        Rows are rank-sorted, so this is the first entry per row; every
        row is nonempty because ``v ∈ WReach[v]`` at any radius.
        """
        return self.members[self.indptr[:-1]]

    def row(self, v: int) -> np.ndarray:
        """Members of ``WReach_reach[v]`` (read-only view, rank-ascending)."""
        return self.members[self.indptr[v] : self.indptr[v + 1]]

    def tolists(self) -> list[list[int]]:
        """Per-vertex Python lists (the ``wreach_sets`` shape), memoized."""
        if self._lists is None:
            members_list = self.members.tolist()
            offsets = self.indptr.tolist()
            # map(slice, ...) keeps the per-vertex list construction in C.
            self._lists = list(
                map(members_list.__getitem__, map(slice, offsets, offsets[1:]))
            )
        return self._lists


def _flat_gather(
    indptr: np.ndarray, frontier: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``(positions, counts)`` of every arc leaving ``frontier``, row-major."""
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), counts
    shifts = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(counts)[:-1]))
    return np.repeat(starts - shifts, counts) + np.arange(total, dtype=np.int64), counts


def _eligibility_table(words: int) -> np.ndarray:
    """Row d holds the masks with the low d bits set, d = 0 .. 64*words.

    A vertex of rank ``base + d`` may be visited exactly by the batch
    roots ranked below it, i.e. the low d bits of the row; the kernels
    turn the per-candidate rank test into one table gather.
    """
    span = _WORD * words
    table = np.zeros((span + 1, words), dtype=np.uint64)
    for w in range(words):
        d = np.clip(np.arange(span + 1) - w * _WORD, 0, _WORD)
        col = np.full(span + 1, _FULL, dtype=np.uint64)
        small = d < _WORD
        col[small] = (np.uint64(1) << d[small].astype(np.uint64)) - np.uint64(1)
        table[:, w] = col
    return table


def _iter_batches(adj: RankedAdjacency, radius: int):
    """Run the bit-parallel restricted BFS, ``64 * _mask_words(n)`` roots per batch.

    The frontier is kept in *item space* — parallel 1-d arrays of
    ``(vertex, word, bits)`` triples holding only the nonzero mask words
    — so every per-layer operation (gather, eligibility, sort,
    OR-aggregation by ``vertex * words + word`` key) runs on flat
    contiguous arrays; the dense ``(n, words)`` window exists only for
    the already-reached test, and is read and cleared through the item
    keys, never by dense scans.

    Yields ``(base_rank, uv, uw, vals)`` per batch, sorted by
    ``(uv, uw)``: bit j of ``vals[k]`` set means the root of rank
    ``base_rank + 64 * uw[k] + j`` weakly reaches vertex ``uv[k]``.
    """
    n = adj.n
    words = _mask_words(n)
    span = _WORD * words
    shift = words.bit_length() - 1  # words is a power of two
    winflat = np.zeros(n * words, dtype=np.uint64)
    # An item key is the flat window index ``vertex * words + word``, so
    # one key drives the dedup sort, the reached-test gather, and the
    # window update alike.
    elig_flat = _eligibility_table(words).reshape(-1)
    for base in range(0, n, span):
        width = min(span, n - base)
        roots = adj.by_rank[base : base + width]
        lanes = np.arange(width, dtype=np.int64)
        fv = roots
        fw = lanes >> 6
        fb = np.uint64(1) << (lanes & 63).astype(np.uint64)
        ukeys = (roots << shift) + fw
        winflat[ukeys] = fb
        key_parts = [ukeys]
        for _depth in range(radius):
            pos, counts = _flat_gather(adj.indptr, fv)
            if pos.size == 0:
                break
            pair = adj.packed[pos]
            # An arc into rank <= base is ineligible for every root in
            # the batch; drop those with one compare up front.
            pre = pair[:, 1] > base
            pair = pair[pre]
            if pair.size == 0:
                break
            src = np.repeat(np.arange(len(fv), dtype=np.int64), counts)[pre]
            fwsrc = fw[src]
            d = np.minimum(pair[:, 1] - base, span)
            cbits = fb[src] & elig_flat[(d << shift) + fwsrc]
            live = cbits != 0
            cbits = cbits[live]
            if cbits.size == 0:
                break
            # OR-aggregate duplicate (vertex, word) items (two frontier
            # vertices sharing a neighbor), then drop bits already set.
            keys = (pair[live, 0] << shift) + fwsrc[live]
            sortidx = np.argsort(keys)
            keys, cbits = keys[sortidx], cbits[sortidx]
            heads = _group_heads(keys)
            ukeys = keys[heads]
            new = np.bitwise_or.reduceat(cbits, heads) & ~winflat[ukeys]
            grew = new != 0
            ukeys, fb = ukeys[grew], new[grew]
            if ukeys.size == 0:
                break
            fv, fw = ukeys >> shift, ukeys & (words - 1)
            winflat[ukeys] |= fb
            key_parts.append(ukeys)
        ukeys = np.unique(np.concatenate(key_parts))
        vals = winflat[ukeys]
        winflat[ukeys] = 0
        yield base, ukeys >> shift, ukeys & (words - 1), vals


def _unpack_vals(vals: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(item, bit)`` pairs of the set bits, bits ascending per item.

    ``flatnonzero`` scans the unpacked bit matrix in C order, which
    keeps the pairs grouped by item with bits ascending — the order
    every caller needs.
    """
    le = vals if sys.byteorder == "little" else vals.byteswap()
    bitmat = np.unpackbits(le.view(np.uint8).reshape(-1, 8), axis=1, bitorder="little")
    flat = np.flatnonzero(bitmat)
    return flat >> 6, flat & 63


def _popcounts(vals: np.ndarray) -> np.ndarray:
    if hasattr(np, "bitwise_count"):  # numpy >= 2.0
        return np.bitwise_count(vals).astype(np.int64)
    le = vals if sys.byteorder == "little" else vals.byteswap()
    return (
        np.unpackbits(le.view(np.uint8).reshape(-1, 8), axis=1)
        .sum(axis=1)
        .astype(np.int64)
    )


def _group_heads(uv: np.ndarray) -> np.ndarray:
    """Start indices of the runs of equal entries in a sorted array."""
    return np.flatnonzero(
        np.concatenate((np.ones(1, dtype=bool), uv[1:] != uv[:-1]))
    )


def _small_sets(adj: RankedAdjacency, radius: int) -> list[list[int]]:
    """Scalar restricted BFS from every root, ascending rank.

    One epoch-stamped visited list serves all roots; eligible neighbors
    are the rank-sorted row suffix.  Processing roots in ascending rank
    appends each membership list in rank order.
    """
    rows, row_ranks = adj.rows()
    by_rank = adj.by_rank.tolist()
    visited = [-1] * adj.n
    wreach: list[list[int]] = [[] for _ in range(adj.n)]
    for i in range(adj.n):
        u = by_rank[i]
        visited[u] = i
        wreach[u].append(u)
        frontier = [u]
        for _depth in range(radius):
            nxt: list[int] = []
            for w in frontier:
                for x in rows[w][bisect_right(row_ranks[w], i) :]:
                    if visited[x] != i:
                        visited[x] = i
                        wreach[x].append(u)
                        nxt.append(x)
            if not nxt:
                break
            frontier = nxt
    return wreach


def _small_sizes(adj: RankedAdjacency, radius: int) -> np.ndarray:
    """``_small_sets`` counting memberships instead of materializing."""
    rows, row_ranks = adj.rows()
    by_rank = adj.by_rank.tolist()
    visited = [-1] * adj.n
    sizes = [0] * adj.n
    for i in range(adj.n):
        u = by_rank[i]
        visited[u] = i
        sizes[u] += 1
        frontier = [u]
        for _depth in range(radius):
            nxt: list[int] = []
            for w in frontier:
                for x in rows[w][bisect_right(row_ranks[w], i) :]:
                    if visited[x] != i:
                        visited[x] = i
                        sizes[x] += 1
                        nxt.append(x)
            if not nxt:
                break
            frontier = nxt
    return np.asarray(sizes, dtype=np.int64)


# ---------------------------------------------------------------------------
# Public API (signatures and outputs identical to the naive reference)
# ---------------------------------------------------------------------------
def restricted_bfs(g: Graph, order: LinearOrder, root: int, radius: int) -> list[int]:
    """Algorithm 3: BFS from ``root`` over vertices L-greater than root, depth <= r.

    Returns all visited vertices (including the root) in discovery
    order.  Every returned vertex ``w`` satisfies
    ``root ∈ WReach_r[G, L, w]`` — the path through L-greater vertices
    down to the root witnesses it.
    """
    rank = order.rank
    root_rank = int(rank[root])
    visited = np.zeros(g.n, dtype=bool)
    visited[root] = True
    out = [root]
    frontier = [root]
    for _depth in range(radius):
        nxt: list[int] = []
        for w in frontier:
            nbrs = g.neighbors(w)
            if not nbrs.size:
                continue
            new = nbrs[(rank[nbrs] > root_rank) & ~visited[nbrs]]
            if new.size:
                visited[new] = True
                nxt.extend(int(x) for x in new)
        if not nxt:
            break
        out.extend(nxt)
        frontier = nxt
    return out


def _csr_batch(adj: RankedAdjacency, radius: int) -> tuple[np.ndarray, np.ndarray]:
    """``(indptr, members)`` arrays via the bit-parallel sweep."""
    # Pass 1 (cheap): per-batch emissions, plus per-vertex totals so the
    # flat members array can be laid out without a global sort.
    sizes = np.zeros(adj.n, dtype=np.int64)
    batches: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    for base, uv, uw, vals in _iter_batches(adj, radius):
        item, bit = _unpack_vals(vals)
        ranks = uw[item] * _WORD + bit + base
        heads = _group_heads(uv)
        targets = uv[heads]
        per_target = np.add.reduceat(_popcounts(vals), heads)
        sizes[targets] += per_target
        batches.append((targets, per_target, ranks))
    bounds = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(sizes)))
    # Pass 2: scatter each batch's members into place.  Batches arrive in
    # ascending root rank and emissions are grouped by target with lanes
    # ascending, so per-vertex cursor order is exactly rank order.
    cursor = bounds[:-1].copy()
    members = np.empty(int(bounds[-1]), dtype=np.int64)
    for targets, per_target, ranks in batches:
        shifts = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(per_target)[:-1])
        )
        where = np.repeat(cursor[targets] - shifts, per_target) + np.arange(
            len(ranks), dtype=np.int64
        )
        members[where] = adj.by_rank[ranks]
        cursor[targets] += per_target
    return bounds, members


def _csr_small(adj: RankedAdjacency, radius: int) -> tuple[np.ndarray, np.ndarray]:
    """``(indptr, members)`` from the scalar fallback (tiny graphs only)."""
    lists = _small_sets(adj, radius)
    sizes = np.fromiter((len(s) for s in lists), dtype=np.int64, count=adj.n)
    bounds = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(sizes)))
    flat = [u for s in lists for u in s]
    members = np.asarray(flat, dtype=np.int64)
    return bounds, members


def wreach_csr(
    g: Graph,
    order: LinearOrder,
    radius: int,
    *,
    adj: RankedAdjacency | None = None,
) -> WReachCSR:
    """``WReach_radius`` in CSR form — the sweep's native representation.

    Vertex ``v``'s members are ``members[indptr[v]:indptr[v+1]]``,
    ascending by L-rank; ``v`` itself is always a member (paths of
    length 0).  This is what the vectorized sequential consumers
    (``domset_by_wreach``, ``build_cover``) traverse directly, skipping
    the per-vertex Python list materialization entirely.  Pass ``adj``
    (see :class:`RankedAdjacency`) to amortize the one-time row
    permutation across calls; :mod:`repro.api.cache` does this.
    """
    if g.n != order.n:
        raise OrderError("order size does not match graph")
    adj = _require_adj(g, order, adj)
    if g.n == 0:
        return WReachCSR(
            np.zeros(1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            radius,
            adj.rank,
        )
    if g.n <= _SMALL_N:
        bounds, members = _csr_small(adj, radius)
    else:
        bounds, members = _csr_batch(adj, radius)
    return WReachCSR(bounds, members, radius, adj.rank)


def wreach_sets(
    g: Graph,
    order: LinearOrder,
    radius: int,
    *,
    adj: RankedAdjacency | None = None,
) -> list[list[int]]:
    """``WReach_radius[G, L, v]`` for every v, each list sorted by L-rank.

    Thin wrapper: materializes :func:`wreach_csr` as per-vertex Python
    lists.  Callers on the hot path should consume the CSR arrays
    directly instead.
    """
    if g.n != order.n:
        raise OrderError("order size does not match graph")
    adj = _require_adj(g, order, adj)
    if 0 < g.n <= _SMALL_N:
        return _small_sets(adj, radius)
    if g.n == 0:
        return []
    return wreach_csr(g, order, radius, adj=adj).tolists()


#: Root lanes per path-sweep batch.  The membership sweep's width comes
#: from its 64-bit mask words; the flat-pair path sweep has no word
#: width to respect, so it runs wider batches (fewer, larger numpy
#: calls) — bounded by the ``n * span`` bool visited buffer, which
#: ``_path_span`` caps at the shared kernel budget so huge graphs
#: narrow the batch instead of allocating O(1024 n) scratch.
_PATH_SPAN = 1024


def _path_span(n: int) -> int:
    """Lane count for the path sweep: wide, but with bounded scratch."""
    return min(_PATH_SPAN, max(64, _budget_bytes // max(n, 1)))


def _batch_paths(adj: RankedAdjacency, radius: int, idobj: np.ndarray):
    """Vectorized witness-path extraction, ``_PATH_SPAN`` roots per sweep.

    Exact-parity note: a pure predecessor-*mask* extraction (per-layer
    bitmasks like the membership sweep) cannot reproduce Algorithm 4's
    tie rule, because the winning predecessor is the one earliest in the
    root's *discovery order* — a per-``(root, vertex)`` quantity that is
    not rank order and is not representable in a shared mask word.  The
    state here is therefore one flat record per reached ``(lane,
    vertex)`` pair.  The invariant that turns the tie rule into a
    vectorized primitive: frontier arrays are kept sorted by ``(lane,
    discovery key)``, so "earliest-discovered predecessor" is the
    minimal frontier index among a candidate's arcs (arc order is
    already frontier-major, so one *stable* sort by candidate key picks
    it), and the next frontier's discovery order is ``lexsort`` by
    ``(winning predecessor, own rank)`` — exactly the scalar kernel's
    scan order.

    Pairs are appended layer by layer, so each BFS depth is a contiguous
    slice and witness paths come from ``depth`` parent-pointer gathers
    per layer, zipped into tuples of the pre-boxed ids in ``idobj`` —
    never a scalar per-root BFS.  Yields per batch ``(root_ranks,
    vertices, tuples)``, one entry per reached pair (``tuples`` is an
    object array; ``None`` for the trivial depth-0 pairs).
    """
    n = adj.n
    span = _path_span(n)
    indptr = adj.indptr
    # Per-(vertex, lane) visited flags, cleared per batch via the pair
    # records themselves (never an O(n * span) rescan).
    visited = np.zeros(n * span, dtype=bool)
    for base in range(0, n, span):
        width = min(span, n - base)
        roots = adj.by_rank[base : base + width]
        lanes = np.arange(width, dtype=np.int64)
        lane_parts = [lanes]
        x_parts = [roots]
        parent_parts = [np.arange(width, dtype=np.int64)]  # roots self-parent
        layers: list[tuple[int, int, int]] = []  # (start, end, depth)
        visited[roots * span + lanes] = True
        fl, fv = lanes, roots
        offset, total = 0, width
        for depth in range(1, radius + 1):
            pos, counts = _flat_gather(indptr, fv)
            if pos.size == 0:
                break
            src = np.repeat(np.arange(len(fv), dtype=np.int64), counts)
            pair = adj.packed[pos]  # (neighbor, rank) on one cache line
            cx, cxr = pair[:, 0], pair[:, 1]
            cl = fl[src]
            ck = cx * span + cl
            # One compression: eligible (rank above the lane's root) and
            # not yet reached in this lane.
            cand = np.flatnonzero((cxr > base + cl) & ~visited[ck])
            if not cand.size:
                break
            cks = ck[cand]
            # Winner per (lane, vertex): arcs are generated in frontier
            # order, so a stable sort by candidate key leaves the
            # earliest-discovered predecessor first in each group.
            o = np.argsort(cks, kind="stable")
            widx = cand[o[_group_heads(cks[o])]]
            # Discovery order of the new layer: (lane, predecessor's
            # discovery key, own rank); src is lane-major
            # discovery-ordered, so (src, rank) sorts all three.
            widx = widx[np.lexsort((cxr[widx], src[widx]))]
            wl, wx = cl[widx], cx[widx]
            visited[ck[widx]] = True
            lane_parts.append(wl)
            x_parts.append(wx)
            parent_parts.append(offset + src[widx])
            layers.append((total, total + len(widx), depth))
            fl, fv = wl, wx
            offset = total
            total += len(widx)
        lane = np.concatenate(lane_parts)
        xs = np.concatenate(x_parts)
        parent = np.concatenate(parent_parts)
        visited[xs * span + lane] = False
        # Witness-path tuples per layer: depth parent-pointer gathers of
        # the pre-boxed ids, zipped into (x, ..., root) rows in C.
        tup = np.empty(total, dtype=object)
        for s, e, depth in layers:
            cols = [idobj[xs[s:e]].tolist()]
            ptr = parent[s:e]
            for _step in range(depth):
                cols.append(idobj[xs[ptr]].tolist())
                ptr = parent[ptr]
            tup[s:e] = np.fromiter(zip(*cols, strict=True), dtype=object, count=e - s)
        yield base + lane, xs, tup


def wreach_sets_with_paths(
    g: Graph,
    order: LinearOrder,
    radius: int,
    *,
    adj: RankedAdjacency | None = None,
) -> tuple[list[list[int]], list[dict[int, tuple[int, ...]]]]:
    """WReach sets plus, for each ``(v, u)`` with u ∈ WReach[v], a path.

    ``paths[v][u]`` is a tuple ``(v, ..., u)`` of length at most
    ``radius + 1`` whose internal vertices are all L-greater than u and
    which is a shortest such path (BFS layers), with lexicographically
    least tie-breaking by L-rank — mirroring Algorithm 4's tie rule.

    This is the routing information Lemma 7 distributes; the sequential
    connectivity construction (Corollary 13) consumes it directly.
    Large graphs run the vectorized :func:`_batch_paths` sweep; small
    ones fall back to the epoch-stamped scalar kernel over the cached
    rank-sorted rows.  Both produce bit-identical output (pinned by the
    parity suite).
    """
    if g.n != order.n:
        raise OrderError("order size does not match graph")
    adj = _require_adj(g, order, adj)
    n = g.n
    if n == 0:
        return [], []
    if n <= _SMALL_N:
        return _small_paths(adj, radius)
    # Every vertex id is boxed exactly once; all list / tuple / dict
    # materialization below gathers these shared objects by pointer
    # (matching the scalar kernel, whose cached rows() lists gave it the
    # same property) instead of re-boxing ints per reached pair.
    idobj = np.fromiter(range(n), dtype=object, count=n)
    rr_parts, w_parts, tup_parts = [], [], []
    for rr, xs, tup in _batch_paths(adj, radius, idobj):
        rr_parts.append(rr)
        w_parts.append(xs)
        tup_parts.append(tup)
    w_all = np.concatenate(w_parts)
    rr_all = np.concatenate(rr_parts)
    # Group pairs by target vertex with roots ascending in rank — the
    # exact member order of the list representation.  The tuples ride
    # along as an object-array pointer permutation.
    sel = np.lexsort((rr_all, w_all))
    w_s = w_all[sel]
    u_list = idobj[adj.by_rank[rr_all[sel]]].tolist()
    tups = np.concatenate(tup_parts)[sel].tolist()
    offsets = np.searchsorted(w_s, np.arange(n + 1)).tolist()
    wreach = [u_list[a:b] for a, b in zip(offsets, offsets[1:], strict=False)]
    paths = []
    for w, a, b in zip(range(n), offsets, offsets[1:], strict=False):
        dct = dict(zip(u_list[a:b], tups[a:b], strict=True))
        del dct[w]  # the trivial (w, w) pair carries None
        paths.append(dct)
    return wreach, paths


def _small_paths(
    adj: RankedAdjacency, radius: int
) -> tuple[list[list[int]], list[dict[int, tuple[int, ...]]]]:
    """Scalar path kernel (small graphs): epoch-stamped visited/parent."""
    n = adj.n
    rows, row_ranks = adj.rows()
    by_rank = adj.by_rank.tolist()
    wreach: list[list[int]] = [[] for _ in range(n)]
    paths: list[dict[int, tuple[int, ...]]] = [dict() for _ in range(n)]
    # Epoch-stamped scratch, reused across all n roots: stamping with the
    # root's rank makes "visited in this root's BFS" one compare, with no
    # clearing between roots.
    visited = [-1] * n
    parent = [0] * n
    for i in range(n):
        u = by_rank[i]
        visited[u] = i
        parent[u] = u
        frontier = [u]
        reach = [u]
        for _depth in range(radius):
            nxt: list[int] = []
            for w in frontier:
                rr = row_ranks[w]
                # Eligible neighbors (rank > i) are a suffix of the
                # rank-sorted row; within it, ascending rank preserves
                # Algorithm 4's first-discovery tie-break.
                for x in rows[w][bisect_right(rr, i) :]:
                    if visited[x] != i:
                        visited[x] = i
                        parent[x] = w
                        nxt.append(x)
            if not nxt:
                break
            reach.extend(nxt)
            frontier = nxt
        for w in reach:
            wreach[w].append(u)
            if w == u:
                continue  # the trivial length-0 path is not stored
            path = [w]
            while path[-1] != u:
                path.append(parent[path[-1]])
            paths[w][u] = tuple(path)
    return wreach, paths


def wreach_sizes(
    g: Graph,
    order: LinearOrder,
    radius: int,
    *,
    adj: RankedAdjacency | None = None,
) -> np.ndarray:
    """``|WReach_radius[v]|`` per vertex (cheaper than materializing sets)."""
    adj = _require_adj(g, order, adj)
    if g.n <= _SMALL_N:
        return _small_sizes(adj, radius)
    sizes = np.zeros(g.n, dtype=np.int64)
    for _base, uv, _uw, vals in _iter_batches(adj, radius):
        heads = _group_heads(uv)
        sizes[uv[heads]] += np.add.reduceat(_popcounts(vals), heads)
    return sizes


def wcol_of_order(
    g: Graph,
    order: LinearOrder,
    radius: int,
    *,
    adj: RankedAdjacency | None = None,
) -> int:
    """``max_v |WReach_radius[G, L, v]|`` — the witnessed wcol bound.

    The true ``wcol_radius(G)`` is the minimum of this over all orders;
    any single order gives an upper bound, which is also the certified
    constant ``c`` in all of the paper's guarantees.
    """
    if g.n == 0:
        return 0
    return int(wreach_sizes(g, order, radius, adj=adj).max())
