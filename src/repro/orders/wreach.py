"""Weak reachability sets.

``WReach_r[G, L, v]`` is the set of vertices ``u`` such that some path of
length at most r connects v to u and u is the L-least vertex on that path.
Everything in the paper is driven by these sets:

* ``D = {min WReach_r[w] : w}`` is the dominating set (Theorem 5),
* ``X_v = {w : v in WReach_2r[w]}`` are the cover clusters (Theorem 4),
* ``c(r) = max_v |WReach_2r[v]|`` is the certified approximation ratio.

Computation uses the standard inversion: for each u in *increasing* L
order, run a BFS from u truncated at depth r and restricted to vertices
L-greater than u; every vertex w it reaches has ``u ∈ WReach_r[w]``.
This restricted BFS is exactly Algorithm 3 of the paper, and the overall
cost is ``O(sum_v |X_v| * avg_deg)`` — near-linear when wcol is bounded.
"""

from __future__ import annotations

from collections import deque
import numpy as np

from repro.errors import OrderError
from repro.graphs.graph import Graph
from repro.orders.linear_order import LinearOrder

__all__ = [
    "restricted_bfs",
    "wreach_sets",
    "wreach_sets_with_paths",
    "wreach_sizes",
    "wcol_of_order",
]


def restricted_bfs(g: Graph, order: LinearOrder, root: int, radius: int) -> list[int]:
    """Algorithm 3: BFS from ``root`` over vertices L-greater than root, depth <= r.

    Returns all visited vertices (including the root).  Every returned
    vertex ``w`` satisfies ``root ∈ WReach_r[G, L, w]`` — the path through
    L-greater vertices down to the root witnesses it.
    """
    rank = order.rank
    root_rank = rank[root]
    visited = {root}
    q: deque[tuple[int, int]] = deque([(root, 0)])
    out = [root]
    while q:
        w, dist = q.popleft()
        if dist >= radius:
            continue
        for u in g.neighbors(w):
            u = int(u)
            if rank[u] > root_rank and u not in visited:
                visited.add(u)
                out.append(u)
                q.append((u, dist + 1))
    return out


def wreach_sets(g: Graph, order: LinearOrder, radius: int) -> list[list[int]]:
    """``WReach_radius[G, L, v]`` for every v, each list sorted by L-rank.

    ``v`` itself is always a member (paths of length 0).
    """
    if g.n != order.n:
        raise OrderError("order size does not match graph")
    wreach: list[list[int]] = [[] for _ in range(g.n)]
    for i in range(g.n):
        u = int(order.by_rank[i])
        for w in restricted_bfs(g, order, u, radius):
            wreach[w].append(u)
    return wreach


def wreach_sets_with_paths(
    g: Graph, order: LinearOrder, radius: int
) -> tuple[list[list[int]], list[dict[int, tuple[int, ...]]]]:
    """WReach sets plus, for each ``(v, u)`` with u ∈ WReach[v], a path.

    ``paths[v][u]`` is a tuple ``(v, ..., u)`` of length at most
    ``radius + 1`` whose internal vertices are all L-greater than u and
    which is a shortest such path (BFS layers), with lexicographically
    least tie-breaking by L-rank — mirroring Algorithm 4's tie rule.

    This is the routing information Lemma 7 distributes; the sequential
    connectivity construction (Corollary 13) consumes it directly.
    """
    if g.n != order.n:
        raise OrderError("order size does not match graph")
    rank = order.rank
    wreach: list[list[int]] = [[] for _ in range(g.n)]
    paths: list[dict[int, tuple[int, ...]]] = [dict() for _ in range(g.n)]
    for i in range(g.n):
        u = int(order.by_rank[i])
        # BFS with parent tracking; explore neighbors in ascending rank so
        # the first discovery is the lexicographically least shortest path.
        parent: dict[int, int] = {u: u}
        q: deque[tuple[int, int]] = deque([(u, 0)])
        reach = [u]
        while q:
            w, dist = q.popleft()
            if dist >= radius:
                continue
            nbrs = sorted((int(x) for x in g.neighbors(w)), key=lambda x: rank[x])
            for x in nbrs:
                if rank[x] > rank[u] and x not in parent:
                    parent[x] = w
                    reach.append(x)
                    q.append((x, dist + 1))
        for w in reach:
            wreach[w].append(u)
            if w == u:
                continue  # the trivial length-0 path is not stored
            path = [w]
            while path[-1] != u:
                path.append(parent[path[-1]])
            paths[w][u] = tuple(path)
    return wreach, paths


def wreach_sizes(g: Graph, order: LinearOrder, radius: int) -> np.ndarray:
    """``|WReach_radius[v]|`` per vertex (cheaper than materializing sets)."""
    sizes = np.zeros(g.n, dtype=np.int64)
    for i in range(g.n):
        u = int(order.by_rank[i])
        for w in restricted_bfs(g, order, u, radius):
            sizes[w] += 1
    return sizes


def wcol_of_order(g: Graph, order: LinearOrder, radius: int) -> int:
    """``max_v |WReach_radius[G, L, v]|`` — the witnessed wcol bound.

    The true ``wcol_radius(G)`` is the minimum of this over all orders;
    any single order gives an upper bound, which is also the certified
    constant ``c`` in all of the paper's guarantees.
    """
    if g.n == 0:
        return 0
    return int(wreach_sizes(g, order, radius).max())
