"""Exact weak coloring numbers for tiny graphs (test oracle).

``wcol_r(G) = min over all n! orders of max_v |WReach_r[G, L, v]|`` is
the quantity every heuristic order upper-bounds.  For n <= 8 we compute
it exactly by enumeration with a simple prefix pruning bound, giving an
independent oracle: heuristic c values must be >= the exact optimum and
should be close to it on the tiny instances the property tests draw.
"""

from __future__ import annotations

from itertools import permutations

from repro.errors import OrderError
from repro.graphs.graph import Graph
from repro.orders.linear_order import LinearOrder
from repro.orders.wreach import wreach_sizes

__all__ = ["exact_wcol", "EXACT_WCOL_LIMIT"]

#: Enumeration guard (8! = 40320 orders).
EXACT_WCOL_LIMIT = 8


def exact_wcol(g: Graph, radius: int) -> tuple[int, LinearOrder]:
    """The exact ``wcol_radius`` and one optimal order.

    Raises :class:`OrderError` for graphs above :data:`EXACT_WCOL_LIMIT`
    vertices.
    """
    if g.n > EXACT_WCOL_LIMIT:
        raise OrderError(f"exact wcol limited to n <= {EXACT_WCOL_LIMIT}")
    if radius < 0:
        raise OrderError("radius must be >= 0")
    if g.n == 0:
        return 0, LinearOrder.identity(0)
    best_val = g.n + 1
    best_order = LinearOrder.identity(g.n)
    for perm in permutations(range(g.n)):
        order = LinearOrder.from_sequence(perm)
        val = int(wreach_sizes(g, order, radius).max())
        if val < best_val:
            best_val = val
            best_order = order
            if best_val == 1:
                break
    return best_val, best_order
