"""Linear orders, generalized coloring numbers, weak reachability."""

from repro.orders.linear_order import LinearOrder
from repro.orders.degeneracy import degeneracy_order
from repro.orders.fraternal import fraternal_augmentation_order
from repro.orders.wreach import (
    RankedAdjacency,
    WReachCSR,
    wreach_csr,
    wreach_sets,
    wreach_sets_with_paths,
    wcol_of_order,
    wreach_sizes,
)
from repro.orders.heuristics import random_order, identity_order, sort_by_wreach_order

__all__ = [
    "LinearOrder",
    "RankedAdjacency",
    "WReachCSR",
    "degeneracy_order",
    "fraternal_augmentation_order",
    "wreach_csr",
    "wreach_sets",
    "wreach_sets_with_paths",
    "wcol_of_order",
    "wreach_sizes",
    "random_order",
    "identity_order",
    "sort_by_wreach_order",
]
