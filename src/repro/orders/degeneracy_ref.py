"""Reference smallest-last (degeneracy) peeling — the parity baseline.

This is the original bucketed min-degree loop, kept verbatim so the
flat-array kernel in :mod:`repro.orders.degeneracy` has a
definition-shaped implementation to be benchmarked and parity-tested
against (``tests/test_degeneracy.py`` pins the *exact* removal
sequence, because every order-derived golden value in the suite depends
on its tie-breaking).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph

__all__ = ["naive_smallest_last_sequence", "naive_core_numbers"]


def naive_smallest_last_sequence(g: Graph) -> tuple[list[int], int]:
    """Return (removal sequence, degeneracy) via bucketed min-degree peeling.

    Buckets use lazy deletion: a popped entry is valid only if the vertex
    is still present and its recorded degree matches the bucket index.
    Each vertex is re-inserted at most deg(v) times, so this is O(n + m).
    """
    n = g.n
    deg = g.degrees().astype(np.int64).copy()
    max_deg = int(deg.max()) if n else 0
    buckets: list[list[int]] = [[] for _ in range(max_deg + 1)]
    for v in range(n):
        buckets[int(deg[v])].append(v)
    removed = np.zeros(n, dtype=bool)
    seq: list[int] = []
    degeneracy = 0
    cur = 0
    for _ in range(n):
        v = -1
        while v < 0:
            while cur <= max_deg and not buckets[cur]:
                cur += 1
            x = buckets[cur].pop()
            if not removed[x] and deg[x] == cur:
                v = x
        removed[v] = True
        seq.append(v)
        degeneracy = max(degeneracy, int(deg[v]))
        for u in g.neighbors(v):
            u = int(u)
            if not removed[u]:
                deg[u] -= 1
                buckets[int(deg[u])].append(u)
                if deg[u] < cur:
                    cur = int(deg[u])
    return seq, degeneracy


def naive_core_numbers(g: Graph) -> np.ndarray:
    """k-core number of each vertex (max k with v in a k-core)."""
    n = g.n
    core = np.zeros(n, dtype=np.int64)
    seq, _ = naive_smallest_last_sequence(g)
    deg = g.degrees().astype(np.int64).copy()
    removed = np.zeros(n, dtype=bool)
    k = 0
    for v in seq:
        k = max(k, int(deg[v]))
        core[v] = k
        removed[v] = True
        for u in g.neighbors(v):
            u = int(u)
            if not removed[u]:
                deg[u] -= 1
    return core
