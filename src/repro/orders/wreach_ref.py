"""Naive reference implementation of the weak-reachability layer.

This module preserves the original pure-Python set/deque implementation
of ``WReach_r`` verbatim, under ``naive_*`` names.  It exists for two
reasons:

* the parity tests (``tests/test_wreach_kernel_parity.py``) assert that
  the flat-array kernels in :mod:`repro.orders.wreach` return *exactly*
  the same sets, sizes, wcol values, and path tie-breaks;
* the perf baseline (``benchmarks/bench_p1_kernel_perf.py``) times the
  flat kernels against this reference and records the speedups in
  ``BENCH_kernels.json``.

Do not optimize this module — its value is being the obviously-correct,
definition-shaped version of Algorithm 3/4.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import OrderError
from repro.graphs.graph import Graph
from repro.orders.linear_order import LinearOrder

__all__ = [
    "naive_restricted_bfs",
    "naive_wreach_sets",
    "naive_wreach_sets_with_paths",
    "naive_wreach_sizes",
    "naive_wcol_of_order",
]


def naive_restricted_bfs(g: Graph, order: LinearOrder, root: int, radius: int) -> list[int]:
    """Algorithm 3: BFS from ``root`` over vertices L-greater than root, depth <= r."""
    rank = order.rank
    root_rank = rank[root]
    visited = {root}
    q: deque[tuple[int, int]] = deque([(root, 0)])
    out = [root]
    while q:
        w, dist = q.popleft()
        if dist >= radius:
            continue
        for u in g.neighbors(w):
            u = int(u)
            if rank[u] > root_rank and u not in visited:
                visited.add(u)
                out.append(u)
                q.append((u, dist + 1))
    return out


def naive_wreach_sets(g: Graph, order: LinearOrder, radius: int) -> list[list[int]]:
    """``WReach_radius[G, L, v]`` for every v, each list sorted by L-rank."""
    if g.n != order.n:
        raise OrderError("order size does not match graph")
    wreach: list[list[int]] = [[] for _ in range(g.n)]
    for i in range(g.n):
        u = int(order.by_rank[i])
        for w in naive_restricted_bfs(g, order, u, radius):
            wreach[w].append(u)
    return wreach


def naive_wreach_sets_with_paths(
    g: Graph, order: LinearOrder, radius: int
) -> tuple[list[list[int]], list[dict[int, tuple[int, ...]]]]:
    """WReach sets plus lexicographically-least shortest witness paths."""
    if g.n != order.n:
        raise OrderError("order size does not match graph")
    rank = order.rank
    wreach: list[list[int]] = [[] for _ in range(g.n)]
    paths: list[dict[int, tuple[int, ...]]] = [dict() for _ in range(g.n)]
    for i in range(g.n):
        u = int(order.by_rank[i])
        # BFS with parent tracking; explore neighbors in ascending rank so
        # the first discovery is the lexicographically least shortest path.
        parent: dict[int, int] = {u: u}
        q: deque[tuple[int, int]] = deque([(u, 0)])
        reach = [u]
        while q:
            w, dist = q.popleft()
            if dist >= radius:
                continue
            nbrs = sorted((int(x) for x in g.neighbors(w)), key=lambda x: rank[x])
            for x in nbrs:
                if rank[x] > rank[u] and x not in parent:
                    parent[x] = w
                    reach.append(x)
                    q.append((x, dist + 1))
        for w in reach:
            wreach[w].append(u)
            if w == u:
                continue  # the trivial length-0 path is not stored
            path = [w]
            while path[-1] != u:
                path.append(parent[path[-1]])
            paths[w][u] = tuple(path)
    return wreach, paths


def naive_wreach_sizes(g: Graph, order: LinearOrder, radius: int) -> np.ndarray:
    """``|WReach_radius[v]|`` per vertex."""
    sizes = np.zeros(g.n, dtype=np.int64)
    for i in range(g.n):
        u = int(order.by_rank[i])
        for w in naive_restricted_bfs(g, order, u, radius):
            sizes[w] += 1
    return sizes


def naive_wcol_of_order(g: Graph, order: LinearOrder, radius: int) -> int:
    """``max_v |WReach_radius[G, L, v]|`` — the witnessed wcol bound."""
    if g.n == 0:
        return 0
    return int(naive_wreach_sizes(g, order, radius).max())
