"""Benchmark support: named workloads, result tables, harness helpers."""

from repro.bench.workloads import WORKLOADS, workload, Workload, scaling_family
from repro.bench.tables import Table
from repro.bench.harness import write_result

__all__ = ["WORKLOADS", "workload", "Workload", "scaling_family", "Table", "write_result"]
