"""Plain-text result tables for the experiment harness."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["Table"]


class Table:
    """A fixed-column table printed in EXPERIMENTS.md style."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([self._fmt(v) for v in values])

    @staticmethod
    def _fmt(v: Any) -> str:
        if isinstance(v, float):
            return f"{v:.3f}" if abs(v) < 100 else f"{v:.1f}"
        return str(v)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [f"== {self.title} =="]
        header = " | ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
