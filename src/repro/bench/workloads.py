"""Named workloads for the experiment suite.

Every experiment references instances by name so that EXPERIMENTS.md
rows are reproducible verbatim.  All instances are connected (largest
component extracted where the model can disconnect) because the
connected-dominating-set theorems assume connectivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.graphs import generators as gen
from repro.graphs import random_models as rm
from repro.graphs.components import largest_component
from repro.graphs.graph import Graph

__all__ = ["Workload", "WORKLOADS", "workload", "scaling_family"]


@dataclass(frozen=True)
class Workload:
    """A named benchmark instance."""

    name: str
    family: str
    build: Callable[[], Graph]
    planar: bool

    def graph(self) -> Graph:
        return self.build()


def _geometric_connected(n: int, seed: int) -> Graph:
    g, _ = rm.random_geometric(n, radius=None, seed=seed)
    h, _ = largest_component(g)
    return h


def _chung_lu_connected(n: int, seed: int) -> Graph:
    w = rm.power_law_weights(n, exponent=2.8, seed=seed)
    g = rm.chung_lu(w, seed=seed + 1)
    h, _ = largest_component(g)
    return h


WORKLOADS: dict[str, Workload] = {
    w.name: w
    for w in [
        Workload("grid16", "grid", lambda: gen.grid_2d(16, 16), True),
        Workload("grid24", "grid", lambda: gen.grid_2d(24, 24), True),
        Workload("tri16", "triangular grid", lambda: gen.triangular_grid(16, 16), True),
        Workload("hex16", "hex grid", lambda: gen.hex_grid(16, 24), True),
        Workload("torus12", "torus", lambda: gen.torus_2d(12, 12), False),
        Workload("king12", "king graph", lambda: gen.king_graph(12, 12), False),
        Workload("tree500", "random tree", lambda: rm.random_tree(500, seed=11), True),
        Workload(
            "delaunay400",
            "Delaunay",
            lambda: rm.delaunay_graph(400, seed=12)[0],
            True,
        ),
        Workload(
            "geometric600", "unit disk", lambda: _geometric_connected(600, 13), False
        ),
        Workload(
            "chunglu500", "Chung-Lu", lambda: _chung_lu_connected(500, 14), False
        ),
        Workload("ktree300", "3-tree", lambda: gen.k_tree(300, 3, seed=15), False),
        Workload(
            "outerplanar200",
            "outerplanar",
            lambda: gen.maximal_outerplanar(200, seed=16),
            True,
        ),
    ]
}


def workload(name: str) -> Workload:
    """Look up a named workload."""
    return WORKLOADS[name]


def scaling_family(family: str, sizes: list[int], seed: int = 21) -> list[tuple[int, Graph]]:
    """Instances of growing n for the scaling experiments (T3/T6/T7)."""
    out: list[tuple[int, Graph]] = []
    for n in sizes:
        if family == "grid":
            side = int(round(n**0.5))
            out.append((side * side, gen.grid_2d(side, side)))
        elif family == "delaunay":
            out.append((n, rm.delaunay_graph(n, seed=seed)[0]))
        elif family == "tree":
            out.append((n, rm.random_tree(n, seed=seed)))
        elif family == "ktree":
            out.append((n, gen.k_tree(n, 3, seed=seed)))
        else:
            raise KeyError(f"unknown scaling family {family!r}")
    return out
