"""Shared harness utilities for the benchmark scripts.

Each experiment writes its table both to stdout (visible with
``pytest -s`` / in failure reports) and to ``benchmarks/results/`` so
the numbers in EXPERIMENTS.md can be regenerated verbatim.  When the
experiment ran through the unified solver API it can pass its
:class:`~repro.api.types.SolveResult` objects via ``runs=`` and the
result file becomes self-describing: every run is recorded with its
registry solver name, instance parameters, and measured wall time —
both as a human-readable provenance block in the ``.txt`` table and as
a machine-readable ``<name>.runs.json`` sidecar using the shared
:meth:`~repro.api.types.SolveResult.to_dict` schema (the same one
``SolveResult.from_json`` reads back and future service responses use).
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable

from repro.bench.tables import Table

__all__ = [
    "write_result", "render_runs", "peak_rss_kb", "reset_peak_rss",
    "RESULTS_DIR",
]

RESULTS_DIR = pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def peak_rss_kb() -> int | None:
    """This process's peak resident set size, in KiB.

    Prefers ``VmHWM`` from ``/proc/self/status``: unlike
    ``ru_maxrss`` — which Linux carries over ``exec``, so a subprocess
    spawned from a fat parent starts life reporting the *parent's*
    peak — ``VmHWM`` belongs to this process alone and can be reset
    (:func:`reset_peak_rss`).  Falls back to ``getrusage`` elsewhere
    (normalized to KiB; bytes on macOS) and returns ``None`` where
    neither source exists.  The counter is a high-water mark: for
    per-instance numbers, run each instance in a fresh subprocess —
    see ``bench_p1_kernel_perf.py --large``.
    """
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource
        import sys
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - bytes on macOS
        rss //= 1024
    return int(rss)


def reset_peak_rss() -> bool:
    """Reset this process's RSS high-water mark (Linux; best-effort).

    Writing ``5`` to ``/proc/self/clear_refs`` zeroes ``VmHWM`` so a
    measurement window can start from the current footprint instead of
    the lifetime (or inherited) peak.  Returns whether the reset took.
    """
    try:
        with open("/proc/self/clear_refs", "w") as fh:
            fh.write("5")
        return True
    except OSError:  # pragma: no cover - non-Linux / restricted procfs
        return False


def render_runs(runs: Iterable) -> str:
    """Per-run provenance block from :class:`SolveResult` objects."""
    lines = ["runs (solver, r, |D|, wall time):"]
    for res in runs:
        rounds = f", {res.rounds} rounds" if res.rounds is not None else ""
        lines.append(
            f"  {res.algorithm:22} r={res.radius}  |D|={res.size:5d}"
            f"  {res.wall_time_s * 1e3:9.2f} ms{rounds}"
        )
    total = sum(res.wall_time_s for res in runs)
    lines.append(f"  {'total':22} {'':12} {total * 1e3:16.2f} ms")
    return "\n".join(lines)


def write_result(name: str, *tables: Table, runs: Iterable | None = None) -> str:
    """Render tables (+ optional run provenance), print, persist.

    ``runs`` is any iterable of :class:`~repro.api.types.SolveResult`;
    the rendered file then records which registered solver produced
    each row and how long it took, so ``benchmarks/results/*.txt`` can
    be interpreted without consulting the generating script, and the
    full results land in ``<name>.runs.json`` in the shared
    ``SolveResult`` JSON schema for programmatic readers.  Each row is
    additionally stamped with ``peak_rss_kb`` — the generating
    process's peak RSS at write time — so every benchmark series
    carries memory provenance for free (``SolveResult.from_dict``
    ignores the extra key).
    """
    runs = list(runs) if runs is not None else []
    parts = [t.render() for t in tables]
    if runs:
        parts.append(render_runs(runs))
    text = "\n\n".join(parts)
    print(f"\n{text}\n")
    try:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        if runs:
            rss = peak_rss_kb()
            rows = [dict(res.to_dict(), peak_rss_kb=rss) for res in runs]
            payload = json.dumps(rows, indent=2)
            (RESULTS_DIR / f"{name}.runs.json").write_text(payload + "\n")
    except OSError:  # pragma: no cover - read-only checkouts still print
        pass
    return text
