"""Shared harness utilities for the benchmark scripts.

Each experiment writes its table both to stdout (visible with
``pytest -s`` / in failure reports) and to ``benchmarks/results/`` so
the numbers in EXPERIMENTS.md can be regenerated verbatim.
"""

from __future__ import annotations

import pathlib

from repro.bench.tables import Table

__all__ = ["write_result", "RESULTS_DIR"]

RESULTS_DIR = pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def write_result(name: str, *tables: Table) -> str:
    """Render tables, print them, persist them; returns the rendered text."""
    text = "\n\n".join(t.render() for t in tables)
    print(f"\n{text}\n")
    try:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    except OSError:  # pragma: no cover - read-only checkouts still print
        pass
    return text
