"""Pass 3 — registry and cache discipline (rules R301-R302).

The solver registry's :class:`~repro.api.types.SolverCapabilities` is
what lets the façade reject unsupported requests *before* running
anything — but only if the declaration matches what the adapter body
actually does.  This pass cross-checks each ``@register_solver`` entry
against its function body:

* **R301** — capability/request mismatches:

  - the adapter reads a field that does not exist on
    :class:`~repro.api.types.SolveRequest` (typo guard — frozen
    dataclasses raise only at runtime);
  - the adapter reads ``req.engine`` / calls ``req.resolve_engine``
    while declaring no ``engines`` (the façade will never validate an
    engine choice for it);
  - the adapter declares two or more engines but never consults
    ``req.engine``/``req.resolve_engine`` (the declared choice is a
    lie — requests asking for the non-default engine would silently
    run on the wrong path).  Single-engine solvers may ignore the
    field: the façade's upfront ``resolve_engine`` already rejects
    anything else.

* **R302** — :class:`~repro.api.cache.PrecomputeCache` must be used
  through its typed category API (``order``, ``wreach_csr``, ...).
  Touching ``_tables``/``_store`` or any undeclared attribute bypasses
  the memoization/persistence contract (stats, LRU bounds, store
  write-through) that the workspace tests pin down.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.framework import (
    SEVERITY_ERROR,
    Finding,
    ParsedModule,
    Rule,
)

__all__ = ["RULES", "check"]

RULES: dict[str, Rule] = {
    "R301": Rule(
        "R301", SEVERITY_ERROR,
        "declared SolverCapabilities disagree with the request fields read",
    ),
    "R302": Rule(
        "R302", SEVERITY_ERROR,
        "PrecomputeCache accessed outside the typed category API",
    ),
}

#: Fields and methods of SolveRequest (repro/api/types.py).
REQUEST_FIELDS = frozenset(
    {"graph", "radius", "algorithm", "order_strategy", "connect", "prune",
     "certify", "with_lp", "validate", "seed", "engine", "params",
     "resolve_engine", "graph_key", "resolved"}
)

#: The public surface of PrecomputeCache (repro/api/cache.py).
CACHE_PUBLIC_API = frozenset(
    {"order", "rank_adjacency", "wreach_csr", "wreach", "wreach_sizes",
     "wcol", "distributed_order", "stats", "clear", "store",
     "RADIUS_FREE_STRATEGIES"}
)

#: Attributes that are cache internals wherever they appear.
_CACHE_INTERNALS = frozenset({"_tables", "_store"})


def _decorator_call(fn: ast.FunctionDef) -> ast.Call | None:
    for deco in fn.decorator_list:
        if isinstance(deco, ast.Call):
            name = (
                deco.func.id if isinstance(deco.func, ast.Name)
                else deco.func.attr if isinstance(deco.func, ast.Attribute)
                else ""
            )
            if name == "register_solver":
                return deco
    return None


def _module_assignments(module: ParsedModule) -> dict[str, ast.expr]:
    out: dict[str, ast.expr] = {}
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign):
            for t in stmt.targets:
                if isinstance(t, ast.Name):
                    out[t.id] = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                out[stmt.target.id] = stmt.value
    return out


def _capabilities_expr(
    deco: ast.Call, assignments: dict[str, ast.expr]
) -> ast.Call | None:
    """The ``SolverCapabilities(...)`` call of a registration, if findable."""
    expr: ast.expr | None = None
    if len(deco.args) >= 2:
        expr = deco.args[1]
    else:
        for kw in deco.keywords:
            if kw.arg == "capabilities":
                expr = kw.value
    if isinstance(expr, ast.Name):
        expr = assignments.get(expr.id)
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, (ast.Name, ast.Attribute))
    ):
        name = (
            expr.func.id if isinstance(expr.func, ast.Name) else expr.func.attr
        )
        if name == "SolverCapabilities":
            return expr
    return None


def _declared_engines(caps: ast.Call) -> tuple[str, ...] | None:
    """Engine names from the ``engines=(...)`` keyword; None = unparsable."""
    for kw in caps.keywords:
        if kw.arg != "engines":
            continue
        if isinstance(kw.value, (ast.Tuple, ast.List)):
            names = []
            for elt in kw.value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    names.append(elt.value)
                else:
                    return None
            return tuple(names)
        return None
    return ()


def _check_registrations(module: ParsedModule) -> Iterator[Finding]:
    assignments = _module_assignments(module)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        deco = _decorator_call(node)
        if deco is None:
            continue
        solver = (
            deco.args[0].value
            if deco.args and isinstance(deco.args[0], ast.Constant)
            else node.name
        )
        params = node.args.posonlyargs + node.args.args
        if not params:
            continue
        req = params[0].arg
        reads: set[str] = set()
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == req
            ):
                reads.add(sub.attr)
                if sub.attr not in REQUEST_FIELDS:
                    yield Finding(
                        rule=RULES["R301"], path=module.path,
                        line=sub.lineno, col=sub.col_offset,
                        message=(
                            f"solver {solver!r} reads {req}.{sub.attr}, "
                            f"which is not a SolveRequest field"
                        ),
                    )
        caps = _capabilities_expr(deco, assignments)
        if caps is None:
            continue  # capabilities built dynamically; nothing to check
        engines = _declared_engines(caps)
        if engines is None:
            continue
        uses_engine = bool(reads & {"engine", "resolve_engine"})
        if uses_engine and not engines:
            yield Finding(
                rule=RULES["R301"], path=module.path,
                line=node.lineno, col=node.col_offset,
                message=(
                    f"solver {solver!r} consults the request engine but "
                    f"declares no engines; the façade cannot validate "
                    f"engine choices it does not know about"
                ),
            )
        elif len(engines) >= 2 and not uses_engine:
            yield Finding(
                rule=RULES["R301"], path=module.path,
                line=node.lineno, col=node.col_offset,
                message=(
                    f"solver {solver!r} declares engines {engines} but "
                    f"never reads req.engine/req.resolve_engine; requests "
                    f"for the non-default engine would silently run on "
                    f"the wrong path"
                ),
            )


def _cache_param_names(fn: ast.FunctionDef) -> set[str]:
    names: set[str] = set()
    for a in fn.args.posonlyargs + fn.args.args + fn.args.kwonlyargs:
        ann = a.annotation
        label = ""
        if isinstance(ann, ast.Name):
            label = ann.id
        elif isinstance(ann, ast.Attribute):
            label = ann.attr
        elif isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            label = ann.value.rsplit(".", 1)[-1]
        if label == "PrecomputeCache":
            names.add(a.arg)
    return names


def _check_cache_discipline(module: ParsedModule) -> Iterator[Finding]:
    path = module.path.replace("\\", "/")
    if path.endswith("repro/api/cache.py"):
        return  # the defining module owns its internals
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        cache_names = _cache_param_names(node)
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Attribute):
                continue
            base = sub.value
            base_is_self = isinstance(base, ast.Name) and base.id == "self"
            if sub.attr in _CACHE_INTERNALS and not base_is_self:
                yield Finding(
                    rule=RULES["R302"], path=module.path,
                    line=sub.lineno, col=sub.col_offset,
                    message=(
                        f"{ast.unparse(base)}.{sub.attr} bypasses the "
                        f"PrecomputeCache category API; use the typed "
                        f"accessors (order, wreach_csr, ...)"
                    ),
                )
            elif (
                isinstance(base, ast.Name)
                and base.id in cache_names
                and sub.attr not in CACHE_PUBLIC_API
            ):
                yield Finding(
                    rule=RULES["R302"], path=module.path,
                    line=sub.lineno, col=sub.col_offset,
                    message=(
                        f"{base.id}.{sub.attr} is not part of the "
                        f"PrecomputeCache public API "
                        f"({', '.join(sorted(CACHE_PUBLIC_API))})"
                    ),
                )


def check(module: ParsedModule) -> Iterator[Finding]:
    yield from _check_registrations(module)
    yield from _check_cache_discipline(module)
