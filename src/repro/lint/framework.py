"""Rule framework for :mod:`repro.lint`.

The checker is organized as *passes* over parsed modules.  A pass is a
function ``check(module: ParsedModule) -> Iterable[Finding]`` together
with a ``RULES`` table describing the rule ids it can emit.  This module
provides everything around the passes:

* :class:`Rule` / :class:`Finding` — the typed vocabulary;
* :class:`ParsedModule` — source + AST with parent links, shared by all
  passes so each file is parsed once;
* suppression handling — a finding on line L is silenced by an inline
  comment on that line::

      risky_thing()  # reprolint: ignore[<RULE>] -- why this is sound

  (with ``<RULE>`` a real rule id).  The justification after ``--`` is
  *mandatory*: a bare ``ignore[<RULE>]`` is itself reported (``LNT001``),
  so every accepted exception in the tree documents why it is sound.
  Suppressions that match no finding are reported as warnings
  (``LNT002``) so they cannot rot silently.
* reporting — human-readable text and a stable JSON schema (the CI
  artifact), plus the exit-code policy: unsuppressed *errors* fail the
  run, warnings never do.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

__all__ = [
    "Rule",
    "Finding",
    "ParsedModule",
    "Suppression",
    "LintReport",
    "META_RULES",
    "parse_module",
    "parse_suppressions",
    "apply_suppressions",
    "lint_source",
    "lint_paths",
    "iter_python_files",
]

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True)
class Rule:
    """One checkable property: stable id, severity, one-line summary."""

    id: str
    severity: str
    summary: str


@dataclass
class Finding:
    """One rule violation at a source location."""

    rule: Rule
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False

    @property
    def rule_id(self) -> str:
        return self.rule.id

    @property
    def severity(self) -> str:
        return self.rule.severity

    def render(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule.id} [{self.rule.severity}] {self.message}{tag}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule.id,
            "severity": self.rule.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
        }


#: Rules of the framework itself (suppression discipline + parse errors).
META_RULES: dict[str, Rule] = {
    "LNT001": Rule(
        "LNT001",
        SEVERITY_ERROR,
        "suppression comment lacks a justification (use `-- why`)",
    ),
    "LNT002": Rule(
        "LNT002",
        SEVERITY_WARNING,
        "suppression matches no finding (stale or unknown rule id)",
    ),
    "LNT003": Rule("LNT003", SEVERITY_ERROR, "file does not parse"),
}


@dataclass
class ParsedModule:
    """One source file, parsed once and shared by every pass."""

    path: str
    source: str
    lines: list[str]
    tree: ast.Module

    @classmethod
    def parse(cls, source: str, path: str) -> "ParsedModule":
        tree = ast.parse(source)
        # Parent links: passes need "is this expression an argument of
        # sorted()?"-style questions, which the ast module does not
        # answer on its own.
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                child.lint_parent = parent  # type: ignore[attr-defined]
        return cls(path=path, source=source, lines=source.splitlines(), tree=tree)

    def parents(self, node: ast.AST) -> Iterator[ast.AST]:
        """The chain of enclosing AST nodes, innermost first."""
        while True:
            parent = getattr(node, "lint_parent", None)
            if parent is None:
                return
            yield parent
            node = parent


def parse_module(source: str, path: str) -> ParsedModule:
    return ParsedModule.parse(source, path)


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*ignore\[([A-Za-z0-9_,\s]+)\]"
    r"(?:\s*--\s*(\S.*?))?\s*$"
)


@dataclass
class Suppression:
    """One ``# reprolint: ignore[...]`` comment."""

    line: int
    rules: tuple[str, ...]
    justification: str
    used: set = field(default_factory=set)  # rule ids that matched


def parse_suppressions(lines: list[str]) -> dict[int, Suppression]:
    """Map line number (1-based) -> suppression on that line."""
    out: dict[int, Suppression] = {}
    for i, text in enumerate(lines, start=1):
        m = _SUPPRESS_RE.search(text)
        if m is None:
            continue
        rules = tuple(
            r.strip() for r in m.group(1).split(",") if r.strip()
        )
        out[i] = Suppression(
            line=i, rules=rules, justification=(m.group(2) or "").strip()
        )
    return out


def apply_suppressions(
    findings: list[Finding],
    suppressions: dict[int, Suppression],
    path: str,
) -> list[Finding]:
    """Mark suppressed findings; append the framework's meta findings."""
    for f in findings:
        sup = suppressions.get(f.line)
        if sup is not None and f.rule.id in sup.rules:
            f.suppressed = True
            sup.used.add(f.rule.id)
    out = list(findings)
    for sup in suppressions.values():
        if not sup.justification:
            out.append(
                Finding(
                    rule=META_RULES["LNT001"],
                    path=path,
                    line=sup.line,
                    col=0,
                    message=(
                        f"suppression of {', '.join(sup.rules)} has no "
                        f"justification; write "
                        f"`# reprolint: ignore[...] -- why this is sound`"
                    ),
                )
            )
        unused = [r for r in sup.rules if r not in sup.used]
        if unused:
            out.append(
                Finding(
                    rule=META_RULES["LNT002"],
                    path=path,
                    line=sup.line,
                    col=0,
                    message=(
                        f"suppression of {', '.join(unused)} matches no "
                        f"finding on this line"
                    ),
                )
            )
    out.sort(key=lambda f: (f.line, f.col, f.rule.id))
    return out


# ---------------------------------------------------------------------------
# Running
# ---------------------------------------------------------------------------
PassFn = Callable[[ParsedModule], Iterable[Finding]]


def lint_source(
    source: str, path: str, passes: Iterable[PassFn]
) -> list[Finding]:
    """All findings (suppressed ones included, marked) for one file."""
    try:
        module = ParsedModule.parse(source, path)
    except SyntaxError as exc:
        return [
            Finding(
                rule=META_RULES["LNT003"],
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
            )
        ]
    findings: list[Finding] = []
    for check in passes:
        findings.extend(check(module))
    return apply_suppressions(
        findings, parse_suppressions(module.lines), path
    )


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``*.py`` files."""
    seen: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates = sorted(p.rglob("*.py"))
        else:
            candidates = [p]
        for c in candidates:
            if any(part.startswith(".") for part in c.parts):
                continue
            if c not in seen:
                seen.add(c)
                yield c


@dataclass
class LintReport:
    """Everything one ``repro lint`` invocation produced."""

    findings: list[Finding]
    files_checked: int

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.active if f.severity == SEVERITY_ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.active if f.severity == SEVERITY_WARNING]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": 1,
            "files_checked": self.files_checked,
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "suppressed": sum(1 for f in self.findings if f.suppressed),
            },
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self, **kwargs: Any) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    def render_text(self, show_suppressed: bool = False) -> str:
        shown = [
            f for f in self.findings if show_suppressed or not f.suppressed
        ]
        lines = [f.render() for f in shown]
        lines.append(
            f"{self.files_checked} files checked: "
            f"{len(self.errors)} errors, {len(self.warnings)} warnings, "
            f"{sum(1 for f in self.findings if f.suppressed)} suppressed"
        )
        return "\n".join(lines)


def lint_paths(paths: Iterable[str], passes: Iterable[PassFn]) -> LintReport:
    """Lint every python file under ``paths``."""
    passes = list(passes)
    findings: list[Finding] = []
    count = 0
    for file in iter_python_files(paths):
        count += 1
        findings.extend(
            lint_source(file.read_text(encoding="utf-8"), str(file), passes)
        )
    return LintReport(findings=findings, files_checked=count)
