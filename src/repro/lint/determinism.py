"""Pass 2 — determinism hazards (rules D201-D204).

The repo's parity invariant is *bit-identical* outputs, round counts,
and traffic statistics between the per-node and batch engines (and
across repeat runs).  That only holds if no protocol lets an
unspecified iteration order or an unstable key leak into what it sends
or outputs:

* **D201** — iterating a ``set``/``frozenset`` inside an algorithm
  class where the order can feed an emission or output.  Set order is
  arbitrary; route through ``sorted(...)`` or an order-insensitive
  reduction (``min``/``max``/``sum``/``any``/``all``).
* **D202** — iterating a ``dict`` (``.items()``/``.keys()``/
  ``.values()`` or a known dict object) in algorithm code.  Dicts are
  insertion-ordered, and *insertion order differs between the per-node
  and batch engines* — exactly the cross-engine hazard.  Same escape
  hatches as D201; genuinely order-independent loops (e.g. a strict
  minimum over unique keys) take a justified suppression.
* **D203** — unseeded randomness: any ``random.*`` module call, the
  legacy ``np.random.*`` module API, or ``default_rng()`` without a
  seed.  Randomized protocols must derive every draw from an explicit
  seed (``np.random.default_rng(seed)``, ``random.Random(seed)``).
* **D204** — ``id(...)`` used anywhere: CPython object identity
  differs between runs and processes, so id-derived keys or orderings
  are unreproducible by construction.  Sound uses (e.g. an identity
  memo that holds a strong reference and never orders by it) take a
  justified suppression.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.common import (
    algorithm_classes,
    in_order_safe_position,
    mutable_ctor_name,
)
from repro.lint.framework import (
    SEVERITY_ERROR,
    Finding,
    ParsedModule,
    Rule,
)

__all__ = ["RULES", "check"]

RULES: dict[str, Rule] = {
    "D201": Rule(
        "D201", SEVERITY_ERROR,
        "set iteration order can feed an emission or output",
    ),
    "D202": Rule(
        "D202", SEVERITY_ERROR,
        "dict iteration order can feed an emission or output",
    ),
    "D203": Rule("D203", SEVERITY_ERROR, "unseeded random source"),
    "D204": Rule(
        "D204", SEVERITY_ERROR,
        "id()-derived value (object identity is not reproducible)",
    ),
}

_DICT_METHODS = frozenset({"items", "keys", "values"})
#: Legacy ``random`` module members that are fine: explicitly seeded
#: generator constructors.
_RANDOM_OK = frozenset({"Random", "SystemRandom"})
#: ``np.random`` members that are fine (seeded-by-argument APIs).
_NP_RANDOM_OK = frozenset({"default_rng", "SeedSequence", "Generator",
                           "PCG64", "Philox", "BitGenerator"})


def _container_kind(value: ast.expr) -> str | None:
    """"set" / "dict" when ``value`` statically builds one, else None."""
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    ctor = mutable_ctor_name(value)
    if ctor in ("set",):
        return "set"
    if ctor in ("dict", "defaultdict", "OrderedDict", "Counter"):
        return "dict"
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id == "frozenset"
    ):
        return "set"
    return None


def _typed_names(scope: ast.AST) -> tuple[dict[str, str], dict[str, str]]:
    """(local name -> kind, self attr -> kind) assignments in ``scope``."""
    locals_: dict[str, str] = {}
    attrs: dict[str, str] = {}
    for node in ast.walk(scope):
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        kind = _container_kind(value)
        if kind is None:
            continue
        for t in targets:
            if isinstance(t, ast.Name):
                locals_[t.id] = kind
            elif (
                isinstance(t, ast.Attribute)
                and isinstance(t.value, ast.Name)
                and t.value.id == "self"
            ):
                attrs[t.attr] = kind
    return locals_, attrs


def _iterated_kind(
    expr: ast.expr, locals_: dict[str, str], attrs: dict[str, str]
) -> str | None:
    """What iterating ``expr`` walks over: "set", "dict", or unknown."""
    direct = _container_kind(expr)
    if direct is not None:
        return direct
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
        if expr.func.attr in _DICT_METHODS and not expr.args:
            return "dict"
    if isinstance(expr, ast.Name):
        return locals_.get(expr.id)
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return attrs.get(expr.attr)
    return None


def _iteration_points(fn: ast.FunctionDef) -> Iterator[ast.expr]:
    for node in ast.walk(fn):
        if isinstance(node, ast.For):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                               ast.DictComp)):
            for gen in node.generators:
                yield gen.iter
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("tuple", "list")
            and node.args
        ):
            yield node.args[0]


def _check_iteration_order(module: ParsedModule) -> Iterator[Finding]:
    for cls in algorithm_classes(module):
        _, class_attrs = _typed_names(cls.node)
        for fn in cls.methods():
            locals_, _ = _typed_names(fn)
            reported: set[tuple[int, int]] = set()
            for expr in _iteration_points(fn):
                kind = _iterated_kind(expr, locals_, class_attrs)
                if kind is None:
                    continue
                if in_order_safe_position(module, expr):
                    continue
                key = (expr.lineno, expr.col_offset)
                if key in reported:
                    continue
                reported.add(key)
                rule = RULES["D201"] if kind == "set" else RULES["D202"]
                yield Finding(
                    rule=rule, path=module.path,
                    line=expr.lineno, col=expr.col_offset,
                    message=(
                        f"{cls.node.name}.{fn.name} iterates "
                        f"{ast.unparse(expr)} (a {kind}) where the order can "
                        f"reach an emission or output; wrap in sorted(...) "
                        f"or reduce order-insensitively"
                    ),
                )


def _random_import_aliases(module: ParsedModule) -> set[str]:
    """Names bound by ``from random import ...`` / ``from numpy.random
    import ...`` that draw without an explicit seed."""
    out: set[str] = set()
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ImportFrom):
            continue
        if node.module == "random":
            for alias in node.names:
                if alias.name not in _RANDOM_OK:
                    out.add(alias.asname or alias.name)
        elif node.module == "numpy.random":
            for alias in node.names:
                if alias.name not in _NP_RANDOM_OK:
                    out.add(alias.asname or alias.name)
    return out


def _check_random(module: ParsedModule) -> Iterator[Finding]:
    aliases = _random_import_aliases(module)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        has_args = bool(node.args or node.keywords)
        if isinstance(func, ast.Attribute):
            base = ast.unparse(func.value)
            if base == "random":
                if func.attr in _RANDOM_OK and has_args:
                    continue
                if func.attr == "SystemRandom":
                    continue
                yield Finding(
                    rule=RULES["D203"], path=module.path,
                    line=node.lineno, col=node.col_offset,
                    message=(
                        f"random.{func.attr}(...) draws from the shared, "
                        f"unseeded module generator; use "
                        f"random.Random(seed) and derive every draw from it"
                    ),
                )
            elif base in ("np.random", "numpy.random"):
                if func.attr in _NP_RANDOM_OK:
                    if func.attr == "default_rng" and not has_args:
                        yield Finding(
                            rule=RULES["D203"], path=module.path,
                            line=node.lineno, col=node.col_offset,
                            message=(
                                "default_rng() without a seed is entropy-"
                                "seeded; pass an explicit seed"
                            ),
                        )
                    continue
                yield Finding(
                    rule=RULES["D203"], path=module.path,
                    line=node.lineno, col=node.col_offset,
                    message=(
                        f"{base}.{func.attr}(...) is the legacy global-state "
                        f"numpy API; use np.random.default_rng(seed)"
                    ),
                )
        elif isinstance(func, ast.Name) and func.id in aliases:
            yield Finding(
                rule=RULES["D203"], path=module.path,
                line=node.lineno, col=node.col_offset,
                message=(
                    f"{func.id}(...) (imported from a random module) draws "
                    f"unseeded; use an explicit seeded generator"
                ),
            )


def _check_id_keys(module: ParsedModule) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
            and len(node.args) == 1
        ):
            yield Finding(
                rule=RULES["D204"], path=module.path,
                line=node.lineno, col=node.col_offset,
                message=(
                    f"id({ast.unparse(node.args[0])}) depends on CPython "
                    f"object identity, which differs between runs and "
                    f"engines; key by content (digest, vertex id) instead"
                ),
            )


def check(module: ParsedModule) -> Iterator[Finding]:
    yield from _check_iteration_order(module)
    yield from _check_random(module)
    yield from _check_id_keys(module)
