"""Pass 1 — locality/model conformance (rules M101-M105).

The paper's round and size guarantees are statements about the
LOCAL/CONGEST/CONGEST_BC models: a node knows its own id, its
neighbors' ids, ``n``, and the advice constants — nothing else — and
influences the rest of the graph only through messages.  The simulator
cannot cheaply enforce that at runtime (a Python method can reach
anywhere), so this pass enforces it statically over every
``NodeAlgorithm``/``BatchAlgorithm`` subclass:

* **M101** — attribute access on the context object outside the
  declared contract (``NodeContext``: ``node``, ``neighbors``, ``n``,
  ``advice``, ``neighbor_set``, ``degree``; ``BatchContext``: the CSR
  view plus ``advice``).
* **M102** — reaching into simulator internals: naming ``Network``
  inside algorithm code, or touching ``_``-private attributes of
  anything but ``self``.
* **M103** — touching a module-level mutable global from algorithm
  code (state shared *between nodes* outside the message channel).
* **M104** — mutable class-level attributes on an algorithm class
  (state shared between node instances of the same class).
* **M105** — emitting a payload that aliases mutable instance state
  (``return ("msg", self.buffer)``): the receiver could mutate the
  sender's state back through the alias, which no message channel
  permits.  Wrap in ``tuple(...)``/``sorted(...)`` or copy.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.common import (
    COPYING_CALLS,
    AlgorithmClass,
    algorithm_classes,
    ctx_param_name,
    is_mutable_value,
)
from repro.lint.framework import (
    SEVERITY_ERROR,
    Finding,
    ParsedModule,
    Rule,
)

__all__ = ["RULES", "check"]

RULES: dict[str, Rule] = {
    "M101": Rule(
        "M101", SEVERITY_ERROR,
        "context attribute outside the node-knowledge contract",
    ),
    "M102": Rule(
        "M102", SEVERITY_ERROR,
        "algorithm code reaches simulator internals",
    ),
    "M103": Rule(
        "M103", SEVERITY_ERROR,
        "algorithm code touches a module-level mutable global",
    ),
    "M104": Rule(
        "M104", SEVERITY_ERROR,
        "mutable class-level state shared between algorithm instances",
    ),
    "M105": Rule(
        "M105", SEVERITY_ERROR,
        "emitted payload aliases mutable instance state",
    ),
}

#: What a per-node algorithm may read off its context (node.py docs).
NODE_CTX_ATTRS = frozenset(
    {"node", "neighbors", "n", "advice", "neighbor_set", "degree"}
)
#: What a batch algorithm may read off its context (engine.py docs).
BATCH_CTX_ATTRS = frozenset(
    {"graph", "model", "n", "indptr", "indices", "degrees", "advice",
     "neighbor_counts", "fan_out"}
)


def _module_mutable_globals(module: ParsedModule) -> set[str]:
    names: set[str] = set()
    for stmt in module.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None or not is_mutable_value(value):
            continue
        for t in targets:
            if isinstance(t, ast.Name):
                names.add(t.id)
    return names


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


def _is_super_call(expr: ast.expr) -> bool:
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id == "super"
    )


def _check_method(
    module: ParsedModule,
    cls: AlgorithmClass,
    fn: ast.FunctionDef,
    mutable_globals: set[str],
) -> Iterator[Finding]:
    ctx = ctx_param_name(fn)
    allowed = NODE_CTX_ATTRS if cls.kind == "node" else BATCH_CTX_ATTRS
    where = f"{cls.node.name}.{fn.name}"
    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute):
            value = node.value
            if ctx is not None and isinstance(value, ast.Name) and value.id == ctx:
                if node.attr not in allowed:
                    yield Finding(
                        rule=RULES["M101"], path=module.path,
                        line=node.lineno, col=node.col_offset,
                        message=(
                            f"{where} reads {ctx}.{node.attr}, which is not "
                            f"part of the {cls.kind} contract "
                            f"(allowed: {', '.join(sorted(allowed))})"
                        ),
                    )
                continue
            if (
                node.attr.startswith("_")
                and not _is_dunder(node.attr)
                and not (isinstance(value, ast.Name) and value.id == "self")
                and not _is_super_call(value)
            ):
                yield Finding(
                    rule=RULES["M102"], path=module.path,
                    line=node.lineno, col=node.col_offset,
                    message=(
                        f"{where} touches private attribute "
                        f"{ast.unparse(value)}.{node.attr} — algorithm code "
                        f"must stay inside the message-passing contract"
                    ),
                )
        elif isinstance(node, ast.Name) and node.id == "Network":
            yield Finding(
                rule=RULES["M102"], path=module.path,
                line=node.lineno, col=node.col_offset,
                message=(
                    f"{where} references the Network simulator directly; "
                    f"nodes only see their context and inbox"
                ),
            )
        elif isinstance(node, ast.Name) and node.id in mutable_globals:
            yield Finding(
                rule=RULES["M103"], path=module.path,
                line=node.lineno, col=node.col_offset,
                message=(
                    f"{where} touches module-level mutable global "
                    f"{node.id!r} — cross-node state outside the message "
                    f"channel"
                ),
            )
        elif isinstance(node, ast.Global):
            yield Finding(
                rule=RULES["M103"], path=module.path,
                line=node.lineno, col=node.col_offset,
                message=(
                    f"{where} declares global {', '.join(node.names)} — "
                    f"cross-node state outside the message channel"
                ),
            )


def _check_class_state(
    module: ParsedModule, cls: AlgorithmClass
) -> Iterator[Finding]:
    for stmt in cls.node.body:
        value: ast.expr | None = None
        label = ""
        if isinstance(stmt, ast.Assign):
            value = stmt.value
            label = ", ".join(
                ast.unparse(t) for t in stmt.targets
            )
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value = stmt.value
            label = ast.unparse(stmt.target)
        if value is not None and is_mutable_value(value):
            yield Finding(
                rule=RULES["M104"], path=module.path,
                line=stmt.lineno, col=stmt.col_offset,
                message=(
                    f"class attribute {label!r} of {cls.node.name} is a "
                    f"mutable container shared by every node instance; "
                    f"initialize it per instance in __init__"
                ),
            )


def _call_name(call: ast.Call) -> str:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return ""


def _aliased_payload_attrs(
    expr: ast.expr, mutable_attrs: set[str]
) -> Iterator[ast.Attribute]:
    """``self.X`` references (X mutable) not behind a copying call."""

    def visit(node: ast.AST, guarded: bool) -> Iterator[ast.Attribute]:
        if isinstance(node, ast.Call):
            guarded = guarded or _call_name(node) in COPYING_CALLS
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in mutable_attrs
            and not guarded
        ):
            yield node
            return
        for child in ast.iter_child_nodes(node):
            yield from visit(child, guarded)

    yield from visit(expr, False)


def _check_payload_aliasing(
    module: ParsedModule, cls: AlgorithmClass
) -> Iterator[Finding]:
    if cls.kind != "node":
        return  # batch emissions are size accounting, not payload objects
    mutable_attrs = cls.mutable_self_attrs()
    if not mutable_attrs:
        return
    for fn in cls.emission_methods():
        for node in ast.walk(fn):
            if not (isinstance(node, ast.Return) and node.value is not None):
                continue
            for attr in _aliased_payload_attrs(node.value, mutable_attrs):
                yield Finding(
                    rule=RULES["M105"], path=module.path,
                    line=attr.lineno, col=attr.col_offset,
                    message=(
                        f"{cls.node.name}.{fn.name} emits self.{attr.attr}, "
                        f"a mutable container; a receiver could mutate the "
                        f"sender's state through the alias — send a copy "
                        f"(tuple(...), sorted(...), dict(...))"
                    ),
                )


def check(module: ParsedModule) -> Iterator[Finding]:
    mutable_globals = _module_mutable_globals(module)
    for cls in algorithm_classes(module):
        yield from _check_class_state(module, cls)
        yield from _check_payload_aliasing(module, cls)
        for fn in cls.methods():
            yield from _check_method(module, cls, fn, mutable_globals)
