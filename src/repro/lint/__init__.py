"""``repro.lint`` — static model-conformance and determinism checking.

Three AST passes over the codebase (run with ``python -m repro.lint
src/`` or ``repro lint src/``):

* :mod:`repro.lint.conformance` (M101-M105) — every
  ``NodeAlgorithm``/``BatchAlgorithm`` subclass stays inside the
  LOCAL/CONGEST/CONGEST_BC node contract;
* :mod:`repro.lint.determinism` (D201-D204) — nothing lets unordered
  iteration, unseeded randomness, or object identity leak into
  emissions/outputs (the static side of the bit-identical
  pernode/batch parity invariant);
* :mod:`repro.lint.registry_discipline` (R301-R302) — solver
  registrations match their bodies, and ``PrecomputeCache`` is only
  used through its typed API.

Findings are suppressed per line with
``# reprolint: ignore[<RULE>] -- justification`` (the justification is
mandatory; see :mod:`repro.lint.framework`).  The README's "Static
analysis" section documents every rule id.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.lint import conformance, determinism, registry_discipline
from repro.lint.framework import (
    META_RULES,
    Finding,
    LintReport,
    PassFn,
    Rule,
    lint_paths,
    lint_source,
)

__all__ = [
    "ALL_PASSES",
    "ALL_RULES",
    "Finding",
    "LintReport",
    "Rule",
    "lint_paths",
    "lint_source",
    "main",
    "run",
]

ALL_PASSES: tuple[PassFn, ...] = (
    conformance.check,
    determinism.check,
    registry_discipline.check,
)

ALL_RULES: dict[str, Rule] = {
    **conformance.RULES,
    **determinism.RULES,
    **registry_discipline.RULES,
    **META_RULES,
}


def run(paths: Sequence[str]) -> LintReport:
    """Lint ``paths`` with every pass (the programmatic entry point)."""
    return lint_paths(paths, ALL_PASSES)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST-based model-conformance, determinism, and registry-"
            "discipline checker (rules M1xx/D2xx/R3xx; see README "
            "'Static analysis')"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json is the CI artifact schema)",
    )
    parser.add_argument(
        "--output", metavar="FILE",
        help="also write the JSON report to FILE (any --format)",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="include suppressed findings in text output",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every rule id with severity and summary, then exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(ALL_RULES.values(), key=lambda r: r.id):
            print(f"{rule.id}  [{rule.severity:>7}]  {rule.summary}")
        return 0

    report = run(args.paths)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(report.to_json(indent=2))
            fh.write("\n")
    if args.format == "json":
        print(report.to_json(indent=2))
    else:
        print(report.render_text(show_suppressed=args.show_suppressed))
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
