"""Shared AST helpers for the lint passes.

The conformance and determinism passes both reason about *algorithm
classes* — subclasses of
:class:`~repro.distributed.node.NodeAlgorithm` (per-node protocols) and
:class:`~repro.distributed.engine.BatchAlgorithm` (structure-of-arrays
ports) — and about which expressions are statically known to be
mutable or unordered.  Those shared judgements live here so the two
passes cannot drift apart.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.lint.framework import ParsedModule

__all__ = [
    "AlgorithmClass",
    "algorithm_classes",
    "ctx_param_name",
    "is_mutable_value",
    "mutable_ctor_name",
    "ORDER_SAFE_SINKS",
    "in_order_safe_position",
    "base_name",
]

#: Method names that form the simulator's per-round protocol.  Emission
#: methods are the ones whose return value crosses the network.
PROTOCOL_METHODS = ("on_start", "on_round", "step", "output", "outputs")
EMISSION_METHODS = ("on_start", "on_round", "step")

#: Builtins whose result does not depend on the iteration order of
#: their argument — iterating an unordered container directly into one
#: of these is deterministic.
ORDER_SAFE_SINKS = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset"}
)

#: Calls that produce a *new* object, so the payload no longer aliases
#: sender state (receivers mutating the copy cannot corrupt the sender).
COPYING_CALLS = frozenset(
    {"tuple", "sorted", "frozenset", "list", "dict", "set", "str", "repr",
     "bytes", "len", "min", "max", "sum", "int", "float", "deepcopy", "copy"}
)

_MUTABLE_DISPLAYS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                     ast.SetComp)
_MUTABLE_CTORS = frozenset(
    {"list", "dict", "set", "defaultdict", "deque", "OrderedDict", "Counter",
     "bytearray"}
)


def base_name(expr: ast.expr) -> str:
    """The trailing identifier of a base-class expression."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return ""


@dataclass
class AlgorithmClass:
    """One NodeAlgorithm/BatchAlgorithm subclass found in a module."""

    node: ast.ClassDef
    kind: str  # "node" | "batch"

    def methods(self) -> Iterator[ast.FunctionDef]:
        for stmt in self.node.body:
            if isinstance(stmt, ast.FunctionDef):
                yield stmt

    def emission_methods(self) -> Iterator[ast.FunctionDef]:
        for fn in self.methods():
            if fn.name in EMISSION_METHODS:
                yield fn

    def mutable_self_attrs(self) -> set[str]:
        """Instance attributes assigned a mutable container anywhere."""
        attrs: set[str] = set()
        for node in ast.walk(self.node):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not is_mutable_value(value):
                continue
            for t in targets:
                if (
                    isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == "self"
                ):
                    attrs.add(t.attr)
        return attrs


def algorithm_classes(module: ParsedModule) -> Iterator[AlgorithmClass]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        bases = {base_name(b) for b in node.bases}
        if "NodeAlgorithm" in bases:
            yield AlgorithmClass(node=node, kind="node")
        elif "BatchAlgorithm" in bases:
            yield AlgorithmClass(node=node, kind="batch")


def ctx_param_name(fn: ast.FunctionDef) -> str | None:
    """The name of the context parameter of an algorithm method.

    Recognized by annotation (``NodeContext``/``BatchContext``), by the
    conventional name ``ctx``, or — for the protocol methods — by
    position (first parameter after ``self``).
    """
    params = fn.args.posonlyargs + fn.args.args
    for a in params:
        if a.annotation is not None:
            ann = base_name(a.annotation) if isinstance(
                a.annotation, (ast.Name, ast.Attribute)
            ) else ""
            if ann in ("NodeContext", "BatchContext"):
                return a.arg
    for a in params:
        if a.arg == "ctx":
            return a.arg
    if fn.name in ("on_start", "on_round", "outputs", "step"):
        rest = [a for a in params if a.arg != "self"]
        if rest:
            return rest[0].arg
    return None


def mutable_ctor_name(value: ast.expr) -> str | None:
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        if value.func.id in _MUTABLE_CTORS:
            return value.func.id
    return None


def is_mutable_value(value: ast.expr) -> bool:
    """Statically known to evaluate to a mutable container."""
    return isinstance(value, _MUTABLE_DISPLAYS) or (
        mutable_ctor_name(value) is not None
    )


def in_order_safe_position(module: ParsedModule, node: ast.AST) -> bool:
    """Is this iteration's result consumed order-insensitively?

    True when the iterated expression (or the comprehension it drives)
    is a direct argument of an :data:`ORDER_SAFE_SINKS` call
    (``sorted(s)``, ``min(d.values())``, ...) or drives a set
    comprehension (sets have no order to corrupt).  Dict comprehensions
    do NOT qualify: dicts remember insertion order, which is exactly
    the cross-engine hazard.
    """
    child = node
    for parent in module.parents(node):
        if isinstance(parent, ast.SetComp):
            return True
        if isinstance(parent, (ast.GeneratorExp, ast.ListComp)):
            # Keep climbing: a genexp/listcomp is only safe if *it* is
            # consumed by a safe sink.
            child = parent
            continue
        if isinstance(parent, ast.comprehension):
            child = parent
            continue
        if isinstance(parent, ast.BinOp):
            # Concatenation/arithmetic preserves elements; order only
            # matters at the ultimate consumer, so keep climbing.
            child = parent
            continue
        if isinstance(parent, ast.Call):
            func = parent.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else ""
            )
            if name in ORDER_SAFE_SINKS and child in parent.args:
                return True
            if name in ("list", "tuple") and parent.args and child is parent.args[0]:
                # Order-preserving conversion: safety is decided by the
                # ultimate consumer, so keep climbing.
                child = parent
                continue
            return False
        if isinstance(parent, ast.Compare):
            # Membership / equality tests don't observe order.
            return True
        return False
    return False
