"""Ground-truth validity checks.

Every algorithm output in the library is checked against these oracles in
tests; they are deliberately simple (multi-source BFS and set algebra)
so their own correctness is evident.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.covers import NeighborhoodCover
from repro.graphs.components import is_connected
from repro.graphs.graph import Graph
from repro.graphs.traversal import UNREACHED, ball, multi_source_distances

__all__ = [
    "undominated_vertices",
    "is_distance_r_dominating_set",
    "is_connected_distance_r_dominating_set",
    "validate_cover",
]


def undominated_vertices(g: Graph, candidates: Iterable[int], radius: int) -> np.ndarray:
    """Vertices at distance > radius from every candidate (sorted array)."""
    cand = list(set(int(v) for v in candidates))
    if not cand:
        return np.arange(g.n)
    dist = multi_source_distances(g, cand, max_dist=radius)
    return np.flatnonzero(dist == UNREACHED)


def is_distance_r_dominating_set(g: Graph, candidates: Iterable[int], radius: int) -> bool:
    """True iff ``N_radius[candidates] = V(G)``."""
    return len(undominated_vertices(g, candidates, radius)) == 0


def is_connected_distance_r_dominating_set(
    g: Graph, candidates: Iterable[int], radius: int
) -> bool:
    """Dominating *and* inducing a connected subgraph.

    For a disconnected input graph the check is applied per component:
    the candidate set restricted to each component must be connected in
    the induced subgraph and dominate that component.
    """
    cand = sorted(set(int(v) for v in candidates))
    if not is_distance_r_dominating_set(g, cand, radius):
        return False
    from repro.graphs.components import connected_components

    comp = connected_components(g)
    for c in np.unique(comp):
        members = [v for v in cand if comp[v] == c]
        if not members:
            return False  # a nonempty component must contain dominators
        sub, _ = g.subgraph(members)
        if not is_connected(sub):
            return False
    return True


def validate_cover(g: Graph, cover: NeighborhoodCover) -> list[str]:
    """All Theorem-4 cover properties; returns a list of violations (empty = valid)."""
    problems: list[str] = []
    r = cover.radius_param
    member_sets = {v: set(ms) for v, ms in cover.clusters.items()}
    for w in range(g.n):
        home = int(cover.home_cluster[w])
        if home not in member_sets:
            problems.append(f"vertex {w}: home cluster {home} missing")
            continue
        need = ball(g, w, r)
        missing = [int(x) for x in need if int(x) not in member_sets[home]]
        if missing:
            problems.append(f"vertex {w}: N_{r} not inside home cluster (missing {missing[:3]}...)")
    for v, members in cover.clusters.items():
        sub, _ = g.subgraph(members)
        if not is_connected(sub):
            problems.append(f"cluster {v} induces a disconnected subgraph")
            continue
        if len(members) > 1:
            from repro.graphs.traversal import graph_radius

            rad = graph_radius(sub)
            if rad > 2 * r:
                problems.append(f"cluster {v} has radius {rad} > {2 * r}")
    # Degree bookkeeping must match the cluster sets.
    degree = np.zeros(g.n, dtype=np.int64)
    for members in cover.clusters.values():
        for w in members:
            degree[w] += 1
    if not np.array_equal(degree, cover.degree_per_vertex):
        problems.append("degree_per_vertex inconsistent with clusters")
    return problems
