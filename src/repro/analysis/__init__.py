"""Validation and measurement helpers."""

from repro.analysis.validate import (
    is_distance_r_dominating_set,
    is_connected_distance_r_dominating_set,
    undominated_vertices,
    validate_cover,
)
from repro.analysis.stats import summarize_sizes, Summary

__all__ = [
    "is_distance_r_dominating_set",
    "is_connected_distance_r_dominating_set",
    "undominated_vertices",
    "validate_cover",
    "summarize_sizes",
    "Summary",
]
