"""Small statistics helpers shared by the bench harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = ["Summary", "summarize_sizes", "linear_fit"]


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float

    def row(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.2f} min={self.minimum:.2f} "
            f"p50={self.p50:.2f} p95={self.p95:.2f} max={self.maximum:.2f}"
        )


def summarize_sizes(values: Iterable[float]) -> Summary:
    """Summarize a nonempty sample."""
    arr = np.asarray(list(values), dtype=np.float64)
    if len(arr) == 0:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return Summary(
        count=len(arr),
        mean=float(arr.mean()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
    )


def linear_fit(x: Iterable[float], y: Iterable[float]) -> tuple[float, float, float]:
    """Least-squares fit ``y ~ a * x + b``; returns ``(a, b, r_squared)``.

    Used by T3/T6 to check round and runtime scaling shapes.
    """
    xa = np.asarray(list(x), dtype=np.float64)
    ya = np.asarray(list(y), dtype=np.float64)
    if len(xa) < 2:
        return 0.0, float(ya.mean()) if len(ya) else 0.0, 1.0
    a, b = np.polyfit(xa, ya, 1)
    pred = a * xa + b
    ss_res = float(((ya - pred) ** 2).sum())
    ss_tot = float(((ya - ya.mean()) ** 2).sum())
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return float(a), float(b), r2
