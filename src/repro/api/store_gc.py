"""Store lifecycle: advisory leases, LRU garbage collection, status.

:class:`~repro.api.store.ArtifactStore` is pure digest-keyed
persistence; this module adds the lifecycle machinery a *shared,
long-lived* store needs once many processes serve traffic over it:

* :class:`Lease` — per-graph-digest advisory lock files
  (``O_CREAT|O_EXCL`` + pid/timestamp payload) so two processes warming
  the same graph coordinate instead of double-computing.  Leases are
  advisory and crash-safe: a holder that dies leaves a file whose age
  exceeds the TTL, and the next contender takes it over.  Acquisition
  is re-entrant per process (refcounted), and a timed-out acquire
  degrades to computing anyway — the store's atomic, idempotent writes
  make duplicated work a performance bug, never a correctness one.
* ``last_used`` touch files — one per graph digest, updated on store
  reads — giving :func:`collect` its LRU axis without any database.
* :func:`sweep_tmp` — age-based removal of orphaned ``.*.tmp`` files
  left by writers killed between ``mkstemp`` and ``os.replace``.
* :func:`collect` — size-bounded GC: evict whole digest directories,
  least-recently-used first, until the store fits ``max_bytes``; never
  evicts a digest under an active lease.
* :func:`status` — the per-digest report behind ``repro store info``
  (size, last_used, lease state) plus quarantine contents.

Layout added next to the artifact categories::

    <root>/leases/<graph-digest>.lease       json: pid, time, host
    <root>/last_used/<graph-digest>          empty; mtime is the datum
    <root>/quarantine/<category>/...         corrupt artifacts + .reason.txt
"""

from __future__ import annotations

import json
import os
import pathlib
import socket
import threading
import time
from typing import TYPE_CHECKING, Any

from repro.api import faults

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.store import ArtifactStore

__all__ = ["Lease", "collect", "status", "sweep_tmp", "touch_last_used",
           "last_used", "is_leased"]

LEASE_DIR = "leases"
LAST_USED_DIR = "last_used"
QUARANTINE_DIR = "quarantine"

#: Default lease time-to-live: a holder silent for this long is presumed
#: dead and its lease is taken over.
DEFAULT_TTL_S = 120.0
#: Default time a contender waits for a lease before computing anyway.
DEFAULT_TIMEOUT_S = 120.0
#: Default age before an orphaned ``.tmp`` file is swept (a live writer
#: finishes in well under this; see ``ArtifactStore._save``).
DEFAULT_TMP_AGE_S = 3600.0

#: Per-process re-entrancy refcounts, keyed by absolute lease path.
_HELD: dict[str, int] = {}
_HELD_LOCK = threading.Lock()


def _lease_path(root: pathlib.Path, digest: str) -> pathlib.Path:
    return root / LEASE_DIR / f"{digest}.lease"


class Lease:
    """An advisory per-digest lease over a store root (context manager).

    ``with Lease(root, digest) as lease:`` blocks up to ``timeout_s``
    for the lease; ``lease.acquired`` reports whether it was obtained
    (``False`` after a timeout — the caller proceeds anyway, duplicated
    work being safe by idempotence).  A lease file older than ``ttl_s``
    is presumed abandoned and taken over.  Re-entrant per process.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        digest: str,
        *,
        ttl_s: float = DEFAULT_TTL_S,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        poll_s: float = 0.02,
    ):
        self.root = pathlib.Path(root)
        self.digest = digest
        self.path = _lease_path(self.root, digest)
        self.ttl_s = float(ttl_s)
        self.timeout_s = float(timeout_s)
        self.poll_s = float(poll_s)
        self.acquired = False

    # -- protocol --------------------------------------------------------
    def try_acquire(self) -> bool:
        """One non-blocking acquisition attempt (stale takeover included)."""
        key = str(self.path)
        with _HELD_LOCK:
            if _HELD.get(key, 0) > 0:  # re-entrant: already ours
                _HELD[key] += 1
                self.acquired = True
                return True
        if faults.on_lease(self.digest):
            return False  # injected contention
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(str(self.path), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            if self._holder_stale():
                # Takeover: unlink the abandoned file and retry once.
                # Two takeover racers are safe — exactly one O_EXCL
                # create succeeds after the unlink(s).
                try:
                    self.path.unlink()
                except FileNotFoundError:
                    pass
                return self.try_acquire()
            return False
        with os.fdopen(fd, "w") as fh:
            json.dump(
                {"pid": os.getpid(), "time": time.time(),
                 "host": socket.gethostname()},
                fh,
            )
        with _HELD_LOCK:
            _HELD[key] = 1
        self.acquired = True
        return True

    def acquire(self) -> bool:
        """Block up to ``timeout_s`` for the lease; ``False`` on timeout."""
        deadline = time.monotonic() + self.timeout_s
        while True:
            if self.try_acquire():
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(self.poll_s)

    def release(self) -> None:
        """Drop one hold; the file is removed when the refcount hits 0."""
        if not self.acquired:
            return
        self.acquired = False
        key = str(self.path)
        with _HELD_LOCK:
            count = _HELD.get(key, 0) - 1
            if count > 0:
                _HELD[key] = count
                return
            _HELD.pop(key, None)
        try:
            self.path.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def _holder_stale(self) -> bool:
        try:
            age = time.time() - self.path.stat().st_mtime
        except FileNotFoundError:
            return False  # released between our attempts; retry will win
        return age > self.ttl_s

    def holder(self) -> dict[str, Any] | None:
        """The current lease file's payload, or ``None``."""
        return _read_holder(self.path)

    def __enter__(self) -> "Lease":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "held" if self.acquired else "free"
        return f"Lease({self.digest!r}, {state})"


def _read_holder(path: pathlib.Path) -> dict[str, Any] | None:
    try:
        return dict(json.loads(path.read_text()))
    except (OSError, ValueError):
        return None


def is_leased(root: str | os.PathLike, digest: str,
              ttl_s: float = DEFAULT_TTL_S) -> bool:
    """Whether an *active* (non-stale) lease exists for ``digest``."""
    path = _lease_path(pathlib.Path(root), digest)
    try:
        age = time.time() - path.stat().st_mtime
    except FileNotFoundError:
        return False
    return age <= ttl_s


# ----------------------------------------------------------------------
# last_used touch files
# ----------------------------------------------------------------------


def touch_last_used(root: str | os.PathLike, digest: str) -> None:
    """Stamp ``digest`` as just-read (creates the touch file if absent)."""
    path = pathlib.Path(root) / LAST_USED_DIR / digest
    try:
        os.utime(path)
    except FileNotFoundError:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.touch()
    except OSError:  # pragma: no cover - read-only store: reads still work
        pass


def last_used(root: str | os.PathLike, digest: str) -> float | None:
    """The last-read timestamp of ``digest`` (epoch seconds), or ``None``."""
    path = pathlib.Path(root) / LAST_USED_DIR / digest
    try:
        return path.stat().st_mtime
    except FileNotFoundError:
        return None


# ----------------------------------------------------------------------
# Sweeps and GC
# ----------------------------------------------------------------------


def sweep_tmp(root: str | os.PathLike,
              max_age_s: float = DEFAULT_TMP_AGE_S) -> list[str]:
    """Remove orphaned write-temp files older than ``max_age_s``.

    A writer killed between ``mkstemp`` and ``os.replace`` leaks a
    ``.{name}.XXXX.tmp`` file in the artifact's directory forever —
    invisible to loads (they key on final names) but never reclaimed.
    Age-gating keeps the sweep safe against *live* writers, whose temp
    files are seconds old.  Returns the removed paths (store-relative).
    """
    root = pathlib.Path(root)
    removed: list[str] = []
    cutoff = time.time() - float(max_age_s)
    for path in sorted(root.rglob("*.tmp")):
        if not path.name.startswith("."):
            continue
        try:
            if path.stat().st_mtime <= cutoff:
                path.unlink()
                removed.append(str(path.relative_to(root)))
        except FileNotFoundError:  # pragma: no cover - concurrent sweep
            continue
    return removed


def _digest_paths(store: "ArtifactStore", digest: str) -> list[pathlib.Path]:
    """Every on-disk file belonging to one graph digest."""
    out: list[pathlib.Path] = []
    gfile = store.root / "graphs" / f"{digest}.npz"
    if gfile.exists():
        out.append(gfile)
    for cat in store.CATEGORIES:
        if cat == "graphs":
            continue
        cdir = store.root / cat / digest
        if cdir.is_dir():
            out.extend(p for p in sorted(cdir.rglob("*")) if p.is_file())
    return out


def _digest_inventory(store: "ArtifactStore") -> dict[str, dict[str, Any]]:
    """Per-digest ``{"bytes", "files", "paths", "last_used"}`` rows.

    Digests are discovered from the graphs directory *and* from the
    per-digest category subdirectories, so derived artifacts whose
    graph file is already gone still participate in GC.
    """
    digests: set[str] = set(store.graph_digests())
    for cat in store.CATEGORIES:
        if cat == "graphs":
            continue
        cdir = store.root / cat
        if cdir.is_dir():
            digests.update(p.name for p in cdir.iterdir() if p.is_dir())
    rows: dict[str, dict[str, Any]] = {}
    for digest in sorted(digests):
        paths = _digest_paths(store, digest)
        sizes = []
        newest = 0.0
        for p in paths:
            try:
                st = p.stat()
            except FileNotFoundError:  # pragma: no cover - racing GC
                continue
            sizes.append(st.st_size)
            newest = max(newest, st.st_mtime)
        used = last_used(store.root, digest)
        rows[digest] = {
            "bytes": sum(sizes),
            "files": len(sizes),
            "paths": paths,
            # Never-read digests fall back to their newest write time,
            # so a freshly-warmed store still has a total LRU order.
            "last_used": used if used is not None else newest,
        }
    return rows


def collect(
    store: "ArtifactStore",
    max_bytes: int,
    *,
    lease_ttl_s: float = DEFAULT_TTL_S,
    tmp_age_s: float = DEFAULT_TMP_AGE_S,
) -> dict[str, Any]:
    """Size-bounded LRU eviction over digest directories.

    Sweeps orphaned temp files first, then — while the store exceeds
    ``max_bytes`` — evicts whole digests (graph + every derived
    artifact + last_used stamp), least-recently-used first.  Digests
    under an active lease are never evicted: a lease marks in-flight
    computation, and deleting its inputs mid-warm would turn a cheap
    recompute into a torn handoff.  Returns the GC report the CLI
    prints.
    """
    removed_tmp = sweep_tmp(store.root, max_age_s=tmp_age_s)
    rows = _digest_inventory(store)
    total = sum(r["bytes"] for r in rows.values())
    before = total
    evicted: list[str] = []
    skipped: list[str] = []
    for digest in sorted(rows, key=lambda d: (rows[d]["last_used"], d)):
        if total <= max_bytes:
            break
        if is_leased(store.root, digest, ttl_s=lease_ttl_s):
            skipped.append(digest)
            continue
        for path in rows[digest]["paths"]:
            try:
                path.unlink()
            except FileNotFoundError:  # pragma: no cover - racing GC
                pass
        for cat in store.CATEGORIES:
            cdir = store.root / cat / digest
            if cdir.is_dir():
                _prune_empty_dirs(cdir)
        stamp = store.root / LAST_USED_DIR / digest
        stamp.unlink(missing_ok=True)
        total -= rows[digest]["bytes"]
        evicted.append(digest)
    return {
        "before_bytes": before,
        "after_bytes": total,
        "max_bytes": int(max_bytes),
        "evicted": evicted,
        "skipped_leased": skipped,
        "kept": len(rows) - len(evicted),
        "swept_tmp": removed_tmp,
    }


def _prune_empty_dirs(top: pathlib.Path) -> None:
    """Remove ``top`` and its now-empty subdirectories (best-effort)."""
    for path in sorted(top.rglob("*"), reverse=True):
        if path.is_dir():
            try:
                path.rmdir()
            except OSError:  # pragma: no cover - non-empty: artifacts remain
                pass
    try:
        top.rmdir()
    except OSError:
        pass


# ----------------------------------------------------------------------
# Status (the ``repro store info`` payload)
# ----------------------------------------------------------------------


def status(store: "ArtifactStore",
           lease_ttl_s: float = DEFAULT_TTL_S) -> dict[str, Any]:
    """Per-digest lifecycle report + quarantine contents.

    Returns ``{"root", "digests": [{"digest", "bytes", "files",
    "last_used", "leased", "lease_holder"}...], "total_bytes",
    "quarantine": [{"path", "bytes", "reason"}...]}``.
    """
    rows = _digest_inventory(store)
    digests = []
    for digest in sorted(rows):
        row = rows[digest]
        lease_file = _lease_path(store.root, digest)
        holder = _read_holder(lease_file)
        digests.append(
            {
                "digest": digest,
                "bytes": row["bytes"],
                "files": row["files"],
                "last_used": last_used(store.root, digest),
                "leased": is_leased(store.root, digest, ttl_s=lease_ttl_s),
                "lease_holder": holder,
            }
        )
    qdir = store.root / QUARANTINE_DIR
    quarantine = []
    for path in sorted(qdir.rglob("*")) if qdir.is_dir() else []:
        if not path.is_file() or path.name.endswith(".reason.txt"):
            continue
        note = path.with_name(path.name + ".reason.txt")
        reason = note.read_text().strip() if note.exists() else ""
        quarantine.append(
            {
                "path": str(path.relative_to(qdir)),
                "bytes": path.stat().st_size,
                "reason": reason,
            }
        )
    return {
        "root": str(store.root),
        "digests": digests,
        "total_bytes": sum(r["bytes"] for r in rows.values()),
        "quarantine": quarantine,
    }
