"""Measured cost model behind ``engine="auto"`` resolution.

The two simulator paths trade off differently: the batch engine pays a
fixed vectorization overhead per round but advances all vertices in a
few array operations, while the per-node loop costs one Python call per
vertex per round.  Which is faster is a property of the *machine* as
much as the protocol, so instead of a hard-coded preference the façade
resolves ``"auto"`` through an :class:`EngineCostModel` — per-engine
linear coefficients over simple size features, fitted to wall-time
measurements of the actual pipelines on this machine.

The committed :data:`DEFAULT_MODEL_PATH` artifact ships a calibration;
``python -m repro.cli calibrate-engine`` regenerates it (``--quick`` for
a reduced ladder).  The model also carries the wave-pipelining verdict
*per protocol*: each wave-capable pipeline (``election`` = Theorem-9
domset, ``join`` = Theorem-10 connect, ``cluster`` = Theorem-8 cover)
gets its own smallest profitable ``wave_width`` (0 = lockstep) and the
instance size above which it applies — the pipelines replay different
phase mixes per wave, so one global threshold mispredicts whichever
pipeline it was not measured on.  A ``"*"`` entry is the wildcard
fallback; schema-1 documents (one global verdict) load as exactly that
wildcard.

Cost features per request: ``[1, R, (n + m) * R]`` with ``R = log2(n +
2) + 3r + 2`` — a round-count proxy (order phase is O(log n), the token
phases O(r)).  The constant picks up fixed setup, the second term
per-round overhead, the third per-round-per-edge work.  Fits use
least squares with negative coefficients clipped to zero and refitted
(costs are sums of nonnegative work terms; an unconstrained fit on a
small ladder can go negative and then extrapolate absurdly).
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

import numpy as np

__all__ = [
    "EngineCostModel",
    "calibrate",
    "default_model",
    "DEFAULT_MODEL_PATH",
    "MODEL_SCHEMA",
    "WAVE_PROTOCOLS",
]

#: Version tag of the persisted model document.
MODEL_SCHEMA = 2

#: Wave-capable pipelines the calibration races (plus the "*" wildcard).
WAVE_PROTOCOLS = ("election", "join", "cluster")

#: The committed calibration artifact ``default_model()`` loads.
DEFAULT_MODEL_PATH = Path(__file__).with_name("engine_model.json")


def _features(n: int, m: int, radius: int) -> np.ndarray:
    rounds = math.log2(n + 2) + 3 * radius + 2
    return np.array([1.0, rounds, (n + m) * rounds], dtype=np.float64)


@dataclass(frozen=True)
class EngineCostModel:
    """Per-engine wall-time predictors plus per-protocol wave verdicts.

    ``coef`` maps engine name to the fitted feature coefficients;
    ``waves`` maps a protocol name (see :data:`WAVE_PROTOCOLS`, plus the
    ``"*"`` wildcard) to its calibrated ``(wave_width, min_n)`` pair —
    the components-per-wave (0 = lockstep always) and the instance size
    where waves start paying for their per-wave replay overhead.
    ``meta`` records how the calibration was obtained (instances,
    timings) for provenance only.
    """

    coef: Mapping[str, tuple[float, ...]] = field(default_factory=dict)
    waves: Mapping[str, tuple[int, int]] = field(default_factory=dict)
    meta: Mapping[str, Any] = field(default_factory=dict)

    def predict(self, engine: str, n: int, m: int, radius: int) -> float | None:
        """Predicted solver wall time in seconds, or ``None`` if unknown."""
        c = self.coef.get(engine)
        if c is None or len(c) != len(_features(0, 0, 0)):
            return None
        return float(np.dot(np.asarray(c, dtype=np.float64), _features(n, m, radius)))

    def pick_engine(
        self, n: int, m: int, radius: int, engines: Sequence[str]
    ) -> str:
        """The cheapest declared engine under the model.

        Falls back to the solver's declared preference (first entry)
        when any declared engine has no coefficients — a partially
        calibrated model must not silently disadvantage the engines it
        never measured.  Ties keep declaration order.
        """
        costs = [self.predict(e, n, m, radius) for e in engines]
        if any(c is None for c in costs):
            return engines[0]
        return engines[int(np.argmin(costs))]

    def pick_wave_width(
        self, n: int, m: int, radius: int, protocol: str | None = None
    ) -> int:
        """Calibrated wave width for an instance (0 = run lockstep).

        ``protocol`` selects the pipeline's own verdict; an unknown or
        omitted protocol falls back to the ``"*"`` wildcard (which is
        also where schema-1 global verdicts land on load).
        """
        entry = None
        if protocol is not None:
            entry = self.waves.get(protocol)
        if entry is None:
            entry = self.waves.get("*")
        if entry is None:
            return 0
        width, min_n = entry
        if width > 0 and n >= min_n:
            return width
        return 0

    # -- persistence -------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": MODEL_SCHEMA,
            "coef": {e: list(c) for e, c in self.coef.items()},
            "waves": {
                p: {"width": w, "min_n": n} for p, (w, n) in self.waves.items()
            },
            "meta": dict(self.meta),
        }

    def save(self, path: Path | str) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EngineCostModel":
        schema = data.get("schema")
        if schema not in (1, MODEL_SCHEMA):
            raise ValueError(
                f"unsupported engine model schema {schema!r} "
                f"(this version reads schemas 1 and {MODEL_SCHEMA})"
            )
        if schema == 1:
            # Legacy global verdict: exactly the wildcard entry.
            width = int(data.get("wave_width", 0))
            waves = (
                {"*": (width, int(data.get("wave_min_n", 0)))} if width else {}
            )
        else:
            waves = {
                str(p): (int(v.get("width", 0)), int(v.get("min_n", 0)))
                for p, v in dict(data.get("waves", {})).items()
            }
        return cls(
            coef={
                str(e): tuple(float(x) for x in c)
                for e, c in dict(data.get("coef", {})).items()
            },
            waves=waves,
            meta=dict(data.get("meta", {})),
        )

    @classmethod
    def load(cls, path: Path | str) -> "EngineCostModel | None":
        """The model at ``path``, or ``None`` if absent/unreadable.

        ``"auto"`` resolution must never fail because an artifact is
        missing or stale — the caller falls back to the declared engine
        preference instead.
        """
        try:
            return cls.from_dict(json.loads(Path(path).read_text()))
        except (OSError, ValueError, TypeError, KeyError):
            return None


# One process-wide slot: the committed artifact is parsed at most once
# per process, like ``default_cache()``; [] = not loaded yet, [None] =
# load failed (also cached — a missing artifact stays missing).
_DEFAULT_MODEL: list[EngineCostModel | None] = []


def default_model() -> EngineCostModel | None:
    """The committed calibration artifact, memoized process-wide."""
    if not _DEFAULT_MODEL:
        _DEFAULT_MODEL.append(EngineCostModel.load(DEFAULT_MODEL_PATH))
    return _DEFAULT_MODEL[0]


def _fit_nonneg(X: np.ndarray, y: np.ndarray) -> tuple[float, ...]:
    """Least squares with negative coefficients clipped-and-refitted."""
    keep = list(range(X.shape[1]))
    coef = np.zeros(X.shape[1], dtype=np.float64)
    while keep:
        sol, *_ = np.linalg.lstsq(X[:, keep], y, rcond=None)
        if (sol >= 0).all():
            coef[keep] = sol
            break
        keep = [k for k, c in zip(keep, sol, strict=True) if c >= 0]
    return tuple(float(c) for c in coef)


def _calibration_instances(quick: bool):
    from repro.graphs.random_models import delaunay_graph, random_geometric

    sizes = (200, 700, 1600) if quick else (200, 700, 1600, 4000, 9000)
    graphs = []
    for n in sizes:
        graphs.append((f"delaunay{n}", delaunay_graph(n, seed=7)[0]))
    graphs.append(("geometric600", random_geometric(600, seed=3)[0]))
    return graphs


def calibrate(
    quick: bool = False,
    radius: int = 2,
    clock: Callable[[], float] = time.perf_counter,
) -> EngineCostModel:
    """Measure both engines on an instance ladder and fit the model.

    Times the full Theorem-9 pipeline (the façade's dominant distributed
    path) per engine per instance, fits :func:`_features` coefficients,
    then times pipelined waves against lockstep on the largest instance
    — once per wave-capable protocol (:data:`WAVE_PROTOCOLS`), since the
    pipelines replay different phase mixes per wave and one pipeline's
    verdict routinely mispredicts another's.  Deterministic instances,
    one timing pass — calibration is a tool command, not a benchmark
    harness.
    """
    from repro.distributed.connect_bc import run_connect_bc
    from repro.distributed.cover_bc import run_cover_bc
    from repro.distributed.domset_bc import run_domset_bc

    graphs = _calibration_instances(quick)
    engines = ("batch", "pernode")
    rows: dict[str, list[tuple[np.ndarray, float]]] = {e: [] for e in engines}
    timings: dict[str, dict[str, Any]] = {}
    for name, g in graphs:
        timings[name] = {"n": g.n, "m": g.m}
        for eng in engines:
            t0 = clock()
            run_domset_bc(g, radius, engine=eng)
            dt = clock() - t0
            rows[eng].append((_features(g.n, g.m, radius), dt))
            timings[name][eng] = dt
    coef = {}
    for eng in engines:
        X = np.stack([f for f, _ in rows[eng]])
        y = np.array([t for _, t in rows[eng]])
        coef[eng] = _fit_nonneg(X, y)
    # Wave verdicts: replay each wave-capable pipeline on the largest
    # instance at a few widths; adopt a width only if it beats that
    # pipeline's own lockstep by a margin that survives timing noise.
    big_name, big = graphs[len(graphs) - 2]  # largest delaunay
    racers = {
        "election": lambda w: run_domset_bc(
            big, radius, engine="batch", wave_width=w
        ),
        "join": lambda w: run_connect_bc(
            big, radius, engine="batch", wave_width=w
        ),
        "cluster": lambda w: run_cover_bc(
            big, radius, engine="batch", wave_width=w
        ),
    }
    waves: dict[str, tuple[int, int]] = {}
    timings[big_name]["waves"] = {}
    for protocol, race in racers.items():
        t0 = clock()
        race(0)
        lockstep = clock() - t0
        splits = {"0": lockstep}
        best, wave_width = lockstep, 0
        for width in (16, 64, 256):
            t0 = clock()
            race(width)
            dt = clock() - t0
            splits[str(width)] = dt
            if dt < best:
                best = dt
                wave_width = width
        timings[big_name]["waves"][protocol] = splits
        if best > 0.95 * lockstep:
            wave_width = 0  # within noise of lockstep: keep the simple path
        if wave_width:
            waves[protocol] = (wave_width, big.n)
    return EngineCostModel(
        coef=coef,
        waves=waves,
        meta={"radius": radius, "quick": quick, "timings": timings},
    )
