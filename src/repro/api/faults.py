"""Deterministic fault injection for the Workspace/ArtifactStore runtime.

The paper's pipelines are pure functions of ``(graph digest, request)``,
so every infrastructure failure — a worker process dying mid-batch, a
store writer killed between ``mkstemp`` and ``os.replace``, a torn or
bit-rotted artifact, two processes warming the same graph — is
recoverable by recomputation.  Testing that recovery honestly requires
*injecting* those failures on demand, reproducibly.  A
:class:`FaultPlan` is that substrate: a seeded, declarative list of
fault rules that the store, the pooled executor, and the lease protocol
consult at well-defined hook points.

Two activation paths share one spec format:

* in-process: ``with FaultPlan.parse("kill:digest=ab,attempts=1").activate(): ...``
* cross-process: the ``REPRO_FAULTS`` environment variable (the context
  manager exports it, so pool workers forked inside the ``with`` block
  inherit the plan automatically).

Spec grammar — semicolon-separated clauses, each ``kind:key=value,...``;
an optional leading ``seed=N`` clause seeds the plan::

    seed=7;kill:digest=3fb2,attempts=1;latency:ms=5,category=wreach

Rule kinds (all counters are per-process and start at zero):

``kill``
    ``os._exit(1)`` inside a pool worker at group-task entry.  Match by
    ``digest=<prefix>`` plus ``attempts=K`` (die while the dispatch
    attempt is ``< K``, so ``K`` retries recover and ``K >=
    max_attempts`` forces poison), or by ``task=N`` (die when this
    worker process starts its Nth group task, 1-based).
``torn``
    Simulate a writer killed mid-write: the matching
    :meth:`~repro.api.store.ArtifactStore._save` writes a *partial*
    temp file and never reaches ``os.replace`` — the artifact is
    missing and an orphaned ``.tmp`` file is left behind (what the
    store's age-based sweep exists to clean).  Match by
    ``category=<store subdir>`` and ``nth=N`` (Nth matching save,
    1-based; default 1).
``corrupt``
    Simulate post-write bit rot: the save completes and the final file
    is then truncated, so later loads fail validation (what the
    two-strike quarantine exists to catch).  Same match keys as
    ``torn``.
``latency``
    Sleep ``ms`` milliseconds (plus a seeded jitter of up to
    ``jitter_ms``) in store loads; optional ``category=`` filter.
``lease``
    Force lease contention: the first ``holds=K`` acquisition attempts
    for a matching lease (``digest=<prefix>``, default: all) behave as
    if another process holds it.

Hook functions (:func:`on_group_task`, :func:`on_save`,
:func:`on_load`, :func:`on_lease`) are no-ops when no plan is active,
so production paths pay one global check.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

__all__ = ["FaultPlan", "FaultRule", "active"]

#: Rule kinds the parser accepts.
KINDS = ("kill", "torn", "corrupt", "latency", "lease")

#: Integer-valued rule fields (everything else stays a string).
_INT_FIELDS = frozenset({"attempts", "task", "nth", "ms", "jitter_ms", "holds"})


@dataclass(frozen=True)
class FaultRule:
    """One fault clause: a kind plus its match/behavior fields."""

    kind: str
    fields: Mapping[str, Any] = field(default_factory=dict)

    def spec(self) -> str:
        """The clause in ``REPRO_FAULTS`` syntax (round-trips parse)."""
        if not self.fields:
            return self.kind
        body = ",".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return f"{self.kind}:{body}"


class FaultPlan:
    """A seeded, declarative fault schedule (see module docstring).

    Plans are immutable descriptions; all mutable state (per-rule
    counters, the jitter RNG) lives in process-local module globals so
    a plan parsed from the environment in a forked worker behaves
    identically to the parent's object.
    """

    def __init__(self, rules: list[FaultRule] | tuple[FaultRule, ...] = (),
                 seed: int = 0):
        self.rules: tuple[FaultRule, ...] = tuple(rules)
        self.seed = int(seed)
        for rule in self.rules:
            if rule.kind not in KINDS:
                raise ValueError(
                    f"unknown fault kind {rule.kind!r} (use one of {KINDS})"
                )

    # -- spec round-trip -------------------------------------------------
    @classmethod
    def parse(cls, spec: str, seed: int | None = None) -> "FaultPlan":
        """A plan from ``REPRO_FAULTS`` syntax (see module docstring)."""
        rules: list[FaultRule] = []
        plan_seed = 0
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                plan_seed = int(clause[5:])
                continue
            kind, _, body = clause.partition(":")
            kind = kind.strip()
            fields: dict[str, Any] = {}
            for pair in body.split(",") if body else []:
                key, sep, value = pair.partition("=")
                if not sep:
                    raise ValueError(
                        f"fault clause {clause!r}: expected key=value, got {pair!r}"
                    )
                key = key.strip()
                fields[key] = int(value) if key in _INT_FIELDS else value.strip()
            rules.append(FaultRule(kind, fields))
        if seed is not None:
            plan_seed = int(seed)
        return cls(rules, seed=plan_seed)

    def spec(self) -> str:
        """The full plan in ``REPRO_FAULTS`` syntax (round-trips)."""
        parts = [f"seed={self.seed}"] if self.seed else []
        parts += [rule.spec() for rule in self.rules]
        return ";".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultPlan({self.spec()!r})"

    # -- activation ------------------------------------------------------
    def activate(self) -> "_Activation":
        """Context manager: install this plan in-process *and* export
        ``REPRO_FAULTS`` so workers forked inside the block inherit it."""
        return _Activation(self)


class _Activation:
    """The ``with FaultPlan.activate()`` guard (restores prior state)."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._prior_env: str | None = None
        self._prior_plan: FaultPlan | None = None

    def __enter__(self) -> FaultPlan:
        global _ACTIVE
        self._prior_env = os.environ.get("REPRO_FAULTS")
        self._prior_plan = _ACTIVE
        os.environ["REPRO_FAULTS"] = self.plan.spec()
        _reset_counters()
        _ACTIVE = self.plan
        return self.plan

    def __exit__(self, *exc: Any) -> None:
        global _ACTIVE
        _ACTIVE = self._prior_plan
        if self._prior_env is None:
            os.environ.pop("REPRO_FAULTS", None)
        else:
            os.environ["REPRO_FAULTS"] = self._prior_env
        _reset_counters()


# ----------------------------------------------------------------------
# Process-local active-plan resolution and counters
# ----------------------------------------------------------------------

_ACTIVE: FaultPlan | None = None
#: Cache of the last environment spec parsed, so workers that resolve
#: the plan from ``REPRO_FAULTS`` parse it once, not per hook call.
_ENV_CACHE: tuple[str, FaultPlan] | None = None
_LOCK = threading.Lock()
#: Per-(rule-index, hook) occurrence counters; process-local by design —
#: a forked worker starts its own task/save counts from zero.
_COUNTERS: dict[tuple[int, str], int] = {}
_RNG: random.Random | None = None


def active() -> FaultPlan | None:
    """The plan in force for this process, or ``None``.

    Resolution order: an in-process :meth:`FaultPlan.activate` wins;
    otherwise ``REPRO_FAULTS`` from the environment (how pool workers —
    forked or spawned — see the parent's plan).
    """
    global _ENV_CACHE
    if _ACTIVE is not None:
        return _ACTIVE
    spec = os.environ.get("REPRO_FAULTS")
    if not spec:
        return None
    cached = _ENV_CACHE
    if cached is not None and cached[0] == spec:
        return cached[1]
    plan = FaultPlan.parse(spec)
    _ENV_CACHE = (spec, plan)
    return plan


def _reset_counters() -> None:
    global _RNG
    with _LOCK:
        _COUNTERS.clear()
        _RNG = None


def _bump(rule_index: int, hook: str) -> int:
    """The 1-based occurrence count of this (rule, hook) in this process."""
    key = (rule_index, hook)
    with _LOCK:
        _COUNTERS[key] = _COUNTERS.get(key, 0) + 1
        return _COUNTERS[key]


def _jitter_ms(plan: FaultPlan, bound: int) -> float:
    """A seeded jitter draw in ``[0, bound]`` milliseconds."""
    global _RNG
    if bound <= 0:
        return 0.0
    with _LOCK:
        if _RNG is None:
            _RNG = random.Random(plan.seed)
        return _RNG.uniform(0.0, float(bound))


def _matching(plan: FaultPlan, kind: str) -> Iterator[tuple[int, FaultRule]]:
    for i, rule in enumerate(plan.rules):
        if rule.kind == kind:
            yield i, rule


# ----------------------------------------------------------------------
# Hook points (called from workspace workers, the store, and leases)
# ----------------------------------------------------------------------


def on_group_task(digest: str, attempt: int) -> None:
    """Pool-worker group entry: apply ``kill`` rules (may not return)."""
    plan = active()
    if plan is None:
        return
    for i, rule in _matching(plan, "kill"):
        f = rule.fields
        if "task" in f:
            if _bump(i, "task") == int(f["task"]):
                os._exit(1)
        elif digest.startswith(str(f.get("digest", ""))):
            if attempt < int(f.get("attempts", 1)):
                os._exit(1)


def on_save(category: str) -> str | None:
    """Store-save entry: ``"torn"`` / ``"corrupt"`` when a rule fires."""
    plan = active()
    if plan is None:
        return None
    for kind in ("torn", "corrupt"):
        for i, rule in _matching(plan, kind):
            f = rule.fields
            if f.get("category") not in (None, category):
                continue
            if _bump(i, f"save:{category}") == int(f.get("nth", 1)):
                return kind
    return None


def on_load(category: str) -> None:
    """Store-load entry: apply ``latency`` rules (seeded jitter)."""
    plan = active()
    if plan is None:
        return
    for _i, rule in _matching(plan, "latency"):
        f = rule.fields
        if f.get("category") not in (None, category):
            continue
        delay_ms = float(int(f.get("ms", 0))) + _jitter_ms(
            plan, int(f.get("jitter_ms", 0))
        )
        if delay_ms > 0:
            time.sleep(delay_ms / 1e3)


def on_lease(digest: str) -> bool:
    """Lease-acquire attempt: ``True`` forces a simulated contention."""
    plan = active()
    if plan is None:
        return False
    for i, rule in _matching(plan, "lease"):
        f = rule.fields
        if not digest.startswith(str(f.get("digest", ""))):
            continue
        if _bump(i, f"lease:{digest}") <= int(f.get("holds", 1)):
            return True
    return False
