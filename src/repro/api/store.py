"""Persistent, content-addressed precompute artifacts.

The expensive preprocessing products every order-based solver shares —
the linear order, the rank-permuted adjacency, the :class:`WReachCSR`
arrays, the measured wcol, the distributed order runs — are pure
functions of graph *content*.  :class:`ArtifactStore` persists them to
disk as ``npz`` files under digest-keyed paths, so a graph preprocessed
once (``repro warm``, a first ``solve``, a batch sweep) serves every
later process from disk:

.. code-block:: text

    <root>/
      graphs/<graph-digest>.npz                     indptr, indices
      orders/<graph-digest>/<strategy>-r<R>.npz     rank
      rank_adj/<graph-digest>/<order-digest>.npz    rank-sorted nbrs
      wreach/<graph-digest>/<order-digest>-reach<K>.npz   indptr, members
      wcol/<graph-digest>/<order-digest>-reach<K>.npz     value
      dist_orders/<graph-digest>/<mode>-r<R>-t<T>.npz     rank, class_ids, costs

Digest keying (the same :func:`graph_digest` the in-memory cache uses)
makes entries immune to staleness: equal CSR bytes determine every
derived artifact, so a load can never serve data for a different graph.
Loaded graphs are digest-verified; loaded orders are re-validated as
permutations.  Writes go through a temp file + ``os.replace`` so a
concurrent reader (pooled workers sharing one store) never sees a
partial file; any unreadable or malformed entry is treated as a miss.

``ArtifactStore(root, mmap=True)`` (or ``REPRO_STORE_MMAP=1``) switches
loads to zero-copy memory maps via :mod:`repro.graphs.npzmap`: warm
starts page in only the bytes a solver touches instead of reading whole
artifacts.  On that path the content digest is *not* re-hashed (it
would fault in every page); instead each member's zip/npy headers and
exact byte length are validated before mapping, and the structural
checks below still run — truncated or partially-written files are
misses in both modes.  ``np.savez`` stores members uncompressed, so
files written by either mode are readable by both.

:class:`~repro.api.cache.PrecomputeCache` layers its LRU tables over a
store (two-tier read-through) — see ``PrecomputeCache(store=...)`` and
:class:`repro.api.workspace.Workspace`, which wires the two together.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import tempfile
import zipfile
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.graphs.graph import Graph
from repro.orders.linear_order import LinearOrder

if TYPE_CHECKING:
    from repro.distributed.nd_order import OrderComputation
    from repro.orders.wreach import RankedAdjacency, WReachCSR

__all__ = ["ArtifactStore", "graph_digest", "order_digest"]

#: npz-load failures treated as a store miss: absent, truncated, or
#: foreign files (``BadZipFile`` — npz is a zip) and missing arrays
#: (``KeyError``).
_LOAD_ERRORS = (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile)


def graph_digest(g: Graph) -> str:
    """Content digest of a graph's CSR arrays (stable across processes)."""
    h = hashlib.blake2b(digest_size=16)
    h.update(g.n.to_bytes(8, "little"))
    h.update(g.indptr.tobytes())
    h.update(g.indices.tobytes())
    return h.hexdigest()


def order_digest(order: LinearOrder) -> str:
    """Content digest of a linear order (for order-keyed entries)."""
    return hashlib.blake2b(order.rank.tobytes(), digest_size=16).hexdigest()


class ArtifactStore:
    """Digest-keyed npz persistence of precompute artifacts.

    All ``get_*`` methods return ``None`` on a miss (absent, partial, or
    malformed file); all ``put_*`` methods are atomic per artifact and
    idempotent, so concurrent processes warming the same store are safe.
    The store is pure persistence — memoization, LRU policy, and hit
    accounting live in :class:`~repro.api.cache.PrecomputeCache`.
    """

    #: Artifact categories, in the order ``describe()`` reports them.
    CATEGORIES = ("graphs", "orders", "rank_adj", "wreach", "wcol", "dist_orders")

    def __init__(self, root: str | os.PathLike, *, mmap: bool | None = None):
        self.root = pathlib.Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        if mmap is None:
            mmap = os.environ.get("REPRO_STORE_MMAP", "") not in ("", "0")
        self.mmap = bool(mmap)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = ", mmap=True" if self.mmap else ""
        return f"ArtifactStore({str(self.root)!r}{flag})"

    # -- low-level npz I/O -------------------------------------------------
    def _save(self, path: pathlib.Path, **arrays: Any) -> None:
        """Atomic npz write: unique temp file in the target dir + replace.

        ``mkstemp`` (not a pid-derived name) keeps concurrent *threads*
        of one process from sharing a temp inode, so a reader can never
        observe a partially-written artifact under the final path.
        """
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
        )
        tmp = pathlib.Path(tmp_name)
        try:
            with os.fdopen(fd, "wb") as f:
                np.savez(f, **arrays)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    def _load(self, path: pathlib.Path, *names: str) -> tuple[np.ndarray, ...] | None:
        """The named arrays of an npz file, or ``None`` on any failure.

        In mmap mode the arrays come back as read-only ``np.memmap``
        views; :func:`repro.graphs.npzmap.mmap_npz` validates member
        offsets, npy headers, and exact payload lengths first, so a
        truncated or partially-written file is a miss, never a mapped
        array of garbage tail bytes.
        """
        if self.mmap:
            from repro.graphs.npzmap import mmap_npz

            try:
                return mmap_npz(path, *names)
            except _LOAD_ERRORS:
                return None
        try:
            with np.load(path, allow_pickle=False) as data:
                return tuple(data[name] for name in names)
        except _LOAD_ERRORS:
            return None

    # -- graphs --------------------------------------------------------------
    def _graph_path(self, digest: str) -> pathlib.Path:
        return self.root / "graphs" / f"{digest}.npz"

    def put_graph(self, g: Graph, digest: str | None = None) -> str:
        """Persist a graph's CSR arrays; returns its digest (idempotent).

        Pass ``digest`` when it is already in hand (handles, grouped
        dispatch) to skip re-hashing the CSR arrays — an O(m) cost on
        hot submit paths.
        """
        if digest is None:
            digest = graph_digest(g)
        path = self._graph_path(digest)
        if not path.exists():
            self._save(path, indptr=g.indptr, indices=g.indices)
        return digest

    def get_graph(self, digest: str) -> Graph | None:
        """Load a graph by digest, verified against its own content.

        Full-read mode re-hashes the CSR bytes — only the exact bytes
        that were stored can hash back to the requested key.  Mmap mode
        must not (hashing faults in every page), so it relies on the
        member-level size/header validation done while mapping plus the
        structural indptr checks below; content integrity is the
        filesystem's job there, as for any mapped database file.
        """
        loaded = self._load(self._graph_path(digest), "indptr", "indices")
        if loaded is None:
            return None
        indptr, indices = loaded
        if (
            indptr.ndim != 1
            or indices.ndim != 1
            or len(indptr) < 1
            or indptr[0] != 0
            or int(indptr[-1]) != len(indices)
            or bool(np.any(np.diff(indptr) < 0))
        ):
            return None
        try:
            g = Graph(
                indptr.astype(np.int64, copy=False),
                indices.astype(np.int32, copy=False),
                _checked=True,
            )
        except _LOAD_ERRORS:
            return None
        if self.mmap:
            return g
        return g if graph_digest(g) == digest else None

    def graph_digests(self) -> list[str]:
        """Digests of every persisted graph, sorted."""
        gdir = self.root / "graphs"
        return sorted(p.stem for p in gdir.glob("*.npz")) if gdir.is_dir() else []

    def graph_meta(self, digest: str) -> tuple[int, int] | None:
        """``(n, m)`` of a persisted graph from its offsets alone.

        Listings (``describe``, ``Workspace.handles``) use this to avoid
        reading — or re-hashing — the potentially large neighbor arrays.
        """
        loaded = self._load(self._graph_path(digest), "indptr")
        if loaded is None:
            return None
        (indptr,) = loaded
        if indptr.ndim != 1 or len(indptr) < 1:
            return None
        try:
            return len(indptr) - 1, int(indptr[-1]) // 2
        except (TypeError, ValueError):
            return None

    # -- linear orders ---------------------------------------------------
    def _order_path(self, gdigest: str, strategy: str, radius: int) -> pathlib.Path:
        return self.root / "orders" / gdigest / f"{strategy}-r{int(radius)}.npz"

    def put_order(
        self, gdigest: str, strategy: str, radius: int, order: LinearOrder
    ) -> None:
        self._save(self._order_path(gdigest, strategy, radius), rank=order.rank)

    def get_order(
        self, gdigest: str, strategy: str, radius: int, n: int | None = None
    ) -> LinearOrder | None:
        loaded = self._load(self._order_path(gdigest, strategy, radius), "rank")
        if loaded is None:
            return None
        (rank,) = loaded
        if n is not None and len(rank) != n:
            return None
        try:
            # LinearOrder re-validates the permutation property.
            return LinearOrder(rank.astype(np.int64, copy=False))
        except Exception:
            return None

    # -- rank-permuted adjacency ------------------------------------------
    def _rank_adj_path(self, gdigest: str, odigest: str) -> pathlib.Path:
        return self.root / "rank_adj" / gdigest / f"{odigest}.npz"

    def put_rank_adj(self, gdigest: str, odigest: str, adj: RankedAdjacency) -> None:
        """Persist the rank-sorted neighbor array (the lexsort product)."""
        self._save(self._rank_adj_path(gdigest, odigest), nbrs=adj.nbrs)

    def get_rank_adj(
        self, gdigest: str, odigest: str, g: Graph, order: LinearOrder
    ) -> RankedAdjacency | None:
        """Rebuild a :class:`RankedAdjacency` around the stored permutation."""
        from repro.orders.wreach import RankedAdjacency

        loaded = self._load(self._rank_adj_path(gdigest, odigest), "nbrs")
        if loaded is None:
            return None
        (nbrs,) = loaded
        if len(nbrs) != len(g.indices):
            return None
        try:
            return RankedAdjacency.from_sorted_nbrs(
                g, order, nbrs.astype(np.int64, copy=False)
            )
        except Exception:
            return None

    # -- WReach CSR ---------------------------------------------------------
    def _wreach_path(self, gdigest: str, odigest: str, reach: int) -> pathlib.Path:
        return self.root / "wreach" / gdigest / f"{odigest}-reach{int(reach)}.npz"

    def put_wreach(self, gdigest: str, odigest: str, reach: int, csr: WReachCSR) -> None:
        self._save(
            self._wreach_path(gdigest, odigest, reach),
            indptr=csr.indptr,
            members=csr.members,
        )

    def get_wreach(
        self, gdigest: str, odigest: str, reach: int, g: Graph, order: LinearOrder
    ) -> WReachCSR | None:
        from repro.orders.wreach import WReachCSR

        loaded = self._load(
            self._wreach_path(gdigest, odigest, reach), "indptr", "members"
        )
        if loaded is None:
            return None
        indptr, members = loaded
        if (
            indptr.ndim != 1
            or members.ndim != 1
            or len(indptr) != g.n + 1
            or (g.n > 0 and (indptr[0] != 0 or int(indptr[-1]) != len(members)))
        ):
            return None
        return WReachCSR(
            indptr.astype(np.int64, copy=False),
            members.astype(np.int64, copy=False),
            int(reach),
            order.rank,
        )

    # -- wcol ---------------------------------------------------------------
    def _wcol_path(self, gdigest: str, odigest: str, reach: int) -> pathlib.Path:
        return self.root / "wcol" / gdigest / f"{odigest}-reach{int(reach)}.npz"

    def put_wcol(self, gdigest: str, odigest: str, reach: int, value: int) -> None:
        self._save(
            self._wcol_path(gdigest, odigest, reach),
            value=np.asarray(int(value), dtype=np.int64),
        )

    def get_wcol(self, gdigest: str, odigest: str, reach: int) -> int | None:
        loaded = self._load(self._wcol_path(gdigest, odigest, reach), "value")
        if loaded is None or loaded[0].size != 1:
            return None
        try:
            return int(loaded[0].reshape(()))
        except (TypeError, ValueError):
            return None

    # -- distributed order computations -------------------------------------
    def _dist_order_path(
        self, gdigest: str, mode: str, radius: int, threshold: int | None
    ) -> pathlib.Path:
        t = "auto" if threshold is None else str(int(threshold))
        return self.root / "dist_orders" / gdigest / f"{mode}-r{int(radius)}-t{t}.npz"

    def put_dist_order(
        self,
        gdigest: str,
        mode: str,
        radius: int,
        threshold: int | None,
        oc: OrderComputation,
    ) -> None:
        costs = np.asarray(
            [oc.rounds, oc.normalized_rounds, oc.max_payload_words, oc.total_words],
            dtype=np.int64,
        )
        self._save(
            self._dist_order_path(gdigest, mode, radius, threshold),
            rank=oc.order.rank,
            class_ids=oc.class_ids,
            costs=costs,
        )

    def get_dist_order(
        self,
        gdigest: str,
        mode: str,
        radius: int,
        threshold: int | None,
        n: int | None = None,
    ) -> OrderComputation | None:
        from repro.distributed.nd_order import OrderComputation

        loaded = self._load(
            self._dist_order_path(gdigest, mode, radius, threshold),
            "rank",
            "class_ids",
            "costs",
        )
        if loaded is None:
            return None
        rank, class_ids, costs = loaded
        if (n is not None and len(rank) != n) or len(costs) != 4:
            return None
        try:
            order = LinearOrder(rank.astype(np.int64, copy=False))
        except Exception:
            return None
        return OrderComputation(
            order=order,
            class_ids=class_ids.astype(np.int64, copy=False),
            rounds=int(costs[0]),
            normalized_rounds=int(costs[1]),
            max_payload_words=int(costs[2]),
            total_words=int(costs[3]),
            mode=mode,
        )

    # -- introspection -------------------------------------------------------
    def describe(self) -> dict:
        """Store contents for ``repro workspace info``: graphs + categories.

        Returns ``{"root", "graphs": [{"digest", "n", "m", "artifacts"}...],
        "categories": {name: {"artifacts", "bytes"}}, "total_bytes"}``.
        """
        categories: dict[str, dict[str, int]] = {}
        per_graph: dict[str, int] = {}
        for cat in self.CATEGORIES:
            cdir = self.root / cat
            count = size = 0
            for path in sorted(cdir.rglob("*.npz")) if cdir.is_dir() else []:
                count += 1
                size += path.stat().st_size
                if cat != "graphs":
                    per_graph[path.parent.name] = per_graph.get(path.parent.name, 0) + 1
            categories[cat] = {"artifacts": count, "bytes": size}
        graphs = []
        for digest in self.graph_digests():
            # A listing only needs n and m — both fall out of the indptr
            # array alone, so the (potentially huge) indices arrays are
            # never read and nothing is re-hashed here.
            meta = self.graph_meta(digest)
            n, m = meta if meta is not None else (-1, -1)
            graphs.append(
                {
                    "digest": digest,
                    "n": n,
                    "m": m,
                    "artifacts": per_graph.get(digest, 0),
                }
            )
        return {
            "root": str(self.root),
            "graphs": graphs,
            "categories": categories,
            "total_bytes": sum(c["bytes"] for c in categories.values()),
        }
