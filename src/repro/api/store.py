"""Persistent, content-addressed precompute artifacts.

The expensive preprocessing products every order-based solver shares —
the linear order, the rank-permuted adjacency, the :class:`WReachCSR`
arrays, the measured wcol, the distributed order runs — are pure
functions of graph *content*.  :class:`ArtifactStore` persists them to
disk as ``npz`` files under digest-keyed paths, so a graph preprocessed
once (``repro warm``, a first ``solve``, a batch sweep) serves every
later process from disk:

.. code-block:: text

    <root>/
      graphs/<graph-digest>.npz                     indptr, indices
      orders/<graph-digest>/<strategy>-r<R>.npz     rank
      rank_adj/<graph-digest>/<order-digest>.npz    rank-sorted nbrs
      wreach/<graph-digest>/<order-digest>-reach<K>.npz   indptr, members
      wcol/<graph-digest>/<order-digest>-reach<K>.npz     value
      dist_orders/<graph-digest>/<mode>-r<R>-t<T>.npz     rank, class_ids, costs

Digest keying (the same :func:`graph_digest` the in-memory cache uses)
makes entries immune to staleness: equal CSR bytes determine every
derived artifact, so a load can never serve data for a different graph.
Loaded graphs are digest-verified; loaded orders are re-validated as
permutations.  Writes go through a temp file + ``os.replace`` so a
concurrent reader (pooled workers sharing one store) never sees a
partial file; any unreadable or malformed entry is treated as a miss.

The store also carries its own *lifecycle* (see
:mod:`repro.api.store_gc`): reads stamp a per-digest ``last_used``
touch file, :meth:`ArtifactStore.gc` evicts least-recently-used digest
directories down to a byte budget (plus an age-based sweep of orphaned
``.tmp`` files from killed writers), :meth:`ArtifactStore.lease` hands
out the per-digest advisory lease two warming processes coordinate
through, and a file that fails validation twice is moved to
``<root>/quarantine/`` with a reason note instead of being re-missed
(and re-recomputed over) forever.

``ArtifactStore(root, mmap=True)`` (or ``REPRO_STORE_MMAP=1``) switches
loads to zero-copy memory maps via :mod:`repro.graphs.npzmap`: warm
starts page in only the bytes a solver touches instead of reading whole
artifacts.  On that path the content digest is *not* re-hashed (it
would fault in every page); instead each member's zip/npy headers and
exact byte length are validated before mapping, and the structural
checks below still run — truncated or partially-written files are
misses in both modes.  ``np.savez`` stores members uncompressed, so
files written by either mode are readable by both.

:class:`~repro.api.cache.PrecomputeCache` layers its LRU tables over a
store (two-tier read-through) — see ``PrecomputeCache(store=...)`` and
:class:`repro.api.workspace.Workspace`, which wires the two together.
"""

from __future__ import annotations

import hashlib
import io
import os
import pathlib
import tempfile
import time
import zipfile
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.api import faults
from repro.graphs.graph import Graph
from repro.orders.linear_order import LinearOrder

if TYPE_CHECKING:
    from repro.api.store_gc import Lease
    from repro.distributed.nd_order import OrderComputation
    from repro.orders.wreach import RankedAdjacency, WReachCSR

__all__ = ["ArtifactStore", "graph_digest", "order_digest"]

#: npz-load failures treated as a store miss: absent, truncated, or
#: foreign files (``BadZipFile`` — npz is a zip) and missing arrays
#: (``KeyError``).
_LOAD_ERRORS = (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile)


def graph_digest(g: Graph) -> str:
    """Content digest of a graph's CSR arrays (stable across processes)."""
    h = hashlib.blake2b(digest_size=16)
    h.update(g.n.to_bytes(8, "little"))
    h.update(g.indptr.tobytes())
    h.update(g.indices.tobytes())
    return h.hexdigest()


def order_digest(order: LinearOrder) -> str:
    """Content digest of a linear order (for order-keyed entries)."""
    return hashlib.blake2b(order.rank.tobytes(), digest_size=16).hexdigest()


class ArtifactStore:
    """Digest-keyed npz persistence of precompute artifacts.

    All ``get_*`` methods return ``None`` on a miss (absent, partial, or
    malformed file); all ``put_*`` methods are atomic per artifact and
    idempotent, so concurrent processes warming the same store are safe.
    The store is pure persistence — memoization, LRU policy, and hit
    accounting live in :class:`~repro.api.cache.PrecomputeCache`.
    """

    #: Artifact categories, in the order ``describe()`` reports them.
    CATEGORIES = ("graphs", "orders", "rank_adj", "wreach", "wcol", "dist_orders")

    #: Validation failures a file survives before quarantine.  Two, not
    #: one: a single failure can be a transient reader-side condition
    #: (interrupted mmap, ENOMEM); the same file failing twice is rot.
    QUARANTINE_STRIKES = 2

    def __init__(self, root: str | os.PathLike, *, mmap: bool | None = None):
        self.root = pathlib.Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        if mmap is None:
            mmap = os.environ.get("REPRO_STORE_MMAP", "") not in ("", "0")
        self.mmap = bool(mmap)
        #: Per-digest monotonic time of the last ``last_used`` stamp, so
        #: hot read loops do one utime per digest per interval, not per
        #: artifact load.
        self._touched: dict[str, float] = {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = ", mmap=True" if self.mmap else ""
        return f"ArtifactStore({str(self.root)!r}{flag})"

    # -- low-level npz I/O -------------------------------------------------
    def _category(self, path: pathlib.Path) -> str:
        """The store category (top-level subdirectory) a path lives in."""
        try:
            return path.relative_to(self.root).parts[0]
        except (ValueError, IndexError):  # pragma: no cover - foreign path
            return ""

    def _save(self, path: pathlib.Path, **arrays: Any) -> None:
        """Atomic npz write: unique temp file in the target dir + replace.

        ``mkstemp`` (not a pid-derived name) keeps concurrent *threads*
        of one process from sharing a temp inode, so a reader can never
        observe a partially-written artifact under the final path.  A
        successful write also clears any corruption strikes recorded
        against the path — fresh bytes start with a clean record.
        """
        path.parent.mkdir(parents=True, exist_ok=True)
        fault = faults.on_save(self._category(path))
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
        )
        tmp: pathlib.Path | None = pathlib.Path(tmp_name)
        try:
            if fault == "torn":
                # Injected writer death mid-write: half the payload
                # lands in the temp file, the replace never happens, and
                # the orphaned .tmp is what sweep_tmp() must reclaim.
                buf = io.BytesIO()
                np.savez(buf, **arrays)
                payload = buf.getvalue()
                with os.fdopen(fd, "wb") as f:
                    f.write(payload[: max(1, len(payload) // 2)])
                tmp = None  # leak it, deliberately
                return
            with os.fdopen(fd, "wb") as f:
                np.savez(f, **arrays)
            os.replace(tmp, path)
            self._strike_path(path).unlink(missing_ok=True)
            if fault == "corrupt":
                # Injected bit rot: the committed file is truncated so
                # later loads fail validation and exercise quarantine.
                with open(path, "r+b") as f:
                    f.truncate(max(1, path.stat().st_size // 2))
        finally:
            if tmp is not None:
                tmp.unlink(missing_ok=True)

    def _load(self, path: pathlib.Path, *names: str) -> tuple[np.ndarray, ...] | None:
        """The named arrays of an npz file, or ``None`` on any failure.

        In mmap mode the arrays come back as read-only ``np.memmap``
        views; :func:`repro.graphs.npzmap.mmap_npz` validates member
        offsets, npy headers, and exact payload lengths first, so a
        truncated or partially-written file is a miss, never a mapped
        array of garbage tail bytes.
        """
        faults.on_load(self._category(path))
        if self.mmap:
            from repro.graphs.npzmap import mmap_npz

            try:
                return mmap_npz(path, *names)
            except _LOAD_ERRORS:
                return None
        try:
            with np.load(path, allow_pickle=False) as data:
                return tuple(data[name] for name in names)
        except _LOAD_ERRORS:
            return None

    # -- corruption strikes and quarantine -----------------------------------
    def _strike_path(self, path: pathlib.Path) -> pathlib.Path:
        return path.with_name(path.name + ".bad")

    def _note_corrupt(self, path: pathlib.Path, reason: str) -> None:
        """Record a validation failure; quarantine on the second strike.

        Atomic writes mean an *existing* file that fails validation is
        genuinely damaged, not half-written — but silently treating it
        as a miss forever means every process re-fails the load and
        recomputes over a file that will never heal.  After
        ``QUARANTINE_STRIKES`` failures the file moves to
        ``<root>/quarantine/<category>/...`` with a ``.reason.txt``
        note, so the slot becomes a *clean* miss the next write fills.
        """
        if not path.exists():
            return  # absent is an ordinary miss, not corruption
        strike = self._strike_path(path)
        try:
            count = int(strike.read_text().splitlines()[0])
        except (OSError, ValueError, IndexError):
            count = 0
        count += 1
        if count < self.QUARANTINE_STRIKES:
            try:
                strike.write_text(f"{count}\n{reason}\n")
            except OSError:  # pragma: no cover - read-only store
                pass
            return
        try:
            rel = path.relative_to(self.root)
        except ValueError:  # pragma: no cover - foreign path
            rel = pathlib.Path(path.name)
        qpath = self.root / "quarantine" / rel
        qpath.parent.mkdir(parents=True, exist_ok=True)
        try:
            os.replace(path, qpath)
            qpath.with_name(qpath.name + ".reason.txt").write_text(
                f"{reason}\nstrikes: {count}\nquarantined: {time.time():.0f}\n"
            )
        except OSError:  # pragma: no cover - concurrent quarantine
            pass
        strike.unlink(missing_ok=True)

    def _touch(self, digest: str) -> None:
        """Stamp ``last_used`` for a digest (throttled per instance)."""
        now = time.monotonic()
        if now - self._touched.get(digest, -1e9) < 5.0:
            return
        self._touched[digest] = now
        from repro.api import store_gc

        store_gc.touch_last_used(self.root, digest)

    # -- graphs --------------------------------------------------------------
    def _graph_path(self, digest: str) -> pathlib.Path:
        return self.root / "graphs" / f"{digest}.npz"

    def put_graph(self, g: Graph, digest: str | None = None) -> str:
        """Persist a graph's CSR arrays; returns its digest (idempotent).

        Pass ``digest`` when it is already in hand (handles, grouped
        dispatch) to skip re-hashing the CSR arrays — an O(m) cost on
        hot submit paths.
        """
        if digest is None:
            digest = graph_digest(g)
        path = self._graph_path(digest)
        if not path.exists():
            self._save(path, indptr=g.indptr, indices=g.indices)
        return digest

    def get_graph(self, digest: str) -> Graph | None:
        """Load a graph by digest, verified against its own content.

        Full-read mode re-hashes the CSR bytes — only the exact bytes
        that were stored can hash back to the requested key.  Mmap mode
        must not (hashing faults in every page), so it relies on the
        member-level size/header validation done while mapping plus the
        structural indptr checks below; content integrity is the
        filesystem's job there, as for any mapped database file.
        """
        path = self._graph_path(digest)
        loaded = self._load(path, "indptr", "indices")
        if loaded is None:
            self._note_corrupt(path, "unreadable graph npz")
            return None
        indptr, indices = loaded
        if (
            indptr.ndim != 1
            or indices.ndim != 1
            or len(indptr) < 1
            or indptr[0] != 0
            or int(indptr[-1]) != len(indices)
            or bool(np.any(np.diff(indptr) < 0))
        ):
            self._note_corrupt(path, "malformed CSR offsets")
            return None
        try:
            g = Graph(
                indptr.astype(np.int64, copy=False),
                indices.astype(np.int32, copy=False),
                _checked=True,
            )
        except _LOAD_ERRORS:
            self._note_corrupt(path, "CSR arrays rejected by Graph")
            return None
        if self.mmap:
            self._touch(digest)
            return g
        if graph_digest(g) != digest:
            self._note_corrupt(path, "content digest mismatch")
            return None
        self._touch(digest)
        return g

    def graph_digests(self) -> list[str]:
        """Digests of every persisted graph, sorted."""
        gdir = self.root / "graphs"
        return sorted(p.stem for p in gdir.glob("*.npz")) if gdir.is_dir() else []

    def graph_meta(self, digest: str) -> tuple[int, int] | None:
        """``(n, m)`` of a persisted graph from its offsets alone.

        Listings (``describe``, ``Workspace.handles``) use this to avoid
        reading — or re-hashing — the potentially large neighbor arrays.
        """
        loaded = self._load(self._graph_path(digest), "indptr")
        if loaded is None:
            return None
        (indptr,) = loaded
        if indptr.ndim != 1 or len(indptr) < 1:
            return None
        try:
            return len(indptr) - 1, int(indptr[-1]) // 2
        except (TypeError, ValueError):
            return None

    # -- linear orders ---------------------------------------------------
    def _order_path(self, gdigest: str, strategy: str, radius: int) -> pathlib.Path:
        return self.root / "orders" / gdigest / f"{strategy}-r{int(radius)}.npz"

    def put_order(
        self, gdigest: str, strategy: str, radius: int, order: LinearOrder
    ) -> None:
        self._save(self._order_path(gdigest, strategy, radius), rank=order.rank)

    def get_order(
        self, gdigest: str, strategy: str, radius: int, n: int | None = None
    ) -> LinearOrder | None:
        path = self._order_path(gdigest, strategy, radius)
        loaded = self._load(path, "rank")
        if loaded is None:
            self._note_corrupt(path, "unreadable order npz")
            return None
        (rank,) = loaded
        if n is not None and len(rank) != n:
            self._note_corrupt(path, f"rank length {len(rank)} != n {n}")
            return None
        try:
            # LinearOrder re-validates the permutation property.
            order = LinearOrder(rank.astype(np.int64, copy=False))
        except Exception:
            self._note_corrupt(path, "rank is not a permutation")
            return None
        self._touch(gdigest)
        return order

    # -- rank-permuted adjacency ------------------------------------------
    def _rank_adj_path(self, gdigest: str, odigest: str) -> pathlib.Path:
        return self.root / "rank_adj" / gdigest / f"{odigest}.npz"

    def put_rank_adj(self, gdigest: str, odigest: str, adj: RankedAdjacency) -> None:
        """Persist the rank-sorted neighbor array (the lexsort product)."""
        self._save(self._rank_adj_path(gdigest, odigest), nbrs=adj.nbrs)

    def get_rank_adj(
        self, gdigest: str, odigest: str, g: Graph, order: LinearOrder
    ) -> RankedAdjacency | None:
        """Rebuild a :class:`RankedAdjacency` around the stored permutation."""
        from repro.orders.wreach import RankedAdjacency

        path = self._rank_adj_path(gdigest, odigest)
        loaded = self._load(path, "nbrs")
        if loaded is None:
            self._note_corrupt(path, "unreadable rank_adj npz")
            return None
        (nbrs,) = loaded
        if len(nbrs) != len(g.indices):
            self._note_corrupt(path, "nbrs length disagrees with graph")
            return None
        try:
            adj = RankedAdjacency.from_sorted_nbrs(
                g, order, nbrs.astype(np.int64, copy=False)
            )
        except Exception:
            self._note_corrupt(path, "nbrs rejected by RankedAdjacency")
            return None
        self._touch(gdigest)
        return adj

    # -- WReach CSR ---------------------------------------------------------
    def _wreach_path(self, gdigest: str, odigest: str, reach: int) -> pathlib.Path:
        return self.root / "wreach" / gdigest / f"{odigest}-reach{int(reach)}.npz"

    def put_wreach(self, gdigest: str, odigest: str, reach: int, csr: WReachCSR) -> None:
        self._save(
            self._wreach_path(gdigest, odigest, reach),
            indptr=csr.indptr,
            members=csr.members,
        )

    def get_wreach(
        self, gdigest: str, odigest: str, reach: int, g: Graph, order: LinearOrder
    ) -> WReachCSR | None:
        from repro.orders.wreach import WReachCSR

        path = self._wreach_path(gdigest, odigest, reach)
        loaded = self._load(path, "indptr", "members")
        if loaded is None:
            self._note_corrupt(path, "unreadable wreach npz")
            return None
        indptr, members = loaded
        if (
            indptr.ndim != 1
            or members.ndim != 1
            or len(indptr) != g.n + 1
            or (g.n > 0 and (indptr[0] != 0 or int(indptr[-1]) != len(members)))
        ):
            self._note_corrupt(path, "malformed wreach CSR offsets")
            return None
        self._touch(gdigest)
        return WReachCSR(
            indptr.astype(np.int64, copy=False),
            members.astype(np.int64, copy=False),
            int(reach),
            order.rank,
        )

    # -- wcol ---------------------------------------------------------------
    def _wcol_path(self, gdigest: str, odigest: str, reach: int) -> pathlib.Path:
        return self.root / "wcol" / gdigest / f"{odigest}-reach{int(reach)}.npz"

    def put_wcol(self, gdigest: str, odigest: str, reach: int, value: int) -> None:
        self._save(
            self._wcol_path(gdigest, odigest, reach),
            value=np.asarray(int(value), dtype=np.int64),
        )

    def get_wcol(self, gdigest: str, odigest: str, reach: int) -> int | None:
        path = self._wcol_path(gdigest, odigest, reach)
        loaded = self._load(path, "value")
        if loaded is None or loaded[0].size != 1:
            self._note_corrupt(path, "unreadable or non-scalar wcol npz")
            return None
        try:
            value = int(loaded[0].reshape(()))
        except (TypeError, ValueError):
            self._note_corrupt(path, "non-integer wcol value")
            return None
        self._touch(gdigest)
        return value

    # -- distributed order computations -------------------------------------
    def _dist_order_path(
        self, gdigest: str, mode: str, radius: int, threshold: int | None
    ) -> pathlib.Path:
        t = "auto" if threshold is None else str(int(threshold))
        return self.root / "dist_orders" / gdigest / f"{mode}-r{int(radius)}-t{t}.npz"

    def put_dist_order(
        self,
        gdigest: str,
        mode: str,
        radius: int,
        threshold: int | None,
        oc: OrderComputation,
    ) -> None:
        costs = np.asarray(
            [oc.rounds, oc.normalized_rounds, oc.max_payload_words, oc.total_words],
            dtype=np.int64,
        )
        self._save(
            self._dist_order_path(gdigest, mode, radius, threshold),
            rank=oc.order.rank,
            class_ids=oc.class_ids,
            costs=costs,
        )

    def get_dist_order(
        self,
        gdigest: str,
        mode: str,
        radius: int,
        threshold: int | None,
        n: int | None = None,
    ) -> OrderComputation | None:
        from repro.distributed.nd_order import OrderComputation

        path = self._dist_order_path(gdigest, mode, radius, threshold)
        loaded = self._load(path, "rank", "class_ids", "costs")
        if loaded is None:
            self._note_corrupt(path, "unreadable dist_order npz")
            return None
        rank, class_ids, costs = loaded
        if (n is not None and len(rank) != n) or len(costs) != 4:
            self._note_corrupt(path, "malformed dist_order arrays")
            return None
        try:
            order = LinearOrder(rank.astype(np.int64, copy=False))
        except Exception:
            self._note_corrupt(path, "rank is not a permutation")
            return None
        self._touch(gdigest)
        return OrderComputation(
            order=order,
            class_ids=class_ids.astype(np.int64, copy=False),
            rounds=int(costs[0]),
            normalized_rounds=int(costs[1]),
            max_payload_words=int(costs[2]),
            total_words=int(costs[3]),
            mode=mode,
        )

    # -- introspection -------------------------------------------------------
    def describe(self) -> dict:
        """Store contents for ``repro workspace info``: graphs + categories.

        Returns ``{"root", "graphs": [{"digest", "n", "m", "artifacts"}...],
        "categories": {name: {"artifacts", "bytes"}}, "total_bytes"}``.
        """
        categories: dict[str, dict[str, int]] = {}
        per_graph: dict[str, int] = {}
        for cat in self.CATEGORIES:
            cdir = self.root / cat
            count = size = 0
            for path in sorted(cdir.rglob("*.npz")) if cdir.is_dir() else []:
                count += 1
                size += path.stat().st_size
                if cat != "graphs":
                    per_graph[path.parent.name] = per_graph.get(path.parent.name, 0) + 1
            categories[cat] = {"artifacts": count, "bytes": size}
        graphs = []
        for digest in self.graph_digests():
            # A listing only needs n and m — both fall out of the indptr
            # array alone, so the (potentially huge) indices arrays are
            # never read and nothing is re-hashed here.
            meta = self.graph_meta(digest)
            n, m = meta if meta is not None else (-1, -1)
            graphs.append(
                {
                    "digest": digest,
                    "n": n,
                    "m": m,
                    "artifacts": per_graph.get(digest, 0),
                }
            )
        return {
            "root": str(self.root),
            "graphs": graphs,
            "categories": categories,
            "total_bytes": sum(c["bytes"] for c in categories.values()),
        }

    # -- lifecycle (leases, GC, status) --------------------------------------
    def lease(
        self,
        digest: str,
        *,
        ttl_s: float | None = None,
        timeout_s: float | None = None,
    ) -> "Lease":
        """The advisory per-digest lease two warming processes share.

        Used as a context manager around expensive precompute: the
        holder computes while contenders wait, then re-check the store
        and load what the holder persisted.  ``REPRO_LEASE_TTL_S`` /
        ``REPRO_LEASE_TIMEOUT_S`` override the defaults process-wide
        (the knob the fault-injection suite and ops tuning use).
        """
        from repro.api import store_gc

        if ttl_s is None:
            ttl_s = _env_float("REPRO_LEASE_TTL_S", store_gc.DEFAULT_TTL_S)
        if timeout_s is None:
            timeout_s = _env_float(
                "REPRO_LEASE_TIMEOUT_S", store_gc.DEFAULT_TIMEOUT_S
            )
        return store_gc.Lease(self.root, digest, ttl_s=ttl_s, timeout_s=timeout_s)

    def sweep_tmp(self, max_age_s: float | None = None) -> list[str]:
        """Remove orphaned ``.tmp`` files older than ``max_age_s``."""
        from repro.api import store_gc

        if max_age_s is None:
            max_age_s = store_gc.DEFAULT_TMP_AGE_S
        return store_gc.sweep_tmp(self.root, max_age_s=max_age_s)

    def gc(self, max_bytes: int, **kwargs: Any) -> dict[str, Any]:
        """LRU-by-``last_used`` eviction down to ``max_bytes`` (+ tmp sweep).

        See :func:`repro.api.store_gc.collect` for the report shape and
        the leased-digest exclusion rule.
        """
        from repro.api import store_gc

        return store_gc.collect(self, int(max_bytes), **kwargs)

    def status(self) -> dict[str, Any]:
        """Per-digest lifecycle report (``repro store info``): size,
        ``last_used``, lease state, and quarantine contents."""
        from repro.api import store_gc

        return store_gc.status(self)

    def lifecycle_summary(self) -> dict[str, Any]:
        """Aggregate lease/quarantine counts for status surfaces.

        Unlike :meth:`status` this never walks the artifact inventory —
        it only counts lease files (total and still-active by TTL) and
        quarantined payloads, so a long-lived daemon can poll it per
        status request without touching every digest directory.
        """
        from repro.api import store_gc

        ttl_s = _env_float("REPRO_LEASE_TTL_S", store_gc.DEFAULT_TTL_S)
        lease_dir = self.root / store_gc.LEASE_DIR
        leases_total = 0
        leases_active = 0
        if lease_dir.is_dir():
            for path in lease_dir.iterdir():
                if not path.name.endswith(".lease"):
                    continue
                leases_total += 1
                digest = path.name[: -len(".lease")]
                if store_gc.is_leased(self.root, digest, ttl_s=ttl_s):
                    leases_active += 1
        qdir = self.root / store_gc.QUARANTINE_DIR
        quarantined = 0
        quarantined_bytes = 0
        if qdir.is_dir():
            for path in qdir.rglob("*"):
                if not path.is_file() or path.name.endswith(".reason.txt"):
                    continue
                quarantined += 1
                quarantined_bytes += path.stat().st_size
        return {
            "leases_total": leases_total,
            "leases_active": leases_active,
            "quarantined": quarantined,
            "quarantined_bytes": quarantined_bytes,
        }


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ[name])
    except (KeyError, ValueError):
        return default
