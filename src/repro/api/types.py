"""Request/response types of the unified solver API.

Every algorithm in the library — sequential Theorem 5, the Dvořák and
greedy baselines, LP machinery, the CONGEST_BC pipelines, the planar
LOCAL corollary — is reachable through one request shape
(:class:`SolveRequest`) and answers with one response shape
(:class:`SolveResult`).  The capability metadata
(:class:`SolverCapabilities`) is what lets the façade reject
unsupported combinations (e.g. ``connect=True`` on a solver with no
connection phase) *before* running anything, and what
``list_solvers()`` renders for introspection.

A request's ``graph`` is either the :class:`~repro.graphs.graph.Graph`
itself or a :class:`GraphHandle` — the content-addressed reference a
:class:`~repro.api.workspace.Workspace` hands out, which pickles as
digest-only metadata so pooled batch execution ships each distinct
graph once instead of once per request.

All types are plain frozen dataclasses built from picklable parts so a
request can cross a process boundary in :func:`repro.api.solve_batch`.
:class:`SolveResult` additionally round-trips through JSON
(:meth:`SolveResult.to_json` / :meth:`SolveResult.from_json`) so
harness result files and service responses share one schema.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.core.certify import Certificate
from repro.graphs.graph import Graph

__all__ = [
    "GraphHandle",
    "SolveRequest",
    "SolveResult",
    "SolverCapabilities",
    "SolverInfo",
    "SolverOutput",
]

#: Execution models a solver can declare.
MODELS = ("sequential", "LOCAL", "CONGEST_BC")


@dataclass(frozen=True)
class GraphHandle:
    """A content-addressed reference to a graph in a workspace.

    Identity (equality, hashing, pickling) is the ``(digest, n, m)``
    metadata; the ``graph`` field is an in-process convenience so a
    handle obtained from :meth:`repro.api.workspace.Workspace.add` can
    be solved directly without another registry lookup.  Pickling
    deliberately drops the graph — that is what lets pooled dispatch
    send a handle per request but the CSR arrays only once per distinct
    graph (workers re-resolve handles from their per-process registry
    or the workspace's artifact store).
    """

    digest: str
    n: int
    m: int
    graph: Graph | None = field(default=None, compare=False, repr=False)

    @classmethod
    def of(cls, g: Graph) -> "GraphHandle":
        """The handle of a concrete graph (digest computed here)."""
        from repro.api.store import graph_digest

        return cls(digest=graph_digest(g), n=g.n, m=g.m, graph=g)

    def detached(self) -> "GraphHandle":
        """This handle without its in-process graph reference."""
        return GraphHandle(digest=self.digest, n=self.n, m=self.m)

    def __getstate__(self) -> tuple[str, int, int]:
        return (self.digest, self.n, self.m)

    def __setstate__(self, state: tuple[str, int, int]) -> None:
        digest, n, m = state
        object.__setattr__(self, "digest", digest)
        object.__setattr__(self, "n", n)
        object.__setattr__(self, "m", m)
        object.__setattr__(self, "graph", None)


@dataclass(frozen=True)
class SolveRequest:
    """A normalized solver invocation.

    Attributes
    ----------
    graph:
        The input :class:`~repro.graphs.graph.Graph`, or a
        :class:`GraphHandle` from a workspace (resolved before the
        solver runs; an unresolved detached handle outside a workspace
        is rejected upfront).
    radius:
        Distance parameter r of the domination problem.
    algorithm:
        Registry name, e.g. ``"seq.wreach"`` (see ``list_solvers()``).
    order_strategy:
        Linear-order construction for order-based solvers (the A1
        ablation axis); ignored by order-free solvers.
    connect:
        Also produce a *connected* distance-r dominating set.
    prune:
        Drop redundant dominators afterwards (Theorem-5 bound still
        holds for the subset; the reported set and certificate are the
        pruned ones).
    certify:
        Attach the per-instance Theorem-5 certificate when the solver
        is order-based (``None`` otherwise).
    with_lp:
        Include the LP lower bound in the certificate.
    validate:
        Re-check the output with the independent BFS validator and
        record the verdict under ``extras["valid"]``.
    seed:
        Seed for randomized solvers (ruling set, KW-LP rounding).
    engine:
        Simulator execution path for solvers that declare one:
        ``"batch"`` (vectorized round engine), ``"pernode"`` (the
        per-node reference loop), or ``"auto"`` (default — batch where
        the solver supports it).  Results are identical either way; the
        flag trades wall time for the reference execution.  Requesting
        an engine a solver does not declare is rejected upfront.
    params:
        Solver-specific knobs, e.g. ``{"order_mode": "augmented"}`` for
        ``dist.congest`` or ``{"time_limit": 30.0}`` for ``seq.exact``.
    deadline_s:
        Wall-clock budget for *this request* inside a batch executor.
        Expiry settles the request's future with a
        ``reason="deadline"`` :class:`~repro.errors.RequestFailed`
        while sibling requests keep running (pooled workspaces arm a
        timer; deferred ones check before computing).  ``None``
        (default) means unbounded.
    """

    graph: Graph | GraphHandle
    radius: int = 1
    algorithm: str = "seq.wreach"
    order_strategy: str = "degeneracy"
    connect: bool = False
    prune: bool = False
    certify: bool = False
    with_lp: bool = False
    validate: bool = False
    seed: int = 0
    engine: str = "auto"
    params: Mapping[str, Any] = field(default_factory=dict)
    deadline_s: float | None = None

    def resolve_engine(
        self, capabilities: "SolverCapabilities", cost_model: Any = None
    ) -> str | None:
        """The execution engine this request runs on, or ``None``.

        ``"auto"`` resolves through the measured engine cost model
        (:mod:`repro.api.engine_model`): the declared engine predicted
        cheapest for this request's size and radius.  Without a usable
        model — no committed calibration artifact, or a declared engine
        it never measured — ``"auto"`` falls back to the solver's
        declared preference (the first engine it lists).  An explicit
        engine must be declared by the solver.  Engine-free solvers
        (every sequential one) resolve to ``None``.

        ``cost_model`` overrides the process-default model (tests and
        calibration tooling); pass an
        :class:`~repro.api.engine_model.EngineCostModel`.
        """
        if self.engine not in ("auto", "batch", "pernode"):
            raise ValueError(
                f"unknown engine {self.engine!r} (use 'auto', 'batch' or 'pernode')"
            )
        if not capabilities.engines:
            if self.engine != "auto":
                raise ValueError(
                    f"solver has no engine dimension (engine={self.engine!r} requested)"
                )
            return None
        if self.engine == "auto":
            if len(capabilities.engines) == 1:
                return capabilities.engines[0]
            from repro.api.engine_model import default_model

            model = cost_model if cost_model is not None else default_model()
            if model is None:
                return capabilities.engines[0]
            return model.pick_engine(
                self.graph.n, self.graph.m, self.radius, capabilities.engines
            )
        if self.engine not in capabilities.engines:
            raise ValueError(
                f"engine {self.engine!r} not available (solver declares "
                f"{capabilities.engines})"
            )
        return self.engine

    def graph_key(self) -> str:
        """The content digest identifying this request's graph.

        Works for both shapes of ``graph`` — this is the key batch
        executors co-locate requests by.
        """
        if isinstance(self.graph, GraphHandle):
            return self.graph.digest
        from repro.api.store import graph_digest

        return graph_digest(self.graph)

    def resolved(self, g: Graph) -> "SolveRequest":
        """This request with ``graph`` replaced by the concrete graph."""
        from dataclasses import replace

        return replace(self, graph=g)


@dataclass(frozen=True)
class SolverCapabilities:
    """What a registered solver can do, for upfront request checking."""

    model: str = "sequential"  # one of MODELS
    supports_connect: bool = False
    supports_order_strategy: bool = False
    deterministic: bool = True
    min_radius: int = 0
    max_radius: int | None = None  # None = unbounded
    requires: str | None = None  # e.g. "scipy", "tree input"
    guarantee: str = ""  # the approximation bound the solver carries
    description: str = ""
    #: Simulator execution paths the solver can run on, preferred first
    #: (e.g. ``("batch", "pernode")``); empty = no engine dimension.
    engines: tuple[str, ...] = ()

    def supports_radius(self, radius: int) -> bool:
        if radius < self.min_radius:
            return False
        return self.max_radius is None or radius <= self.max_radius

    def radius_range(self) -> str:
        hi = "inf" if self.max_radius is None else str(self.max_radius)
        return f"[{self.min_radius}, {hi}]"


@dataclass(frozen=True)
class SolverInfo:
    """One ``list_solvers()`` row: name plus capability metadata."""

    name: str
    capabilities: SolverCapabilities


@dataclass(frozen=True)
class SolverOutput:
    """What a solver adapter hands back to the façade (internal).

    The façade adds timing, pruning, certification, and validation on
    top, so adapters stay thin translations from the legacy entry
    points to one shape.
    """

    dominators: tuple[int, ...]
    dominator_of: np.ndarray | None = None
    connected_set: tuple[int, ...] | None = None
    order: Any = None  # LinearOrder of order-based solvers
    rounds: int | None = None
    total_words: int | None = None
    phase_rounds: Mapping[str, int] | None = None
    raw: Any = None  # the legacy result object, verbatim
    extras: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SolveResult:
    """Uniform solver response.

    Attributes
    ----------
    algorithm / radius / order_strategy:
        Echo of the request (what actually ran).
    dominators:
        The reported distance-r dominating set (pruned if requested).
    connected_set:
        The connected superset when ``connect=True`` was requested
        (``None`` otherwise).
    certificate:
        Theorem-5 per-instance certificate for order-based solvers when
        ``certify=True``; its ``solution_size`` matches ``dominators``.
    rounds / total_words / phase_rounds:
        Distributed cost accounting (``None`` for sequential solvers).
    wall_time_s:
        Wall-clock seconds spent inside the solver adapter.
    raw:
        The legacy result object (``DomSetResult``,
        ``DistributedDomSet``, ``UnifiedResult``, ...) for callers that
        need algorithm-specific fields.
    extras:
        Anything else: ``raw_size`` before pruning, validation verdict,
        connection diagnostics.
    """

    algorithm: str
    radius: int
    order_strategy: str
    dominators: tuple[int, ...]
    connected_set: tuple[int, ...] | None
    certificate: Certificate | None
    rounds: int | None
    total_words: int | None
    phase_rounds: Mapping[str, int] | None
    wall_time_s: float
    raw: Any
    extras: Mapping[str, Any] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.dominators)

    @property
    def connected_size(self) -> int | None:
        return None if self.connected_set is None else len(self.connected_set)

    def summary(self) -> str:
        """One-line human description (used by the CLI and harness)."""
        bits = [f"{self.algorithm}: |D| = {self.size} (r = {self.radius})"]
        if self.connected_set is not None:
            bits.append(f"|D'| = {len(self.connected_set)}")
        if self.certificate is not None:
            bits.append(f"certified <= {self.certificate.certified_ratio} * OPT")
        if self.rounds is not None:
            bits.append(f"{self.rounds} rounds")
        bits.append(f"{self.wall_time_s * 1e3:.1f} ms")
        return ", ".join(bits)

    # -- JSON schema (shared by harness result files and services) -------
    def to_dict(self) -> dict[str, Any]:
        """JSON-shaped dict: the schema harness files and services share.

        ``raw`` (the legacy result object) is never serialized; extras
        are carried best-effort — JSON-representable values (numpy
        scalars and arrays are converted) are kept, the rest are
        dropped with their keys recorded under ``extras_omitted`` so a
        reader can tell elision from absence.
        """
        extras: dict[str, Any] = {}
        omitted: list[str] = []
        for key, value in self.extras.items():
            safe = _json_safe(value)
            if safe is _UNSAFE:
                omitted.append(str(key))
            else:
                extras[str(key)] = safe
        out: dict[str, Any] = {
            "schema": RESULT_SCHEMA,
            "algorithm": self.algorithm,
            "radius": self.radius,
            "order_strategy": self.order_strategy,
            "dominators": [int(v) for v in self.dominators],
            "connected_set": (
                None
                if self.connected_set is None
                else [int(v) for v in self.connected_set]
            ),
            "certificate": (
                None
                if self.certificate is None
                else {
                    "radius": self.certificate.radius,
                    "solution_size": self.certificate.solution_size,
                    "certified_c": self.certificate.certified_c,
                    "lp_bound": self.certificate.lp_bound,
                }
            ),
            "rounds": self.rounds,
            "total_words": self.total_words,
            "phase_rounds": dict(self.phase_rounds) if self.phase_rounds else None,
            "wall_time_s": self.wall_time_s,
            "extras": extras,
        }
        if omitted:
            out["extras_omitted"] = sorted(omitted)
        return out

    def to_json(self, **dumps_kwargs: Any) -> str:
        """``json.dumps(self.to_dict())`` (kwargs pass through)."""
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SolveResult":
        """Rebuild a result from :meth:`to_dict` output.

        ``raw`` comes back as ``None`` (it is never serialized);
        everything else — certificate included — round-trips exactly.
        Documents from a different schema version are rejected upfront
        instead of being misread field by field.
        """
        schema = data.get("schema", RESULT_SCHEMA)
        if schema != RESULT_SCHEMA:
            raise ValueError(
                f"unsupported SolveResult schema {schema!r} "
                f"(this version reads schema {RESULT_SCHEMA})"
            )
        cert = data.get("certificate")
        connected = data.get("connected_set")
        phases = data.get("phase_rounds")
        return cls(
            algorithm=data["algorithm"],
            radius=int(data["radius"]),
            order_strategy=data.get("order_strategy", ""),
            dominators=tuple(int(v) for v in data["dominators"]),
            connected_set=(
                None if connected is None else tuple(int(v) for v in connected)
            ),
            certificate=(
                None
                if cert is None
                else Certificate(
                    radius=int(cert["radius"]),
                    solution_size=int(cert["solution_size"]),
                    certified_c=int(cert["certified_c"]),
                    lp_bound=(
                        None if cert["lp_bound"] is None else float(cert["lp_bound"])
                    ),
                )
            ),
            rounds=None if data.get("rounds") is None else int(data["rounds"]),
            total_words=(
                None if data.get("total_words") is None else int(data["total_words"])
            ),
            phase_rounds=(
                None if phases is None else {str(k): int(v) for k, v in phases.items()}
            ),
            wall_time_s=float(data["wall_time_s"]),
            raw=None,
            extras=dict(data.get("extras", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "SolveResult":
        """Rebuild a result from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


#: Version tag of the :meth:`SolveResult.to_dict` schema.
RESULT_SCHEMA = 1

#: Sentinel for values :func:`_json_safe` cannot represent.
_UNSAFE = object()


def _json_safe(value: Any) -> Any:
    """``value`` as JSON-representable data, or ``_UNSAFE``.

    Numpy scalars and arrays convert to their Python equivalents;
    containers convert element-wise and become unsafe if any element
    is (a half-serialized container would misrepresent the extra).
    """
    if isinstance(value, float) or isinstance(value, np.floating):
        value = float(value)
        # NaN/Infinity are not JSON: strict parsers (JSON.parse, jq)
        # reject the whole document, so they are omitted instead.
        return value if math.isfinite(value) else _UNSAFE
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, (np.bool_, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        # Recurse: an object-dtype array can carry non-JSON values that
        # must surface as _UNSAFE, not crash json.dumps later.
        return _json_safe(value.tolist())
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [_json_safe(v) for v in value]
        if any(v is _UNSAFE for v in items):
            return _UNSAFE
        if isinstance(value, (set, frozenset)):
            try:
                return sorted(items)
            except TypeError:
                return items
        return items
    if isinstance(value, Mapping):
        out = {}
        for k, v in value.items():
            safe = _json_safe(v)
            if not isinstance(k, str) or safe is _UNSAFE:
                return _UNSAFE
            out[k] = safe
        return out
    return _UNSAFE
