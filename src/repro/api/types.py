"""Request/response types of the unified solver API.

Every algorithm in the library — sequential Theorem 5, the Dvořák and
greedy baselines, LP machinery, the CONGEST_BC pipelines, the planar
LOCAL corollary — is reachable through one request shape
(:class:`SolveRequest`) and answers with one response shape
(:class:`SolveResult`).  The capability metadata
(:class:`SolverCapabilities`) is what lets the façade reject
unsupported combinations (e.g. ``connect=True`` on a solver with no
connection phase) *before* running anything, and what
``list_solvers()`` renders for introspection.

All types are plain frozen dataclasses built from picklable parts so a
request can cross a process boundary in :func:`repro.api.solve_batch`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.core.certify import Certificate
from repro.graphs.graph import Graph

__all__ = [
    "SolveRequest",
    "SolveResult",
    "SolverCapabilities",
    "SolverInfo",
    "SolverOutput",
]

#: Execution models a solver can declare.
MODELS = ("sequential", "LOCAL", "CONGEST_BC")


@dataclass(frozen=True)
class SolveRequest:
    """A normalized solver invocation.

    Attributes
    ----------
    graph:
        The input :class:`~repro.graphs.graph.Graph`.
    radius:
        Distance parameter r of the domination problem.
    algorithm:
        Registry name, e.g. ``"seq.wreach"`` (see ``list_solvers()``).
    order_strategy:
        Linear-order construction for order-based solvers (the A1
        ablation axis); ignored by order-free solvers.
    connect:
        Also produce a *connected* distance-r dominating set.
    prune:
        Drop redundant dominators afterwards (Theorem-5 bound still
        holds for the subset; the reported set and certificate are the
        pruned ones).
    certify:
        Attach the per-instance Theorem-5 certificate when the solver
        is order-based (``None`` otherwise).
    with_lp:
        Include the LP lower bound in the certificate.
    validate:
        Re-check the output with the independent BFS validator and
        record the verdict under ``extras["valid"]``.
    seed:
        Seed for randomized solvers (ruling set, KW-LP rounding).
    engine:
        Simulator execution path for solvers that declare one:
        ``"batch"`` (vectorized round engine), ``"pernode"`` (the
        per-node reference loop), or ``"auto"`` (default — batch where
        the solver supports it).  Results are identical either way; the
        flag trades wall time for the reference execution.  Requesting
        an engine a solver does not declare is rejected upfront.
    params:
        Solver-specific knobs, e.g. ``{"order_mode": "augmented"}`` for
        ``dist.congest`` or ``{"time_limit": 30.0}`` for ``seq.exact``.
    """

    graph: Graph
    radius: int = 1
    algorithm: str = "seq.wreach"
    order_strategy: str = "degeneracy"
    connect: bool = False
    prune: bool = False
    certify: bool = False
    with_lp: bool = False
    validate: bool = False
    seed: int = 0
    engine: str = "auto"
    params: Mapping[str, Any] = field(default_factory=dict)

    def resolve_engine(self, capabilities: "SolverCapabilities") -> str | None:
        """The execution engine this request runs on, or ``None``.

        ``"auto"`` resolves to the solver's preferred engine (the first
        it declares); an explicit engine must be declared by the solver.
        Engine-free solvers (every sequential one) resolve to ``None``.
        """
        if self.engine not in ("auto", "batch", "pernode"):
            raise ValueError(
                f"unknown engine {self.engine!r} (use 'auto', 'batch' or 'pernode')"
            )
        if not capabilities.engines:
            if self.engine != "auto":
                raise ValueError(
                    f"solver has no engine dimension (engine={self.engine!r} requested)"
                )
            return None
        if self.engine == "auto":
            return capabilities.engines[0]
        if self.engine not in capabilities.engines:
            raise ValueError(
                f"engine {self.engine!r} not available (solver declares "
                f"{capabilities.engines})"
            )
        return self.engine


@dataclass(frozen=True)
class SolverCapabilities:
    """What a registered solver can do, for upfront request checking."""

    model: str = "sequential"  # one of MODELS
    supports_connect: bool = False
    supports_order_strategy: bool = False
    deterministic: bool = True
    min_radius: int = 0
    max_radius: int | None = None  # None = unbounded
    requires: str | None = None  # e.g. "scipy", "tree input"
    guarantee: str = ""  # the approximation bound the solver carries
    description: str = ""
    #: Simulator execution paths the solver can run on, preferred first
    #: (e.g. ``("batch", "pernode")``); empty = no engine dimension.
    engines: tuple[str, ...] = ()

    def supports_radius(self, radius: int) -> bool:
        if radius < self.min_radius:
            return False
        return self.max_radius is None or radius <= self.max_radius

    def radius_range(self) -> str:
        hi = "inf" if self.max_radius is None else str(self.max_radius)
        return f"[{self.min_radius}, {hi}]"


@dataclass(frozen=True)
class SolverInfo:
    """One ``list_solvers()`` row: name plus capability metadata."""

    name: str
    capabilities: SolverCapabilities


@dataclass(frozen=True)
class SolverOutput:
    """What a solver adapter hands back to the façade (internal).

    The façade adds timing, pruning, certification, and validation on
    top, so adapters stay thin translations from the legacy entry
    points to one shape.
    """

    dominators: tuple[int, ...]
    dominator_of: np.ndarray | None = None
    connected_set: tuple[int, ...] | None = None
    order: Any = None  # LinearOrder of order-based solvers
    rounds: int | None = None
    total_words: int | None = None
    phase_rounds: Mapping[str, int] | None = None
    raw: Any = None  # the legacy result object, verbatim
    extras: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SolveResult:
    """Uniform solver response.

    Attributes
    ----------
    algorithm / radius / order_strategy:
        Echo of the request (what actually ran).
    dominators:
        The reported distance-r dominating set (pruned if requested).
    connected_set:
        The connected superset when ``connect=True`` was requested
        (``None`` otherwise).
    certificate:
        Theorem-5 per-instance certificate for order-based solvers when
        ``certify=True``; its ``solution_size`` matches ``dominators``.
    rounds / total_words / phase_rounds:
        Distributed cost accounting (``None`` for sequential solvers).
    wall_time_s:
        Wall-clock seconds spent inside the solver adapter.
    raw:
        The legacy result object (``DomSetResult``,
        ``DistributedDomSet``, ``UnifiedResult``, ...) for callers that
        need algorithm-specific fields.
    extras:
        Anything else: ``raw_size`` before pruning, validation verdict,
        connection diagnostics.
    """

    algorithm: str
    radius: int
    order_strategy: str
    dominators: tuple[int, ...]
    connected_set: tuple[int, ...] | None
    certificate: Certificate | None
    rounds: int | None
    total_words: int | None
    phase_rounds: Mapping[str, int] | None
    wall_time_s: float
    raw: Any
    extras: Mapping[str, Any] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.dominators)

    @property
    def connected_size(self) -> int | None:
        return None if self.connected_set is None else len(self.connected_set)

    def summary(self) -> str:
        """One-line human description (used by the CLI and harness)."""
        bits = [f"{self.algorithm}: |D| = {self.size} (r = {self.radius})"]
        if self.connected_set is not None:
            bits.append(f"|D'| = {len(self.connected_set)}")
        if self.certificate is not None:
            bits.append(f"certified <= {self.certificate.certified_ratio} * OPT")
        if self.rounds is not None:
            bits.append(f"{self.rounds} rounds")
        bits.append(f"{self.wall_time_s * 1e3:.1f} ms")
        return ", ".join(bits)
