"""Registered solver adapters: every algorithm behind one signature.

Each adapter translates one legacy entry point into the
``(SolveRequest, PrecomputeCache) -> SolverOutput`` shape.  Adapters
stay *thin*: they fetch shared precomputation (orders, WReach sets,
distributed order runs) from the cache, call the underlying algorithm
unchanged, and report the raw result verbatim — pruning, certification,
timing, and validation are the façade's job, so they behave identically
across all solvers.

Importing this module populates the registry; ``repro.api`` does that
on package import.
"""

from __future__ import annotations

from repro.api.cache import PrecomputeCache
from repro.api.registry import register_solver
from repro.api.types import SolveRequest, SolverCapabilities, SolverOutput
from repro.errors import SolverError

__all__ = []  # everything here is reached through the registry


# ----------------------------------------------------------------------
# seq.* — classical sequential algorithms
# ----------------------------------------------------------------------

@register_solver(
    "seq.wreach",
    SolverCapabilities(
        model="sequential",
        supports_connect=True,
        supports_order_strategy=True,
        guarantee="|D| <= wcol_2r(L) * OPT (Theorem 5)",
        description="Algorithm 1: elect the L-min of each WReach_r set",
    ),
)
def _seq_wreach(req: SolveRequest, cache: PrecomputeCache) -> SolverOutput:
    from repro.core.connect import connect_via_wreach
    from repro.core.domset import domset_sequential

    order = cache.order(req.graph, req.order_strategy, req.radius)
    adj = cache.rank_adjacency(req.graph, order)
    ds = domset_sequential(req.graph, order, req.radius, adj=adj)
    extras = {}
    connected = None
    if req.connect:
        conn = connect_via_wreach(
            req.graph, order, ds.dominators, req.radius, adj=adj
        )
        connected = conn.vertices
        extras["connect_result"] = conn
    return SolverOutput(
        dominators=ds.dominators,
        dominator_of=ds.dominator_of,
        connected_set=connected,
        order=order,
        raw=ds,
        extras=extras,
    )


@register_solver(
    "seq.wreach-min",
    SolverCapabilities(
        model="sequential",
        supports_connect=True,
        supports_order_strategy=True,
        guarantee="|D| <= wcol_2r(L) * OPT (equation (2))",
        description="definitional Theorem 5: materialize WReach_r, elect minima",
    ),
)
def _seq_wreach_min(req: SolveRequest, cache: PrecomputeCache) -> SolverOutput:
    from repro.core.connect import connect_via_wreach
    from repro.core.domset import domset_by_wreach

    order = cache.order(req.graph, req.order_strategy, req.radius)
    # The CSR representation is consumed directly (vectorized election);
    # no per-vertex Python lists are materialized on this path.
    csr = cache.wreach_csr(req.graph, order, req.radius)
    ds = domset_by_wreach(req.graph, order, req.radius, csr=csr)
    extras = {}
    connected = None
    if req.connect:
        conn = connect_via_wreach(
            req.graph,
            order,
            ds.dominators,
            req.radius,
            adj=cache.rank_adjacency(req.graph, order),
        )
        connected = conn.vertices
        extras["connect_result"] = conn
    return SolverOutput(
        dominators=ds.dominators,
        dominator_of=ds.dominator_of,
        connected_set=connected,
        order=order,
        raw=ds,
        extras=extras,
    )


@register_solver(
    "seq.rdomset-orient",
    SolverCapabilities(
        model="sequential",
        supports_order_strategy=True,
        guarantee="valid distance-r set; elected via WReach_r witnesses "
        "(monotone paths only — no Theorem-5 constant)",
        description="spacegraphcats-style orientation tier: r rounds of "
        "in-neighbor label propagation, O(r*m) flat passes",
    ),
)
def _seq_rdomset_orient(req: SolveRequest, cache: PrecomputeCache) -> SolverOutput:
    from repro.core.rdomset_orient import rdomset_orient

    order = cache.order(req.graph, req.order_strategy, req.radius)
    adj = cache.rank_adjacency(req.graph, order)
    ds = rdomset_orient(req.graph, order, req.radius, adj=adj)
    return SolverOutput(
        dominators=ds.dominators,
        dominator_of=ds.dominator_of,
        order=order,
        raw=ds,
    )


@register_solver(
    "seq.dvorak",
    SolverCapabilities(
        model="sequential",
        supports_order_strategy=True,
        guarantee="|D| <= wcol_2r(L)^2 * OPT (Dvorak [21])",
        description="order-greedy: add v iff not yet within distance r of D",
    ),
)
def _seq_dvorak(req: SolveRequest, cache: PrecomputeCache) -> SolverOutput:
    from repro.core.dvorak import domset_dvorak

    order = cache.order(req.graph, req.order_strategy, req.radius)
    ds = domset_dvorak(req.graph, order, req.radius)
    return SolverOutput(
        dominators=ds.dominators,
        dominator_of=ds.dominator_of,
        order=order,
        raw=ds,
    )


@register_solver(
    "seq.greedy",
    SolverCapabilities(
        model="sequential",
        guarantee="|D| <= ln(n) * OPT (set cover)",
        description="lazy max-coverage greedy over closed r-balls",
    ),
)
def _seq_greedy(req: SolveRequest, cache: PrecomputeCache) -> SolverOutput:
    from repro.core.greedy import domset_greedy

    ds = domset_greedy(req.graph, req.radius)
    return SolverOutput(
        dominators=ds.dominators, dominator_of=ds.dominator_of, raw=ds
    )


@register_solver(
    "seq.lp-rounding",
    SolverCapabilities(
        model="sequential",
        min_radius=1,
        requires="scipy",
        guarantee="|D| <= 3a * OPT + fixups (Bansal-Umboh [10])",
        description="covering-LP threshold rounding at 1/(3*arboricity)",
    ),
)
def _seq_lp_rounding(req: SolveRequest, cache: PrecomputeCache) -> SolverOutput:
    from repro.core.lp_rounding import lp_rounding_domset

    res = lp_rounding_domset(
        req.graph, req.radius, arboricity=req.params.get("arboricity")
    )
    return SolverOutput(
        dominators=res.dominators,
        raw=res,
        extras={"lp_value": res.lp_value, "threshold": res.threshold},
    )


@register_solver(
    "seq.exact",
    SolverCapabilities(
        model="sequential",
        requires="scipy MILP; small inputs",
        guarantee="|D| = OPT (proven optimal)",
        description="HiGHS integer program over the r-ball coverage matrix",
    ),
)
def _seq_exact(req: SolveRequest, cache: PrecomputeCache) -> SolverOutput:
    from repro.core.exact import exact_domset

    size, vertices = exact_domset(
        req.graph, req.radius, time_limit=req.params.get("time_limit", 60.0)
    )
    return SolverOutput(dominators=tuple(sorted(vertices)), raw=(size, vertices))


@register_solver(
    "seq.tree-exact",
    SolverCapabilities(
        model="sequential",
        requires="tree input",
        guarantee="|D| = OPT (dynamic program)",
        description="linear-time exact distance-r domination on trees",
    ),
)
def _seq_tree_exact(req: SolveRequest, cache: PrecomputeCache) -> SolverOutput:
    from repro.core.tree_exact import is_tree, tree_domset_exact

    if not is_tree(req.graph):
        raise SolverError("seq.tree-exact requires a tree input")
    size, vertices = tree_domset_exact(req.graph, req.radius)
    return SolverOutput(dominators=tuple(sorted(vertices)), raw=(size, vertices))


# ----------------------------------------------------------------------
# dist.* — message-passing pipelines and distributed-charged baselines
# ----------------------------------------------------------------------

#: Shared with the adapter so the engine the façade reports and the one
#: that actually runs resolve from the same declaration.
_DIST_CONGEST_CAPS = SolverCapabilities(
    model="CONGEST_BC",
    supports_connect=True,
    min_radius=1,
    guarantee="|D| <= wcol_2r * OPT in O(r^2 log n) rounds (Thms 9/10)",
    description="phased CONGEST_BC pipeline: order, WReachDist, election[, join]",
    engines=("batch", "pernode"),
)


def _wave_width(req: SolveRequest, engine: str | None, protocol: str) -> int:
    """The pipelined-wave width for a request on the batch engine.

    An explicit ``params["wave_width"]`` wins; otherwise the calibrated
    cost model decides per ``protocol`` — the pipeline actually being
    run ("election" for the Theorem-9 domset path, "join" for the
    Theorem-10 connect path) — with 0 (global lockstep) absent a model
    verdict.  Scheduling only: results and statistics are identical at
    any width.
    """
    if engine != "batch":
        return 0
    explicit = req.params.get("wave_width")
    if explicit is not None:
        return int(explicit)
    from repro.api.engine_model import default_model

    model = default_model()
    if model is None:
        return 0
    return model.pick_wave_width(
        req.graph.n, req.graph.m, req.radius, protocol=protocol
    )


@register_solver("dist.congest", _DIST_CONGEST_CAPS)
def _dist_congest(req: SolveRequest, cache: PrecomputeCache) -> SolverOutput:
    from repro.distributed.connect_bc import run_connect_bc
    from repro.distributed.domset_bc import run_domset_bc

    # The engine comes from the request via the measured cost model
    # ("auto" picks the predicted-cheapest declared engine); the paths
    # are output- and stats-identical, so the shared distributed-order
    # cache entry is engine-agnostic.
    engine = req.resolve_engine(_DIST_CONGEST_CAPS)
    waves = _wave_width(req, engine, "join" if req.connect else "election")
    mode = req.params.get("order_mode", "h_partition")
    oc = cache.distributed_order(
        req.graph, mode, req.radius, req.params.get("threshold"), engine=engine
    )
    if req.connect:
        # The Theorem-10 runner computes the dominating set on the way
        # to the join phase; running the Theorem-9 pipeline as well
        # would simulate WReach + election twice for identical sets.
        conn = run_connect_bc(
            req.graph, req.radius, oc, engine=engine, wave_width=waves
        )
        return SolverOutput(
            dominators=conn.dominators,
            connected_set=conn.connected_set,
            order=oc.order,
            rounds=conn.total_rounds,
            total_words=conn.total_words,
            phase_rounds=conn.phase_rounds,
            raw=conn,
            extras={"order_computation": oc, "connect_result": conn},
        )
    ds = run_domset_bc(req.graph, req.radius, oc, engine=engine, wave_width=waves)
    return SolverOutput(
        dominators=ds.dominators,
        dominator_of=ds.dominator_of,
        order=oc.order,
        rounds=ds.total_rounds,
        total_words=ds.total_words,
        phase_rounds=ds.phase_rounds,
        raw=ds,
        extras={"order_computation": oc},
    )


#: Shared with the adapter so the engine the façade reports and the one
#: that actually runs resolve from the same declaration.
_DIST_UNIFIED_CAPS = SolverCapabilities(
    model="CONGEST_BC",
    supports_connect=True,
    min_radius=1,
    guarantee="as dist.congest, one continuous protocol (fixed budgets)",
    description="single-execution CONGEST_BC run with the O(log n + r) schedule",
    engines=("batch", "pernode"),
)


@register_solver("dist.congest-unified", _DIST_UNIFIED_CAPS)
def _dist_congest_unified(req: SolveRequest, cache: PrecomputeCache) -> SolverOutput:
    from repro.distributed.unified_bc import run_unified_bc

    engine = req.resolve_engine(_DIST_UNIFIED_CAPS)
    res = run_unified_bc(
        req.graph,
        req.radius,
        connect=req.connect,
        threshold=req.params.get("threshold"),
        engine=engine,
    )
    return SolverOutput(
        dominators=res.dominators,
        dominator_of=res.dominator_of,
        connected_set=res.connected_set if req.connect else None,
        rounds=res.rounds,
        total_words=res.total_words,
        raw=res,
        extras={"max_payload_words": res.max_payload_words},
    )


@register_solver(
    "dist.ruling",
    SolverCapabilities(
        model="LOCAL",
        deterministic=False,
        min_radius=1,
        guarantee="none vs OPT (maximal r-independent set)",
        description="Luby MIS on G^r; dominating by maximality",
    ),
)
def _dist_ruling(req: SolveRequest, cache: PrecomputeCache) -> SolverOutput:
    from repro.distributed.ruling import ruling_domset

    res = ruling_domset(req.graph, req.radius, seed=req.seed)
    return SolverOutput(
        dominators=res.dominators,
        rounds=res.g_rounds,
        raw=res,
        extras={"power_phases": res.power_phases},
    )


@register_solver(
    "dist.parallel-greedy",
    SolverCapabilities(
        model="LOCAL",
        guarantee="O(a log Delta) * OPT (Lenzen-Wattenhofer [38]-style)",
        description="span-threshold parallel greedy, O(log Delta) phases",
    ),
)
def _dist_parallel_greedy(req: SolveRequest, cache: PrecomputeCache) -> SolverOutput:
    from repro.distributed.parallel_greedy import parallel_greedy_domset

    res = parallel_greedy_domset(req.graph, req.radius)
    return SolverOutput(
        dominators=res.dominators,
        rounds=res.local_rounds,
        raw=res,
        extras={"phases": res.phases},
    )


@register_solver(
    "dist.kw-lp",
    SolverCapabilities(
        model="LOCAL",
        deterministic=False,
        guarantee="O(log Delta) * OPT expected (Kuhn-Wattenhofer [34]-style)",
        description="local fractional LP raises + randomized rounding",
    ),
)
def _dist_kw_lp(req: SolveRequest, cache: PrecomputeCache) -> SolverOutput:
    from repro.distributed.kw_lp import kw_lp_domset

    res = kw_lp_domset(req.graph, req.radius, seed=req.seed)
    return SolverOutput(
        dominators=res.dominators,
        rounds=res.local_rounds,
        raw=res,
        extras={"fractional_cost": res.fractional_cost, "phases": res.phases},
    )


# ----------------------------------------------------------------------
# local.* — constant-round LOCAL compositions
# ----------------------------------------------------------------------

@register_solver(
    "local.planar-cds",
    SolverCapabilities(
        model="LOCAL",
        supports_connect=True,
        min_radius=1,
        max_radius=1,
        requires="planar input (quality bound)",
        guarantee="O(1) * OPT, blowup <= 7, O(1) rounds on planar graphs",
        description="Lenzen-style planar MDS + Theorem-17 connectifier",
    ),
)
def _local_planar_cds(req: SolveRequest, cache: PrecomputeCache) -> SolverOutput:
    from repro.distributed.connect_local import local_connectify
    from repro.distributed.lenzen import lenzen_planar_mds

    mode = req.params.get("mode", "oracle")
    mds = lenzen_planar_mds(req.graph, mode=mode)
    extras = {"mds_rounds": mds.rounds}
    connected = None
    rounds = mds.rounds
    if req.connect:
        cds = local_connectify(req.graph, mds.dominators, radius=1, mode=mode)
        connected = cds.connected_set
        rounds += cds.rounds
        extras["connect_result"] = cds
        extras["blowup"] = cds.blowup
    return SolverOutput(
        dominators=mds.dominators,
        connected_set=connected,
        rounds=rounds,
        raw=mds,
        extras=extras,
    )
