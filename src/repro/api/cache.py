"""Memoized shared precomputation for multi-solver sweeps.

The expensive inputs every order-based solver shares — the linear order
itself, the WReach sets over it, the measured wcol (= certificate
constant), and the distributed order computation — are memoized here,
keyed by *graph content* (a digest of the CSR arrays) so that

* repeated :func:`repro.api.solve` calls on the same graph,
* a :func:`repro.api.solve_batch` sweep running many algorithms over
  one instance, and
* structurally identical graphs built twice (workload regeneration)

all pay for each precomputation exactly once.  Content keying (rather
than ``id()``) is deliberate: :class:`~repro.graphs.graph.Graph` is
immutable, has no ``__weakref__`` slot, and equal CSR bytes really do
determine every derived object, so the cache can never go stale.

Entries are LRU-evicted beyond ``maxsize`` per category; hit/miss
counters are kept per category so tests (and curious users) can assert
the sharing actually happens.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any, Callable, Hashable

from repro.graphs.graph import Graph
from repro.orders.linear_order import LinearOrder

__all__ = ["PrecomputeCache", "graph_digest", "order_digest", "default_cache"]


def graph_digest(g: Graph) -> str:
    """Content digest of a graph's CSR arrays (stable across processes)."""
    h = hashlib.blake2b(digest_size=16)
    h.update(g.n.to_bytes(8, "little"))
    h.update(g.indptr.tobytes())
    h.update(g.indices.tobytes())
    return h.hexdigest()


def order_digest(order: LinearOrder) -> str:
    """Content digest of a linear order (for order-keyed entries)."""
    return hashlib.blake2b(order.rank.tobytes(), digest_size=16).hexdigest()


class _LruTable:
    """One cache category: an LRU dict with hit/miss counters."""

    __slots__ = ("maxsize", "entries", "hits", "misses")

    def __init__(self, maxsize: int):
        self.maxsize = maxsize
        self.entries: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        if key in self.entries:
            self.hits += 1
            self.entries.move_to_end(key)
            return self.entries[key]
        self.misses += 1
        value = compute()
        self.entries[key] = value
        while len(self.entries) > self.maxsize:
            self.entries.popitem(last=False)
        return value

    def clear(self) -> None:
        self.entries.clear()
        self.hits = 0
        self.misses = 0


class PrecomputeCache:
    """Shared precomputation store for the :func:`repro.api.solve` façade.

    Categories
    ----------
    ``order``
        ``make_order`` outputs, keyed by (graph, strategy, radius) —
        radius participates because fraternal / wreach-sort strategies
        depend on it.
    ``rank_adj``
        :class:`~repro.orders.wreach.RankedAdjacency` — the rank-permuted
        CSR every WReach kernel runs over — keyed by (graph, order).
        Reach-length sweeps over one order share a single row
        permutation this way.
    ``wreach_csr``
        :class:`~repro.orders.wreach.WReachCSR` — the CSR-shaped
        ``(indptr, members)`` WReach representation — keyed by (graph,
        order, reach length).  This is the one sweep everything else is
        derived from: sizes are ``np.diff(indptr)``, the list shape is
        ``tolists()``, and wcol is ``sizes.max()``, so sizes / sets /
        wcol share a single kernel run per (graph, order, reach).
    ``wcol``
        Measured ``max |WReach_reach|`` per (graph, order, reach) —
        derived from the ``wreach_csr`` category, so certifying after
        solving is free.
    ``dist_order``
        Distributed :class:`~repro.distributed.nd_order.OrderComputation`
        runs, keyed by (graph, mode, radius, threshold).
    """

    def __init__(self, maxsize: int = 64):
        self._tables = {
            name: _LruTable(maxsize)
            for name in (
                "order",
                "rank_adj",
                "wreach_csr",
                "wcol",
                "dist_order",
            )
        }

    #: Order strategies whose output does not depend on the radius
    #: argument of ``make_order`` — they share one cache entry per graph.
    RADIUS_FREE_STRATEGIES = frozenset(
        {"degeneracy", "identity", "random", "bfs"}
    )

    # -- keyed lookups ---------------------------------------------------
    def order(self, g: Graph, strategy: str, radius: int) -> LinearOrder:
        """The linear order ``make_order(g, radius, strategy)``, memoized."""
        from repro.pipelines import make_order

        key_radius = 0 if strategy in self.RADIUS_FREE_STRATEGIES else int(radius)
        key = (graph_digest(g), strategy, key_radius)
        return self._tables["order"].get_or_compute(
            key, lambda: make_order(g, radius, strategy)
        )

    def rank_adjacency(self, g: Graph, order: LinearOrder):
        """The rank-permuted CSR adjacency for ``(g, order)``, memoized.

        Built once per graph/order pair and shared by every WReach and
        wcol computation over that order (including reach sweeps).
        """
        from repro.orders.wreach import RankedAdjacency

        key = (graph_digest(g), order_digest(order))
        return self._tables["rank_adj"].get_or_compute(
            key, lambda: RankedAdjacency(g, order)
        )

    def wreach_csr(self, g: Graph, order: LinearOrder, reach: int):
        """``wreach_csr(g, order, reach)`` — the shared CSR sweep, memoized.

        Every WReach-derived quantity (sets, sizes, wcol, the domset /
        cover consumers) is served from this one entry per
        (graph, order, reach).
        """
        from repro.orders.wreach import wreach_csr

        key = (graph_digest(g), order_digest(order), int(reach))
        return self._tables["wreach_csr"].get_or_compute(
            key,
            lambda: wreach_csr(
                g, order, reach, adj=self.rank_adjacency(g, order)
            ),
        )

    def wreach(self, g: Graph, order: LinearOrder, reach: int) -> list[list[int]]:
        """``wreach_sets(g, order, reach)``: the cached CSR, as lists.

        No table of its own: ``WReachCSR.tolists`` memoizes the list
        materialization on the cached CSR entry itself.
        """
        return self.wreach_csr(g, order, reach).tolists()

    def wreach_sizes(self, g: Graph, order: LinearOrder, reach: int):
        """``|WReach_reach[v]|`` per vertex — ``np.diff`` of the cached CSR.

        No table of its own: the diff is a single vectorized pass over
        the memoized ``wreach_csr`` offsets.
        """
        return self.wreach_csr(g, order, reach).sizes

    def wcol(self, g: Graph, order: LinearOrder, reach: int) -> int:
        """``wcol_of_order`` via the cached CSR size profile."""
        key = (graph_digest(g), order_digest(order), int(reach))
        return self._tables["wcol"].get_or_compute(
            key, lambda: self.wreach_csr(g, order, reach).wcol()
        )

    def distributed_order(
        self,
        g: Graph,
        mode: str,
        radius: int,
        threshold: int | None = None,
        engine: str = "batch",
    ):
        """The CONGEST_BC order computation for ``mode``, memoized.

        ``engine`` picks the simulator path of a *miss*; it is not part
        of the key because the batch and per-node executions are
        output- and accounting-identical (the parity suite pins this),
        so either engine's result serves every request.
        """
        from repro.distributed.nd_order import (
            distributed_augmented_order,
            distributed_h_partition_order,
        )

        # The H-partition construction does not depend on the radius, so
        # sweeps over r share one order run; augmented orders do depend.
        key_radius = 0 if mode == "h_partition" else int(radius)
        key = (graph_digest(g), mode, key_radius, threshold)

        def compute():
            if mode == "h_partition":
                return distributed_h_partition_order(g, threshold, engine=engine)
            if mode == "augmented":
                return distributed_augmented_order(g, radius, threshold, engine=engine)
            raise ValueError(f"unknown order mode {mode!r}")

        return self._tables["dist_order"].get_or_compute(key, compute)

    # -- bookkeeping -----------------------------------------------------
    def stats(self) -> dict[str, dict[str, int]]:
        """Per-category ``{"hits": ..., "misses": ..., "size": ...}``."""
        return {
            name: {"hits": t.hits, "misses": t.misses, "size": len(t.entries)}
            for name, t in self._tables.items()
        }

    def clear(self) -> None:
        for t in self._tables.values():
            t.clear()


#: Process-wide default used by ``solve()`` when no cache is passed.
_DEFAULT_CACHE = PrecomputeCache()


def default_cache() -> PrecomputeCache:
    """The process-wide cache ``solve()`` falls back to."""
    return _DEFAULT_CACHE
