"""Memoized shared precomputation for multi-solver sweeps.

The expensive inputs every order-based solver shares — the linear order
itself, the WReach sets over it, the measured wcol (= certificate
constant), and the distributed order computation — are memoized here,
keyed by *graph content* (a digest of the CSR arrays) so that

* repeated :func:`repro.api.solve` calls on the same graph,
* a :func:`repro.api.solve_batch` sweep running many algorithms over
  one instance, and
* structurally identical graphs built twice (workload regeneration)

all pay for each precomputation exactly once.  Content keying (rather
than ``id()``) is deliberate: :class:`~repro.graphs.graph.Graph` is
immutable, has no ``__weakref__`` slot, and equal CSR bytes really do
determine every derived object, so the cache can never go stale.

The cache is **two-tier** when built with a ``store``
(:class:`~repro.api.store.ArtifactStore`): a memory miss falls through
to the digest-keyed npz files on disk, and fresh computations are
written through, so a warm store serves later *processes* — not just
later calls — with zero recomputation.  Without a store it behaves
exactly as the original in-memory cache.

Entries are LRU-evicted beyond ``maxsize`` per category; hit/miss
counters are kept per category so tests (and curious users) can assert
the sharing actually happens.  With a store attached, ``stats()``
additionally reports per-category ``store_hits`` (served from disk) and
``computed`` (actually recomputed) so "the warm run recomputed nothing"
is a one-line assertion.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Callable, Hashable

from repro.api.store import graph_digest, order_digest
from repro.graphs.graph import Graph
from repro.orders.linear_order import LinearOrder

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.api.store import ArtifactStore
    from repro.distributed.nd_order import OrderComputation
    from repro.orders.wreach import RankedAdjacency, WReachCSR

__all__ = ["PrecomputeCache", "graph_digest", "order_digest", "default_cache"]


class _LruTable:
    """One cache category: an LRU dict with hit/miss/store-hit counters."""

    __slots__ = ("maxsize", "entries", "hits", "misses", "store_hits")

    def __init__(self, maxsize: int):
        self.maxsize = maxsize
        self.entries: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.store_hits = 0

    def get_or_compute(
        self,
        key: Hashable,
        compute: Callable[[], Any],
        load: Callable[[], Any] | None = None,
        persist: Callable[[Any], None] | None = None,
        lease: Callable[[], Any] | None = None,
    ) -> Any:
        """Memory -> store -> compute, with write-through on a true miss.

        ``load`` (returning ``None`` on a store miss) and ``persist`` are
        the second tier; both are optional so store-less categories pay
        nothing.  ``misses`` counts memory misses; ``store_hits`` the
        subset served by ``load``, so ``misses - store_hits`` is the
        number of actual computations.

        ``lease`` (a zero-arg factory of a context manager with an
        ``acquired`` flag — see :meth:`ArtifactStore.lease`) serializes
        the *compute-and-persist* step across processes: a contender
        that waited out another holder re-checks ``load`` first, so two
        processes warming the same graph produce exactly one
        computation.  A timed-out acquire computes anyway — duplicated
        work is safe by idempotence, deadlock is not.
        """
        if key in self.entries:
            self.hits += 1
            self.entries.move_to_end(key)
            return self.entries[key]
        self.misses += 1
        value = load() if load is not None else None
        if value is not None:
            self.store_hits += 1
        elif lease is not None and load is not None:
            with lease() as lk:
                if lk.acquired:
                    # The previous holder may have persisted while we
                    # waited: serve its artifact instead of recomputing.
                    value = load()
                if value is not None:
                    self.store_hits += 1
                else:
                    value = compute()
                    if persist is not None:
                        persist(value)
        else:
            value = compute()
            if persist is not None:
                persist(value)
        self.entries[key] = value
        while len(self.entries) > self.maxsize:
            self.entries.popitem(last=False)
        return value

    def clear(self) -> None:
        self.entries.clear()
        self.hits = 0
        self.misses = 0
        self.store_hits = 0


class PrecomputeCache:
    """Shared precomputation store for the :func:`repro.api.solve` façade.

    Parameters
    ----------
    maxsize:
        LRU bound per category (memory tier).
    store:
        Optional :class:`~repro.api.store.ArtifactStore`; when given,
        every category below except the derived views reads through to
        (and writes through to) its digest-keyed npz files.

    Categories
    ----------
    ``order``
        ``make_order`` outputs, keyed by (graph, strategy, radius) —
        radius participates because fraternal / wreach-sort strategies
        depend on it.
    ``rank_adj``
        :class:`~repro.orders.wreach.RankedAdjacency` — the rank-permuted
        CSR every WReach kernel runs over — keyed by (graph, order).
        Reach-length sweeps over one order share a single row
        permutation this way.
    ``wreach_csr``
        :class:`~repro.orders.wreach.WReachCSR` — the CSR-shaped
        ``(indptr, members)`` WReach representation — keyed by (graph,
        order, reach length).  This is the one sweep everything else is
        derived from: sizes are ``np.diff(indptr)``, the list shape is
        ``tolists()``, and wcol is ``sizes.max()``, so sizes / sets /
        wcol share a single kernel run per (graph, order, reach).
    ``wcol``
        Measured ``max |WReach_reach|`` per (graph, order, reach) —
        derived from the ``wreach_csr`` category, so certifying after
        solving is free.
    ``dist_order``
        Distributed :class:`~repro.distributed.nd_order.OrderComputation`
        runs, keyed by (graph, mode, radius, threshold).
    """

    def __init__(self, maxsize: int = 64, store: ArtifactStore | None = None):
        self._tables = {
            name: _LruTable(maxsize)
            for name in (
                "order",
                "rank_adj",
                "wreach_csr",
                "wcol",
                "dist_order",
            )
        }
        self._store = store

    @property
    def store(self) -> ArtifactStore | None:
        """The persistent tier, or ``None`` for a memory-only cache."""
        return self._store

    def _lease_factory(self, gdigest: str) -> Callable[[], Any]:
        """A per-graph-digest lease factory for ``get_or_compute``.

        Leasing by *graph* digest (not per artifact) means two
        processes warming the same graph serialize the whole
        precompute pipeline once instead of per category; nested
        acquisitions inside one process (wcol -> wreach_csr ->
        rank_adjacency) are re-entrant no-ops.
        """
        store = self._store
        assert store is not None
        return lambda: store.lease(gdigest)

    #: Order strategies whose output does not depend on the radius
    #: argument of ``make_order`` — they share one cache entry per graph.
    RADIUS_FREE_STRATEGIES = frozenset(
        {"degeneracy", "identity", "random", "bfs"}
    )

    # -- keyed lookups ---------------------------------------------------
    def order(self, g: Graph, strategy: str, radius: int) -> LinearOrder:
        """The linear order ``make_order(g, radius, strategy)``, memoized."""
        from repro.pipelines import make_order

        key_radius = 0 if strategy in self.RADIUS_FREE_STRATEGIES else int(radius)
        gd = graph_digest(g)
        key = (gd, strategy, key_radius)
        load = persist = lease = None
        if self._store is not None:
            store = self._store
            lease = self._lease_factory(gd)

            def load() -> LinearOrder | None:
                return store.get_order(gd, strategy, key_radius, n=g.n)

            def persist(v: LinearOrder) -> None:
                store.put_order(gd, strategy, key_radius, v)

        return self._tables["order"].get_or_compute(
            key, lambda: make_order(g, radius, strategy), load, persist, lease
        )

    def rank_adjacency(self, g: Graph, order: LinearOrder) -> RankedAdjacency:
        """The rank-permuted CSR adjacency for ``(g, order)``, memoized.

        Built once per graph/order pair and shared by every WReach and
        wcol computation over that order (including reach sweeps).
        """
        from repro.orders.wreach import RankedAdjacency

        gd, od = graph_digest(g), order_digest(order)
        key = (gd, od)
        load = persist = lease = None
        if self._store is not None:
            store = self._store
            lease = self._lease_factory(gd)

            def load() -> RankedAdjacency | None:
                return store.get_rank_adj(gd, od, g, order)

            def persist(v: RankedAdjacency) -> None:
                store.put_rank_adj(gd, od, v)

        return self._tables["rank_adj"].get_or_compute(
            key, lambda: RankedAdjacency(g, order), load, persist, lease
        )

    def wreach_csr(self, g: Graph, order: LinearOrder, reach: int) -> WReachCSR:
        """``wreach_csr(g, order, reach)`` — the shared CSR sweep, memoized.

        Every WReach-derived quantity (sets, sizes, wcol, the domset /
        cover consumers) is served from this one entry per
        (graph, order, reach).
        """
        from repro.orders.wreach import wreach_csr

        gd, od = graph_digest(g), order_digest(order)
        key = (gd, od, int(reach))
        load = persist = lease = None
        if self._store is not None:
            store = self._store
            lease = self._lease_factory(gd)

            def load() -> WReachCSR | None:
                return store.get_wreach(gd, od, int(reach), g, order)

            def persist(v: WReachCSR) -> None:
                store.put_wreach(gd, od, int(reach), v)

        return self._tables["wreach_csr"].get_or_compute(
            key,
            lambda: wreach_csr(
                g, order, reach, adj=self.rank_adjacency(g, order)
            ),
            load,
            persist,
            lease,
        )

    def wreach(self, g: Graph, order: LinearOrder, reach: int) -> list[list[int]]:
        """``wreach_sets(g, order, reach)``: the cached CSR, as lists.

        No table of its own: ``WReachCSR.tolists`` memoizes the list
        materialization on the cached CSR entry itself.
        """
        return self.wreach_csr(g, order, reach).tolists()

    def wreach_sizes(self, g: Graph, order: LinearOrder, reach: int) -> np.ndarray:
        """``|WReach_reach[v]|`` per vertex — ``np.diff`` of the cached CSR.

        No table of its own: the diff is a single vectorized pass over
        the memoized ``wreach_csr`` offsets.
        """
        return self.wreach_csr(g, order, reach).sizes

    def wcol(self, g: Graph, order: LinearOrder, reach: int) -> int:
        """``wcol_of_order`` via the cached CSR size profile."""
        gd, od = graph_digest(g), order_digest(order)
        key = (gd, od, int(reach))
        load = persist = lease = None
        if self._store is not None:
            store = self._store
            lease = self._lease_factory(gd)

            def load() -> int | None:
                return store.get_wcol(gd, od, int(reach))

            def persist(v: int) -> None:
                store.put_wcol(gd, od, int(reach), v)

        return self._tables["wcol"].get_or_compute(
            key, lambda: self.wreach_csr(g, order, reach).wcol(), load, persist,
            lease,
        )

    def distributed_order(
        self,
        g: Graph,
        mode: str,
        radius: int,
        threshold: int | None = None,
        engine: str = "batch",
    ) -> OrderComputation:
        """The CONGEST_BC order computation for ``mode``, memoized.

        ``engine`` picks the simulator path of a *miss*; it is not part
        of the key because the batch and per-node executions are
        output- and accounting-identical (the parity suite pins this),
        so either engine's result serves every request.
        """
        from repro.distributed.nd_order import (
            distributed_augmented_order,
            distributed_h_partition_order,
        )

        # The H-partition construction does not depend on the radius, so
        # sweeps over r share one order run; augmented orders do depend.
        key_radius = 0 if mode == "h_partition" else int(radius)
        gd = graph_digest(g)
        key = (gd, mode, key_radius, threshold)

        def compute() -> OrderComputation:
            if mode == "h_partition":
                return distributed_h_partition_order(g, threshold, engine=engine)
            if mode == "augmented":
                return distributed_augmented_order(g, radius, threshold, engine=engine)
            raise ValueError(f"unknown order mode {mode!r}")

        load = persist = lease = None
        if self._store is not None:
            store = self._store
            lease = self._lease_factory(gd)

            def load() -> OrderComputation | None:
                return store.get_dist_order(gd, mode, key_radius, threshold, n=g.n)

            def persist(v: OrderComputation) -> None:
                store.put_dist_order(gd, mode, key_radius, threshold, v)

        return self._tables["dist_order"].get_or_compute(
            key, compute, load, persist, lease
        )

    # -- bookkeeping -----------------------------------------------------
    def stats(self) -> dict[str, dict[str, int]]:
        """Per-category ``{"hits": ..., "misses": ..., "size": ...}``.

        With a store attached, each category additionally reports
        ``store_hits`` (memory misses served from disk) and ``computed``
        (= ``misses - store_hits``, the recomputations that actually
        ran) — the counters the warm-start acceptance tests assert on.
        """
        out = {}
        for name, t in self._tables.items():
            row = {"hits": t.hits, "misses": t.misses, "size": len(t.entries)}
            if self._store is not None:
                row["store_hits"] = t.store_hits
                row["computed"] = t.misses - t.store_hits
            out[name] = row
        return out

    def clear(self) -> None:
        for t in self._tables.values():
            t.clear()


#: Process-wide default used by ``solve()`` when no cache is passed.
_DEFAULT_CACHE = PrecomputeCache()


def default_cache() -> PrecomputeCache:
    """The process-wide cache ``solve()`` falls back to."""
    return _DEFAULT_CACHE
