"""Workspaces: graph handles, persistent precompute, streaming execution.

A :class:`Workspace` is the stateful front door for repeated traffic on
the same graphs — the shape the paper's algorithms factor into (a
reusable preprocessing product consumed by cheap per-query phases) made
first-class in the API:

* ``ws.add(graph)`` content-addresses a graph and returns a
  :class:`~repro.api.types.GraphHandle`; requests built on handles
  resolve through the workspace, and pooled execution ships each
  distinct graph to the workers once, not once per request.
* A workspace built with ``store=`` persists every precompute artifact
  (orders, rank-CSR, WReach CSR, wcol, distributed orders) to an
  :class:`~repro.api.store.ArtifactStore`, so a warm store serves later
  *processes* with zero recomputation (``ws.warm`` precomputes the
  Theorem-5 inputs explicitly; any solve warms as a side effect).
* ``ws.submit(request)`` returns a :class:`SolveFuture` and
  ``ws.as_completed(requests)`` streams futures in completion order —
  results arrive as they finish instead of after the whole batch.
  :func:`repro.api.solve_batch` is a thin compatibility wrapper over
  this executor.

Execution modes: ``workers=None`` (default) runs lazily in-process
against the workspace cache — maximal precompute sharing, results
computed as futures are forced.  ``workers=N > 1`` fans out over a
*supervised* process pool (:mod:`repro.api.supervisor`); requests are
co-located by graph digest so one worker handles one graph's requests
(its cache actually hits), and workers resolve graphs from their
per-process registry or the shared store.  A crashed worker breaks the
underlying executor, but the supervisor respawns it and re-dispatches
only the affected graph-groups (capped exponential backoff, 3 attempts
by default); groups that keep dying fail with a structured
:class:`~repro.errors.RequestFailed` on their own futures while
siblings recompute normally.  Close a pooled workspace with
``ws.close()`` (drains) or ``ws.close(cancel_pending=True)`` (fails
pending futures with ``reason="cancelled"``), or use it as a context
manager.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    import concurrent.futures

from repro.api import faults
from repro.api.cache import PrecomputeCache, default_cache
from repro.api.facade import solve_request
from repro.api.store import ArtifactStore
from repro.api.supervisor import SupervisedExecutor, settle_outcome
from repro.api.types import GraphHandle, SolveRequest, SolveResult
from repro.errors import RequestFailed, SolverError
from repro.graphs.graph import Graph

__all__ = ["SolveFuture", "Workspace"]


def _settle(future: "SolveFuture") -> None:
    """Force a future, keeping its failure on the future itself."""
    try:
        future.result()
    except Exception:
        pass  # cached on the future; re-raised by the caller's result()


class SolveFuture:
    """Result handle for one submitted :class:`SolveRequest`.

    Two flavors behind one surface: *deferred* futures (in-process
    workspaces) hold a thunk and run it on the first ``result()`` call;
    *pooled* futures hold one per-request outcome future settled by the
    supervised executor (group completion, retry exhaustion, deadline
    expiry, or cancellation — whichever wins).  ``request`` is the
    original request, so streaming consumers can match results back
    without bookkeeping of their own.
    """

    __slots__ = ("request", "_run", "_cf", "_done", "_value", "_error", "_born")

    def __init__(
        self,
        request: SolveRequest,
        *,
        run: Callable[[], SolveResult] | None = None,
        cf: "concurrent.futures.Future[tuple[str, Any]]" | None = None,
    ):
        self.request = request
        self._run = run
        self._cf = cf
        self._done = False
        self._value: SolveResult | None = None
        self._error: BaseException | None = None
        self._born = time.monotonic()

    def done(self) -> bool:
        """True once a ``result()`` call can no longer block or compute."""
        if self._done:
            return True
        return self._cf is not None and self._cf.done()

    def cancel(self) -> bool:
        """Settle this future as cancelled; False if it already settled.

        Pooled or deferred alike, a successfully cancelled future's
        ``result()`` raises a ``reason="cancelled"``
        :class:`~repro.errors.RequestFailed`.  Cancelling one request
        never disturbs siblings co-located in the same worker task (the
        group computation itself is not interrupted — its outcome for
        this slot is simply discarded).
        """
        error = RequestFailed(
            f"{self.request.algorithm}: request cancelled",
            algorithm=self.request.algorithm,
            graph_digest="",
            attempts=0,
            reason="cancelled",
        )
        if self._cf is not None:
            return settle_outcome(self._cf, ("err", error))
        if self._done:
            return False
        self._error = error
        self._done = True
        return True

    def _expired(self) -> bool:
        """Deferred-path deadline check (pooled futures use timers)."""
        d = self.request.deadline_s
        return d is not None and (time.monotonic() - self._born) > float(d)

    def result(self, timeout: float | None = None) -> SolveResult:
        """The :class:`SolveResult`, computing/waiting if necessary.

        ``timeout`` bounds the wait on *pooled* futures only; a deferred
        future computes synchronously in this call and cannot be timed
        out.  A failed request raises its own exception — cached like
        ``concurrent.futures``, so a repeated call re-raises instead of
        re-running the solve.  Pooled siblings in the same per-graph
        task are isolated (the worker returns one outcome per request,
        so one bad request cannot poison the rest of its group), and
        pool-level failures arrive as :class:`RequestFailed` with the
        request's algorithm, graph digest, and attempt count attached.
        """
        if not self._done:
            if self._cf is not None:
                # A timeout raises here *without* marking the future
                # done — only a per-request outcome settles it.
                tag, payload = self._cf.result(timeout)
                if tag == "err":
                    self._error = payload
                else:
                    self._value = payload
            elif self._expired():
                self._error = RequestFailed(
                    f"{self.request.algorithm}: deadline_s="
                    f"{self.request.deadline_s} expired before the deferred "
                    f"future was forced",
                    algorithm=self.request.algorithm,
                    graph_digest="",
                    attempts=0,
                    reason="deadline",
                )
            else:
                try:
                    self._value = self._run()
                except Exception as exc:
                    self._error = exc
            self._done = True
        if self._error is not None:
            raise self._error
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done() else "pending"
        return f"SolveFuture({self.request.algorithm!r}, {state})"


class Workspace:
    """Graph registry + two-tier precompute cache + batch executor.

    Parameters
    ----------
    store:
        ``None`` (memory-only), a path, or an
        :class:`~repro.api.store.ArtifactStore` — the persistent
        artifact tier shared across processes and runs.
    cache:
        An explicit :class:`PrecomputeCache` to use.  Default: a fresh
        store-backed cache when ``store`` is given, else the process
        default cache (so a plain ``Workspace()`` shares precompute
        with module-level ``solve()`` calls).
    workers:
        ``None``/``0``/``1`` for lazy in-process execution; ``N > 1``
        for a persistent supervised process pool with digest-co-located
        dispatch.
    maxsize:
        LRU bound per cache category (fresh caches only).
    max_attempts:
        Dispatch attempts per request group before its futures are
        poisoned with a ``reason="worker-crash"``
        :class:`~repro.errors.RequestFailed` (pooled mode only).
    backoff_base_s:
        Base of the supervisor's capped exponential retry backoff.
    pool_factory:
        Test hook forwarded to :class:`SupervisedExecutor` — replaces
        the ``ProcessPoolExecutor`` constructor used for (re)spawns.
    """

    def __init__(
        self,
        store: ArtifactStore | str | os.PathLike | None = None,
        *,
        cache: PrecomputeCache | None = None,
        workers: int | None = None,
        maxsize: int = 64,
        max_attempts: int = 3,
        backoff_base_s: float = 0.05,
        pool_factory: Callable[[], Any] | None = None,
    ):
        if store is not None and not isinstance(store, ArtifactStore):
            store = ArtifactStore(store)
        self.store: ArtifactStore | None = store
        if cache is not None:
            if store is not None and (
                cache.store is None
                or cache.store.root.resolve() != store.root.resolve()
            ):
                # A memory-only (or differently-rooted) cache would
                # silently stop artifacts from reaching this store —
                # warm() would persist nothing while reporting success.
                raise SolverError(
                    "explicit cache is not backed by this workspace's store; "
                    "build it with PrecomputeCache(store=...) over the same "
                    "root, or omit one of the two"
                )
            self.cache = cache
            if store is None and cache.store is not None:
                # A store-backed cache implies a store-backed workspace:
                # otherwise graphs would never persist and pooled
                # workers would get memory-only caches while the warm
                # artifacts sit on disk unreachable.
                self.store = cache.store
        elif store is not None:
            self.cache = PrecomputeCache(maxsize=maxsize, store=store)
        else:
            self.cache = default_cache()
        self.workers = int(workers) if workers else 0
        self.max_attempts = int(max_attempts)
        self.backoff_base_s = float(backoff_base_s)
        self._pool_factory = pool_factory
        self._graphs: dict[str, Graph] = {}
        self._pool: SupervisedExecutor | None = None

    # -- graph registry --------------------------------------------------
    def add(self, g: Graph) -> GraphHandle:
        """Register (and persist, when a store is attached) a graph.

        Content-addressed: adding an equal graph twice returns equal
        handles and stores nothing new.
        """
        handle = GraphHandle.of(g)
        self._graphs[handle.digest] = g
        if self.store is not None:
            self.store.put_graph(g, digest=handle.digest)
        return handle

    def graph(self, digest: str) -> Graph:
        """The graph behind a digest: registry first, then the store."""
        g = self._graphs.get(digest)
        if g is None and self.store is not None:
            g = self.store.get_graph(digest)
            if g is not None:
                self._graphs[digest] = g
        if g is None:
            raise SolverError(
                f"graph {digest!r} is not in this workspace "
                f"(ws.add it, or warm the store first)"
            )
        return g

    def handles(self) -> list[GraphHandle]:
        """Handles for every graph this workspace can resolve.

        In-memory graphs come back attached; store-resident ones come
        back detached from their npz metadata alone — no CSR arrays are
        read or re-hashed just to list them (they load lazily on
        :meth:`resolve`).
        """
        out = {
            d: GraphHandle(digest=d, n=g.n, m=g.m, graph=g)
            for d, g in self._graphs.items()
        }
        if self.store is not None:
            for d in self.store.graph_digests():
                if d in out:
                    continue
                meta = self.store.graph_meta(d)
                if meta is not None:
                    out[d] = GraphHandle(digest=d, n=meta[0], m=meta[1])
        return [out[d] for d in sorted(out)]

    def resolve(self, graph: Graph | GraphHandle) -> Graph:
        """A concrete :class:`Graph` from either request shape."""
        if isinstance(graph, GraphHandle):
            if graph.graph is not None:
                self._graphs.setdefault(graph.digest, graph.graph)
                return graph.graph
            return self.graph(graph.digest)
        return graph

    def _resolved(self, request: SolveRequest) -> SolveRequest:
        g = request.graph
        if isinstance(g, GraphHandle):
            return request.resolved(self.resolve(g))
        return request

    # -- solving ---------------------------------------------------------
    def solve(
        self, graph: Graph | GraphHandle, radius: int = 1,
        algorithm: str = "seq.wreach", **kwargs: Any,
    ) -> SolveResult:
        """:func:`repro.api.solve` against this workspace's cache."""
        from repro.api.facade import solve

        return solve(
            self.resolve(graph), radius, algorithm, cache=self.cache, **kwargs
        )

    def solve_request(self, request: SolveRequest) -> SolveResult:
        """Execute one request in-process against the workspace cache."""
        return solve_request(self._resolved(request), cache=self.cache)

    # -- streaming batch execution ---------------------------------------
    def submit(self, request: SolveRequest) -> SolveFuture:
        """Submit one request; returns immediately with a future."""
        return self.submit_all([request])[0]

    def submit_all(self, requests: Iterable[SolveRequest]) -> list[SolveFuture]:
        """Submit many requests; futures come back in request order.

        In-process workspaces defer execution until a future is forced
        (``result()`` or :meth:`as_completed`); pooled workspaces
        dispatch immediately, one task per distinct graph digest, each
        carrying that graph's requests with the graph itself serialized
        at most once (or not at all when the store already holds it).
        """
        reqs = list(requests)
        for r in reqs:
            if not isinstance(r, SolveRequest):
                raise SolverError(
                    f"expected SolveRequest items, got {type(r).__name__}"
                )
        if self.workers <= 1:
            return [
                SolveFuture(r, run=lambda r=r: self.solve_request(r)) for r in reqs
            ]
        return self._submit_pooled(reqs)

    def as_completed(
        self, requests: Iterable[SolveRequest | SolveFuture]
    ) -> Iterator[SolveFuture]:
        """Yield finished futures as results become available.

        Accepts requests (submitted here) or futures from
        :meth:`submit` / :meth:`submit_all`.  Streaming is the point:
        each yielded future is already ``done()``, and consumers see
        early results while the rest of the batch is still running —
        in-process, items are computed one by one as the iterator
        advances; pooled, per-graph groups are yielded in completion
        order.
        """
        items = list(requests)
        plain = [r for r in items if not isinstance(r, SolveFuture)]
        submitted = iter(self.submit_all(plain))
        futures = [
            r if isinstance(r, SolveFuture) else next(submitted) for r in items
        ]
        # In-process (deferred) futures: compute and yield one at a time.
        # A failing request settles (and yields) its own future without
        # tearing down the stream — the error surfaces on fut.result().
        # Pooled futures are per-request outcome futures, so completion
        # order is per request, not per group.
        by_cf: dict["concurrent.futures.Future[Any]", SolveFuture] = {}
        for f in futures:
            if f._cf is None:
                _settle(f)
                yield f
            else:
                by_cf[f._cf] = f
        if not by_cf:
            return
        from concurrent.futures import as_completed as _cf_as_completed

        for cf in _cf_as_completed(by_cf):
            f = by_cf[cf]
            _settle(f)
            yield f

    def run(self, requests: Iterable[SolveRequest]) -> list[SolveResult]:
        """Execute a batch; results in request order (blocking)."""
        return [f.result() for f in self.submit_all(requests)]

    # -- pooled dispatch -------------------------------------------------
    def _submit_pooled(self, reqs: list[SolveRequest]) -> list[SolveFuture]:
        if self._pool is None:
            self._pool = SupervisedExecutor(
                self.workers,
                max_attempts=self.max_attempts,
                backoff_base_s=self.backoff_base_s,
                pool_factory=self._pool_factory,
            )
        store_root = None if self.store is None else str(self.store.root)
        # Group by content digest (SolveRequest.graph_key), hashing each
        # distinct graph *object* once — requests usually share the
        # object, and CSR hashing is O(m), so per-request re-hashing
        # would dominate big batches.
        groups: dict[str, list[int]] = {}
        digest_by_id: dict[int, str] = {}
        for i, r in enumerate(reqs):
            g = r.graph
            if isinstance(g, GraphHandle):
                digest = g.digest
            else:
                digest = digest_by_id.get(id(g))  # reprolint: ignore[D204] -- hash-once shortcut: identity only skips re-digesting a live object; the grouping key is the content digest
                if digest is None:
                    digest = digest_by_id.setdefault(id(g), r.graph_key())  # reprolint: ignore[D204] -- same shortcut; requests hold the strong refs for the call's duration
            groups.setdefault(digest, []).append(i)
        # When there are fewer distinct graphs than workers, split each
        # group into up to workers//groups chunks so the whole pool is
        # used; each chunk carries its graph at most once, keeping the
        # serialization bound at "once per worker".
        chunks_per_group = max(1, self.workers // len(groups)) if groups else 1
        futures: list[SolveFuture | None] = [None] * len(reqs)
        for digest, indices in groups.items():
            g = self.resolve(reqs[indices[0]].graph)
            self._graphs.setdefault(digest, g)
            handle = GraphHandle(digest=digest, n=g.n, m=g.m)
            if self.store is not None:
                # Workers re-load the graph from the shared store: the
                # task payload then carries only digests and parameters.
                self.store.put_graph(g, digest=digest)
                payload_graph = None
            else:
                payload_graph = g
            k = min(chunks_per_group, len(indices))
            size = -(-len(indices) // k)  # ceil division
            for start in range(0, len(indices), size):
                chunk = indices[start : start + size]
                stripped = [reqs[i].resolved(handle) for i in chunk]
                cfs = self._pool.submit_group(
                    _execute_group,
                    (store_root, payload_graph, digest, stripped),
                    digest=digest,
                    algorithms=[reqs[i].algorithm for i in chunk],
                    deadlines_s=[reqs[i].deadline_s for i in chunk],
                )
                for cf, i in zip(cfs, chunk, strict=True):
                    futures[i] = SolveFuture(reqs[i], cf=cf)
        return futures

    # -- warm start ------------------------------------------------------
    def warm(
        self,
        graph: Graph | GraphHandle,
        radius: int = 1,
        order_strategy: str = "degeneracy",
        reaches: Iterable[int] | None = None,
    ) -> dict[str, Any]:
        """Precompute (and persist) the Theorem-5 inputs for a graph.

        Materializes the linear order, the rank-permuted adjacency, the
        WReach CSR at ``radius`` and ``2 * radius`` (or the explicit
        ``reaches``), and the measured wcol at the largest reach — the
        artifacts ``seq.wreach`` / ``seq.wreach-min`` and certification
        consume — through the cache, so a store-backed workspace writes
        them all to disk.  Returns a summary with the certificate
        constant and the cache stats after warming.
        """
        g = self.resolve(graph)
        handle = self.add(g)
        reach_list = sorted(
            {int(radius), 2 * int(radius)}
            if reaches is None
            else {int(x) for x in reaches}
        )
        order = self.cache.order(g, order_strategy, radius)
        self.cache.rank_adjacency(g, order)
        for reach in reach_list:
            self.cache.wreach_csr(g, order, reach)
        wcol = self.cache.wcol(g, order, reach_list[-1]) if reach_list else 0
        return {
            "digest": handle.digest,
            "n": g.n,
            "m": g.m,
            "order_strategy": order_strategy,
            "radius": int(radius),
            "reaches": reach_list,
            "wcol": wcol,
            "stats": self.cache.stats(),
        }

    # -- introspection / lifecycle ---------------------------------------
    def info(self) -> dict[str, Any]:
        """Workspace summary: registry size, cache stats, store contents."""
        out: dict[str, Any] = {
            "graphs_in_memory": len(self._graphs),
            "workers": self.workers,
            "cache": self.cache.stats(),
        }
        if self.store is not None:
            out["store"] = self.store.describe()
            out["store"]["lifecycle"] = self.store.lifecycle_summary()
        if self._pool is not None:
            out["supervisor"] = self._pool.stats()
        return out

    def close(self, cancel_pending: bool = False) -> None:
        """Shut down the process pool (idempotent; in-process: no-op).

        The default drains: running group tasks finish and their
        futures settle normally.  ``cancel_pending=True`` instead
        settles every unsettled future with a ``reason="cancelled"``
        :class:`~repro.errors.RequestFailed` and drops queued work —
        the fast path for tearing down a workspace whose results are no
        longer wanted.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=not cancel_pending, cancel_pending=cancel_pending)
            self._pool = None

    def __enter__(self) -> "Workspace":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# ----------------------------------------------------------------------
# Pool worker plumbing (module-level for picklability)
# ----------------------------------------------------------------------

#: Per-worker-process graph registry: each distinct graph crosses the
#: process boundary (or is loaded from the store) at most once while
#: resident.  Bounded so a long-lived pool sweeping many graphs cannot
#: grow worker memory without limit (evicted graphs are re-shipped or
#: re-loaded on next use).
_WORKER_GRAPHS: "OrderedDict[str, Graph]" = OrderedDict()
_WORKER_GRAPHS_MAX = 32


def _worker_remember(digest: str, graph: Graph) -> None:
    _WORKER_GRAPHS[digest] = graph
    _WORKER_GRAPHS.move_to_end(digest)
    while len(_WORKER_GRAPHS) > _WORKER_GRAPHS_MAX:
        _WORKER_GRAPHS.popitem(last=False)

#: Per-worker-process caches, keyed by store root (None = memory only).
_WORKER_CACHES: dict[str | None, PrecomputeCache] = {}


def _worker_cache(store_root: str | None) -> PrecomputeCache:
    cache = _WORKER_CACHES.get(store_root)
    if cache is None:
        cache = (
            default_cache()
            if store_root is None
            else PrecomputeCache(store=ArtifactStore(store_root))
        )
        _WORKER_CACHES[store_root] = cache
    return cache


def _execute_group(
    store_root: str | None,
    graph: Graph | None,
    digest: str,
    requests: list[SolveRequest],
    attempt: int = 0,
) -> list[tuple[str, Any]]:
    """Pool entry point: one graph's request group, shared worker cache.

    Returns one ``("ok", result)`` / ``("err", exception)`` outcome per
    request so a failing request surfaces on *its* future only, not on
    every sibling co-located with it.  ``attempt`` is the supervisor's
    dispatch attempt counter for this group — recomputation is
    attempt-independent (same bytes either way); it exists so the
    fault-injection harness can kill a worker on attempt 0 and spare
    the retry.
    """
    faults.on_group_task(digest, attempt)
    if graph is not None:
        _worker_remember(digest, graph)
    else:
        graph = _WORKER_GRAPHS.get(digest)
        if graph is None and store_root is not None:
            graph = ArtifactStore(store_root).get_graph(digest)
        if graph is None:
            raise SolverError(f"worker cannot resolve graph {digest!r}")
        _worker_remember(digest, graph)
    cache = _worker_cache(store_root)
    out: list[tuple[str, Any]] = []
    for r in requests:
        try:
            out.append(("ok", solve_request(r.resolved(graph), cache=cache)))
        except Exception as exc:  # per-request isolation across the pool
            out.append(("err", exc))
    return out


def _reset_worker_state() -> None:
    """Test hook: forget per-process graphs and caches."""
    _WORKER_GRAPHS.clear()
    _WORKER_CACHES.clear()
