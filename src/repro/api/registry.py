"""Decorator-based solver registry.

A *solver* is a function ``(SolveRequest, PrecomputeCache) -> SolverOutput``
registered under a dotted name (``seq.wreach``, ``dist.congest``, ...)
together with :class:`~repro.api.types.SolverCapabilities` metadata.
The façade resolves names here; ``list_solvers()`` is the introspection
surface the CLI, README table, and batch sweeps build on.

Names follow ``<family>.<algorithm>`` with families ``seq`` (classical
sequential), ``dist`` (message-passing / distributed-charged), and
``local`` (constant-round LOCAL compositions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.api.types import SolveRequest, SolverCapabilities, SolverInfo, SolverOutput
from repro.errors import SolverError

__all__ = [
    "register_solver",
    "get_solver",
    "list_solvers",
    "solver_names",
    "RegisteredSolver",
]

SolverFn = Callable[[SolveRequest, "object"], SolverOutput]


@dataclass(frozen=True)
class RegisteredSolver:
    name: str
    fn: SolverFn
    capabilities: SolverCapabilities


_REGISTRY: dict[str, RegisteredSolver] = {}


def register_solver(
    name: str,
    capabilities: SolverCapabilities | None = None,
    *,
    replace: bool = False,
) -> Callable[[SolverFn], SolverFn]:
    """Class-/function-decorator registering ``fn`` under ``name``.

    ``replace=True`` allows re-registration (tests, plugins); otherwise
    duplicate names are a programming error caught at import time.
    """
    caps = capabilities if capabilities is not None else SolverCapabilities()

    def decorator(fn: SolverFn) -> SolverFn:
        if not replace and name in _REGISTRY:
            raise SolverError(f"solver {name!r} already registered")
        _REGISTRY[name] = RegisteredSolver(name=name, fn=fn, capabilities=caps)
        return fn

    return decorator


def unregister_solver(name: str) -> None:
    """Remove a registration (primarily for tests)."""
    _REGISTRY.pop(name, None)


def get_solver(name: str) -> RegisteredSolver:
    """Resolve a registry name, with a helpful error on miss."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none registered>"
        raise SolverError(
            f"unknown solver {name!r}; registered solvers: {known}"
        ) from None


def solver_names() -> tuple[str, ...]:
    """All registered names, sorted."""
    return tuple(sorted(_REGISTRY))


def list_solvers() -> tuple[SolverInfo, ...]:
    """Introspection: (name, capabilities) for every registered solver."""
    return tuple(
        SolverInfo(name=s.name, capabilities=s.capabilities)
        for _, s in sorted(_REGISTRY.items())
    )
