"""Supervised process-pool execution for :class:`~repro.api.workspace.Workspace`.

A bare ``ProcessPoolExecutor`` has one catastrophic failure mode for a
batch server: when any worker process dies (OOM kill, segfault in a
native kernel, an injected ``os._exit``), the executor breaks and
*every* pending future — including ones for unrelated graphs — fails
with ``BrokenProcessPool`` and zero request context.  The paper's
pipelines are deterministic functions of ``(graph digest, request)``,
so the right response is not to propagate the breakage but to recompute:
any group of requests can be re-dispatched bit-identically.

:class:`SupervisedExecutor` implements that policy at *group*
granularity (one group = one graph digest's co-located requests, the
same unit ``Workspace`` already dispatches):

* each group gets one per-request :class:`~concurrent.futures.Future`
  settled with a ``("ok", result)`` / ``("err", exception)`` outcome —
  pool-level failures become per-request outcomes instead of shared
  poison;
* a group whose inner future fails with a pool-breakage error is
  re-dispatched onto a *respawned* pool with capped exponential
  backoff (``base * 2**k + seeded jitter``, default 3 attempts);
* after exhaustion, only that group's requests fail — each with a
  structured :class:`~repro.errors.RequestFailed` carrying solver
  name, graph digest, and attempt count — while sibling groups (which
  were merely interrupted by the shared breakage) settle normally on
  retry;
* per-request deadlines and cancellation settle individual futures
  without touching their group siblings.

Retry correctness leans on the same idempotent-recompute property the
store leans on for its writes: a re-dispatched group recomputes the
exact bytes the crashed attempt would have produced.
"""

from __future__ import annotations

import random
import threading
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from concurrent.futures import InvalidStateError
from typing import Any, Callable, Sequence

from repro.errors import RequestFailed

__all__ = ["SupervisedExecutor", "settle_outcome"]

#: One request's outcome inside a group result list.
Outcome = tuple[str, Any]

#: Default supervision policy.
DEFAULT_MAX_ATTEMPTS = 3
DEFAULT_BACKOFF_BASE_S = 0.05
DEFAULT_BACKOFF_CAP_S = 2.0


def settle_outcome(future: "Future[Outcome]", outcome: Outcome) -> bool:
    """Settle a per-request future with an outcome; False if already done.

    The single write point for request futures — races between the
    group callback, a deadline timer, cancellation, and shutdown are
    resolved by whoever gets here first.
    """
    try:
        future.set_result(outcome)
        return True
    except InvalidStateError:
        return False


def _is_breakage(exc: BaseException) -> bool:
    """Whether an inner-future exception means "the pool died", as
    opposed to an exception the group function itself raised."""
    return isinstance(exc, BrokenExecutor)


class _GroupTask:
    """One dispatched request group and its supervision state."""

    __slots__ = (
        "fn", "args", "digest", "algorithms", "futures", "attempt", "timers",
    )

    def __init__(
        self,
        fn: Callable[..., list[Outcome]],
        args: tuple[Any, ...],
        digest: str,
        algorithms: Sequence[str],
        futures: list["Future[Outcome]"],
    ):
        self.fn = fn
        self.args = args
        self.digest = digest
        self.algorithms = list(algorithms)
        self.futures = futures
        self.attempt = 0
        self.timers: list[threading.Timer] = []

    def settled(self) -> bool:
        return all(f.done() for f in self.futures)


class SupervisedExecutor:
    """A self-healing process pool dispatching per-graph request groups.

    Parameters
    ----------
    workers:
        Pool size (also the respawn size after a breakage).
    max_attempts:
        Total dispatch attempts per group before poisoning it.
    backoff_base_s / backoff_cap_s:
        Retry ``k`` (1-based) waits ``min(cap, base * 2**(k-1))`` plus
        a seeded jitter in ``[0, base)`` — capped exponential backoff.
    seed:
        Seeds the jitter RNG (determinism discipline: no unseeded
        draws anywhere in the library).
    pool_factory:
        Test hook: replaces ``ProcessPoolExecutor(workers)`` as the
        (re)spawn constructor.
    """

    def __init__(
        self,
        workers: int,
        *,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff_base_s: float = DEFAULT_BACKOFF_BASE_S,
        backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S,
        seed: int = 0,
        pool_factory: Callable[[], Any] | None = None,
    ):
        self.workers = int(workers)
        self.max_attempts = max(1, int(max_attempts))
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self._factory = pool_factory or (
            lambda: ProcessPoolExecutor(max_workers=self.workers)
        )
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._pool: Any = None
        self._tasks: list[_GroupTask] = []
        self._closed = False
        # Observability counters (tests assert "only the injected
        # group's futures were ever retried" against these).
        self.retries: dict[str, int] = {}
        self.respawns = 0
        self.poisoned: list[str] = []

    # -- dispatch --------------------------------------------------------
    def submit_group(
        self,
        fn: Callable[..., list[Outcome]],
        args: tuple[Any, ...],
        *,
        digest: str,
        algorithms: Sequence[str],
        deadlines_s: Sequence[float | None] | None = None,
    ) -> list["Future[Outcome]"]:
        """Dispatch one request group; one settled-with-outcome future
        per request comes back, in request order.

        ``fn(*args, attempt)`` runs on the pool and must return one
        outcome per request.  ``deadlines_s`` (parallel to
        ``algorithms``) arms a timer per bounded request: expiry
        settles *that* future with a ``reason="deadline"``
        :class:`RequestFailed`; the group keeps computing for its
        siblings.
        """
        task = _GroupTask(
            fn, args, digest, algorithms,
            [Future() for _ in algorithms],
        )
        with self._lock:
            if self._closed:
                raise RuntimeError("SupervisedExecutor is closed")
            self._tasks.append(task)
        for i, deadline in enumerate(deadlines_s or []):
            if deadline is None:
                continue
            timer = threading.Timer(
                float(deadline), self._expire, args=(task, i)
            )
            timer.daemon = True
            task.timers.append(timer)
            timer.start()
        self._dispatch(task)
        return task.futures

    def _ensure_pool(self) -> Any:
        with self._lock:
            if self._closed:
                raise RuntimeError("SupervisedExecutor is closed")
            if self._pool is None:
                self._pool = self._factory()
            return self._pool

    def _dispatch(self, task: _GroupTask) -> None:
        try:
            pool = self._ensure_pool()
            inner = pool.submit(task.fn, *task.args, task.attempt)
        except (RuntimeError, BrokenExecutor) as exc:
            self._poison(task, exc)
            return
        inner.add_done_callback(lambda f, t=task: self._on_group_done(t, f))

    # -- settlement paths ------------------------------------------------
    def _on_group_done(self, task: _GroupTask, inner: "Future[Any]") -> None:
        if task.settled():
            self._cancel_timers(task)
            return
        exc = inner.exception()
        if exc is None:
            outcomes = inner.result()
            for fut, outcome in zip(task.futures, outcomes, strict=False):
                settle_outcome(fut, outcome)
            self._cancel_timers(task)
            return
        if _is_breakage(exc):
            self._retire_pool()
            if task.attempt + 1 < self.max_attempts:
                task.attempt += 1
                self.retries[task.digest] = self.retries.get(task.digest, 0) + 1
                with self._lock:
                    closed = self._closed
                    delay = min(
                        self.backoff_cap_s,
                        self.backoff_base_s * (2 ** (task.attempt - 1)),
                    ) + self._rng.uniform(0.0, self.backoff_base_s)
                if closed:
                    self._poison(task, exc)
                    return
                timer = threading.Timer(delay, self._dispatch, args=(task,))
                timer.daemon = True
                task.timers.append(timer)
                timer.start()
                return
        self._poison(task, exc)
        self._cancel_timers(task)

    def _poison(self, task: _GroupTask, cause: BaseException) -> None:
        crash = _is_breakage(cause)
        if crash:
            self.poisoned.append(task.digest)
        for fut, algorithm in zip(task.futures, task.algorithms, strict=True):
            error = RequestFailed(
                (
                    f"{algorithm} on graph {task.digest}: worker process died "
                    f"and the group still failed after "
                    f"{task.attempt + 1} dispatch attempt(s) "
                    f"({type(cause).__name__}: {cause})"
                    if crash
                    else f"{algorithm} on graph {task.digest}: group dispatch "
                    f"failed on attempt {task.attempt + 1} "
                    f"({type(cause).__name__}: {cause})"
                ),
                algorithm=algorithm,
                graph_digest=task.digest,
                attempts=task.attempt + 1,
                reason="worker-crash" if crash else "error",
            )
            error.__cause__ = cause
            settle_outcome(fut, ("err", error))

    def _expire(self, task: _GroupTask, index: int) -> None:
        settle_outcome(
            task.futures[index],
            (
                "err",
                RequestFailed(
                    f"{task.algorithms[index]} on graph {task.digest}: "
                    f"deadline_s expired before the pooled result arrived "
                    f"(attempt {task.attempt + 1})",
                    algorithm=task.algorithms[index],
                    graph_digest=task.digest,
                    attempts=task.attempt + 1,
                    reason="deadline",
                ),
            ),
        )

    def _cancel_timers(self, task: _GroupTask) -> None:
        for timer in task.timers:
            timer.cancel()
        task.timers.clear()

    def _retire_pool(self) -> None:
        """Discard a broken executor; the next dispatch respawns."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            self.respawns += 1
            pool.shutdown(wait=False)

    # -- introspection / lifecycle ---------------------------------------
    def stats(self) -> dict[str, Any]:
        """Supervision counters: retries per digest, respawns, poison."""
        return {
            "retries": dict(self.retries),
            "respawns": self.respawns,
            "poisoned": list(self.poisoned),
            "groups": len(self._tasks),
        }

    def shutdown(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Drain (default) or cancel outstanding work, then stop the pool.

        ``cancel_pending=True`` settles every unsettled request future
        with a ``reason="cancelled"`` :class:`RequestFailed` and drops
        queued pool work; pending retry backoff timers are cancelled
        either way (a drain waits for *running* work, not for crashed
        groups to finish retrying — callers holding their futures see
        the cancellation outcome, never a hang).
        """
        with self._lock:
            self._closed = True
            tasks = list(self._tasks)
            pool, self._pool = self._pool, None
        for task in tasks:
            self._cancel_timers(task)
            if cancel_pending or not wait:
                for fut, algorithm in zip(task.futures, task.algorithms, strict=True):
                    settle_outcome(
                        fut,
                        (
                            "err",
                            RequestFailed(
                                f"{algorithm} on graph {task.digest}: "
                                f"cancelled by Workspace.close()",
                                algorithm=algorithm,
                                graph_digest=task.digest,
                                attempts=task.attempt + 1,
                                reason="cancelled",
                            ),
                        ),
                    )
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=cancel_pending)
