"""The ``solve()`` façade and batch executor.

One call shape for every algorithm in the library::

    from repro.api import solve
    result = solve(g, radius=2, algorithm="seq.wreach", certify=True)
    result.dominators, result.certificate, result.wall_time_s

plus :func:`solve_batch` for sweeps: a list of :class:`SolveRequest`
executed either in-process against one shared
:class:`~repro.api.cache.PrecomputeCache` (so repeated
(graph, order strategy, radius) combinations compute their linear
order and WReach sets exactly once) or fanned out over a process pool
with ``workers=N`` (each worker keeps its own cache; requests are
picklable by construction).

The façade owns the behavior that must be uniform across solvers:
capability checking, wall-time measurement, redundancy pruning,
certification (of the *reported* set), and independent validation.
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Mapping, Sequence

from repro.api import solvers as _solvers  # noqa: F401  (populates the registry)
from repro.api.cache import PrecomputeCache, default_cache
from repro.api.registry import get_solver
from repro.api.types import GraphHandle, SolveRequest, SolveResult, SolverOutput
from repro.core.certify import Certificate
from repro.errors import SolverError
from repro.graphs.graph import Graph

__all__ = ["solve", "solve_request", "solve_batch"]


def solve(
    g: Graph | GraphHandle,
    radius: int = 1,
    algorithm: str = "seq.wreach",
    *,
    order_strategy: str = "degeneracy",
    connect: bool = False,
    prune: bool = False,
    certify: bool = False,
    with_lp: bool = False,
    validate: bool = False,
    seed: int = 0,
    engine: str = "auto",
    params: Mapping[str, Any] | None = None,
    cache: PrecomputeCache | None = None,
) -> SolveResult:
    """Solve distance-``radius`` domination on ``g`` with one registered solver.

    Keyword arguments mirror :class:`~repro.api.types.SolveRequest`;
    see ``list_solvers()`` for the available ``algorithm`` names and
    their capabilities.
    """
    request = SolveRequest(
        graph=g,
        radius=radius,
        algorithm=algorithm,
        order_strategy=order_strategy,
        connect=connect,
        prune=prune,
        certify=certify,
        with_lp=with_lp,
        validate=validate,
        seed=seed,
        engine=engine,
        params=dict(params or {}),
    )
    return solve_request(request, cache=cache)


def solve_request(
    request: SolveRequest, cache: PrecomputeCache | None = None
) -> SolveResult:
    """Execute one :class:`SolveRequest` and normalize the response."""
    if isinstance(request.graph, GraphHandle):
        if request.graph.graph is None:
            raise SolverError(
                "request carries a detached GraphHandle; execute it through "
                "its Workspace (ws.solve / ws.submit / ws.as_completed)"
            )
        request = request.resolved(request.graph.graph)
    solver = get_solver(request.algorithm)
    caps = solver.capabilities
    if not caps.supports_radius(request.radius):
        raise SolverError(
            f"{solver.name} supports radius in {caps.radius_range()}, "
            f"got {request.radius}"
        )
    if request.connect and not caps.supports_connect:
        raise SolverError(f"{solver.name} has no connection phase")
    if request.radius < 0:
        raise SolverError("radius must be >= 0")
    try:
        engine = request.resolve_engine(caps)
    except ValueError as exc:
        raise SolverError(f"{solver.name}: {exc}") from exc
    cache = cache if cache is not None else default_cache()

    t0 = time.perf_counter()
    out: SolverOutput = solver.fn(request, cache)
    wall = time.perf_counter() - t0

    extras: dict[str, Any] = dict(out.extras)
    if engine is not None:
        extras.setdefault("engine", engine)
    if out.order is not None:
        extras.setdefault("order", out.order)
    dominators = out.dominators
    if request.prune:
        from repro.core.prune import prune_dominating_set

        extras["raw_size"] = len(dominators)
        dominators = prune_dominating_set(
            request.graph, dominators, request.radius
        )

    certificate = None
    if request.certify:
        certificate = _certify(request, out, dominators, cache)
        if certificate is None:
            extras["certificate_note"] = (
                f"{solver.name} is not order-based; no Theorem-5 certificate"
            )

    if request.validate:
        extras["valid"] = _validate(request, dominators, out.connected_set)

    return SolveResult(
        algorithm=solver.name,
        radius=request.radius,
        # Only solvers that actually consume the strategy echo it;
        # e.g. dist.congest computes its own distributed order, so
        # labelling its result with the request's strategy would put
        # wrong provenance in benchmark result files.
        order_strategy=(
            request.order_strategy if caps.supports_order_strategy else ""
        ),
        dominators=tuple(dominators),
        connected_set=out.connected_set,
        certificate=certificate,
        rounds=out.rounds,
        total_words=out.total_words,
        phase_rounds=dict(out.phase_rounds) if out.phase_rounds else None,
        wall_time_s=wall,
        raw=out.raw,
        extras=extras,
    )


def _certify(
    request: SolveRequest,
    out: SolverOutput,
    reported: Sequence[int],
    cache: PrecomputeCache,
) -> Certificate | None:
    """Theorem-5 certificate for the *reported* (possibly pruned) set.

    Pruning only shrinks the set, so ``|reported| <= |D| <= c * OPT``
    still holds with the same measured ``c``; the certificate's
    ``solution_size`` therefore describes exactly what the caller got.
    """
    if out.order is None:
        return None
    c = max(1, cache.wcol(request.graph, out.order, 2 * request.radius))
    lp = None
    if request.with_lp:
        from repro.core.exact import lp_lower_bound

        try:
            lp = lp_lower_bound(request.graph, request.radius)
        except SolverError:
            lp = None
    return Certificate(
        radius=request.radius,
        solution_size=len(reported),
        certified_c=c,
        lp_bound=lp,
    )


def _validate(
    request: SolveRequest,
    dominators: Sequence[int],
    connected_set: Sequence[int] | None,
) -> bool:
    from repro.analysis.validate import (
        is_connected_distance_r_dominating_set,
        is_distance_r_dominating_set,
    )

    ok = is_distance_r_dominating_set(request.graph, dominators, request.radius)
    if connected_set is not None:
        ok = ok and is_connected_distance_r_dominating_set(
            request.graph, connected_set, request.radius
        )
    return bool(ok)


# ----------------------------------------------------------------------
# Batch execution (compatibility wrapper over the workspace executor)
# ----------------------------------------------------------------------

def solve_batch(
    requests: Iterable[SolveRequest],
    workers: int | None = None,
    cache: PrecomputeCache | None = None,
) -> list[SolveResult]:
    """Execute many requests, sharing precomputation where possible.

    A thin wrapper over :class:`repro.api.workspace.Workspace`:
    ``workers=None`` (or 0/1) runs in-process against one shared cache
    — the mode that maximizes order/WReach reuse and is the right
    default for sweeps over a common graph.  ``workers=N > 1`` fans out
    over a process pool with requests *co-located by graph digest*:
    requests on the same graph are batched into the same tasks (so the
    per-process caches actually hit) and each distinct graph is
    serialized to the pool at most once per worker, not once per
    request.  When there are fewer distinct graphs than workers, a
    graph's requests are split across the idle workers — full-pool
    parallelism at the price of some recomputation per extra worker
    (none when the workspace has a store).  Results come back in
    request order either way.

    For streaming results, graph handles, or persistent precompute, use
    a :class:`~repro.api.workspace.Workspace` directly.
    """
    from repro.api.workspace import Workspace

    reqs = list(requests)
    for r in reqs:
        if not isinstance(r, SolveRequest):
            raise SolverError(
                f"solve_batch expects SolveRequest items, got {type(r).__name__}"
            )
    with Workspace(cache=cache, workers=workers) as ws:
        return ws.run(reqs)
