"""Unified solver API: registry, request/response types, ``solve()`` façade.

This package is the single front door to every dominating-set
algorithm in the library::

    from repro.api import solve, solve_batch, list_solvers

    result = solve(g, radius=2, algorithm="seq.wreach",
                   certify=True, with_lp=True)
    for info in list_solvers():
        print(info.name, info.capabilities.guarantee)

Layers (lowest first):

* :mod:`repro.api.types` — ``SolveRequest`` / ``SolveResult`` /
  ``GraphHandle`` / ``SolverCapabilities``;
* :mod:`repro.api.store` — ``ArtifactStore``: digest-keyed npz
  persistence of precompute artifacts (orders, rank-CSR, WReach CSR,
  wcol, distributed orders);
* :mod:`repro.api.cache` — content-keyed memoization of the same,
  optionally two-tier over a store;
* :mod:`repro.api.registry` — ``@register_solver`` + ``list_solvers``;
* :mod:`repro.api.solvers` — the registered adapters over the legacy
  entry points (importing this package registers them);
* :mod:`repro.api.facade` — ``solve`` / ``solve_request`` /
  ``solve_batch``;
* :mod:`repro.api.workspace` — ``Workspace``: graph handles, warm
  starts, and the streaming ``submit`` / ``as_completed`` executor
  that ``solve_batch`` wraps.

The legacy ``repro.pipelines`` functions remain as deprecation shims
routed through this registry.
"""

from repro.api.cache import PrecomputeCache, default_cache, graph_digest
from repro.api.facade import solve, solve_batch, solve_request
from repro.api.faults import FaultPlan
from repro.api.supervisor import SupervisedExecutor
from repro.api.registry import (
    RegisteredSolver,
    get_solver,
    list_solvers,
    register_solver,
    solver_names,
    unregister_solver,
)
from repro.api.store import ArtifactStore, order_digest
from repro.api.types import (
    GraphHandle,
    SolveRequest,
    SolveResult,
    SolverCapabilities,
    SolverInfo,
    SolverOutput,
)
from repro.api.workspace import SolveFuture, Workspace

__all__ = [
    "solve",
    "solve_batch",
    "solve_request",
    "GraphHandle",
    "SolveRequest",
    "SolveResult",
    "SolveFuture",
    "SolverCapabilities",
    "SolverInfo",
    "SolverOutput",
    "ArtifactStore",
    "FaultPlan",
    "PrecomputeCache",
    "SupervisedExecutor",
    "Workspace",
    "default_cache",
    "graph_digest",
    "order_digest",
    "register_solver",
    "unregister_solver",
    "get_solver",
    "list_solvers",
    "solver_names",
    "RegisteredSolver",
]
