"""Unified solver API: registry, request/response types, ``solve()`` façade.

This package is the single front door to every dominating-set
algorithm in the library::

    from repro.api import solve, solve_batch, list_solvers

    result = solve(g, radius=2, algorithm="seq.wreach",
                   certify=True, with_lp=True)
    for info in list_solvers():
        print(info.name, info.capabilities.guarantee)

Layers (lowest first):

* :mod:`repro.api.types` — ``SolveRequest`` / ``SolveResult`` /
  ``SolverCapabilities``;
* :mod:`repro.api.cache` — content-keyed memoization of orders, WReach
  sets, wcol measurements, and distributed order computations;
* :mod:`repro.api.registry` — ``@register_solver`` + ``list_solvers``;
* :mod:`repro.api.solvers` — the registered adapters over the legacy
  entry points (importing this package registers them);
* :mod:`repro.api.facade` — ``solve`` / ``solve_request`` /
  ``solve_batch``.

The legacy ``repro.pipelines`` functions remain as deprecation shims
routed through this registry.
"""

from repro.api.cache import PrecomputeCache, default_cache, graph_digest
from repro.api.facade import solve, solve_batch, solve_request
from repro.api.registry import (
    RegisteredSolver,
    get_solver,
    list_solvers,
    register_solver,
    solver_names,
    unregister_solver,
)
from repro.api.types import (
    SolveRequest,
    SolveResult,
    SolverCapabilities,
    SolverInfo,
    SolverOutput,
)

__all__ = [
    "solve",
    "solve_batch",
    "solve_request",
    "SolveRequest",
    "SolveResult",
    "SolverCapabilities",
    "SolverInfo",
    "SolverOutput",
    "PrecomputeCache",
    "default_cache",
    "graph_digest",
    "register_solver",
    "unregister_solver",
    "get_solver",
    "list_solvers",
    "solver_names",
    "RegisteredSolver",
]
