"""Workspaces: persistent precompute and streaming batch execution.

The paper factors its algorithms into a reusable preprocessing product
(the linear order and the WReach structures over it) consumed by cheap
per-query phases.  A :class:`repro.api.Workspace` makes that factoring
operational: ``ws.add`` content-addresses a graph, ``ws.warm``
precomputes and *persists* its Theorem-5 artifacts to an on-disk
artifact store, and any later workspace over the same store — in this
process or another — serves certified solves with zero order/WReach
recomputation.  The second half streams a multi-solver batch through
``ws.as_completed``, printing results as they finish.

Run:  python examples/workspace_warmstart.py
"""

import tempfile

from repro.api import SolveRequest, Workspace
from repro.graphs import random_models as rm


def main() -> None:
    g, _ = rm.delaunay_graph(600, seed=7)
    radius = 2

    with tempfile.TemporaryDirectory() as store_dir:
        # --- first run: cold. warm() computes order, rank-CSR, WReach
        # CSR at r and 2r, and wcol, persisting each artifact as npz
        # under digest-keyed paths (``repro warm`` is the CLI spelling).
        ws = Workspace(store=store_dir)
        handle = ws.add(g)
        report = ws.warm(handle, radius=radius)
        print(f"instance: Delaunay n={g.n}, m={g.m}  (digest {handle.digest[:12]}…)")
        print(f"warmed store: wcol_{2 * radius} = {report['wcol']}, "
              f"{sum(c['computed'] for c in report['stats'].values())} "
              f"artifacts computed\n")

        # --- second run: a *fresh* workspace over the same store stands
        # in for a new process.  Every artifact loads from disk; the
        # stats prove nothing was recomputed.
        ws2 = Workspace(store=store_dir)
        res = ws2.solve(handle.detached(), radius, "seq.wreach", certify=True)
        stats = ws2.cache.stats()
        loaded = sum(c["store_hits"] for c in stats.values())
        computed = sum(c["computed"] for c in stats.values())
        print(f"warm solve: |D| = {res.size}, certified <= "
              f"{res.certificate.certified_ratio} * OPT "
              f"({res.wall_time_s * 1e3:.1f} ms)")
        print(f"artifacts: {loaded} loaded from store, {computed} recomputed\n")
        assert computed == 0

        # --- streaming batch: results arrive as they complete, not
        # after the whole sweep.  Futures carry their request.
        requests = [
            SolveRequest(graph=handle, radius=radius, algorithm=a)
            for a in ("seq.wreach", "seq.wreach-min", "seq.dvorak", "seq.greedy")
        ]
        print("streaming sweep:")
        for fut in ws2.as_completed(requests):
            r = fut.result()
            print(f"  {r.algorithm:16} |D| = {r.size:3d}  "
                  f"({r.wall_time_s * 1e3:6.1f} ms)")


if __name__ == "__main__":
    main()
