"""Monitoring-station placement on a scale-free contact network.

Scenario: a public-health agency wants every person in a contact
network to be within r hops of a monitoring station (distance-r
domination), using as few stations as possible.  Contact networks are
well modelled by Chung-Lu random graphs with power-law weights, which
have bounded expansion a.a.s. [Demaine et al.] — so the paper's
machinery applies: we get a *certified* approximation ratio from the
order actually computed, not just a heuristic answer.

The example compares the paper's algorithm (+ pruning) against the
Dvořák-style order-greedy and the classical greedy through the unified
``solve()`` API, with an LP lower bound for calibration; the shared
cache builds each radius's degeneracy order once across the
algorithms.

Run:  python examples/epidemic_firebreaks.py
"""

from repro import PrecomputeCache, solve
from repro.core.exact import lp_lower_bound
from repro.graphs.components import largest_component
from repro.graphs.random_models import chung_lu, power_law_weights


def main() -> None:
    weights = power_law_weights(800, exponent=2.7, seed=7)
    g_full = chung_lu(weights, seed=8)
    g, _ = largest_component(g_full)
    cache = PrecomputeCache()

    print(f"contact network: {g.n} people, {g.m} contacts "
          f"(avg degree {g.average_degree():.2f}, max {g.max_degree()})")

    for radius in (1, 2):
        ours = solve(g, radius, "seq.wreach",
                     prune=True, certify=True, cache=cache)
        dv = solve(g, radius, "seq.dvorak", cache=cache)
        gr = solve(g, radius, "seq.greedy", cache=cache)
        lp = lp_lower_bound(g, radius)
        c = ours.certificate.certified_c

        print(f"\n--- stations with coverage radius {radius} ---")
        print(f"  LP lower bound on OPT:       {lp:6.1f}")
        print(f"  paper's algorithm (Thm 5):   {ours.extras['raw_size']:6d}"
              f"   certified <= {c} * OPT")
        print(f"  + redundancy pruning:        {ours.size:6d}")
        print(f"  Dvorak-style order greedy:   {dv.size:6d}   (guarantee {c}^2 * OPT)")
        print(f"  classical greedy:            {gr.size:6d}   (guarantee ~ln n * OPT)")
        print(f"  pruned-vs-LP realized ratio: {ours.size / max(lp, 1):6.2f}")


if __name__ == "__main__":
    main()
