"""Monitoring-station placement on a scale-free contact network.

Scenario: a public-health agency wants every person in a contact
network to be within r hops of a monitoring station (distance-r
domination), using as few stations as possible.  Contact networks are
well modelled by Chung-Lu random graphs with power-law weights, which
have bounded expansion a.a.s. [Demaine et al.] — so the paper's
machinery applies: we get a *certified* approximation ratio from the
order actually computed, not just a heuristic answer.

The example compares the paper's algorithm (+ pruning) against the
Dvořák-style order-greedy and the classical greedy, with an LP lower
bound for calibration.

Run:  python examples/epidemic_firebreaks.py
"""

from repro import (
    domset_dvorak,
    domset_greedy,
    domset_sequential,
    lp_lower_bound,
    make_order,
    prune_dominating_set,
)
from repro.graphs.components import largest_component
from repro.graphs.random_models import chung_lu, power_law_weights
from repro.orders.wreach import wcol_of_order


def main() -> None:
    weights = power_law_weights(800, exponent=2.7, seed=7)
    g_full = chung_lu(weights, seed=8)
    g, _ = largest_component(g_full)

    print(f"contact network: {g.n} people, {g.m} contacts "
          f"(avg degree {g.average_degree():.2f}, max {g.max_degree()})")

    for radius in (1, 2):
        order = make_order(g, radius, "degeneracy")
        ours = domset_sequential(g, order, radius)
        pruned = prune_dominating_set(g, ours.dominators, radius)
        dv = domset_dvorak(g, order, radius)
        gr = domset_greedy(g, radius)
        lp = lp_lower_bound(g, radius)
        c = wcol_of_order(g, order, 2 * radius)

        print(f"\n--- stations with coverage radius {radius} ---")
        print(f"  LP lower bound on OPT:       {lp:6.1f}")
        print(f"  paper's algorithm (Thm 5):   {ours.size:6d}   certified <= {c} * OPT")
        print(f"  + redundancy pruning:        {len(pruned):6d}")
        print(f"  Dvorak-style order greedy:   {dv.size:6d}   (guarantee {c}^2 * OPT)")
        print(f"  classical greedy:            {gr.size:6d}   (guarantee ~ln n * OPT)")
        print(f"  pruned-vs-LP realized ratio: {len(pruned) / max(lp, 1):6.2f}")


if __name__ == "__main__":
    main()
