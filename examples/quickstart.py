"""Quickstart: approximate a distance-r dominating set with a certificate.

Run:  python examples/quickstart.py
"""

from repro import (
    certify_run,
    domset_sequential,
    generators,
    is_distance_r_dominating_set,
    make_order,
    prune_dominating_set,
)


def main() -> None:
    # A 32x32 grid — planar, so it belongs to a bounded expansion class.
    g = generators.grid_2d(32, 32)
    radius = 2

    # 1. Compute a linear order witnessing small weak-coloring numbers.
    order = make_order(g, radius, "degeneracy")

    # 2. Theorem 5: every vertex elects min WReach_r; elected vertices
    #    form the dominating set.
    result = domset_sequential(g, order, radius)
    assert is_distance_r_dominating_set(g, result.dominators, radius)

    # 3. The certificate: |D| <= c * OPT with c measured from the order,
    #    plus an LP lower bound on OPT for the realized ratio.
    cert = certify_run(g, order, result, with_lp=True)

    # 4. Optional post-processing: drop redundant dominators (stays a
    #    valid distance-r dominating set; see repro.core.prune).
    pruned = prune_dominating_set(g, result.dominators, radius)

    print(f"graph: {g.n} vertices, {g.m} edges (32x32 grid)")
    print(f"distance-{radius} dominating set: {result.size} vertices")
    print(f"after redundancy pruning:        {len(pruned)} vertices")
    print(f"certified approximation ratio (Theorem 5): <= {cert.certified_ratio}")
    print(f"LP lower bound on OPT: {cert.lp_bound:.1f}")
    print(f"pruned-vs-LP realized ratio: {len(pruned) / cert.lp_bound:.2f}")
    print(f"first dominators: {result.dominators[:10]} ...")


if __name__ == "__main__":
    main()
