"""Quickstart: approximate a distance-r dominating set with a certificate.

One call through the unified solver API does order construction,
Theorem-5 election, redundancy pruning, and certification; see
``list_solvers()`` (or ``python -m repro.cli list-solvers``) for every
other registered algorithm behind the same call shape.

Run:  python examples/quickstart.py
"""

from repro import generators, is_distance_r_dominating_set, solve


def main() -> None:
    # A 32x32 grid — planar, so it belongs to a bounded expansion class.
    g = generators.grid_2d(32, 32)
    radius = 2

    # Theorem 5 through the registry: compute a linear order witnessing
    # small weak-coloring numbers, elect min WReach_r per vertex, prune
    # redundant dominators, and attach the per-instance certificate
    # (|D| <= c * OPT with c measured from the order, plus an LP lower
    # bound on OPT for the realized ratio).
    res = solve(g, radius, "seq.wreach",
                prune=True, certify=True, with_lp=True)
    assert is_distance_r_dominating_set(g, res.dominators, radius)

    cert = res.certificate
    print(f"graph: {g.n} vertices, {g.m} edges (32x32 grid)")
    print(f"distance-{radius} dominating set: {res.extras['raw_size']} vertices")
    print(f"after redundancy pruning:        {res.size} vertices")
    print(f"certified approximation ratio (Theorem 5): <= {cert.certified_ratio}")
    print(f"LP lower bound on OPT: {cert.lp_bound:.1f}")
    print(f"pruned-vs-LP realized ratio: {res.size / cert.lp_bound:.2f}")
    print(f"solver wall time: {res.wall_time_s * 1e3:.1f} ms")
    print(f"first dominators: {res.dominators[:10]} ...")


if __name__ == "__main__":
    main()
