"""Every dominating-set algorithm in the library on one instance.

A guided tour: exact bounds, the paper's algorithm with its certificate,
and all the related-work baselines the paper positions itself against —
on a single Delaunay road-network instance, with the guarantee each
method actually carries.

Run:  python examples/compare_baselines.py
"""

from repro.analysis.validate import is_distance_r_dominating_set
from repro.core.domset import domset_sequential
from repro.core.dvorak import domset_dvorak
from repro.core.exact import lp_lower_bound
from repro.core.greedy import domset_greedy
from repro.core.independence import scattered_lower_bound
from repro.core.lp_rounding import lp_rounding_domset
from repro.core.prune import prune_dominating_set
from repro.distributed.kw_lp import kw_lp_domset
from repro.distributed.parallel_greedy import parallel_greedy_domset
from repro.distributed.ruling import ruling_domset
from repro.graphs.random_models import delaunay_graph
from repro.orders.degeneracy import degeneracy_order
from repro.orders.wreach import wcol_of_order


def main() -> None:
    g, _ = delaunay_graph(400, seed=20)
    radius = 2
    order, degen = degeneracy_order(g)
    c = wcol_of_order(g, order, 2 * radius)

    lp = lp_lower_bound(g, radius)
    scatter = scattered_lower_bound(g, radius)
    lb = max(lp, float(scatter))
    print(f"instance: Delaunay, n={g.n}, m={g.m}, degeneracy={degen}, r={radius}")
    print(f"lower bounds: LP={lp:.1f}, scattered-set={scatter}  ->  OPT >= {lb:.1f}\n")

    rows: list[tuple[str, int, str]] = []

    ours = domset_sequential(g, order, radius)
    rows.append(("Theorem 5 (elect-min-WReach)", ours.size, f"<= {c}*OPT, CONGEST_BC"))
    pruned = prune_dominating_set(g, ours.dominators, radius)
    rows.append(("  + redundancy pruning", len(pruned), f"<= {c}*OPT, +2r+1 LOCAL rounds"))
    dv = domset_dvorak(g, order, radius)
    rows.append(("Dvorak order-greedy [21]", dv.size, f"<= {c}^2*OPT, sequential"))
    gr = domset_greedy(g, radius)
    rows.append(("classical greedy", gr.size, "<= ln(n)*OPT, sequential"))
    ru = ruling_domset(g, radius, seed=1)
    rows.append(("ruling set (Luby on G^r) [35/49]", ru.size, "no OPT relation, O(r log n) rounds"))
    pg = parallel_greedy_domset(g, radius)
    rows.append(("parallel greedy [38-style]", pg.size, "O(a log D)-ish, O(log D) phases"))
    kw = kw_lp_domset(g, radius, seed=1)
    rows.append(("LP + rounding [34-style]", kw.size, "O(log D) expected, LOCAL"))
    bu = lp_rounding_domset(g, radius)
    rows.append(("Bansal-Umboh LP rounding [10]", bu.size, "<= 3a*OPT, central LP"))

    print(f"{'algorithm':38} {'|D|':>5}  ratio>=   guarantee")
    for name, size, guarantee in rows:
        print(f"{name:38} {size:5d}  {size/lb:7.2f}   {guarantee}")

    # Everything must be a valid distance-r dominating set.
    for dom in (ours.dominators, pruned, dv.dominators, gr.dominators,
                ru.dominators, pg.dominators, kw.dominators, bu.dominators):
        assert is_distance_r_dominating_set(g, dom, radius)
    print("\nall outputs verified as valid distance-2 dominating sets")


if __name__ == "__main__":
    main()
