"""Every dominating-set algorithm in the library on one instance.

A guided tour powered by the solver registry: ``list_solvers()`` is
the source of truth for what exists, one ``solve_batch`` sweep runs
every applicable algorithm on the same Delaunay road-network instance
(sharing the order/WReach precomputation through the batch cache), and
each row reports the guarantee the registry declares for it.

Run:  python examples/compare_baselines.py
"""

from repro.analysis.validate import is_distance_r_dominating_set
from repro.api import PrecomputeCache, SolveRequest, list_solvers, solve, solve_batch
from repro.core.exact import lp_lower_bound
from repro.core.independence import scattered_lower_bound
from repro.graphs.random_models import delaunay_graph

#: Solvers excluded from the sweep: exact blows up at this size,
#: tree-exact needs a tree, planar-cds is the r=1-only LOCAL pipeline.
SKIP = {"seq.exact", "seq.tree-exact", "local.planar-cds"}


def main() -> None:
    g, _ = delaunay_graph(400, seed=20)
    radius = 2
    cache = PrecomputeCache()

    lp = lp_lower_bound(g, radius)
    scatter = scattered_lower_bound(g, radius)
    lb = max(lp, float(scatter))
    print(f"instance: Delaunay, n={g.n}, m={g.m}, r={radius}")
    print(f"lower bounds: LP={lp:.1f}, scattered-set={scatter}  ->  OPT >= {lb:.1f}\n")

    infos = [i for i in list_solvers() if i.name not in SKIP
             and i.capabilities.supports_radius(radius)]
    requests = [
        SolveRequest(graph=g, radius=radius, algorithm=i.name,
                     certify=True, seed=1)
        for i in infos
    ]
    results = solve_batch(requests, cache=cache)

    print(f"{'solver':22} {'|D|':>5}  ratio>=   model       guarantee")
    for info, res in zip(infos, results):
        caps = info.capabilities
        print(f"{res.algorithm:22} {res.size:5d}  {res.size / lb:7.2f}   "
              f"{caps.model:10}  {caps.guarantee}")
        assert is_distance_r_dominating_set(g, res.dominators, radius)

    # The paper's algorithm with pruning, for the headline comparison.
    pruned = solve(g, radius, "seq.wreach", prune=True, certify=True, cache=cache)
    print(f"\n{'seq.wreach + pruning':22} {pruned.size:5d}  "
          f"{pruned.size / lb:7.2f}   certified <= {pruned.certificate.certified_ratio} * OPT")
    print("\nall outputs verified as valid distance-2 dominating sets")


if __name__ == "__main__":
    main()
