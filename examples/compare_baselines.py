"""Every dominating-set algorithm in the library on one instance.

A guided tour powered by the solver registry: ``list_solvers()`` is
the source of truth for what exists, one workspace sweep runs every
applicable algorithm on the same Delaunay road-network instance
(sharing the order/WReach precomputation through the workspace cache,
streaming rows as solvers finish), and each row reports the guarantee
the registry declares for it.

Run:  python examples/compare_baselines.py
"""

from repro.analysis.validate import is_distance_r_dominating_set
from repro.api import PrecomputeCache, SolveRequest, Workspace, list_solvers, solve
from repro.core.exact import lp_lower_bound
from repro.core.independence import scattered_lower_bound
from repro.graphs.random_models import delaunay_graph

#: Solvers excluded from the sweep: exact blows up at this size,
#: tree-exact needs a tree, planar-cds is the r=1-only LOCAL pipeline.
SKIP = {"seq.exact", "seq.tree-exact", "local.planar-cds"}


def main() -> None:
    g, _ = delaunay_graph(400, seed=20)
    radius = 2
    cache = PrecomputeCache()

    lp = lp_lower_bound(g, radius)
    scatter = scattered_lower_bound(g, radius)
    lb = max(lp, float(scatter))
    print(f"instance: Delaunay, n={g.n}, m={g.m}, r={radius}")
    print(f"lower bounds: LP={lp:.1f}, scattered-set={scatter}  ->  OPT >= {lb:.1f}\n")

    infos = {i.name: i for i in list_solvers() if i.name not in SKIP
             and i.capabilities.supports_radius(radius)}
    # A workspace sweep: one shared cache for the order/WReach
    # precomputation, with results streamed as each solver finishes.
    ws = Workspace(cache=cache)
    handle = ws.add(g)
    requests = [
        SolveRequest(graph=handle, radius=radius, algorithm=name,
                     certify=True, seed=1)
        for name in infos
    ]

    print(f"{'solver':22} {'|D|':>5}  ratio>=   model       guarantee")
    for fut in ws.as_completed(requests):
        res = fut.result()
        caps = infos[res.algorithm].capabilities
        print(f"{res.algorithm:22} {res.size:5d}  {res.size / lb:7.2f}   "
              f"{caps.model:10}  {caps.guarantee}")
        assert is_distance_r_dominating_set(g, res.dominators, radius)

    # The paper's algorithm with pruning, for the headline comparison.
    pruned = solve(g, radius, "seq.wreach", prune=True, certify=True, cache=cache)
    print(f"\n{'seq.wreach + pruning':22} {pruned.size:5d}  "
          f"{pruned.size / lb:7.2f}   certified <= {pruned.certificate.certified_ratio} * OPT")
    print("\nall outputs verified as valid distance-2 dominating sets")


if __name__ == "__main__":
    main()
