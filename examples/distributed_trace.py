"""Round-by-round trace of the CONGEST_BC pipeline on a small network.

Shows what the simulator measures: for each phase of Theorem 9's
pipeline (H-partition order, Algorithm 4 weak-reachability, election
routing), the per-round message counts, traffic, and largest broadcast
payload — and verifies the distributed output against the sequential
reference algorithm run on the same order.

Run:  python examples/distributed_trace.py
"""

from repro.core.domset import domset_by_wreach
from repro.distributed.domset_bc import run_election
from repro.distributed.nd_order import distributed_h_partition_order
from repro.distributed.wreach_bc import run_wreach_bc
from repro.graphs import generators


def show_rounds(label, res) -> None:
    print(f"\n{label}: {res.rounds} rounds")
    print("  round | messages | total words | max payload")
    for s in res.round_stats:
        print(f"  {s.round_index:5d} | {s.messages:8d} | {s.total_words:11d} | {s.max_payload_words:11d}")


def main() -> None:
    g = generators.grid_2d(6, 6)
    radius = 2
    print(f"network: 6x6 grid ({g.n} nodes, {g.m} links), r = {radius}")

    # Phase 1: distributed order (Barenboim-Elkin H-partition).
    oc = distributed_h_partition_order(g)
    print(f"\nphase 1 (order): {oc.rounds} rounds, classes assigned; "
          f"max payload {oc.max_payload_words} words")
    levels = sorted(set(int(c) for c in oc.class_ids))
    print(f"  class ids in use: {levels}")

    # Phase 2: Algorithm 4 — every node learns WReach_2r + paths.
    wouts, wres = run_wreach_bc(g, oc.class_ids, 2 * radius)
    show_rounds("phase 2 (WReachDist, Algorithm 4)", wres)
    sizes = [len(o.wreach) for o in wouts]
    print(f"  |WReach_{2*radius}| per node: min {min(sizes)}, max {max(sizes)}")

    # Phase 3: election — elect min WReach_r, route tokens.
    eouts, eres = run_election(g, oc.class_ids, wouts, radius)
    show_rounds("phase 3 (election routing)", eres)

    dominators = tuple(sorted(v for v, o in eouts.items() if o["in_domset"]))
    print(f"\nelected distance-{radius} dominating set: {dominators}")

    # Cross-check against the sequential reference (Theorem 5).
    seq = domset_by_wreach(g, oc.order, radius)
    assert seq.dominators == dominators
    print("matches the sequential elect-min-WReach set: OK")


if __name__ == "__main__":
    main()
