"""Constant-round connected dominating set on a planar road network.

The paper's headline LOCAL corollary: compose a constant-round planar
MDS algorithm (Lenzen-Pignolet-Wattenhofer style) with the Theorem-17
connectifier and obtain a connected dominating set in a CONSTANT number
of LOCAL rounds, only a factor <= 2rd = 6 larger (plus the MDS itself)
than the dominating set you started from.

Scenario: road-network intersections (Delaunay triangulation of random
sites, planar) need a connected subset of "beacon" intersections such
that every intersection is adjacent to a beacon.

Run:  python examples/planar_cds_local.py
"""

from repro import is_connected_distance_r_dominating_set
from repro.core.exact import lp_lower_bound
from repro.distributed.connect_local import local_connectify
from repro.distributed.lenzen import lenzen_planar_mds
from repro.graphs.random_models import delaunay_graph


def main() -> None:
    g, sites = delaunay_graph(600, seed=2026)
    print(f"road network: {g.n} intersections, {g.m} segments (planar Delaunay)")

    # Step 1: constant-round planar MDS (7 LOCAL rounds).
    mds = lenzen_planar_mds(g)
    lp = lp_lower_bound(g, 1)
    print(f"\nstep 1 — Lenzen-style MDS: {mds.size} beacons in {mds.rounds} rounds")
    print(f"  (pair-rule phase D1: {len(mds.d1)}, election phase D2: {len(mds.d2)})")
    print(f"  LP lower bound on OPT: {lp:.1f}  -> measured ratio <= {mds.size / lp:.2f}")

    # Step 2: Theorem 17 connectifier (3r+1 = 4 LOCAL rounds at r=1).
    cds = local_connectify(g, mds.dominators, radius=1)
    assert is_connected_distance_r_dominating_set(g, cds.connected_set, 1)
    print(f"\nstep 2 — Lemma 16 connectify: {cds.size} vertices in {cds.rounds} rounds")
    print(f"  minor H(D) edges realized: {len(cds.minor_edges)}")
    print(f"  blowup |D'|/|D| = {cds.blowup:.2f}  (Theorem 17 bound: 2rd + 1 = 7)")

    print(f"\ntotal LOCAL rounds: {mds.rounds + cds.rounds} — constant, independent of n")
    print(f"connected-CDS ratio vs LP bound: {cds.size / lp:.2f}")


if __name__ == "__main__":
    main()
