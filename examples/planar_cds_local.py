"""Constant-round connected dominating set on a planar road network.

The paper's headline LOCAL corollary: compose a constant-round planar
MDS algorithm (Lenzen-Pignolet-Wattenhofer style) with the Theorem-17
connectifier and obtain a connected dominating set in a CONSTANT number
of LOCAL rounds, only a factor <= 2rd = 6 larger (plus the MDS itself)
than the dominating set you started from.

Scenario: road-network intersections (Delaunay triangulation of random
sites, planar) need a connected subset of "beacon" intersections such
that every intersection is adjacent to a beacon.  The whole
composition is one registered solver: ``local.planar-cds``.

Run:  python examples/planar_cds_local.py
"""

from repro import is_connected_distance_r_dominating_set, solve
from repro.core.exact import lp_lower_bound
from repro.graphs.random_models import delaunay_graph


def main() -> None:
    g, sites = delaunay_graph(600, seed=2026)
    print(f"road network: {g.n} intersections, {g.m} segments (planar Delaunay)")

    res = solve(g, 1, "local.planar-cds", connect=True)
    assert is_connected_distance_r_dominating_set(g, res.connected_set, 1)

    mds = res.raw  # LenzenResult: the phase-level MDS detail
    cds = res.extras["connect_result"]  # LocalConnectResult
    lp = lp_lower_bound(g, 1)

    print(f"\nstep 1 — Lenzen-style MDS: {mds.size} beacons in {mds.rounds} rounds")
    print(f"  (pair-rule phase D1: {len(mds.d1)}, election phase D2: {len(mds.d2)})")
    print(f"  LP lower bound on OPT: {lp:.1f}  -> measured ratio <= {mds.size / lp:.2f}")

    print(f"\nstep 2 — Lemma 16 connectify: {cds.size} vertices in {cds.rounds} rounds")
    print(f"  minor H(D) edges realized: {len(cds.minor_edges)}")
    print(f"  blowup |D'|/|D| = {cds.blowup:.2f}  (Theorem 17 bound: 2rd + 1 = 7)")

    print(f"\ntotal LOCAL rounds: {res.rounds} — constant, independent of n")
    print(f"connected-CDS ratio vs LP bound: {cds.size / lp:.2f}")
    print(f"solver wall time: {res.wall_time_s * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
