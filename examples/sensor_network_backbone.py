"""Sensor-network backbone: connected distance-r domination on a unit-disk graph.

Scenario: battery-powered sensors scattered in the unit square talk to
anything within their radio radius (a random geometric graph — a
bounded-expansion class at bounded density).  We want a small set of
*cluster heads* such that every sensor is within r hops of a head, and
the heads plus relays form a CONNECTED backbone for routing — exactly
the CONNECTED DISTANCE-r DOMINATING SET problem, solved here with the
paper's CONGEST_BC pipeline (Theorem 10), i.e. something each sensor
could actually run with broadcast radios.

Run:  python examples/sensor_network_backbone.py
"""

from repro import is_connected_distance_r_dominating_set
from repro.distributed.connect_bc import run_connect_bc
from repro.graphs.components import largest_component
from repro.graphs.random_models import random_geometric
from repro.orders.wreach import wcol_of_order


def main() -> None:
    # ~500 sensors at a radio radius keeping expected degree constant.
    g_full, points = random_geometric(500, seed=42)
    g, kept = largest_component(g_full)  # the backbone serves the connected part
    radius = 2

    print(f"sensors: {g_full.n} deployed, largest connected field: {g.n}")
    print(f"radio links: {g.m}, average degree {g.average_degree():.2f}")

    result = run_connect_bc(g, radius)
    assert is_connected_distance_r_dominating_set(g, result.connected_set, radius)

    heads = result.dominators
    backbone = result.connected_set
    relays = set(backbone) - set(heads)
    c_prime = wcol_of_order(g, result.order.order, 2 * radius + 1)

    print(f"\ncluster heads (distance-{radius} dominators): {len(heads)}")
    print(f"backbone size (heads + relays):               {len(backbone)}")
    print(f"relays added for connectivity:                {len(relays)}")
    print(f"blowup |D'|/|D| = {result.blowup:.2f} (bound {c_prime * (2 * radius + 2)})")
    print("\ndistributed cost (CONGEST_BC):")
    for phase, rounds in result.phase_rounds.items():
        words = result.phase_max_words[phase]
        print(f"  {phase:>9}: {rounds:3d} rounds, max broadcast {words} words")
    print(f"  total logical rounds: {result.total_rounds}")


if __name__ == "__main__":
    main()
