"""Sensor-network backbone: connected distance-r domination on a unit-disk graph.

Scenario: battery-powered sensors scattered in the unit square talk to
anything within their radio radius (a random geometric graph — a
bounded-expansion class at bounded density).  We want a small set of
*cluster heads* such that every sensor is within r hops of a head, and
the heads plus relays form a CONNECTED backbone for routing — exactly
the CONNECTED DISTANCE-r DOMINATING SET problem, solved here with the
paper's CONGEST_BC pipeline (Theorem 10) through
``solve(..., "dist.congest", connect=True)``, i.e. something each
sensor could actually run with broadcast radios.

Run:  python examples/sensor_network_backbone.py
"""

from repro import solve
from repro.graphs.components import largest_component
from repro.graphs.random_models import random_geometric
from repro.orders.wreach import wcol_of_order


def main() -> None:
    # ~500 sensors at a radio radius keeping expected degree constant.
    g_full, points = random_geometric(500, seed=42)
    g, kept = largest_component(g_full)  # the backbone serves the connected part
    radius = 2

    print(f"sensors: {g_full.n} deployed, largest connected field: {g.n}")
    print(f"radio links: {g.m}, average degree {g.average_degree():.2f}")

    res = solve(g, radius, "dist.congest", connect=True, validate=True)
    assert res.extras["valid"]
    conn = res.extras["connect_result"]
    oc = res.extras["order_computation"]

    heads = res.dominators
    backbone = res.connected_set
    relays = set(backbone) - set(heads)
    c_prime = wcol_of_order(g, oc.order, 2 * radius + 1)

    print(f"\ncluster heads (distance-{radius} dominators): {len(heads)}")
    print(f"backbone size (heads + relays):               {len(backbone)}")
    print(f"relays added for connectivity:                {len(relays)}")
    print(f"blowup |D'|/|D| = {conn.blowup:.2f} (bound {c_prime * (2 * radius + 2)})")
    print("\ndistributed cost (CONGEST_BC):")
    for phase, rounds in conn.phase_rounds.items():
        words = conn.phase_max_words[phase]
        print(f"  {phase:>9}: {rounds:3d} rounds, max broadcast {words} words")
    print(f"  total logical rounds: {conn.total_rounds}")
    print(f"  solver wall time: {res.wall_time_s * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
