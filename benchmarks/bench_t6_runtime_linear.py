"""T6 — Theorem 5: (near-)linear sequential running time.

Paper claim: Algorithm 1 runs in O(c(r)^2 * n) time on any bounded
expansion class — linear in n for fixed class and r.  We time the
complete pipeline piece (SortLists + restricted BFS sweep) on growing
grids and Delaunay graphs, report nanoseconds per vertex, and check the
per-vertex cost stays flat (the signature of linear scaling) via the
R^2 of a linear fit of time vs n.
"""

import time


from repro.analysis.stats import linear_fit
from repro.bench.harness import write_result
from repro.bench.tables import Table
from repro.bench.workloads import scaling_family
from repro.core.domset import domset_sequential
from repro.orders.degeneracy import degeneracy_order

SIZES = [1024, 2048, 4096, 8192, 16384]


def _time_once(g, radius):
    order, _ = degeneracy_order(g)
    t0 = time.perf_counter()
    domset_sequential(g, order, radius)
    return time.perf_counter() - t0


def _t6_rows():
    table = Table(
        "T6: sequential runtime scaling (Algorithm 1, r=2)",
        ["family", "n", "time (s)", "us per vertex"],
    )
    fits = Table("T6-fit: time = a * n + b", ["family", "a (us/vertex)", "R^2"])
    ok = True
    for family in ("grid", "delaunay"):
        xs, ys = [], []
        for n, g in scaling_family(family, SIZES):
            dt = _time_once(g, 2)
            table.add(family, g.n, dt, 1e6 * dt / g.n)
            xs.append(g.n)
            ys.append(dt)
        a, b, r2 = linear_fit(xs, ys)
        fits.add(family, 1e6 * a, r2)
        # Linear scaling shows as a high-R^2 linear fit; superlinear
        # growth (e.g. quadratic) would push R^2 of the *linear* fit
        # down and the per-vertex cost up by 16x across our range.
        per_vertex = [y / x for x, y in zip(xs, ys, strict=True)]
        if per_vertex[-1] > 5 * per_vertex[0]:
            ok = False
    return table, fits, ok


def test_t6_runtime_linear(benchmark):
    _, g = scaling_family("grid", [4096])[0]
    order, _ = degeneracy_order(g)
    benchmark.pedantic(
        lambda: domset_sequential(g, order, 2), rounds=3, iterations=1
    )
    table, fits, ok = _t6_rows()
    write_result("t6_runtime_linear", table, fits)
    assert ok, "per-vertex cost grew superlinearly"
