"""F-series — figure data: how everything scales with the radius r.

The paper has no figures; these are the series a figure-bearing version
would plot.  Printed as aligned tables (x-axis r = 1..4):

* F1: dominating-set sizes (ours+prune vs scattered/LP lower bound) and
  the certified constant c(r) — the theory predicts c grows with r while
  the realized ratio stays flat.
* F2: connected blowup |D'|/|D| vs r for both constructions (Cor 13 in
  CONGEST_BC, Lemma 16 in LOCAL) — bounds grow linearly in r, realized
  values stay near 1.
* F3: CONGEST_BC logical and bandwidth-normalized rounds vs r — logical
  grows linearly (3r + order), normalized ~ r * c(r) on top.
"""


from repro.bench.harness import write_result
from repro.bench.tables import Table
from repro.bench.workloads import WORKLOADS
from repro.core.connect import connect_via_minor
from repro.core.domset import domset_sequential
from repro.core.exact import lp_lower_bound
from repro.core.independence import scattered_lower_bound
from repro.core.prune import prune_dominating_set
from repro.distributed.connect_bc import run_connect_bc
from repro.distributed.nd_order import distributed_h_partition_order
from repro.orders.degeneracy import degeneracy_order
from repro.orders.wreach import wcol_of_order

WORKLOAD_NAMES = ["grid16", "delaunay400", "tree500"]
RADII = (1, 2, 3, 4)


def _f1():
    table = Table(
        "F1: sizes and certificates vs r",
        ["workload", "r", "pruned |D|", "LB (max of LP/scatter)", "ratio", "certified c(r)"],
    )
    for name in WORKLOAD_NAMES:
        g = WORKLOADS[name].graph()
        order, _ = degeneracy_order(g)
        for r in RADII:
            ds = domset_sequential(g, order, r)
            pruned = prune_dominating_set(g, ds.dominators, r)
            lb = max(lp_lower_bound(g, r), float(scattered_lower_bound(g, r)))
            c = wcol_of_order(g, order, 2 * r)
            table.add(name, r, len(pruned), round(lb, 1), len(pruned) / max(lb, 1.0), c)
    return table


def _f2():
    table = Table(
        "F2: connected blowup vs r",
        ["workload", "r", "|D|", "BC blowup (Cor 13)", "LOCAL blowup (Lem 16)"],
    )
    for name in WORKLOAD_NAMES:
        g = WORKLOADS[name].graph()
        oc = distributed_h_partition_order(g)
        for r in (1, 2, 3):
            bc = run_connect_bc(g, r, oc)
            minor = connect_via_minor(g, bc.dominators, r)
            table.add(
                name, r, len(bc.dominators), bc.blowup,
                minor.size / max(1, len(bc.dominators)),
            )
    return table


def _f3():
    table = Table(
        "F3: CONGEST_BC rounds vs r (delaunay400)",
        ["r", "logical rounds", "normalized (1 word/round)", "c(2r)"],
    )
    g = WORKLOADS["delaunay400"].graph()
    oc = distributed_h_partition_order(g)
    from repro.distributed.wreach_bc import run_wreach_bc

    for r in RADII:
        _, res = run_wreach_bc(g, oc.class_ids, 2 * r)
        c = wcol_of_order(g, oc.order, 2 * r)
        table.add(r, oc.rounds + res.rounds + r, oc.rounds + res.normalized_rounds(1) + r, c)
    return table


def test_f_series(benchmark):
    g = WORKLOADS["delaunay400"].graph()
    order, _ = degeneracy_order(g)
    benchmark.pedantic(lambda: domset_sequential(g, order, 4), rounds=1, iterations=1)
    f1, f2, f3 = _f1(), _f2(), _f3()
    write_result("f_series", f1, f2, f3)
    # Shape assertions: certified c grows with r; realized ratio stays bounded.
    by_workload: dict[str, list[float]] = {}
    for row in f1.rows:
        by_workload.setdefault(row[0], []).append(float(row[5]))
    for name, cs in by_workload.items():
        assert cs == sorted(cs), f"certified c must be nondecreasing in r ({name})"
    for row in f1.rows:
        assert float(row[4]) <= 6.0, f"realized ratio blew up: {row}"