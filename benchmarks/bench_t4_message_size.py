"""T4 — Lemma 7: message-size bound in WReachDist.

Paper claim: every vertex forwards at most c paths simultaneously, so
the per-round broadcast payload is O(c^2 * r * log n) bits (c paths of
<= 2r+1 super-ids).  We measure the maximum single payload (in words =
O(log n)-bit units) per workload/r and compare with the bound
c * (2r+1) * 2 words, plus the CONGEST_BC-compliant normalized round
count that the pipelining argument converts it into.
"""


from repro.bench.harness import write_result
from repro.bench.tables import Table
from repro.bench.workloads import WORKLOADS
from repro.distributed.nd_order import distributed_h_partition_order
from repro.distributed.wreach_bc import run_wreach_bc
from repro.orders.wreach import wcol_of_order

WORKLOAD_NAMES = ["grid16", "tri16", "tree500", "delaunay400", "ktree300"]


def _t4_rows():
    table = Table(
        "T4: WReachDist max payload (words) vs Lemma 7 bound",
        [
            "workload",
            "n",
            "r",
            "horizon 2r",
            "max words",
            "bound c*(2r+1)*2",
            "c",
            "total words",
            "norm rounds(1w)",
        ],
    )
    violations = []
    for name in WORKLOAD_NAMES:
        g = WORKLOADS[name].graph()
        oc = distributed_h_partition_order(g)
        for r in (1, 2, 3):
            horizon = 2 * r
            outs, res = run_wreach_bc(g, oc.class_ids, horizon)
            c = wcol_of_order(g, oc.order, horizon)
            bound = c * (horizon + 1) * 2 + 2
            table.add(
                name, g.n, r, horizon, res.max_payload_words, bound, c,
                res.total_words, res.normalized_rounds(1),
            )
            if res.max_payload_words > bound:
                violations.append((name, r, res.max_payload_words, bound))
    return table, violations


def test_t4_message_size(benchmark):
    g = WORKLOADS["delaunay400"].graph()
    oc = distributed_h_partition_order(g)
    benchmark.pedantic(
        lambda: run_wreach_bc(g, oc.class_ids, 4), rounds=1, iterations=1
    )
    table, violations = _t4_rows()
    write_result("t4_message_size", table)
    assert violations == []
