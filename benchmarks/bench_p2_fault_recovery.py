"""P2 — fault recovery: supervised-pool crash overhead vs fault-free.

Measures what the supervision layer of :mod:`repro.api.supervisor`
costs and guarantees when a pool worker actually dies mid-batch:

* **fault-free**: a request batch over a pooled store-backed
  :class:`~repro.api.workspace.Workspace` with no plan active — the
  baseline wall time and the baseline results;
* **worker-kill**: the same batch in a fresh store with a seeded
  :class:`~repro.api.faults.FaultPlan` that ``os._exit(1)``'s the
  worker executing the designated graph-group on its first dispatch
  attempt — the supervisor must detect the broken pool, respawn it,
  re-dispatch the group, and deliver results **bit-identical** to the
  fault-free run (asserted, not sampled: dominator sets, sizes, and
  certificates are compared element-wise);
* **lease contention**: one cold warm vs a warm re-run under an
  injected ``lease`` rule — the store-side recovery path (waiting out
  a contender, then loading what it persisted) measured on the same
  clock.

Recovery overhead is reported as ``faulty_s / clean_s`` per instance,
plus the supervisor's counters (respawns, per-digest retries) so the
trajectory records that a crash actually happened — a run where no
worker died measures nothing.

Results go to ``BENCH_fault_recovery.json`` at the repo root and a
table in ``benchmarks/results/p2_fault_recovery.txt``.

Usage::

    PYTHONPATH=src python benchmarks/bench_p2_fault_recovery.py          # full
    PYTHONPATH=src python benchmarks/bench_p2_fault_recovery.py --smoke  # CI

``--smoke`` runs the smallest instance only and **fails (exit 1)** if

* any recovered result differs from its fault-free twin (the
  bit-identity gate — the entire point of idempotent re-dispatch), or
* no pool respawn was observed (the fault did not inject), or
* any group was poisoned (recovery should succeed within the default
  attempt budget).
"""

import argparse
import json
import pathlib
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import FaultPlan  # noqa: E402
from repro.api.store import ArtifactStore, graph_digest  # noqa: E402
from repro.api.types import SolveRequest  # noqa: E402
from repro.api.workspace import Workspace  # noqa: E402
from repro.bench.harness import write_result  # noqa: E402
from repro.bench.tables import Table  # noqa: E402
from repro.graphs import generators as gen  # noqa: E402

#: (name, builder for the killed graph, builder for the sibling graph)
FULL_INSTANCES = [
    ("grid16+tree", lambda: gen.grid_2d(16, 16), lambda: gen.balanced_tree(2, 5)),
    ("grid32+ktree", lambda: gen.grid_2d(32, 32), lambda: gen.k_tree(300, 3, seed=9)),
    ("grid64+tree", lambda: gen.grid_2d(64, 64), lambda: gen.balanced_tree(3, 5)),
]
SMOKE_INSTANCES = FULL_INSTANCES[:1]

WORKERS = 2


def _requests(g, t):
    return [
        SolveRequest(graph=g, radius=1, algorithm="seq.wreach", certify=True),
        SolveRequest(graph=t, radius=1, algorithm="seq.greedy"),
        SolveRequest(graph=g, radius=1, algorithm="seq.greedy"),
        SolveRequest(graph=t, radius=1, algorithm="seq.wreach"),
    ]


def _run_batch(store_dir, reqs, plan=None):
    """One pooled batch; returns (results, wall_s, supervisor stats)."""
    ctx = plan.activate() if plan is not None else None
    if ctx is not None:
        ctx.__enter__()
    try:
        t0 = time.perf_counter()
        with Workspace(store=store_dir, workers=WORKERS, backoff_base_s=0.01) as ws:
            results = ws.run(reqs)
            stats = ws._pool.stats() if ws._pool is not None else {}
        wall = time.perf_counter() - t0
    finally:
        if ctx is not None:
            ctx.__exit__(None, None, None)
    return results, wall, stats


def _identical(a, b):
    """Element-wise bit-identity of two result lists."""
    if len(a) != len(b):
        return False
    for x, y in zip(a, b, strict=True):
        if x.dominators != y.dominators or x.size != y.size:
            return False
        if x.certificate != y.certificate:
            return False
    return True


def bench_instance(name, build_killed, build_sibling, tmp):
    g = build_killed()
    t = build_sibling()
    reqs = _requests(g, t)
    dg = graph_digest(g)

    clean, clean_s, _ = _run_batch(tmp / "clean", reqs)
    plan = FaultPlan.parse(f"seed=1;kill:digest={dg[:12]},attempts=1")
    faulty, faulty_s, stats = _run_batch(tmp / "faulty", reqs, plan=plan)

    identical = _identical(clean, faulty)

    # Store-side recovery: cold warm vs a warm under injected lease
    # contention (the contender waits, then loads the winner's bytes).
    store = ArtifactStore(tmp / "clean")
    t0 = time.perf_counter()
    with FaultPlan.parse("lease:holds=3").activate():
        with store.lease(dg, timeout_s=5.0) as lk:
            contended_s = time.perf_counter() - t0
            lease_recovered = lk.acquired

    return {
        "name": name,
        "n_killed": g.n,
        "n_sibling": t.n,
        "requests": len(reqs),
        "clean_s": clean_s,
        "faulty_s": faulty_s,
        "overhead": faulty_s / clean_s if clean_s > 0 else float("inf"),
        "bit_identical": identical,
        "respawns": stats.get("respawns", 0),
        "retries": stats.get("retries", {}),
        "poisoned": stats.get("poisoned", []),
        "lease_wait_s": contended_s,
        "lease_recovered": lease_recovered,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--smoke", action="store_true",
        help="smallest instance only; exit 1 unless recovery is "
        "bit-identical, a respawn happened, and nothing was poisoned",
    )
    ap.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="JSON output path (default: BENCH_fault_recovery.json at the "
        "repo root, BENCH_fault_recovery_smoke.json in smoke mode)",
    )
    args = ap.parse_args(argv)

    instances = SMOKE_INSTANCES if args.smoke else FULL_INSTANCES
    out_path = args.out or (
        REPO_ROOT
        / (
            "BENCH_fault_recovery_smoke.json"
            if args.smoke
            else "BENCH_fault_recovery.json"
        )
    )

    table = Table(
        f"P2: worker-kill recovery vs fault-free ({WORKERS} workers)",
        [
            "instance", "n", "clean s", "faulty s", "overhead",
            "respawns", "retries", "identical", "lease wait ms",
        ],
    )
    rows = []
    for name, build_killed, build_sibling in instances:
        with tempfile.TemporaryDirectory() as tmp:
            row = bench_instance(name, build_killed, build_sibling, pathlib.Path(tmp))
        rows.append(row)
        table.add(
            name,
            row["n_killed"] + row["n_sibling"],
            f"{row['clean_s']:.2f}",
            f"{row['faulty_s']:.2f}",
            f"{row['overhead']:.2f}x",
            row["respawns"],
            sum(row["retries"].values()),
            "yes" if row["bit_identical"] else "NO",
            f"{row['lease_wait_s'] * 1e3:.0f}",
        )
        print(
            f"  [{name}] clean {row['clean_s']:.2f}s  faulty {row['faulty_s']:.2f}s  "
            f"overhead {row['overhead']:.2f}x  respawns {row['respawns']}  "
            f"identical={row['bit_identical']}",
            flush=True,
        )

    report = {
        "schema": 1,
        "benchmark": "p2_fault_recovery",
        "mode": "smoke" if args.smoke else "full",
        "workers": WORKERS,
        "instances": rows,
        "worst_overhead": max(r["overhead"] for r in rows),
        "all_bit_identical": all(r["bit_identical"] for r in rows),
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    write_result(
        "p2_fault_recovery_smoke" if args.smoke else "p2_fault_recovery", table
    )
    print(f"wrote {out_path}")

    failures = []
    for r in rows:
        if not r["bit_identical"]:
            failures.append(f"{r['name']}: recovered results differ from fault-free")
        if r["respawns"] < 1:
            failures.append(f"{r['name']}: no pool respawn observed (fault not injected)")
        if r["poisoned"]:
            failures.append(f"{r['name']}: groups poisoned {r['poisoned']}")
        if not r["lease_recovered"]:
            failures.append(f"{r['name']}: lease never acquired under contention")
    if failures:
        print("FAULT-RECOVERY GATE FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("fault-recovery gate passed: bit-identical recovery on every instance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
