"""T9 — distributed baseline comparison (the paper's related-work table).

The introduction contrasts Theorem 9 with the other distributed
approaches: MIS/ruling-set constructions with no OPT relation [35, 49],
arboricity-based parallel greedy [38], and constant-round planar-only
algorithms [36].  This experiment puts them side by side on the same
workloads: solution size, round cost (of the kind each model charges),
and what guarantee each carries.

Expected shape: Theorem 9 and parallel-greedy sizes are comparable;
ruling sets are smaller on dense balls but carry no ratio bound; only
Theorem 9 works in CONGEST_BC with a certified constant ratio.
"""

import pytest

from repro.analysis.validate import is_distance_r_dominating_set
from repro.bench.harness import write_result
from repro.bench.tables import Table
from repro.bench.workloads import WORKLOADS
from repro.core.exact import lp_lower_bound
from repro.core.independence import scattered_lower_bound
from repro.core.prune import prune_dominating_set
from repro.core.tree_exact import is_tree, tree_domset_exact
from repro.distributed.domset_bc import run_domset_bc
from repro.distributed.kw_lp import kw_lp_domset
from repro.distributed.nd_order import distributed_h_partition_order
from repro.distributed.parallel_greedy import parallel_greedy_domset
from repro.distributed.ruling import ruling_domset

WORKLOAD_NAMES = ["grid16", "tri16", "tree500", "delaunay400", "ktree300"]


def _t9_rows():
    table = Table(
        "T9: distributed approaches side by side (r in {1,2})",
        [
            "workload",
            "r",
            "LB",
            "scatter LB",
            "Thm9",
            "Thm9+prune",
            "ruling set",
            "par-greedy",
            "KW-LP",
            "Thm9 rounds",
            "ruling G-rounds",
            "pg LOCAL rounds",
        ],
    )
    invalid = []
    for name in WORKLOAD_NAMES:
        g = WORKLOADS[name].graph()
        oc = distributed_h_partition_order(g)
        for r in (1, 2):
            thm9 = run_domset_bc(g, r, oc)
            pruned = prune_dominating_set(g, thm9.dominators, r)
            ruling = ruling_domset(g, r, seed=3)
            pg = parallel_greedy_domset(g, r)
            kw = kw_lp_domset(g, r, seed=4)
            if is_tree(g):
                lb = float(tree_domset_exact(g, r)[0])
            else:
                lb = lp_lower_bound(g, r)
            slb = scattered_lower_bound(g, r)
            for label, dom in (
                ("thm9", thm9.dominators),
                ("ruling", ruling.dominators),
                ("pg", pg.dominators),
                ("kw", kw.dominators),
            ):
                if not is_distance_r_dominating_set(g, dom, r):
                    invalid.append((name, r, label))
            if slb > (lb if lb == int(lb) and is_tree(g) else slb):
                invalid.append((name, r, "scatter-exceeds-exact"))
            table.add(
                name, r, round(lb, 1), slb, thm9.size, len(pruned), ruling.size,
                pg.size, kw.size, thm9.total_rounds, ruling.g_rounds,
                pg.local_rounds,
            )
    return table, invalid


def test_t9_distributed_baselines(benchmark):
    g = WORKLOADS["delaunay400"].graph()
    benchmark.pedantic(lambda: ruling_domset(g, 2, seed=3), rounds=1, iterations=1)
    table, invalid = _t9_rows()
    write_result("t9_distributed_baselines", table)
    assert invalid == []
