"""T9 — distributed baseline comparison (the paper's related-work table).

The introduction contrasts Theorem 9 with the other distributed
approaches: MIS/ruling-set constructions with no OPT relation [35, 49],
arboricity-based parallel greedy [38], and constant-round planar-only
algorithms [36].  This experiment puts them side by side on the same
workloads: solution size, round cost (of the kind each model charges),
and what guarantee each carries.

The whole comparison is one ``solve_batch`` sweep over the registry —
the shape the unified API exists for: every algorithm behind the same
request, a shared precompute cache amortizing the order construction,
and the per-run provenance landing in the results file.

Expected shape: Theorem 9 and parallel-greedy sizes are comparable;
ruling sets are smaller on dense balls but carry no ratio bound; only
Theorem 9 works in CONGEST_BC with a certified constant ratio.
"""


from repro.api import PrecomputeCache, SolveRequest, solve_batch
from repro.analysis.validate import is_distance_r_dominating_set
from repro.bench.harness import write_result
from repro.bench.tables import Table
from repro.bench.workloads import WORKLOADS
from repro.core.exact import lp_lower_bound
from repro.core.independence import scattered_lower_bound
from repro.core.prune import prune_dominating_set
from repro.core.tree_exact import is_tree, tree_domset_exact

WORKLOAD_NAMES = ["grid16", "tri16", "tree500", "delaunay400", "ktree300"]
RADII = (1, 2)
#: (registry name, seed) — the comparison axis of the experiment.
CONTENDERS = (
    ("dist.congest", 0),
    ("dist.ruling", 3),
    ("dist.parallel-greedy", 0),
    ("dist.kw-lp", 4),
)


def _t9_rows():
    table = Table(
        "T9: distributed approaches side by side (r in {1,2})",
        [
            "workload",
            "r",
            "LB",
            "scatter LB",
            "Thm9",
            "Thm9+prune",
            "ruling set",
            "par-greedy",
            "KW-LP",
            "Thm9 rounds",
            "ruling G-rounds",
            "pg LOCAL rounds",
        ],
    )
    cache = PrecomputeCache()
    invalid = []
    all_runs = []
    for name in WORKLOAD_NAMES:
        g = WORKLOADS[name].graph()
        requests = [
            SolveRequest(graph=g, radius=r, algorithm=algo, seed=seed)
            for r in RADII
            for algo, seed in CONTENDERS
        ]
        results = solve_batch(requests, cache=cache)
        all_runs += results
        by_key = {(res.radius, res.algorithm): res for res in results}
        for r in RADII:
            thm9 = by_key[(r, "dist.congest")]
            ruling = by_key[(r, "dist.ruling")]
            pg = by_key[(r, "dist.parallel-greedy")]
            kw = by_key[(r, "dist.kw-lp")]
            pruned = prune_dominating_set(g, thm9.dominators, r)
            if is_tree(g):
                lb = float(tree_domset_exact(g, r)[0])
            else:
                lb = lp_lower_bound(g, r)
            slb = scattered_lower_bound(g, r)
            for label, res in (("thm9", thm9), ("ruling", ruling),
                               ("pg", pg), ("kw", kw)):
                if not is_distance_r_dominating_set(g, res.dominators, r):
                    invalid.append((name, r, label))
            if slb > (lb if lb == int(lb) and is_tree(g) else slb):
                invalid.append((name, r, "scatter-exceeds-exact"))
            table.add(
                name, r, round(lb, 1), slb, thm9.size, len(pruned), ruling.size,
                pg.size, kw.size, thm9.rounds, ruling.rounds, pg.rounds,
            )
    return table, invalid, all_runs


def test_t9_distributed_baselines(benchmark):
    g = WORKLOADS["delaunay400"].graph()
    from repro.api import solve

    benchmark.pedantic(
        lambda: solve(g, 2, "dist.ruling", seed=3), rounds=1, iterations=1
    )
    table, invalid, runs = _t9_rows()
    write_result("t9_distributed_baselines", table, runs=runs)
    assert invalid == []
