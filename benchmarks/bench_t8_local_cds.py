"""T8 — Theorem 17 + Lenzen et al.: constant-round planar connected MDS.

Paper claim (the closing corollary): composing a constant-round planar
MDS algorithm [36] with the Lemma-16 connectifier yields a constant
factor approximation of CONNECTED dominating set on planar graphs in a
constant number of LOCAL rounds, the connection step multiplying the
size by at most 2rd = 6 (plus D itself; planar depth-1 minors have
d <= 3).  Reported: MDS size vs exact OPT, CDS size, connectify blowup
vs the 6+1 bound, and total rounds (must be a constant independent of n).

The whole composition is one registered solver
(``local.planar-cds``); the exact lower bounds also run through the
registry (``seq.exact``).
"""


from repro.api import PrecomputeCache, solve
from repro.analysis.validate import is_connected_distance_r_dominating_set
from repro.bench.harness import write_result
from repro.bench.tables import Table
from repro.bench.workloads import WORKLOADS
from repro.core.exact import lp_lower_bound
from repro.errors import SolverError

PLANAR_WORKLOADS = ["grid16", "tri16", "hex16", "tree500", "delaunay400", "outerplanar200"]


def _t8_rows():
    table = Table(
        "T8: planar LOCAL pipeline (Lenzen-style MDS + Thm 17 connectify, r=1)",
        [
            "workload",
            "n",
            "MDS",
            "LB",
            "MDS ratio",
            "CDS",
            "blowup",
            "bound(7)",
            "rounds",
            "valid",
        ],
    )
    cache = PrecomputeCache()
    failures = []
    runs = []
    for name in PLANAR_WORKLOADS:
        g = WORKLOADS[name].graph()
        res = solve(g, 1, "local.planar-cds", connect=True, cache=cache)
        runs.append(res)
        blowup = res.extras["blowup"]
        try:
            if g.n <= 310:
                ex = solve(g, 1, "seq.exact",
                           params={"time_limit": 20.0}, cache=cache)
                runs.append(ex)
                lb = float(ex.size)
            else:
                lb = lp_lower_bound(g, 1)
        except SolverError:
            lb = lp_lower_bound(g, 1)
        valid = is_connected_distance_r_dominating_set(g, res.connected_set, 1)
        table.add(
            name, g.n, res.size, round(lb, 1), res.size / max(1.0, lb),
            len(res.connected_set), blowup, 7, res.rounds, valid,
        )
        if not valid or blowup > 7.0 or res.rounds > 11:
            failures.append(name)
    return table, failures, runs


def test_t8_local_cds(benchmark):
    g = WORKLOADS["delaunay400"].graph()
    benchmark.pedantic(
        lambda: solve(g, 1, "local.planar-cds", connect=True),
        rounds=1,
        iterations=1,
    )
    table, failures, runs = _t8_rows()
    write_result("t8_local_cds", table, runs=runs)
    assert failures == []
