"""T8 — Theorem 17 + Lenzen et al.: constant-round planar connected MDS.

Paper claim (the closing corollary): composing a constant-round planar
MDS algorithm [36] with the Lemma-16 connectifier yields a constant
factor approximation of CONNECTED dominating set on planar graphs in a
constant number of LOCAL rounds, the connection step multiplying the
size by at most 2rd = 6 (plus D itself; planar depth-1 minors have
d <= 3).  Reported: MDS size vs exact OPT, CDS size, connectify blowup
vs the 6+1 bound, and total rounds (must be a constant independent of n).
"""

import pytest

from repro.analysis.validate import is_connected_distance_r_dominating_set
from repro.bench.harness import write_result
from repro.bench.tables import Table
from repro.bench.workloads import WORKLOADS
from repro.core.exact import exact_domset, lp_lower_bound
from repro.distributed.connect_local import local_connectify
from repro.distributed.lenzen import lenzen_planar_mds
from repro.errors import SolverError

PLANAR_WORKLOADS = ["grid16", "tri16", "hex16", "tree500", "delaunay400", "outerplanar200"]


def _t8_rows():
    table = Table(
        "T8: planar LOCAL pipeline (Lenzen-style MDS + Thm 17 connectify, r=1)",
        [
            "workload",
            "n",
            "MDS",
            "LB",
            "MDS ratio",
            "CDS",
            "blowup",
            "bound(7)",
            "rounds",
            "valid",
        ],
    )
    failures = []
    for name in PLANAR_WORKLOADS:
        g = WORKLOADS[name].graph()
        mds = lenzen_planar_mds(g)
        cds = local_connectify(g, mds.dominators, 1)
        try:
            if g.n <= 310:
                lb, _ = exact_domset(g, 1, time_limit=20.0)
                lb = float(lb)
            else:
                lb = lp_lower_bound(g, 1)
        except SolverError:
            lb = lp_lower_bound(g, 1)
        valid = is_connected_distance_r_dominating_set(g, cds.connected_set, 1)
        rounds = mds.rounds + cds.rounds
        table.add(
            name, g.n, mds.size, round(lb, 1), mds.size / max(1.0, lb),
            cds.size, cds.blowup, 7, rounds, valid,
        )
        if not valid or cds.blowup > 7.0 or rounds > 11:
            failures.append(name)
    return table, failures


def test_t8_local_cds(benchmark):
    g = WORKLOADS["delaunay400"].graph()
    benchmark.pedantic(
        lambda: local_connectify(g, lenzen_planar_mds(g).dominators, 1),
        rounds=1,
        iterations=1,
    )
    table, failures = _t8_rows()
    write_result("t8_local_cds", table)
    assert failures == []
