"""T1 — Theorem 5: approximation quality across graph classes.

Paper claim: on bounded expansion classes the elect-min-WReach rule is a
c(r)-approximation (c = max |WReach_2r| for the order used), improving
Dvořák's c(r)^2 bound.  The paper gives no empirical numbers; this
experiment reports, per workload and radius:

  |D| for ours / ours+prune / Dvořák-greedy / classical greedy,
  the LP (or exact) lower bound, realized ratios, and the certified c.

Expected shape: certified bound always holds (ours <= c * LP-ish);
empirically greedy <= dvorak <= ours on sizes while only ours carries
the per-instance certificate.
"""

import pytest

from repro.bench.harness import write_result
from repro.bench.tables import Table
from repro.bench.workloads import WORKLOADS
from repro.core.domset import domset_sequential
from repro.core.dvorak import domset_dvorak
from repro.core.exact import exact_domset, lp_lower_bound
from repro.core.greedy import domset_greedy
from repro.core.prune import prune_dominating_set
from repro.core.tree_exact import is_tree, tree_domset_exact
from repro.errors import SolverError
from repro.orders.degeneracy import degeneracy_order
from repro.orders.wreach import wcol_of_order

WORKLOAD_NAMES = [
    "grid16",
    "tri16",
    "hex16",
    "torus12",
    "king12",
    "tree500",
    "delaunay400",
    "geometric600",
    "chunglu500",
    "ktree300",
    "outerplanar200",
]

RADII = (1, 2)


def _t1_rows():
    table = Table(
        "T1: distance-r dominating set sizes and ratios",
        [
            "workload",
            "n",
            "r",
            "ours",
            "pruned",
            "dvorak",
            "greedy",
            "LB",
            "LB kind",
            "ratio(pruned/LB)",
            "certified c",
        ],
    )
    violations = []
    for name in WORKLOAD_NAMES:
        g = WORKLOADS[name].graph()
        order, _ = degeneracy_order(g)
        for r in RADII:
            ours = domset_sequential(g, order, r)
            pruned = prune_dominating_set(g, ours.dominators, r)
            dv = domset_dvorak(g, order, r)
            gr = domset_greedy(g, r)
            lb, kind = 1.0, "trivial"
            if is_tree(g):
                lb, kind = float(tree_domset_exact(g, r)[0]), "exact"
            elif g.n <= 310:
                try:
                    opt, _ = exact_domset(g, r, time_limit=20.0)
                    lb, kind = float(opt), "exact"
                except SolverError:
                    pass
            if kind == "trivial":
                try:
                    lb, kind = lp_lower_bound(g, r), "LP"
                except SolverError:
                    pass
            c = wcol_of_order(g, order, 2 * r)
            denom = max(1.0, lb)
            table.add(
                name, g.n, r, ours.size, len(pruned), dv.size, gr.size,
                round(lb, 1), kind, len(pruned) / denom, c,
            )
            # The theorem bound: |D| <= c * OPT — assertable only with
            # an exact OPT (LP can undershoot OPT by more than 1/c).
            if kind == "exact" and ours.size > c * max(1.0, lb) + 1e-9:
                violations.append((name, r, ours.size, c, lb))
    return table, violations


def test_t1_approx_ratio(benchmark):
    g = WORKLOADS["delaunay400"].graph()
    order, _ = degeneracy_order(g)
    benchmark(lambda: domset_sequential(g, order, 2))
    table, violations = _t1_rows()
    write_result("t1_approx_ratio", table)
    assert violations == []
