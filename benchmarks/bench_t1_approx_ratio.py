"""T1 — Theorem 5: approximation quality across graph classes.

Paper claim: on bounded expansion classes the elect-min-WReach rule is a
c(r)-approximation (c = max |WReach_2r| for the order used), improving
Dvořák's c(r)^2 bound.  The paper gives no empirical numbers; this
experiment reports, per workload and radius:

  |D| for ours / ours+prune / Dvořák-greedy / classical greedy,
  the LP (or exact) lower bound, realized ratios, and the certified c.

All solver invocations go through the unified API
(:func:`repro.api.solve`) with one shared precompute cache, so the
degeneracy order and WReach sets per (workload, radius) are computed
once across the four algorithms; the result file records each run's
solver name and wall time.

Expected shape: certified bound always holds (ours <= c * LP-ish);
empirically greedy <= dvorak <= ours on sizes while only ours carries
the per-instance certificate.
"""


from repro.api import PrecomputeCache, solve
from repro.bench.harness import write_result
from repro.bench.tables import Table
from repro.bench.workloads import WORKLOADS
from repro.core.exact import lp_lower_bound
from repro.core.tree_exact import is_tree
from repro.errors import SolverError

WORKLOAD_NAMES = [
    "grid16",
    "tri16",
    "hex16",
    "torus12",
    "king12",
    "tree500",
    "delaunay400",
    "geometric600",
    "chunglu500",
    "ktree300",
    "outerplanar200",
]

RADII = (1, 2)


def _t1_rows():
    table = Table(
        "T1: distance-r dominating set sizes and ratios",
        [
            "workload",
            "n",
            "r",
            "ours",
            "pruned",
            "dvorak",
            "greedy",
            "LB",
            "LB kind",
            "ratio(pruned/LB)",
            "certified c",
        ],
    )
    cache = PrecomputeCache()
    violations = []
    runs = []
    for name in WORKLOAD_NAMES:
        g = WORKLOADS[name].graph()
        for r in RADII:
            ours = solve(g, r, "seq.wreach", prune=True, certify=True, cache=cache)
            dv = solve(g, r, "seq.dvorak", cache=cache)
            gr = solve(g, r, "seq.greedy", cache=cache)
            runs += [ours, dv, gr]
            raw_size = ours.extras["raw_size"]
            lb, kind = 1.0, "trivial"
            if is_tree(g):
                tre = solve(g, r, "seq.tree-exact", cache=cache)
                runs.append(tre)
                lb, kind = float(tre.size), "exact"
            elif g.n <= 310:
                try:
                    ex = solve(g, r, "seq.exact",
                               params={"time_limit": 20.0}, cache=cache)
                    runs.append(ex)
                    lb, kind = float(ex.size), "exact"
                except SolverError:
                    pass
            if kind == "trivial":
                try:
                    lb, kind = lp_lower_bound(g, r), "LP"
                except SolverError:
                    pass
            c = ours.certificate.certified_c
            denom = max(1.0, lb)
            table.add(
                name, g.n, r, raw_size, ours.size, dv.size, gr.size,
                round(lb, 1), kind, ours.size / denom, c,
            )
            # The theorem bound: |D| <= c * OPT — assertable only with
            # an exact OPT (LP can undershoot OPT by more than 1/c).
            if kind == "exact" and raw_size > c * max(1.0, lb) + 1e-9:
                violations.append((name, r, raw_size, c, lb))
    return table, violations, runs


def test_t1_approx_ratio(benchmark):
    g = WORKLOADS["delaunay400"].graph()
    cache = PrecomputeCache()
    cache.order(g, "degeneracy", 2)  # prebuild so the timing isolates the solver
    benchmark(lambda: solve(g, 2, "seq.wreach", cache=cache))
    table, violations, runs = _t1_rows()
    write_result("t1_approx_ratio", table, runs=runs)
    assert violations == []
