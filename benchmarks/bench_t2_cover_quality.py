"""T2 — Theorem 4: sparse r-neighborhood cover quality.

Paper claim: with an order witnessing wcol_2r <= c, the clusters
X_v = {w : v in WReach_2r[w]} form an r-neighborhood cover of radius
<= 2r and degree <= c.  Reported per workload and r: measured maximum
cluster radius (must be <= 2r), measured degree (== c by construction,
the interesting number is its magnitude), cluster count and sizes, and
whether every ball N_r[w] is inside its home cluster.
"""


from repro.bench.harness import write_result
from repro.bench.tables import Table
from repro.bench.workloads import WORKLOADS
from repro.core.covers import build_cover, cover_stats
from repro.orders.degeneracy import degeneracy_order
from repro.orders.wreach import wcol_of_order

WORKLOAD_NAMES = [
    "grid16",
    "tri16",
    "torus12",
    "tree500",
    "delaunay400",
    "ktree300",
    "outerplanar200",
]


def _t2_rows():
    table = Table(
        "T2: r-neighborhood cover quality (bound: radius <= 2r, degree <= c)",
        [
            "workload",
            "n",
            "r",
            "clusters",
            "max radius",
            "2r bound",
            "degree",
            "c (=wcol_2r)",
            "max size",
            "covers",
        ],
    )
    failures = []
    for name in WORKLOAD_NAMES:
        g = WORKLOADS[name].graph()
        order, _ = degeneracy_order(g)
        for r in (1, 2):
            cover = build_cover(g, order, r)
            st = cover_stats(g, cover)
            c = wcol_of_order(g, order, 2 * r)
            table.add(
                name, g.n, r, st.num_clusters, st.max_cluster_radius,
                2 * r, st.degree, c, st.max_cluster_size, st.covers_all_balls,
            )
            if not st.within_bounds(c):
                failures.append((name, r))
    return table, failures


def test_t2_cover_quality(benchmark):
    g = WORKLOADS["delaunay400"].graph()
    order, _ = degeneracy_order(g)
    benchmark(lambda: build_cover(g, order, 1))
    table, failures = _t2_rows()
    write_result("t2_cover_quality", table)
    assert failures == []
