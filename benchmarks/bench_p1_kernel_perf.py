"""P1 — kernel perf baseline: flat/batch kernels vs their references.

Times the hot kernels this repo's guarantees are computed with:

* ``wreach_sets`` / ``wreach_csr`` / ``wcol`` /
  ``wreach_sets_with_paths`` — the flat-array kernels of
  :mod:`repro.orders.wreach` against the retained definition-shaped
  reference in :mod:`repro.orders.wreach_ref`, at the Theorem-5 horizon
  ``2r`` (``wreach_csr`` is the CSR-native representation; its row
  shares the same naive reference as ``wreach_sets``, so the gap
  between the two rows is the Python-list materialization cost);
* the CSR-consuming sequential solvers — ``domset_by_wreach`` and
  ``build_cover`` vectorized over the CSR arrays vs the retained
  list-walking references (``domset_by_wreach_lists`` /
  ``build_cover_lists``), end-to-end including the kernel sweep;
* the smallest-last peeling of :mod:`repro.orders.degeneracy` against
  the reference loop retained in :mod:`repro.orders.degeneracy_ref`
  (exact same removal sequence, asserted before timing);
* the CONGEST_BC simulations on **both simulator engines** — the
  vectorized batch round engine vs the per-node reference loop — for
  all four pipelines: ``domset_bc`` (Theorem 9), ``connect_bc``
  (Theorem 10), ``cover_bc`` (Theorem 8), and the single-execution
  ``unified_bc``; wall time, rounds, and traffic (identical outputs
  and statistics are asserted before anything is timed);
* **pipelined cluster waves** (``connect_waves``): the batch connect
  pipeline run lockstep vs with independent token components executed
  as waves (``wave_width`` from the committed cost model, 16 when the
  model gates the instance out);
* the **engine cost model** (``engine_auto``): the engine the
  committed ``repro.api.engine_model`` artifact picks for the
  instance, and how far its measured time sits from the best static
  choice — the smoke gate fails when "auto" lands >10% off;
* the **workspace warm start**: an end-to-end certified ``seq.wreach``
  solve against a cold store-backed cache (computes + persists every
  artifact) vs a fresh cache over the now-warm store (every artifact
  loaded, zero recomputation — asserted via ``PrecomputeCache.stats()``
  along with identical outputs).  The ratio is what a second *process*
  saves by inheriting a warm :class:`repro.api.store.ArtifactStore`.

Every instance row also records **peak RSS**: a fresh subprocess per
instance runs the shipping kernel workload (CSR sweep, path sweep,
domset, degeneracy) and reports ``ru_maxrss`` — lifetime high-water
marks need process isolation to be attributable to one instance.

``--large`` appends the million-node family: ≥10^6-vertex instances
(grid / Delaunay / road-like), each run end-to-end in its own
subprocess — ``npz ingest → degeneracy → warm store → seq.rdomset-orient``
and ``→ domset_by_wreach`` over the CSR path — with wall time and peak
RSS per stage, plus a warm-start comparison: a full-read load process
vs an ``mmap=True`` load process over the same store (identical solver
outputs asserted via checksums; the mmap load must measure faster and
lighter, exit 1 otherwise).

Results go to ``BENCH_kernels.json`` at the repo root (the perf
trajectory later PRs are judged against, schema 6) and a human-readable
table in ``benchmarks/results/p1_kernel_perf.txt``.

Usage::

    PYTHONPATH=src python benchmarks/bench_p1_kernel_perf.py            # full
    PYTHONPATH=src python benchmarks/bench_p1_kernel_perf.py --large    # + 10^6
    PYTHONPATH=src python benchmarks/bench_p1_kernel_perf.py --smoke    # CI

``--smoke`` runs a small instance set and **fails (exit 1)** if

* any flat/batch kernel measures slower than its reference (a relative
  gate that needs no flaky absolute-time thresholds), or
* the path kernel or the CSR-consuming ``domset_seq`` / ``covers``
  speedups regress worse than ``--regression-factor`` (default 1.5x)
  against the committed smoke baseline
  (``benchmarks/results/p1_smoke_baseline.json`` — speedup *ratios*
  are compared, not absolute seconds, so shared CI runners don't flake
  it).  Regenerate the baseline after an intentional perf change with
  ``--smoke --out benchmarks/results/p1_smoke_baseline.json``, or
* the mid-size instance's isolated-subprocess peak RSS exceeds the
  committed baseline by more than ``--memory-factor`` (default 1.5x) —
  the memory regression gate; RSS for a fixed instance is stable
  across runners in a way wall time is not.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.api.engine_model import default_model  # noqa: E402
from repro.bench.harness import (  # noqa: E402
    peak_rss_kb,
    reset_peak_rss,
    write_result,
)
from repro.bench.tables import Table  # noqa: E402
from repro.core.covers import build_cover, build_cover_lists  # noqa: E402
from repro.core.domset import (  # noqa: E402
    domset_by_wreach,
    domset_by_wreach_lists,
)
from repro.distributed.connect_bc import run_connect_bc  # noqa: E402
from repro.distributed.cover_bc import run_cover_bc  # noqa: E402
from repro.distributed.domset_bc import run_domset_bc  # noqa: E402
from repro.distributed.unified_bc import run_unified_bc  # noqa: E402
from repro.graphs import generators as gen  # noqa: E402
from repro.graphs import random_models as rm  # noqa: E402
from repro.graphs.components import largest_component  # noqa: E402
from repro.orders import degeneracy as degen_flat  # noqa: E402
from repro.orders import degeneracy_ref as degen_naive  # noqa: E402
from repro.orders import wreach as flat  # noqa: E402
from repro.orders import wreach_ref as naive  # noqa: E402
from repro.orders.degeneracy import degeneracy_order  # noqa: E402

RADIUS = 2  # Theorem-5 radius; kernels run at horizon 2r

#: Committed smoke baseline the ratio gate compares against.
SMOKE_BASELINE = REPO_ROOT / "benchmarks" / "results" / "p1_smoke_baseline.json"


def _geometric(n: int, seed: int):
    g, _ = rm.random_geometric(n, radius=None, seed=seed)
    h, _ = largest_component(g)
    return h


#: (name, family, builder)
FULL_INSTANCES = [
    ("grid32", "grid", lambda: gen.grid_2d(32, 32)),
    ("grid64", "grid", lambda: gen.grid_2d(64, 64)),
    ("grid128", "grid", lambda: gen.grid_2d(128, 128)),
    ("ktree1000", "k-tree", lambda: gen.k_tree(1000, 3, seed=15)),
    ("ktree4000", "k-tree", lambda: gen.k_tree(4000, 3, seed=15)),
    ("ktree12000", "k-tree", lambda: gen.k_tree(12000, 3, seed=15)),
    ("delaunay600", "planar", lambda: rm.delaunay_graph(600, seed=12)[0]),
    ("delaunay2000", "planar", lambda: rm.delaunay_graph(2000, seed=12)[0]),
    ("delaunay6000", "planar", lambda: rm.delaunay_graph(6000, seed=12)[0]),
    # The suite's largest instance — planar Delaunay, the paper's core
    # class; BENCH_kernels.json's headline speedups come from this row.
    ("delaunay22000", "planar", lambda: rm.delaunay_graph(22000, seed=12)[0]),
    ("geometric2000", "random-BE", lambda: _geometric(2000, 13)),
    ("geometric8000", "random-BE", lambda: _geometric(8000, 13)),
    ("geometric20000", "random-BE", lambda: _geometric(20000, 13)),
]

# All but grid16 sit above the kernels' ~512-vertex scalar-fallback
# threshold, so the smoke gates time the batch/CSR code paths the full
# run ships with; grid16 keeps the scalar fallbacks covered.
SMOKE_INSTANCES = [
    ("grid16", "grid", lambda: gen.grid_2d(16, 16)),
    ("ktree700", "k-tree", lambda: gen.k_tree(700, 3, seed=15)),
    ("delaunay700", "planar", lambda: rm.delaunay_graph(700, seed=12)[0]),
    ("geometric600", "random-BE", lambda: _geometric(600, 13)),
]

# ---------------------------------------------------------------------------
# Million-node family (--large).  Builders return (n, edge_array) from
# pure numpy passes — the Python-loop generators in graphs/generators.py
# are 10^2x too slow at this scale.
# ---------------------------------------------------------------------------

def _grid_edges(a: int, b: int) -> tuple[int, "np.ndarray"]:
    ids = np.arange(a * b, dtype=np.int64).reshape(a, b)
    horiz = np.stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()], axis=1)
    vert = np.stack([ids[:-1, :].ravel(), ids[1:, :].ravel()], axis=1)
    return a * b, np.concatenate([horiz, vert])


def _delaunay_edges(n: int, seed: int) -> tuple[int, "np.ndarray"]:
    from scipy.spatial import Delaunay

    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2))
    tri = Delaunay(pts)
    s = tri.simplices.astype(np.int64)
    return n, np.concatenate([s[:, [0, 1]], s[:, [1, 2]], s[:, [0, 2]]])


def _roadlike_edges(a: int, b: int, seed: int) -> tuple[int, "np.ndarray"]:
    """Degraded grid + sparse diagonal shortcuts — road-network-shaped:
    mostly degree ≤ 4, long geodesics, a few percent of junction links."""
    n, grid = _grid_edges(a, b)
    rng = np.random.default_rng(seed)
    kept = grid[rng.random(len(grid)) > 0.07]
    ids = np.arange(n, dtype=np.int64).reshape(a, b)
    diag = np.stack([ids[:-1, :-1].ravel(), ids[1:, 1:].ravel()], axis=1)
    shortcuts = diag[rng.random(len(diag)) < 0.03]
    return n, np.concatenate([kept, shortcuts])


#: name -> builder; every instance has >= 10^6 vertices.
LARGE_INSTANCES = {
    "grid1000x1000": lambda: _grid_edges(1000, 1000),
    "delaunay1M": lambda: _delaunay_edges(1_000_000, seed=12),
    "roadlike1M": lambda: _roadlike_edges(1000, 1000, seed=12),
}

#: Orientation tier radius / CSR-path radius used in the large rows.
LARGE_ORIENT_RADIUS = 2
LARGE_DOMSET_RADIUS = 1

#: The smoke instance the memory regression gate isolates (mid-size:
#: big enough that the batch kernels dominate the footprint, small
#: enough for CI).
MEMORY_GATE_INSTANCE = "ktree700"


def _run_child(*argv: str) -> dict:
    """Run this script in a child process, parse its JSON last line."""
    cmd = [sys.executable, str(pathlib.Path(__file__).resolve()), *argv]
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    proc = subprocess.run(cmd, capture_output=True, text=True, env=env)
    if proc.returncode != 0:
        raise RuntimeError(f"child {argv} failed:\n{proc.stderr}")
    return json.loads(proc.stdout.splitlines()[-1])


def _child_measure_rss(name: str) -> None:
    """Isolated peak-RSS probe: the shipping kernel workload on one
    instance (no naive references — they'd dominate the footprint)."""
    reset_peak_rss()  # ru_maxrss-style peaks are inherited across exec
    build = {n: b for n, _, b in FULL_INSTANCES + SMOKE_INSTANCES}[name]
    g = build()
    order, _ = degeneracy_order(g)
    reach = 2 * RADIUS
    adj = flat.RankedAdjacency(g, order)
    flat.wreach_csr(g, order, reach, adj=adj)
    flat.wreach_sets_with_paths(g, order, reach, adj=adj)
    domset_by_wreach(g, order, RADIUS, adj=adj)
    build_cover(g, order, RADIUS)
    print(json.dumps({"name": name, "peak_rss_kb": peak_rss_kb()}))


def _child_large_pipeline(name: str, store_dir: str) -> None:
    """End-to-end million-node pipeline, timed per stage, one process."""
    from repro.api.store import ArtifactStore, graph_digest, order_digest
    from repro.core.rdomset_orient import rdomset_orient
    from repro.graphs.io import read_edge_npz

    reset_peak_rss()
    n, edges = LARGE_INSTANCES[name]()
    store = pathlib.Path(store_dir)
    epath = store / "edges.npz"
    with open(epath, "wb") as fh:
        np.savez(fh, n=np.int64(n), edges=edges)
    del edges

    t0 = time.perf_counter()
    g = read_edge_npz(epath)
    t_ingest = time.perf_counter() - t0
    t0 = time.perf_counter()
    order, _ = degeneracy_order(g)
    t_order = time.perf_counter() - t0
    t0 = time.perf_counter()
    adj = flat.RankedAdjacency(g, order)
    csr = flat.wreach_csr(g, order, LARGE_DOMSET_RADIUS, adj=adj)
    t_wreach = time.perf_counter() - t0

    art = ArtifactStore(store)
    gd = art.put_graph(g)
    od = order_digest(order)
    art.put_order(gd, "degeneracy", LARGE_DOMSET_RADIUS, order)
    art.put_rank_adj(gd, od, adj)
    art.put_wreach(gd, od, LARGE_DOMSET_RADIUS, csr)
    (store / "meta.json").write_text(json.dumps({"gd": gd, "od": od}))

    t0 = time.perf_counter()
    orient = rdomset_orient(g, order, LARGE_ORIENT_RADIUS, adj=adj)
    t_orient = time.perf_counter() - t0
    t0 = time.perf_counter()
    dom = domset_by_wreach(g, order, LARGE_DOMSET_RADIUS, csr=csr)
    t_domset = time.perf_counter() - t0
    print(json.dumps({
        "name": name, "n": g.n, "m": g.m,
        "ingest_s": t_ingest, "degeneracy_s": t_order, "wreach_s": t_wreach,
        "rdomset_orient": {"radius": LARGE_ORIENT_RADIUS, "wall_s": t_orient,
                           "size": len(orient.dominators)},
        "domset_csr": {"radius": LARGE_DOMSET_RADIUS, "wall_s": t_domset,
                       "size": len(dom.dominators)},
        "peak_rss_kb": peak_rss_kb(),
    }))


def _child_large_load(name: str, store_dir: str, mmap: bool) -> None:
    """Warm-start load (+ solve for output checksums) over a warm store.

    ``rss_load_kb`` is sampled right after the loads — ``ru_maxrss`` is
    a high-water mark, so at that point it is the load footprint.
    """
    from repro.api.store import ArtifactStore
    from repro.core.rdomset_orient import rdomset_orient

    reset_peak_rss()
    store = pathlib.Path(store_dir)
    meta = json.loads((store / "meta.json").read_text())
    art = ArtifactStore(store, mmap=mmap)
    t0 = time.perf_counter()
    g = art.get_graph(meta["gd"])
    order = art.get_order(meta["gd"], "degeneracy", LARGE_DOMSET_RADIUS, n=g.n)
    adj = art.get_rank_adj(meta["gd"], meta["od"], g, order)
    csr = art.get_wreach(meta["gd"], meta["od"], LARGE_DOMSET_RADIUS, g, order)
    t_load = time.perf_counter() - t0
    rss_load = peak_rss_kb()
    assert None not in (g, order, adj, csr), "warm store missed an artifact"

    dom = domset_by_wreach(g, order, LARGE_DOMSET_RADIUS, csr=csr)
    orient = rdomset_orient(g, order, LARGE_ORIENT_RADIUS, adj=adj)
    print(json.dumps({
        "name": name, "mmap": mmap, "load_s": t_load,
        "rss_load_kb": rss_load, "rss_total_kb": peak_rss_kb(),
        "domset_checksum": hashlib.blake2b(
            dom.dominator_of.tobytes(), digest_size=8).hexdigest(),
        "orient_checksum": hashlib.blake2b(
            orient.dominator_of.tobytes(), digest_size=8).hexdigest(),
    }))


def bench_large() -> list[dict]:
    """Run every LARGE_INSTANCES row in isolated subprocesses."""
    rows = []
    for name in LARGE_INSTANCES:
        with tempfile.TemporaryDirectory() as tmp:
            row = _run_child("--child", "large-pipeline", "--instance", name,
                             "--store", tmp)
            full = _run_child("--child", "large-load", "--instance", name,
                              "--store", tmp)
            mm = _run_child("--child", "large-load", "--instance", name,
                            "--store", tmp, "--mmap")
        for key in ("domset_checksum", "orient_checksum"):
            if full[key] != mm[key]:
                raise AssertionError(f"{name}: mmap load changed {key}")
        row["warm_load"] = {
            "full": {k: full[k] for k in ("load_s", "rss_load_kb", "rss_total_kb")},
            "mmap": {k: mm[k] for k in ("load_s", "rss_load_kb", "rss_total_kb")},
            "load_speedup": full["load_s"] / mm["load_s"],
            "load_rss_ratio": full["rss_load_kb"] / mm["rss_load_kb"],
        }
        rows.append(row)
        w = row["warm_load"]
        print(
            f"  [{name}] n={row['n']} ingest {row['ingest_s']:.2f}s  "
            f"degen {row['degeneracy_s']:.2f}s  wreach {row['wreach_s']:.2f}s  "
            f"orient {row['rdomset_orient']['wall_s']:.2f}s  "
            f"domset {row['domset_csr']['wall_s']:.2f}s  "
            f"rss {row['peak_rss_kb'] // 1024} MB  "
            f"load full {w['full']['load_s']:.3f}s/"
            f"{w['full']['rss_load_kb'] // 1024} MB vs "
            f"mmap {w['mmap']['load_s']:.3f}s/"
            f"{w['mmap']['rss_load_kb'] // 1024} MB "
            f"({w['load_speedup']:.1f}x, rss {w['load_rss_ratio']:.1f}x)",
            flush=True,
        )
    return rows


#: Per-instance speedup rows; the smoke gate fails when any of them
#: measures slower than its reference.
GATED_KERNELS = (
    "wreach_sets",
    "wreach_csr",
    "wcol_kernel",
    "wreach_paths",
    "degeneracy",
    "domset_bc",
    "connect_bc",
    "cover_bc",
    "unified_bc",
)

#: Max tolerated "auto" overhead vs the best static engine choice.
ENGINE_AUTO_MAX_OVERHEAD = 1.1

#: Rows additionally gated against the committed smoke baseline: the
#: measured speedup may not fall below ``baseline_speedup / factor``.
#: Applied only to instances above the kernels' scalar-fallback
#: threshold — below it the timings are ~1 ms and pure jitter, and the
#: vectorized code paths being gated don't run anyway.
RATIO_GATED = ("wreach_paths", "domset_seq", "covers")
RATIO_GATE_MIN_N = flat._SMALL_N


def _warm_vs_cold(g, radius: int) -> dict:
    """Store-backed warm start: cold solve (compute + persist) vs a fresh
    cache over the warm store (load everything, recompute nothing)."""
    from repro.api import PrecomputeCache, SolveRequest, solve_request
    from repro.api.store import ArtifactStore

    req = SolveRequest(graph=g, radius=radius, algorithm="seq.wreach", certify=True)
    with tempfile.TemporaryDirectory() as tmp:
        store = ArtifactStore(tmp)
        cold_cache = PrecomputeCache(store=store)
        t0 = time.perf_counter()
        cold = solve_request(req, cache=cold_cache)
        t_cold = time.perf_counter() - t0
        # A fresh cache over the warm store stands in for a new process.
        warm_cache = PrecomputeCache(store=store)
        t0 = time.perf_counter()
        warm = solve_request(req, cache=warm_cache)
        t_warm = time.perf_counter() - t0
    if warm.dominators != cold.dominators or warm.certificate != cold.certificate:
        raise AssertionError("warm store solve deviates from cold")
    recomputed = sum(c["computed"] for c in warm_cache.stats().values())
    if recomputed:
        raise AssertionError(f"warm store solve recomputed {recomputed} artifacts")
    return {"cold_s": t_cold, "warm_s": t_warm, "speedup": t_cold / t_warm}


def _best(fn, repeats: int) -> tuple[object, float]:
    """Value and minimum wall time over ``repeats`` runs."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return value, best


def bench_instance(name, family, build, repeats):
    g = build()
    order, _ = degeneracy_order(g)
    reach = 2 * RADIUS
    adj = flat.RankedAdjacency(g, order)

    flat_sets, t_sets_flat = _best(
        lambda: flat.wreach_sets(g, order, reach, adj=adj), repeats
    )
    naive_sets, t_sets_naive = _best(
        lambda: naive.naive_wreach_sets(g, order, reach), repeats
    )
    if flat_sets != naive_sets:
        raise AssertionError(f"{name}: flat wreach_sets deviates from reference")

    flat_sizes, t_wcol_flat = _best(
        lambda: flat.wreach_sizes(g, order, reach, adj=adj), repeats
    )
    naive_sizes, t_wcol_naive = _best(
        lambda: naive.naive_wreach_sizes(g, order, reach), repeats
    )
    if flat_sizes.tolist() != naive_sizes.tolist():
        raise AssertionError(f"{name}: flat wreach_sizes deviates from reference")

    # CSR-native construction: same sweep, no per-vertex Python lists.
    # Shares wreach_sets' naive reference, so the two rows bracket the
    # list-materialization cost.
    flat_csr, t_csr_flat = _best(
        lambda: flat.wreach_csr(g, order, reach, adj=adj), repeats
    )
    if flat_csr.tolists() != naive_sets:
        raise AssertionError(f"{name}: wreach_csr deviates from reference")

    flat_paths, t_paths_flat = _best(
        lambda: flat.wreach_sets_with_paths(g, order, reach, adj=adj), repeats
    )
    naive_paths, t_paths_naive = _best(
        lambda: naive.naive_wreach_sets_with_paths(g, order, reach), repeats
    )
    if flat_paths != naive_paths:
        raise AssertionError(f"{name}: flat path kernel deviates from reference")

    # CSR-consuming sequential solvers, end-to-end (kernel + consumer)
    # through the public entry points: the vectorized CSR pass vs the
    # retained list-walking reference.
    ds_csr, t_dom_csr = _best(lambda: domset_by_wreach(g, order, RADIUS), repeats)
    ds_list, t_dom_list = _best(
        lambda: domset_by_wreach_lists(g, order, RADIUS), repeats
    )
    if ds_csr.dominators != ds_list.dominators or (
        ds_csr.dominator_of.tolist() != ds_list.dominator_of.tolist()
    ):
        raise AssertionError(f"{name}: CSR domset deviates from list reference")

    cov_csr, t_cov_csr = _best(lambda: build_cover(g, order, RADIUS), repeats)
    cov_list, t_cov_list = _best(
        lambda: build_cover_lists(g, order, RADIUS), repeats
    )
    if (
        cov_csr.clusters != cov_list.clusters
        or cov_csr.home_cluster.tolist() != cov_list.home_cluster.tolist()
        or cov_csr.degree_per_vertex.tolist() != cov_list.degree_per_vertex.tolist()
    ):
        raise AssertionError(f"{name}: CSR cover deviates from list reference")

    flat_seq, t_degen_flat = _best(
        lambda: degen_flat._smallest_last_sequence(g), repeats
    )
    naive_seq, t_degen_naive = _best(
        lambda: degen_naive.naive_smallest_last_sequence(g), repeats
    )
    if flat_seq != naive_seq:
        raise AssertionError(f"{name}: flat degeneracy kernel deviates from reference")

    # The simulator on its two engines: asserted identical, timed once
    # each (simulations are too slow to repeat on the large instances).
    ds_per, t_sim_per = _best(lambda: run_domset_bc(g, RADIUS, engine="pernode"), 1)
    ds_bat, t_sim_bat = _best(lambda: run_domset_bc(g, RADIUS, engine="batch"), 1)
    if (
        ds_per.dominators != ds_bat.dominators
        or ds_per.total_words != ds_bat.total_words
        or ds_per.phase_rounds != ds_bat.phase_rounds
    ):
        raise AssertionError(f"{name}: batch domset_bc deviates from per-node")

    cn_per, t_cn_per = _best(lambda: run_connect_bc(g, RADIUS, engine="pernode"), 1)
    cn_bat, t_cn_bat = _best(lambda: run_connect_bc(g, RADIUS, engine="batch"), 1)
    if (
        cn_per.connected_set != cn_bat.connected_set
        or cn_per.total_words != cn_bat.total_words
        or cn_per.phase_rounds != cn_bat.phase_rounds
    ):
        raise AssertionError(f"{name}: batch connect_bc deviates from per-node")

    cv_per, t_cv_per = _best(lambda: run_cover_bc(g, RADIUS, engine="pernode"), 1)
    cv_bat, t_cv_bat = _best(lambda: run_cover_bc(g, RADIUS, engine="batch"), 1)
    if (
        cv_per.cover.clusters != cv_bat.cover.clusters
        or cv_per.total_words != cv_bat.total_words
        or cv_per.phase_rounds != cv_bat.phase_rounds
    ):
        raise AssertionError(f"{name}: batch cover_bc deviates from per-node")

    un_per, t_un_per = _best(
        lambda: run_unified_bc(g, RADIUS, connect=True, engine="pernode"), 1
    )
    un_bat, t_un_bat = _best(
        lambda: run_unified_bc(g, RADIUS, connect=True, engine="batch"), 1
    )
    if (
        un_per.dominators != un_bat.dominators
        or un_per.connected_set != un_bat.connected_set
        or (un_per.rounds, un_per.total_words) != (un_bat.rounds, un_bat.total_words)
    ):
        raise AssertionError(f"{name}: batch unified_bc deviates from per-node")

    # Pipelined cluster waves on the batch connect pipeline, at the
    # committed cost model's width (16 when the model gates the
    # instance out — still informative, never gated below lockstep).
    model = default_model()
    wave_width = model.pick_wave_width(g.n, g.m, RADIUS) if model else 0
    wave_width = wave_width or 16
    cn_wav, t_cn_wav = _best(
        lambda: run_connect_bc(g, RADIUS, engine="batch", wave_width=wave_width), 1
    )
    if (
        cn_wav.connected_set != cn_bat.connected_set
        or cn_wav.total_words != cn_bat.total_words
        or cn_wav.phase_rounds != cn_bat.phase_rounds
    ):
        raise AssertionError(f"{name}: pipelined waves deviate from lockstep")

    # The cost model's pick vs the best static choice on this instance,
    # judged on the already-measured Theorem-9 pipeline timings.
    auto_pick = (
        model.pick_engine(g.n, g.m, RADIUS, ("batch", "pernode"))
        if model
        else "batch"
    )
    auto_s = t_sim_bat if auto_pick == "batch" else t_sim_per
    best_s = min(t_sim_bat, t_sim_per)

    warm = _warm_vs_cold(g, RADIUS)

    return {
        "name": name,
        "family": family,
        "n": g.n,
        "m": g.m,
        "reach": reach,
        "wcol": int(flat_sizes.max()) if g.n else 0,
        "wreach_sets": {
            "naive_s": t_sets_naive,
            "flat_s": t_sets_flat,
            "speedup": t_sets_naive / t_sets_flat,
        },
        "wreach_csr": {
            "naive_s": t_sets_naive,
            "flat_s": t_csr_flat,
            "speedup": t_sets_naive / t_csr_flat,
        },
        "wcol_kernel": {
            "naive_s": t_wcol_naive,
            "flat_s": t_wcol_flat,
            "speedup": t_wcol_naive / t_wcol_flat,
        },
        "wreach_paths": {
            "naive_s": t_paths_naive,
            "flat_s": t_paths_flat,
            "speedup": t_paths_naive / t_paths_flat,
        },
        "domset_seq": {
            "list_s": t_dom_list,
            "csr_s": t_dom_csr,
            "speedup": t_dom_list / t_dom_csr,
            "size": ds_csr.size,
        },
        "covers": {
            "list_s": t_cov_list,
            "csr_s": t_cov_csr,
            "speedup": t_cov_list / t_cov_csr,
            "clusters": cov_csr.num_clusters,
        },
        "degeneracy": {
            "naive_s": t_degen_naive,
            "flat_s": t_degen_flat,
            "speedup": t_degen_naive / t_degen_flat,
        },
        "workspace_warm": warm,
        "domset_bc": {
            "pernode_s": t_sim_per,
            "batch_s": t_sim_bat,
            "speedup": t_sim_per / t_sim_bat,
            "size": ds_bat.size,
            "rounds": ds_bat.total_rounds,
            "total_words": ds_bat.total_words,
        },
        "connect_bc": {
            "pernode_s": t_cn_per,
            "batch_s": t_cn_bat,
            "speedup": t_cn_per / t_cn_bat,
            "size": cn_bat.size,
            "rounds": cn_bat.total_rounds,
            "total_words": cn_bat.total_words,
        },
        "cover_bc": {
            "pernode_s": t_cv_per,
            "batch_s": t_cv_bat,
            "speedup": t_cv_per / t_cv_bat,
            "clusters": cv_bat.cover.num_clusters,
            "rounds": cv_bat.rounds,
            "total_words": cv_bat.total_words,
        },
        "unified_bc": {
            "pernode_s": t_un_per,
            "batch_s": t_un_bat,
            "speedup": t_un_per / t_un_bat,
            "size": un_bat.size,
            "rounds": un_bat.rounds,
            "total_words": un_bat.total_words,
        },
        "connect_waves": {
            "lockstep_s": t_cn_bat,
            "waves_s": t_cn_wav,
            "wave_width": wave_width,
            "speedup": t_cn_bat / t_cn_wav,
        },
        "engine_auto": {
            "pick": auto_pick,
            "auto_s": auto_s,
            "best_s": best_s,
            "overhead": auto_s / best_s,
        },
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="small instances; exit 1 on any kernel-vs-reference regression",
    )
    ap.add_argument("--repeats", type=int, default=3, help="timing repeats (min taken)")
    ap.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="JSON output path (default: BENCH_kernels.json at the repo "
        "root, BENCH_kernels_smoke.json in smoke mode)",
    )
    ap.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=SMOKE_BASELINE,
        help="committed smoke baseline for the ratio regression gate",
    )
    ap.add_argument(
        "--regression-factor",
        type=float,
        default=1.5,
        help="max tolerated speedup regression vs the baseline (smoke gate)",
    )
    ap.add_argument(
        "--memory-factor",
        type=float,
        default=1.5,
        help="max tolerated peak-RSS growth vs the baseline (smoke gate)",
    )
    ap.add_argument(
        "--large",
        action="store_true",
        help="also run the >=10^6-vertex family (subprocess-isolated)",
    )
    # Internal subprocess entry points (RSS needs process isolation).
    ap.add_argument("--child", choices=["measure-rss", "large-pipeline", "large-load"],
                    help=argparse.SUPPRESS)
    ap.add_argument("--instance", help=argparse.SUPPRESS)
    ap.add_argument("--store", help=argparse.SUPPRESS)
    ap.add_argument("--mmap", action="store_true", help=argparse.SUPPRESS)
    args = ap.parse_args(argv)

    if args.child == "measure-rss":
        _child_measure_rss(args.instance)
        return 0
    if args.child == "large-pipeline":
        _child_large_pipeline(args.instance, args.store)
        return 0
    if args.child == "large-load":
        _child_large_load(args.instance, args.store, args.mmap)
        return 0

    instances = SMOKE_INSTANCES if args.smoke else FULL_INSTANCES
    out_path = args.out or (
        REPO_ROOT / ("BENCH_kernels_smoke.json" if args.smoke else "BENCH_kernels.json")
    )

    table = Table(
        f"P1: flat/batch kernels vs references (reach = 2r = {2 * RADIUS})",
        [
            "instance", "n", "wcol", "rss MB", "sets x", "csr x", "wcol x",
            "paths x", "domset x", "covers x", "degen x", "warm x",
            "domset_bc", "connect x", "cover x", "unified x", "waves x",
            "auto",
        ],
    )
    rows = []
    for name, family, build in instances:
        row = bench_instance(name, family, build, args.repeats)
        # Isolated subprocess: this instance's kernel-workload peak RSS
        # (in-process ru_maxrss is a lifetime max, not attributable).
        row["peak_rss_kb"] = _run_child(
            "--child", "measure-rss", "--instance", name
        )["peak_rss_kb"]
        rows.append(row)
        sim = row["domset_bc"]
        auto = row["engine_auto"]
        table.add(
            name,
            row["n"],
            row["wcol"],
            f"{row['peak_rss_kb'] / 1024:.0f}",
            f"{row['wreach_sets']['speedup']:.1f}",
            f"{row['wreach_csr']['speedup']:.1f}",
            f"{row['wcol_kernel']['speedup']:.1f}",
            f"{row['wreach_paths']['speedup']:.1f}",
            f"{row['domset_seq']['speedup']:.1f}",
            f"{row['covers']['speedup']:.1f}",
            f"{row['degeneracy']['speedup']:.1f}",
            f"{row['workspace_warm']['speedup']:.1f}",
            f"{sim['batch_s'] * 1e3:.0f} ms batch / "
            f"{sim['pernode_s'] * 1e3:.0f} ms pernode ({sim['speedup']:.1f}x)",
            f"{row['connect_bc']['speedup']:.1f}",
            f"{row['cover_bc']['speedup']:.1f}",
            f"{row['unified_bc']['speedup']:.1f}",
            f"{row['connect_waves']['speedup']:.2f}@w{row['connect_waves']['wave_width']}",
            f"{auto['pick']} ({auto['overhead']:.2f})",
        )
        print(
            f"  [{name}] sets {row['wreach_sets']['speedup']:.1f}x  "
            f"csr {row['wreach_csr']['speedup']:.1f}x  "
            f"wcol {row['wcol_kernel']['speedup']:.1f}x  "
            f"paths {row['wreach_paths']['speedup']:.1f}x  "
            f"domset {row['domset_seq']['speedup']:.1f}x  "
            f"covers {row['covers']['speedup']:.1f}x  "
            f"degen {row['degeneracy']['speedup']:.1f}x  "
            f"warm {row['workspace_warm']['speedup']:.1f}x  "
            f"domset_bc {row['domset_bc']['speedup']:.1f}x  "
            f"connect_bc {row['connect_bc']['speedup']:.1f}x  "
            f"cover_bc {row['cover_bc']['speedup']:.1f}x  "
            f"unified_bc {row['unified_bc']['speedup']:.1f}x  "
            f"waves {row['connect_waves']['speedup']:.2f}x  "
            f"auto={auto['pick']}",
            flush=True,
        )

    large_rows = []
    if args.large:
        print("large instances (>=10^6 vertices, subprocess-isolated):")
        large_rows = bench_large()

    largest = max(rows, key=lambda r: r["n"])
    report = {
        "schema": 6,
        "benchmark": "p1_kernel_perf",
        "mode": "smoke" if args.smoke else "full",
        "radius": RADIUS,
        "reach": 2 * RADIUS,
        "repeats": args.repeats,
        "engines": ["batch", "pernode"],
        "instances": rows,
        "large_instances": large_rows,
        "largest_instance": {
            "name": largest["name"],
            "n": largest["n"],
            "wreach_sets_speedup": largest["wreach_sets"]["speedup"],
            "wreach_csr_speedup": largest["wreach_csr"]["speedup"],
            "wcol_speedup": largest["wcol_kernel"]["speedup"],
            "wreach_paths_speedup": largest["wreach_paths"]["speedup"],
            "domset_seq_speedup": largest["domset_seq"]["speedup"],
            "covers_speedup": largest["covers"]["speedup"],
            "degeneracy_speedup": largest["degeneracy"]["speedup"],
            "workspace_warm_speedup": largest["workspace_warm"]["speedup"],
            "domset_bc_speedup": largest["domset_bc"]["speedup"],
            "connect_bc_speedup": largest["connect_bc"]["speedup"],
            "cover_bc_speedup": largest["cover_bc"]["speedup"],
            "unified_bc_speedup": largest["unified_bc"]["speedup"],
            "connect_waves_speedup": largest["connect_waves"]["speedup"],
            "engine_auto_overhead": largest["engine_auto"]["overhead"],
        },
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    # Smoke runs get their own table name so a local CI-gate run cannot
    # clobber the committed full-run trajectory.
    write_result("p1_kernel_perf_smoke" if args.smoke else "p1_kernel_perf", table)
    print(f"wrote {out_path}")

    if args.smoke:
        slow = [
            (r["name"], kernel)
            for r in rows
            for kernel in GATED_KERNELS
            if r[kernel]["speedup"] < 1.0
        ]
        if slow:
            print(f"PERF REGRESSION: kernel slower than its reference on {slow}")
            return 1
        print("smoke ok: flat/batch kernels at least as fast as references everywhere")
        off = [
            (r["name"], r["engine_auto"]["pick"], r["engine_auto"]["overhead"])
            for r in rows
            if r["engine_auto"]["overhead"] > ENGINE_AUTO_MAX_OVERHEAD
        ]
        if off:
            print(
                f"PERF REGRESSION: cost-model engine pick more than "
                f"{(ENGINE_AUTO_MAX_OVERHEAD - 1) * 100:.0f}% off the best "
                f"static choice on {off}"
            )
            return 1
        print(
            f"smoke ok: cost-model engine picks within "
            f"{(ENGINE_AUTO_MAX_OVERHEAD - 1) * 100:.0f}% of the best static choice"
        )
        failures = _ratio_gate(rows, args.baseline, args.regression_factor)
        if failures:
            for msg in failures:
                print(f"PERF REGRESSION: {msg}")
            return 1
        failures = _memory_gate(rows, args.baseline, args.memory_factor)
        if failures:
            for msg in failures:
                print(f"MEMORY REGRESSION: {msg}")
            return 1

    if args.large:
        weak = [
            (r["name"], r["warm_load"]["load_speedup"], r["warm_load"]["load_rss_ratio"])
            for r in large_rows
            if r["warm_load"]["load_speedup"] <= 1.0
            or r["warm_load"]["load_rss_ratio"] <= 1.0
        ]
        if weak:
            print(f"MMAP REGRESSION: warm-start mmap loads not measurably lighter: {weak}")
            return 1
        print("large ok: mmap warm starts faster and lighter than full reads everywhere")
    return 0


def _memory_gate(rows, baseline_path, factor) -> list[str]:
    """The mid-size instance's isolated peak RSS vs the committed
    baseline.  Unlike wall time, the footprint of a fixed instance is
    stable across shared runners, so an absolute-ratio gate holds."""
    if not baseline_path.exists():
        return []
    baseline = json.loads(baseline_path.read_text())
    base_rows = {r["name"]: r for r in baseline.get("instances", [])}
    base = base_rows.get(MEMORY_GATE_INSTANCE, {}).get("peak_rss_kb")
    if base is None:
        print("note: baseline has no peak_rss_kb; memory gate skipped")
        return []
    now = next(
        (r["peak_rss_kb"] for r in rows if r["name"] == MEMORY_GATE_INSTANCE), None
    )
    if now is None:
        return []
    if now > base * factor:
        return [
            f"{MEMORY_GATE_INSTANCE}: peak RSS {now} KB exceeds baseline "
            f"{base} KB * {factor:.1f}"
        ]
    print(
        f"smoke ok: {MEMORY_GATE_INSTANCE} peak RSS {now // 1024} MB within "
        f"{factor:.1f}x of the baseline ({base // 1024} MB)"
    )
    return []


def _ratio_gate(rows, baseline_path, factor) -> list[str]:
    """Compare RATIO_GATED speedups against the committed smoke baseline.

    Ratios (not absolute seconds) are compared, so the gate holds on
    shared CI runners: a kernel fails when its measured speedup drops
    below ``baseline_speedup / factor`` for the same instance.
    """
    if not baseline_path.exists():
        print(f"note: no smoke baseline at {baseline_path}; ratio gate skipped")
        return []
    baseline = json.loads(baseline_path.read_text())
    base_rows = {r["name"]: r for r in baseline.get("instances", [])}
    failures = []
    for r in rows:
        base = base_rows.get(r["name"])
        if base is None or r["n"] <= RATIO_GATE_MIN_N:
            continue
        for kernel in RATIO_GATED:
            if kernel not in r or kernel not in base:
                continue
            now, ref = r[kernel]["speedup"], base[kernel]["speedup"]
            if now < ref / factor:
                failures.append(
                    f"{r['name']}/{kernel}: speedup {now:.2f}x fell below "
                    f"baseline {ref:.2f}x / {factor:.1f}"
                )
    if not failures:
        print(
            f"smoke ok: {', '.join(RATIO_GATED)} within {factor:.1f}x of the "
            f"committed baseline ratios"
        )
    return failures


if __name__ == "__main__":
    sys.exit(main())
