"""P1 — kernel perf baseline: flat/batch kernels vs their references.

Times the hot kernels this repo's guarantees are computed with:

* ``wreach_sets`` / ``wcol`` / ``wreach_sets_with_paths`` — the
  flat-array kernels of :mod:`repro.orders.wreach` against the retained
  definition-shaped reference in :mod:`repro.orders.wreach_ref`, at the
  Theorem-5 horizon ``2r``;
* the smallest-last peeling of :mod:`repro.orders.degeneracy` against
  the reference loop retained in :mod:`repro.orders.degeneracy_ref`
  (exact same removal sequence, asserted before timing);
* the ``domset_bc`` CONGEST_BC simulation on **both simulator
  engines** — the vectorized batch round engine vs the per-node
  reference loop — wall time, rounds, and traffic (identical outputs
  and statistics are asserted before anything is timed).

Results go to ``BENCH_kernels.json`` at the repo root (the perf
trajectory later PRs are judged against) and a human-readable table in
``benchmarks/results/p1_kernel_perf.txt``.

Usage::

    PYTHONPATH=src python benchmarks/bench_p1_kernel_perf.py            # full
    PYTHONPATH=src python benchmarks/bench_p1_kernel_perf.py --smoke    # CI

``--smoke`` runs a small instance set and **fails (exit 1)** if any
flat/batch kernel measures slower than its reference — a relative
regression gate that needs no flaky absolute-time thresholds.  Every
timing is the minimum over ``--repeats`` runs (simulations run once);
outputs are asserted identical to the reference before anything is
timed.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.harness import write_result  # noqa: E402
from repro.bench.tables import Table  # noqa: E402
from repro.distributed.domset_bc import run_domset_bc  # noqa: E402
from repro.graphs import generators as gen  # noqa: E402
from repro.graphs import random_models as rm  # noqa: E402
from repro.graphs.components import largest_component  # noqa: E402
from repro.orders import degeneracy as degen_flat  # noqa: E402
from repro.orders import degeneracy_ref as degen_naive  # noqa: E402
from repro.orders import wreach as flat  # noqa: E402
from repro.orders import wreach_ref as naive  # noqa: E402
from repro.orders.degeneracy import degeneracy_order  # noqa: E402

RADIUS = 2  # Theorem-5 radius; kernels run at horizon 2r


def _geometric(n: int, seed: int):
    g, _ = rm.random_geometric(n, radius=None, seed=seed)
    h, _ = largest_component(g)
    return h


#: (name, family, builder)
FULL_INSTANCES = [
    ("grid32", "grid", lambda: gen.grid_2d(32, 32)),
    ("grid64", "grid", lambda: gen.grid_2d(64, 64)),
    ("grid128", "grid", lambda: gen.grid_2d(128, 128)),
    ("ktree1000", "k-tree", lambda: gen.k_tree(1000, 3, seed=15)),
    ("ktree4000", "k-tree", lambda: gen.k_tree(4000, 3, seed=15)),
    ("ktree12000", "k-tree", lambda: gen.k_tree(12000, 3, seed=15)),
    ("delaunay600", "planar", lambda: rm.delaunay_graph(600, seed=12)[0]),
    ("delaunay2000", "planar", lambda: rm.delaunay_graph(2000, seed=12)[0]),
    ("delaunay6000", "planar", lambda: rm.delaunay_graph(6000, seed=12)[0]),
    # The suite's largest instance — planar Delaunay, the paper's core
    # class; BENCH_kernels.json's headline speedups come from this row.
    ("delaunay22000", "planar", lambda: rm.delaunay_graph(22000, seed=12)[0]),
    ("geometric2000", "random-BE", lambda: _geometric(2000, 13)),
    ("geometric8000", "random-BE", lambda: _geometric(8000, 13)),
    ("geometric20000", "random-BE", lambda: _geometric(20000, 13)),
]

SMOKE_INSTANCES = [
    ("grid16", "grid", lambda: gen.grid_2d(16, 16)),
    ("ktree300", "k-tree", lambda: gen.k_tree(300, 3, seed=15)),
    ("delaunay300", "planar", lambda: rm.delaunay_graph(300, seed=12)[0]),
    ("geometric600", "random-BE", lambda: _geometric(600, 13)),
]

#: Per-instance speedup rows; the smoke gate fails when any of them
#: measures slower than its reference.
GATED_KERNELS = (
    "wreach_sets",
    "wcol_kernel",
    "wreach_paths",
    "degeneracy",
    "domset_bc",
)


def _best(fn, repeats: int) -> tuple[object, float]:
    """Value and minimum wall time over ``repeats`` runs."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return value, best


def bench_instance(name, family, build, repeats):
    g = build()
    order, _ = degeneracy_order(g)
    reach = 2 * RADIUS
    adj = flat.RankedAdjacency(g, order)

    flat_sets, t_sets_flat = _best(
        lambda: flat.wreach_sets(g, order, reach, adj=adj), repeats
    )
    naive_sets, t_sets_naive = _best(
        lambda: naive.naive_wreach_sets(g, order, reach), repeats
    )
    if flat_sets != naive_sets:
        raise AssertionError(f"{name}: flat wreach_sets deviates from reference")

    flat_sizes, t_wcol_flat = _best(
        lambda: flat.wreach_sizes(g, order, reach, adj=adj), repeats
    )
    naive_sizes, t_wcol_naive = _best(
        lambda: naive.naive_wreach_sizes(g, order, reach), repeats
    )
    if flat_sizes.tolist() != naive_sizes.tolist():
        raise AssertionError(f"{name}: flat wreach_sizes deviates from reference")

    flat_paths, t_paths_flat = _best(
        lambda: flat.wreach_sets_with_paths(g, order, reach, adj=adj), repeats
    )
    naive_paths, t_paths_naive = _best(
        lambda: naive.naive_wreach_sets_with_paths(g, order, reach), repeats
    )
    if flat_paths != naive_paths:
        raise AssertionError(f"{name}: flat path kernel deviates from reference")

    flat_seq, t_degen_flat = _best(
        lambda: degen_flat._smallest_last_sequence(g), repeats
    )
    naive_seq, t_degen_naive = _best(
        lambda: degen_naive.naive_smallest_last_sequence(g), repeats
    )
    if flat_seq != naive_seq:
        raise AssertionError(f"{name}: flat degeneracy kernel deviates from reference")

    # The simulator on its two engines: asserted identical, timed once
    # each (simulations are too slow to repeat on the large instances).
    ds_per, t_sim_per = _best(lambda: run_domset_bc(g, RADIUS, engine="pernode"), 1)
    ds_bat, t_sim_bat = _best(lambda: run_domset_bc(g, RADIUS, engine="batch"), 1)
    if (
        ds_per.dominators != ds_bat.dominators
        or ds_per.total_words != ds_bat.total_words
        or ds_per.phase_rounds != ds_bat.phase_rounds
    ):
        raise AssertionError(f"{name}: batch domset_bc deviates from per-node")

    return {
        "name": name,
        "family": family,
        "n": g.n,
        "m": g.m,
        "reach": reach,
        "wcol": int(flat_sizes.max()) if g.n else 0,
        "wreach_sets": {
            "naive_s": t_sets_naive,
            "flat_s": t_sets_flat,
            "speedup": t_sets_naive / t_sets_flat,
        },
        "wcol_kernel": {
            "naive_s": t_wcol_naive,
            "flat_s": t_wcol_flat,
            "speedup": t_wcol_naive / t_wcol_flat,
        },
        "wreach_paths": {
            "naive_s": t_paths_naive,
            "flat_s": t_paths_flat,
            "speedup": t_paths_naive / t_paths_flat,
        },
        "degeneracy": {
            "naive_s": t_degen_naive,
            "flat_s": t_degen_flat,
            "speedup": t_degen_naive / t_degen_flat,
        },
        "domset_bc": {
            "pernode_s": t_sim_per,
            "batch_s": t_sim_bat,
            "speedup": t_sim_per / t_sim_bat,
            "size": ds_bat.size,
            "rounds": ds_bat.total_rounds,
            "total_words": ds_bat.total_words,
        },
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="small instances; exit 1 on any kernel-vs-reference regression",
    )
    ap.add_argument("--repeats", type=int, default=3, help="timing repeats (min taken)")
    ap.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="JSON output path (default: BENCH_kernels.json at the repo "
        "root, BENCH_kernels_smoke.json in smoke mode)",
    )
    args = ap.parse_args(argv)

    instances = SMOKE_INSTANCES if args.smoke else FULL_INSTANCES
    out_path = args.out or (
        REPO_ROOT / ("BENCH_kernels_smoke.json" if args.smoke else "BENCH_kernels.json")
    )

    table = Table(
        f"P1: flat/batch kernels vs references (reach = 2r = {2 * RADIUS})",
        ["instance", "n", "wcol", "sets x", "wcol x", "paths x", "degen x", "domset_bc"],
    )
    rows = []
    for name, family, build in instances:
        row = bench_instance(name, family, build, args.repeats)
        rows.append(row)
        sim = row["domset_bc"]
        table.add(
            name,
            row["n"],
            row["wcol"],
            f"{row['wreach_sets']['speedup']:.1f}",
            f"{row['wcol_kernel']['speedup']:.1f}",
            f"{row['wreach_paths']['speedup']:.1f}",
            f"{row['degeneracy']['speedup']:.1f}",
            f"{sim['batch_s'] * 1e3:.0f} ms batch / "
            f"{sim['pernode_s'] * 1e3:.0f} ms pernode ({sim['speedup']:.1f}x)",
        )
        print(
            f"  [{name}] sets {row['wreach_sets']['speedup']:.1f}x  "
            f"wcol {row['wcol_kernel']['speedup']:.1f}x  "
            f"paths {row['wreach_paths']['speedup']:.1f}x  "
            f"degen {row['degeneracy']['speedup']:.1f}x  "
            f"domset_bc {row['domset_bc']['speedup']:.1f}x",
            flush=True,
        )

    largest = max(rows, key=lambda r: r["n"])
    report = {
        "schema": 2,
        "benchmark": "p1_kernel_perf",
        "mode": "smoke" if args.smoke else "full",
        "radius": RADIUS,
        "reach": 2 * RADIUS,
        "repeats": args.repeats,
        "engines": ["batch", "pernode"],
        "instances": rows,
        "largest_instance": {
            "name": largest["name"],
            "n": largest["n"],
            "wreach_sets_speedup": largest["wreach_sets"]["speedup"],
            "wcol_speedup": largest["wcol_kernel"]["speedup"],
            "wreach_paths_speedup": largest["wreach_paths"]["speedup"],
            "degeneracy_speedup": largest["degeneracy"]["speedup"],
            "domset_bc_speedup": largest["domset_bc"]["speedup"],
        },
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    # Smoke runs get their own table name so a local CI-gate run cannot
    # clobber the committed full-run trajectory.
    write_result("p1_kernel_perf_smoke" if args.smoke else "p1_kernel_perf", table)
    print(f"wrote {out_path}")

    if args.smoke:
        slow = [
            (r["name"], kernel)
            for r in rows
            for kernel in GATED_KERNELS
            if r[kernel]["speedup"] < 1.0
        ]
        if slow:
            print(f"PERF REGRESSION: kernel slower than its reference on {slow}")
            return 1
        print("smoke ok: flat/batch kernels at least as fast as references everywhere")
    return 0


if __name__ == "__main__":
    sys.exit(main())
