"""A1 — ablation: how much does the order construction matter?

Every guarantee in the paper is parameterised by
c = max |WReach_2r| of the order in use.  This ablation compares order
strategies (degeneracy / fraternal augmentation / sort-by-wreach /
BFS-layer / random / identity) on the measured c and on the resulting
dominating set size.  Expected shape: structure-aware orders yield much
smaller c than random orders (and hence much stronger certificates),
while solution *sizes* vary far less — the certificate, not the size,
is what the order buys.
"""

import pytest

from repro.bench.harness import write_result
from repro.bench.tables import Table
from repro.bench.workloads import WORKLOADS
from repro.core.domset import domset_sequential
from repro.orders.degeneracy import degeneracy_order
from repro.orders.fraternal import fraternal_augmentation_order
from repro.orders.heuristics import bfs_order, identity_order, random_order, sort_by_wreach_order
from repro.orders.wreach import wcol_of_order

WORKLOAD_NAMES = ["grid16", "tri16", "delaunay400", "ktree300", "tree500"]
RADIUS = 2


def _orders(g):
    degen, _ = degeneracy_order(g)
    return [
        ("degeneracy", degen),
        ("fraternal", fraternal_augmentation_order(g, 2 * RADIUS)),
        ("wreach_sort", sort_by_wreach_order(g, degen, 2 * RADIUS, passes=2)),
        ("bfs_layers", bfs_order(g, 0)),
        ("random", random_order(g, seed=1)),
        ("identity", identity_order(g)),
    ]


def _a1_rows():
    table = Table(
        f"A1: order strategy ablation (r={RADIUS})",
        ["workload", "strategy", "c = wcol_2r", "|D|", "certified ratio"],
    )
    structured_beats_random = []
    for name in WORKLOAD_NAMES:
        g = WORKLOADS[name].graph()
        per = {}
        for label, order in _orders(g):
            c = wcol_of_order(g, order, 2 * RADIUS)
            d = domset_sequential(g, order, RADIUS).size
            per[label] = c
            table.add(name, label, c, d, c)
        structured_beats_random.append(per["degeneracy"] <= per["random"])
    return table, structured_beats_random


def test_a1_order_ablation(benchmark):
    g = WORKLOADS["delaunay400"].graph()
    benchmark.pedantic(
        lambda: fraternal_augmentation_order(g, 2 * RADIUS), rounds=1, iterations=1
    )
    table, wins = _a1_rows()
    write_result("a1_order_ablation", table)
    # Structure-aware orders must beat random on most workloads.
    assert sum(wins) >= len(wins) - 1
