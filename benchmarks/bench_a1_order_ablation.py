"""A1 — ablation: how much does the order construction matter?

Every guarantee in the paper is parameterised by
c = max |WReach_2r| of the order in use.  This ablation compares order
strategies (degeneracy / fraternal augmentation / sort-by-wreach /
BFS-layer / random / identity) on the measured c and on the resulting
dominating set size.  Expected shape: structure-aware orders yield much
smaller c than random orders (and hence much stronger certificates),
while solution *sizes* vary far less — the certificate, not the size,
is what the order buys.

The sweep runs through :func:`repro.api.solve` with
``order_strategy`` as the request axis; the shared cache means each
(workload, strategy) order and its WReach sets are built exactly once
across the solve + certificate measurements.
"""


from repro.api import PrecomputeCache, solve
from repro.bench.harness import write_result
from repro.bench.tables import Table
from repro.bench.workloads import WORKLOADS
from repro.orders.fraternal import fraternal_augmentation_order

WORKLOAD_NAMES = ["grid16", "tri16", "delaunay400", "ktree300", "tree500"]
STRATEGIES = ["degeneracy", "fraternal", "wreach_sort", "bfs", "random", "identity"]
RADIUS = 2


def _a1_rows():
    table = Table(
        f"A1: order strategy ablation (r={RADIUS})",
        ["workload", "strategy", "c = wcol_2r", "|D|", "certified ratio"],
    )
    cache = PrecomputeCache()
    structured_beats_random = []
    runs = []
    for name in WORKLOAD_NAMES:
        g = WORKLOADS[name].graph()
        per = {}
        for strategy in STRATEGIES:
            res = solve(g, RADIUS, "seq.wreach",
                        order_strategy=strategy, certify=True, cache=cache)
            runs.append(res)
            c = res.certificate.certified_c
            per[strategy] = c
            table.add(name, strategy, c, res.size, c)
        structured_beats_random.append(per["degeneracy"] <= per["random"])
    return table, structured_beats_random, runs


def test_a1_order_ablation(benchmark):
    g = WORKLOADS["delaunay400"].graph()
    benchmark.pedantic(
        lambda: fraternal_augmentation_order(g, 2 * RADIUS), rounds=1, iterations=1
    )
    table, wins, runs = _a1_rows()
    write_result("a1_order_ablation", table, runs=runs)
    # Structure-aware orders must beat random on most workloads.
    assert sum(wins) >= len(wins) - 1
