"""T5 — Theorem 10 / Corollary 13: connected dominating set blowup.

Paper claim: the CONGEST_BC join phase turns D into a connected
distance-r dominating set D' of size <= c' * (2r+1) * |D| (the paper's
final constant is c'^2 * (2r+1) against OPT).  We measure the realized
blowup |D'| / |D| per workload against the per-instance bound
c' * (2r+2) (the +1 accounts for path endpoints), and compare with the
sequential Lemma-16 minor construction and the centralized Steiner-style
baseline on the same dominating set.
"""

import pytest

from repro.analysis.validate import is_connected_distance_r_dominating_set
from repro.bench.harness import write_result
from repro.bench.tables import Table
from repro.bench.workloads import WORKLOADS
from repro.core.connect import connect_via_minor, steiner_connect_baseline
from repro.distributed.connect_bc import run_connect_bc
from repro.distributed.nd_order import distributed_h_partition_order
from repro.orders.wreach import wcol_of_order

WORKLOAD_NAMES = ["grid16", "tri16", "hex16", "tree500", "delaunay400", "outerplanar200"]


def _t5_rows():
    table = Table(
        "T5: connected DrDS blowup |D'|/|D| (bound c'*(2r+2))",
        [
            "workload",
            "n",
            "r",
            "|D|",
            "BC |D'|",
            "BC blowup",
            "bound",
            "minor |D'|",
            "steiner |D'|",
            "valid",
        ],
    )
    failures = []
    for name in WORKLOAD_NAMES:
        g = WORKLOADS[name].graph()
        oc = distributed_h_partition_order(g)
        for r in (1, 2):
            res = run_connect_bc(g, r, oc)
            c_prime = wcol_of_order(g, oc.order, 2 * r + 1)
            bound = c_prime * (2 * r + 2)
            valid = is_connected_distance_r_dominating_set(g, res.connected_set, r)
            minor = connect_via_minor(g, res.dominators, r)
            steiner = steiner_connect_baseline(g, res.dominators, r)
            table.add(
                name, g.n, r, len(res.dominators), res.size,
                res.blowup, bound, minor.size, steiner.size, valid,
            )
            if not valid or res.blowup > bound:
                failures.append((name, r))
    return table, failures


def test_t5_connected_blowup(benchmark):
    g = WORKLOADS["delaunay400"].graph()
    oc = distributed_h_partition_order(g)
    benchmark.pedantic(lambda: run_connect_bc(g, 1, oc), rounds=1, iterations=1)
    table, failures = _t5_rows()
    write_result("t5_connected_blowup", table)
    assert failures == []
