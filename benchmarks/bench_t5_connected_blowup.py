"""T5 — Theorem 10 / Corollary 13: connected dominating set blowup.

Paper claim: the CONGEST_BC join phase turns D into a connected
distance-r dominating set D' of size <= c' * (2r+1) * |D| (the paper's
final constant is c'^2 * (2r+1) against OPT).  We measure the realized
blowup |D'| / |D| per workload against the per-instance bound
c' * (2r+2) (the +1 accounts for path endpoints), and compare with the
sequential Lemma-16 minor construction and the centralized Steiner-style
baseline on the same dominating set.

The distributed pipeline runs through ``solve(..., "dist.congest",
connect=True)``; the shared cache reuses one H-partition order run per
workload across both radii.
"""


from repro.api import PrecomputeCache, solve
from repro.analysis.validate import is_connected_distance_r_dominating_set
from repro.bench.harness import write_result
from repro.bench.tables import Table
from repro.bench.workloads import WORKLOADS
from repro.core.connect import connect_via_minor, steiner_connect_baseline

WORKLOAD_NAMES = ["grid16", "tri16", "hex16", "tree500", "delaunay400", "outerplanar200"]


def _t5_rows():
    table = Table(
        "T5: connected DrDS blowup |D'|/|D| (bound c'*(2r+2))",
        [
            "workload",
            "n",
            "r",
            "|D|",
            "BC |D'|",
            "BC blowup",
            "bound",
            "minor |D'|",
            "steiner |D'|",
            "valid",
        ],
    )
    cache = PrecomputeCache()
    failures = []
    runs = []
    for name in WORKLOAD_NAMES:
        g = WORKLOADS[name].graph()
        for r in (1, 2):
            res = solve(g, r, "dist.congest", connect=True, cache=cache)
            runs.append(res)
            conn = res.extras["connect_result"]
            order = res.extras["order_computation"].order
            c_prime = cache.wcol(g, order, 2 * r + 1)
            bound = c_prime * (2 * r + 2)
            valid = is_connected_distance_r_dominating_set(g, res.connected_set, r)
            minor = connect_via_minor(g, conn.dominators, r)
            steiner = steiner_connect_baseline(g, conn.dominators, r)
            blowup = conn.blowup
            table.add(
                name, g.n, r, len(conn.dominators), len(res.connected_set),
                blowup, bound, minor.size, steiner.size, valid,
            )
            if not valid or blowup > bound:
                failures.append((name, r))
    return table, failures, runs


def test_t5_connected_blowup(benchmark):
    g = WORKLOADS["delaunay400"].graph()
    cache = PrecomputeCache()
    cache.distributed_order(g, "h_partition", 1)
    benchmark.pedantic(
        lambda: solve(g, 1, "dist.congest", connect=True, cache=cache),
        rounds=1,
        iterations=1,
    )
    table, failures, runs = _t5_rows()
    write_result("t5_connected_blowup", table, runs=runs)
    assert failures == []
