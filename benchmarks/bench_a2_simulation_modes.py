"""A2 — ablation: simulation fidelity costs.

Two fidelity decisions from DESIGN.md are quantified here:

1. LOCAL oracle mode vs full message-passing gather — identical outputs
   (tested), so what does the oracle save?  Wall-clock timing of both
   on the same workload.
2. CONGEST_BC pipelining — logical rounds vs bandwidth-normalized
   rounds for WReachDist at growing r; the gap is exactly the
   O(c * r)-word payloads the paper's round bound absorbs.
"""

import time


from repro.bench.harness import write_result
from repro.bench.tables import Table
from repro.bench.workloads import WORKLOADS
from repro.distributed.lenzen import lenzen_planar_mds
from repro.distributed.local_engine import gather_balls
from repro.distributed.nd_order import distributed_h_partition_order
from repro.distributed.wreach_bc import run_wreach_bc
from repro.graphs import generators as gen


def _a2_local_modes():
    table = Table(
        "A2a: LOCAL gather — oracle vs message-passing (identical outputs)",
        ["graph", "n", "k", "oracle (s)", "messages (s)", "equal"],
    )
    g = gen.grid_2d(10, 10)
    for k in (1, 2, 3):
        t0 = time.perf_counter()
        a, _ = gather_balls(g, k, mode="oracle")
        t_oracle = time.perf_counter() - t0
        t0 = time.perf_counter()
        b, _ = gather_balls(g, k, mode="messages")
        t_msgs = time.perf_counter() - t0
        table.add("grid10x10", g.n, k, t_oracle, t_msgs, a == b)
    return table


def _a2_pipelining():
    table = Table(
        "A2b: CONGEST_BC logical vs normalized rounds (WReachDist)",
        ["workload", "r", "horizon", "logical", "normalized(1w)", "gap factor"],
    )
    g = WORKLOADS["delaunay400"].graph()
    oc = distributed_h_partition_order(g)
    for r in (1, 2, 3):
        horizon = 2 * r
        _, res = run_wreach_bc(g, oc.class_ids, horizon)
        logical = res.rounds
        norm = res.normalized_rounds(1)
        table.add("delaunay400", r, horizon, logical, norm, norm / max(1, logical))
    return table


def _a2_true_pipelining():
    """Physically execute WReachDist at bounded bandwidth (strict mode)."""
    import numpy as np

    from repro.distributed.pipelining import run_pipelined
    from repro.distributed.wreach_bc import WReachNode, run_wreach_bc as _plain

    table = Table(
        "A2c: physically pipelined WReachDist (outputs identical to plain)",
        ["graph", "r", "bandwidth W", "physical rounds", "max payload", "equal"],
    )
    g = gen.grid_2d(8, 8)
    oc = distributed_h_partition_order(g)
    advice = {"class_ids": np.asarray(oc.class_ids, dtype=np.int64)}
    for r in (1, 2):
        horizon = 2 * r
        plain, _ = _plain(g, oc.class_ids, horizon)
        for w in (1, 4, 16):
            res = run_pipelined(
                g, lambda v: WReachNode(horizon), words_per_round=w, advice=advice
            )
            equal = all(
                res.outputs[v].wreach == plain[v].wreach
                and res.outputs[v].paths == plain[v].paths
                for v in range(g.n)
            )
            table.add("grid8x8", r, w, res.rounds, res.max_payload_words, equal)
    return table


def test_a2_simulation_modes(benchmark):
    g = gen.grid_2d(8, 8)
    benchmark.pedantic(
        lambda: lenzen_planar_mds(g, mode="oracle"), rounds=1, iterations=1
    )
    t1 = _a2_local_modes()
    t2 = _a2_pipelining()
    t3 = _a2_true_pipelining()
    write_result("a2_simulation_modes", t1, t2, t3)
    assert all(row[-1] == "True" for row in t1.rows)
    assert all(row[-1] == "True" for row in t3.rows)
