"""P3 — serving latency: the solve daemon under closed-loop load.

Launches a real ``python -m repro.serve`` daemon subprocess over a
fresh artifact store and measures the service boundary end to end:

* **cold**: the first solve of each (graph, solver) pair — the request
  pays order/WReach precompute and store persistence;
* **warm**: a closed-loop phase (each client thread keeps exactly one
  request in flight on its own keep-alive connection) hammering the
  same pairs — the digest-sharded workers answer from their hot
  per-process caches, so this is pure serving overhead + solve time.

Every warm response is checked bit-identical to an in-process
``solve()`` reference (dominator sets, sizes, certificates — the wire
must not change answers under concurrency).  Reported per instance:
cold/warm p50/p95/p99 ms, warm req/s, failures, plus the daemon's own
``/v1/status`` counters (per-solver totals, overloads, shard routing)
as provenance that the load actually exercised the sharded path.

Results go to ``BENCH_serving.json`` at the repo root and a table in
``benchmarks/results/p3_serving.txt``.

Usage::

    PYTHONPATH=src python benchmarks/bench_p3_serving.py          # full
    PYTHONPATH=src python benchmarks/bench_p3_serving.py --smoke  # CI

``--smoke`` runs the smallest instance only and **fails (exit 1)** if

* any request failed or any warm response differed from its
  in-process reference, or
* the warm p50 is not strictly below the cold p50 (the warm path must
  show the cache working — recomputing would erase the gap), or
* the daemon did not exit 0 after SIGTERM (drain is part of the
  contract being benchmarked).
"""

import argparse
import json
import pathlib
import signal
import subprocess
import sys
import tempfile
import threading
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import solve  # noqa: E402
from repro.bench.harness import write_result  # noqa: E402
from repro.bench.tables import Table  # noqa: E402
from repro.graphs import generators as gen  # noqa: E402
from repro.graphs import random_models as rm  # noqa: E402
from repro.serve.client import ServeClient, ServeError  # noqa: E402
from repro.serve.metrics import percentile  # noqa: E402

#: (name, graph builders, warm-phase requests per client)
FULL_INSTANCES = [
    ("grid16+tree", {
        "grid": lambda: gen.grid_2d(16, 16),
        "tree": lambda: gen.balanced_tree(2, 6),
    }, 24),
    ("grid40+delaunay", {
        "grid": lambda: gen.grid_2d(40, 40),
        "delaunay": lambda: rm.delaunay_graph(1500, seed=3)[0],
    }, 12),
]
SMOKE_INSTANCES = FULL_INSTANCES[:1]

ALGORITHMS = ("seq.wreach", "seq.greedy", "dist.congest")
WORKERS = 2
CLIENTS = 4
RADIUS = 1
SEED = 7


def _comparable(payload):
    out = dict(payload)
    out.pop("wall_time_s", None)
    return out


class Daemon:
    """The daemon subprocess: spawn, parse the bound URL, drain."""

    def __init__(self, store: pathlib.Path):
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "--store", str(store),
             "--port", "0", "--workers", str(WORKERS)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            cwd=REPO_ROOT,
        )
        line = self.proc.stdout.readline().strip()
        if not line.startswith("listening on "):
            self.proc.kill()
            raise RuntimeError(f"daemon failed to start: {line!r}")
        self.url = line.removeprefix("listening on ").strip()

    def drain(self) -> tuple[int, str]:
        self.proc.send_signal(signal.SIGTERM)
        out, err = self.proc.communicate(timeout=180)
        return self.proc.returncode, out + err


def bench_instance(name, builders, per_client):
    graphs = {k: build() for k, build in builders.items()}
    references = {
        (k, a): _comparable(solve(g, RADIUS, a, seed=SEED).to_dict())
        for k, g in graphs.items()
        for a in ALGORITHMS
    }

    with tempfile.TemporaryDirectory() as tmp:
        daemon = Daemon(pathlib.Path(tmp) / "store")
        try:
            client = ServeClient(daemon.url)
            digests = {k: client.register(g)["digest"] for k, g in graphs.items()}
            pairs = sorted(digests)

            # Cold: first request per (graph, solver) pays the precompute.
            cold_ms, mismatches, failures = [], [], []
            for k in pairs:
                for a in ALGORITHMS:
                    t0 = time.perf_counter()
                    got = client.solve(
                        digest=digests[k], radius=RADIUS, algorithm=a,
                        seed=SEED, raw=True,
                    )
                    cold_ms.append((time.perf_counter() - t0) * 1e3)
                    if _comparable(got) != references[(k, a)]:
                        mismatches.append(f"cold:{k}:{a}")
            client.close()

            # Warm: closed-loop clients, one request in flight each.
            warm_ms_lock = threading.Lock()
            warm_ms = []

            def closed_loop(worker_id: int) -> None:
                with ServeClient(daemon.url) as conn:
                    for i in range(per_client):
                        k = pairs[(worker_id + i) % len(pairs)]
                        a = ALGORITHMS[(worker_id + i) % len(ALGORITHMS)]
                        t0 = time.perf_counter()
                        try:
                            got = conn.solve(
                                digest=digests[k], radius=RADIUS,
                                algorithm=a, seed=SEED, raw=True,
                            )
                        except ServeError as exc:
                            with warm_ms_lock:
                                failures.append(f"{worker_id}:{k}:{a}: {exc}")
                            continue
                        elapsed_ms = (time.perf_counter() - t0) * 1e3
                        with warm_ms_lock:
                            warm_ms.append(elapsed_ms)
                            if _comparable(got) != references[(k, a)]:
                                mismatches.append(f"warm:{worker_id}:{k}:{a}")

            threads = [
                threading.Thread(target=closed_loop, args=(i,))
                for i in range(CLIENTS)
            ]
            t0 = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            warm_wall_s = time.perf_counter() - t0

            with ServeClient(daemon.url) as conn:
                status = conn.status()
        finally:
            returncode, tail = daemon.drain()

    return {
        "name": name,
        "graphs": {k: {"n": g.n, "m": g.m} for k, g in graphs.items()},
        "algorithms": list(ALGORITHMS),
        "clients": CLIENTS,
        "workers": WORKERS,
        "cold_requests": len(cold_ms),
        "warm_requests": len(warm_ms),
        "cold_p50_ms": percentile(cold_ms, 0.50),
        "cold_p95_ms": percentile(cold_ms, 0.95),
        "cold_p99_ms": percentile(cold_ms, 0.99),
        "warm_p50_ms": percentile(warm_ms, 0.50) if warm_ms else None,
        "warm_p95_ms": percentile(warm_ms, 0.95) if warm_ms else None,
        "warm_p99_ms": percentile(warm_ms, 0.99) if warm_ms else None,
        "warm_req_per_s": len(warm_ms) / warm_wall_s if warm_wall_s else 0.0,
        "failures": failures,
        "mismatches": mismatches,
        "daemon_requests": status["requests"],
        "daemon_shards": status.get("shards"),
        "daemon_exit": returncode,
        "daemon_drained": "drained" in tail,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--smoke", action="store_true",
        help="smallest instance only; exit 1 on any failure, any "
        "reference mismatch, warm p50 >= cold p50, or unclean drain",
    )
    ap.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="JSON output path (default: BENCH_serving.json at the repo "
        "root, BENCH_serving_smoke.json in smoke mode)",
    )
    args = ap.parse_args(argv)

    instances = SMOKE_INSTANCES if args.smoke else FULL_INSTANCES
    out_path = args.out or (
        REPO_ROOT
        / ("BENCH_serving_smoke.json" if args.smoke else "BENCH_serving.json")
    )

    table = Table(
        f"P3: serving latency, {CLIENTS} closed-loop clients over "
        f"{WORKERS} digest-sharded workers",
        [
            "instance", "reqs", "cold p50 ms", "warm p50 ms",
            "warm p95 ms", "warm p99 ms", "req/s", "fail", "identical",
        ],
    )
    rows = []
    for name, builders, per_client in instances:
        row = bench_instance(name, builders, per_client)
        rows.append(row)
        table.add(
            name,
            row["cold_requests"] + row["warm_requests"],
            f"{row['cold_p50_ms']:.1f}",
            f"{row['warm_p50_ms']:.1f}" if row["warm_p50_ms"] else "-",
            f"{row['warm_p95_ms']:.1f}" if row["warm_p95_ms"] else "-",
            f"{row['warm_p99_ms']:.1f}" if row["warm_p99_ms"] else "-",
            f"{row['warm_req_per_s']:.1f}",
            len(row["failures"]),
            "yes" if not row["mismatches"] else "NO",
        )
        print(
            f"  [{name}] cold p50 {row['cold_p50_ms']:.1f}ms  "
            f"warm p50 {row['warm_p50_ms']:.1f}ms  "
            f"{row['warm_req_per_s']:.1f} req/s  "
            f"failures {len(row['failures'])}  "
            f"identical={not row['mismatches']}",
            flush=True,
        )

    report = {
        "schema": 1,
        "benchmark": "p3_serving",
        "mode": "smoke" if args.smoke else "full",
        "clients": CLIENTS,
        "workers": WORKERS,
        "instances": rows,
        "all_identical": all(not r["mismatches"] for r in rows),
        "total_failures": sum(len(r["failures"]) for r in rows),
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    write_result("p3_serving_smoke" if args.smoke else "p3_serving", table)
    print(f"wrote {out_path}")

    failures = []
    for r in rows:
        if r["failures"]:
            failures.append(f"{r['name']}: {len(r['failures'])} failed requests")
        if r["mismatches"]:
            failures.append(
                f"{r['name']}: {len(r['mismatches'])} responses differ "
                "from in-process solve()"
            )
        if r["warm_p50_ms"] is None or r["warm_p50_ms"] >= r["cold_p50_ms"]:
            failures.append(
                f"{r['name']}: warm p50 not below cold p50 "
                f"({r['warm_p50_ms']} vs {r['cold_p50_ms']} ms)"
            )
        if r["daemon_exit"] != 0 or not r["daemon_drained"]:
            failures.append(
                f"{r['name']}: daemon exit {r['daemon_exit']}, "
                f"drained={r['daemon_drained']}"
            )
    if args.smoke and failures:
        print("SMOKE GATE FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    if failures:
        print("warnings (non-smoke):")
        for f in failures:
            print(f"  - {f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
