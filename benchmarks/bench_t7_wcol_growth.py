"""T7 — Theorem 1 (Zhu) / Theorem 2 (Dvořák): bounded weak coloring numbers.

Paper claim (the structural foundation): on a bounded expansion class
there are orders with wcol_r(G) <= f(r) *independently of n*.  We
measure max |WReach_r| under the degeneracy order for families of
growing size: the curves must be flat in n (bounded expansion) while
they may grow with r.  As a negative control, sparse-but-dense-minor
inputs (subdivided cliques) show growth in n at r >= 2 — exactly the
separation bounded expansion formalizes.
"""


from repro.bench.harness import write_result
from repro.bench.tables import Table
from repro.bench.workloads import scaling_family
from repro.graphs import generators as gen
from repro.orders.degeneracy import degeneracy_order
from repro.orders.wreach import wcol_of_order

SIZES = [512, 1024, 2048, 4096]
RADII = (1, 2, 3, 4)


def _t7_rows():
    table = Table(
        "T7: measured wcol_r (degeneracy order) vs n — flat = bounded expansion",
        ["family", "n", "wcol_1", "wcol_2", "wcol_3", "wcol_4"],
    )
    flat_ok = True
    series: dict[tuple[str, int], list[int]] = {}
    for family in ("grid", "delaunay", "tree", "ktree"):
        for n, g in scaling_family(family, SIZES):
            order, _ = degeneracy_order(g)
            vals = [wcol_of_order(g, order, r) for r in RADII]
            table.add(family, g.n, *vals)
            for r, v in zip(RADII, vals, strict=True):
                series.setdefault((family, r), []).append(v)
    for (family, r), vals in series.items():
        # Flatness: an 8x growth in n should not even double wcol_r.
        if vals[-1] > 2 * vals[0] + 2:
            flat_ok = False
    # Negative control: subdivided cliques.
    control = Table(
        "T7-control: subdivided cliques (NOT flat at r >= 2)",
        ["graph", "n", "wcol_1", "wcol_2", "wcol_3"],
    )
    grows = []
    for t in (8, 12, 16, 20):
        g = gen.subdivide(gen.complete_graph(t), 1)
        order, _ = degeneracy_order(g)
        control.add(f"K_{t} subdivided", g.n, *[wcol_of_order(g, order, r) for r in (1, 2, 3)])
        grows.append(wcol_of_order(g, order, 2))
    control_grows = grows[-1] > grows[0]
    return table, control, flat_ok, control_grows


def test_t7_wcol_growth(benchmark):
    _, g = scaling_family("delaunay", [2048])[0]
    order, _ = degeneracy_order(g)
    benchmark.pedantic(lambda: wcol_of_order(g, order, 4), rounds=1, iterations=1)
    table, control, flat_ok, control_grows = _t7_rows()
    write_result("t7_wcol_growth", table, control)
    assert flat_ok, "wcol grew with n on a bounded expansion family"
    assert control_grows, "control should grow with clique size"
