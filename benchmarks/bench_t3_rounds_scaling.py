"""T3 — Theorems 3/8/9: O(r^2 log n) CONGEST_BC round scaling.

Paper claim: the full pipeline (order + WReachDist + election) runs in
O(r^2 log n) communication rounds.  In our decomposition the measured
logical rounds are

    rounds = order_rounds(~ 2 * #levels, O(log n))
           + 2r   (WReachDist)
           + r    (election routing),

so for fixed r the curve vs log2(n) must be at most linear, and for
fixed n the growth in r is linear in logical rounds (the r^2 shows up
in *normalized* rounds where each (2r+1)-sid path costs O(r) words of
bandwidth).  Both series are printed; a linear fit of rounds vs log2 n
should have small slope.

Runs through ``solve(..., "dist.congest")`` with a shared cache: the
H-partition order per (family, n) instance is simulated once and
reused across all three radii — the cross-call sharing the unified API
was built for.
"""

import math


from repro.analysis.stats import linear_fit
from repro.api import PrecomputeCache, solve
from repro.bench.harness import write_result
from repro.bench.tables import Table
from repro.bench.workloads import scaling_family

SIZES = [256, 512, 1024, 2048]
RADII = (1, 2, 3)


def _t3_rows():
    table = Table(
        "T3: CONGEST_BC rounds vs n and r (grid family)",
        ["family", "n", "r", "order", "wreach", "elect", "total", "normalized(1w)"],
    )
    fits = Table(
        "T3-fit: rounds = a * log2(n) + b at fixed r",
        ["family", "r", "slope a", "intercept b", "R^2"],
    )
    cache = PrecomputeCache()
    runs = []
    for family in ("grid", "delaunay", "ktree"):
        per_r: dict[int, list[tuple[float, int]]] = {r: [] for r in RADII}
        for n, g in scaling_family(family, SIZES):
            for r in RADII:
                res = solve(g, r, "dist.congest", cache=cache)
                runs.append(res)
                oc = res.extras["order_computation"]
                total = res.rounds
                # Normalized: order phase words are small; approximate the
                # pipeline bandwidth cost by its max payload per phase.
                norm = (
                    oc.normalized_rounds
                    + res.phase_rounds["wreach"]
                    * max(1, res.raw.phase_max_words["wreach"])
                    + res.phase_rounds["election"]
                    * max(1, res.raw.phase_max_words["election"])
                )
                table.add(
                    family, g.n, r, res.phase_rounds["order"],
                    res.phase_rounds["wreach"], res.phase_rounds["election"],
                    total, norm,
                )
                per_r[r].append((math.log2(g.n), total))
        for r in RADII:
            xs = [x for x, _ in per_r[r]]
            ys = [y for _, y in per_r[r]]
            a, b, r2 = linear_fit(xs, ys)
            fits.add(family, r, a, b, r2)
    return table, fits, runs


def test_t3_rounds_scaling(benchmark):
    _, g = scaling_family("grid", [1024])[0]
    cache = PrecomputeCache()
    cache.distributed_order(g, "h_partition", 2)
    benchmark.pedantic(
        lambda: solve(g, 2, "dist.congest", cache=cache), rounds=1, iterations=1
    )
    table, fits, runs = _t3_rows()
    write_result("t3_rounds_scaling", table, fits, runs=runs)
    # Shape check: the logical round count is dominated by the O(log n)
    # order phase plus 3r; it must stay below a generous c * r^2 * log2 n.
    for row in table.rows:
        n, r, total = int(row[1]), int(row[2]), int(row[6])
        assert total <= 10 * r * r * math.log2(n)
