"""T3 — Theorems 3/8/9: O(r^2 log n) CONGEST_BC round scaling.

Paper claim: the full pipeline (order + WReachDist + election) runs in
O(r^2 log n) communication rounds.  In our decomposition the measured
logical rounds are

    rounds = order_rounds(~ 2 * #levels, O(log n))
           + 2r   (WReachDist)
           + r    (election routing),

so for fixed r the curve vs log2(n) must be at most linear, and for
fixed n the growth in r is linear in logical rounds (the r^2 shows up
in *normalized* rounds where each (2r+1)-sid path costs O(r) words of
bandwidth).  Both series are printed; a linear fit of rounds vs log2 n
should have small slope.
"""

import math

import pytest

from repro.analysis.stats import linear_fit
from repro.bench.harness import write_result
from repro.bench.tables import Table
from repro.bench.workloads import scaling_family
from repro.distributed.domset_bc import run_domset_bc
from repro.distributed.nd_order import distributed_h_partition_order

SIZES = [256, 512, 1024, 2048]
RADII = (1, 2, 3)


def _t3_rows():
    table = Table(
        "T3: CONGEST_BC rounds vs n and r (grid family)",
        ["family", "n", "r", "order", "wreach", "elect", "total", "normalized(1w)"],
    )
    fits = Table(
        "T3-fit: rounds = a * log2(n) + b at fixed r",
        ["family", "r", "slope a", "intercept b", "R^2"],
    )
    for family in ("grid", "delaunay", "ktree"):
        per_r: dict[int, list[tuple[float, int]]] = {r: [] for r in RADII}
        for n, g in scaling_family(family, SIZES):
            oc = distributed_h_partition_order(g)
            for r in RADII:
                res = run_domset_bc(g, r, oc)
                from repro.distributed.model import normalized_rounds

                total = res.total_rounds
                # Normalized: order phase words are small; approximate the
                # pipeline bandwidth cost by its max payload per phase.
                norm = (
                    oc.normalized_rounds
                    + res.phase_rounds["wreach"]
                    * max(1, res.phase_max_words["wreach"])
                    + res.phase_rounds["election"]
                    * max(1, res.phase_max_words["election"])
                )
                table.add(
                    family, g.n, r, res.phase_rounds["order"],
                    res.phase_rounds["wreach"], res.phase_rounds["election"],
                    total, norm,
                )
                per_r[r].append((math.log2(g.n), total))
        for r in RADII:
            xs = [x for x, _ in per_r[r]]
            ys = [y for _, y in per_r[r]]
            a, b, r2 = linear_fit(xs, ys)
            fits.add(family, r, a, b, r2)
    return table, fits


def test_t3_rounds_scaling(benchmark):
    _, g = scaling_family("grid", [1024])[0]
    oc = distributed_h_partition_order(g)
    benchmark.pedantic(lambda: run_domset_bc(g, 2, oc), rounds=1, iterations=1)
    table, fits = _t3_rows()
    write_result("t3_rounds_scaling", table, fits)
    # Shape check: the logical round count is dominated by the O(log n)
    # order phase plus 3r; it must stay below a generous c * r^2 * log2 n.
    for row in table.rows:
        n, r, total = int(row[1]), int(row[2]), int(row[6])
        assert total <= 10 * r * r * math.log2(n)
