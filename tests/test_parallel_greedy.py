"""LW-style threshold-parallel greedy baseline."""

import math

import pytest

from repro.analysis.validate import is_distance_r_dominating_set
from repro.core.exact import brute_force_domset
from repro.distributed.parallel_greedy import parallel_greedy_domset
from repro.errors import GraphError
from repro.graphs import generators as gen
from repro.graphs.build import from_edges
from repro.graphs.random_models import delaunay_graph


@pytest.mark.parametrize("radius", [0, 1, 2])
def test_output_dominates(small_graph, radius):
    res = parallel_greedy_domset(small_graph, radius)
    assert is_distance_r_dominating_set(small_graph, res.dominators, radius)


def test_phases_logarithmic_in_ball_size():
    g, _ = delaunay_graph(200, seed=1)
    res = parallel_greedy_domset(g, 1)
    max_ball = 1 + g.max_degree()
    assert res.phases == math.floor(math.log2(max_ball)) + 1
    assert res.local_rounds == res.phases * 3


def test_star_single():
    res = parallel_greedy_domset(gen.star_graph(20), 1)
    assert res.dominators == (0,)


def test_quality_close_to_greedy_small():
    for g in (gen.grid_2d(4, 4), gen.cycle_graph(12), gen.balanced_tree(2, 3)):
        for radius in (1, 2):
            res = parallel_greedy_domset(g, radius)
            opt, _ = brute_force_domset(g, radius)
            assert res.size <= 4 * opt + 1, (g, radius, res.size, opt)


def test_empty_graph():
    res = parallel_greedy_domset(from_edges(0, []), 1)
    assert res.dominators == ()
    assert res.phases == 0


def test_deterministic(small_graph):
    a = parallel_greedy_domset(small_graph, 1)
    b = parallel_greedy_domset(small_graph, 1)
    assert a.dominators == b.dominators


def test_rejects_negative_radius():
    with pytest.raises(GraphError):
        parallel_greedy_domset(gen.path_graph(3), -1)
