"""Smallest-last orders and core numbers."""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.graphs.build import from_edges
from repro.orders.degeneracy import core_numbers, degeneracy_order


def test_known_degeneracies():
    cases = [
        (gen.path_graph(10), 1),
        (gen.cycle_graph(7), 2),
        (gen.grid_2d(6, 6), 2),
        (gen.complete_graph(5), 4),
        (gen.balanced_tree(2, 4), 1),
        (gen.star_graph(9), 1),
        (gen.k_tree(25, 4, seed=0), 4),
    ]
    for g, expected in cases:
        _, d = degeneracy_order(g)
        assert d == expected


def test_order_has_few_smaller_neighbors(medium_graph):
    """Definition check: every vertex has <= degeneracy L-smaller neighbors."""
    g = medium_graph
    order, d = degeneracy_order(g)
    for v in range(g.n):
        smaller = sum(1 for u in g.neighbors(v) if order.less(int(u), v))
        assert smaller <= d


def test_degeneracy_matches_networkx(small_graph):
    import networkx as nx

    from repro.graphs.build import to_networkx

    g = small_graph
    _, d = degeneracy_order(g)
    nxg = to_networkx(g)
    if nxg.number_of_edges() == 0:
        assert d == 0
        return
    assert d == max(nx.core_number(nxg).values())


def test_empty_graph_order():
    g = from_edges(0, [])
    order, d = degeneracy_order(g)
    assert d == 0
    assert len(order) == 0


def test_edgeless_graph():
    g = from_edges(5, [])
    order, d = degeneracy_order(g)
    assert d == 0
    assert sorted(order.by_rank.tolist()) == list(range(5))


def test_core_numbers_match_networkx(small_graph):
    import networkx as nx

    from repro.graphs.build import to_networkx

    g = small_graph
    ours = core_numbers(g)
    oracle = nx.core_number(to_networkx(g))
    for v in range(g.n):
        assert ours[v] == oracle[v]


def test_core_numbers_star():
    g = gen.star_graph(6)
    cores = core_numbers(g)
    assert (cores == 1).all()


def test_deterministic():
    g = gen.k_tree(30, 2, seed=7)
    o1, _ = degeneracy_order(g)
    o2, _ = degeneracy_order(g)
    assert o1 == o2
