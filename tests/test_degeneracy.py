"""Smallest-last orders and core numbers."""


from repro.graphs import generators as gen
from repro.graphs.build import from_edges
from repro.orders.degeneracy import core_numbers, degeneracy_order


def test_known_degeneracies():
    cases = [
        (gen.path_graph(10), 1),
        (gen.cycle_graph(7), 2),
        (gen.grid_2d(6, 6), 2),
        (gen.complete_graph(5), 4),
        (gen.balanced_tree(2, 4), 1),
        (gen.star_graph(9), 1),
        (gen.k_tree(25, 4, seed=0), 4),
    ]
    for g, expected in cases:
        _, d = degeneracy_order(g)
        assert d == expected


def test_order_has_few_smaller_neighbors(medium_graph):
    """Definition check: every vertex has <= degeneracy L-smaller neighbors."""
    g = medium_graph
    order, d = degeneracy_order(g)
    for v in range(g.n):
        smaller = sum(1 for u in g.neighbors(v) if order.less(int(u), v))
        assert smaller <= d


def test_degeneracy_matches_networkx(small_graph):
    import networkx as nx

    from repro.graphs.build import to_networkx

    g = small_graph
    _, d = degeneracy_order(g)
    nxg = to_networkx(g)
    if nxg.number_of_edges() == 0:
        assert d == 0
        return
    assert d == max(nx.core_number(nxg).values())


def test_empty_graph_order():
    g = from_edges(0, [])
    order, d = degeneracy_order(g)
    assert d == 0
    assert len(order) == 0


def test_edgeless_graph():
    g = from_edges(5, [])
    order, d = degeneracy_order(g)
    assert d == 0
    assert sorted(order.by_rank.tolist()) == list(range(5))


def test_core_numbers_match_networkx(small_graph):
    import networkx as nx

    from repro.graphs.build import to_networkx

    g = small_graph
    ours = core_numbers(g)
    oracle = nx.core_number(to_networkx(g))
    for v in range(g.n):
        assert ours[v] == oracle[v]


def test_core_numbers_star():
    g = gen.star_graph(6)
    cores = core_numbers(g)
    assert (cores == 1).all()


# ----------------------------------------------------------------------
# Flat kernel vs the retained reference (exact parity).  The removal
# sequence's tie-breaking must match bit for bit: every order-derived
# golden value in the suite inherits it.
# ----------------------------------------------------------------------

def _kernel_cases():
    from repro.graphs import random_models as rm

    return [
        gen.path_graph(12),
        gen.grid_2d(9, 11),
        gen.k_tree(120, 4, seed=7),
        gen.complete_graph(7),
        gen.star_graph(8),
        from_edges(6, []),
        from_edges(0, []),
        rm.delaunay_graph(300, seed=12)[0],
        rm.random_geometric(250, radius=None, seed=3)[0],
    ]


def test_flat_kernel_matches_reference_sequence_exactly():
    from repro.orders.degeneracy import _smallest_last_sequence
    from repro.orders.degeneracy_ref import naive_smallest_last_sequence

    for g in _kernel_cases():
        seq, degen = _smallest_last_sequence(g)
        ref_seq, ref_degen = naive_smallest_last_sequence(g)
        assert seq == ref_seq
        assert degen == ref_degen


def test_flat_kernel_core_numbers_match_reference():
    from repro.orders.degeneracy_ref import naive_core_numbers

    for g in _kernel_cases():
        assert (core_numbers(g) == naive_core_numbers(g)).all()


def test_deterministic():
    g = gen.k_tree(30, 2, seed=7)
    o1, _ = degeneracy_order(g)
    o2, _ = degeneracy_order(g)
    assert o1 == o2
