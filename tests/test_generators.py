"""Deterministic generators: structure, sizes, planarity claims."""

import networkx as nx
import pytest

from repro.errors import GraphError
from repro.graphs import generators as gen
from repro.graphs.build import to_networkx
from repro.graphs.components import is_connected


def _is_planar(g) -> bool:
    ok, _ = nx.check_planarity(to_networkx(g))
    return ok


def test_path_graph():
    g = gen.path_graph(6)
    assert g.n == 6 and g.m == 5
    assert g.degree(0) == 1 and g.degree(3) == 2


def test_path_trivial_sizes():
    assert gen.path_graph(1).m == 0
    assert gen.path_graph(0).n == 0


def test_cycle_graph():
    g = gen.cycle_graph(5)
    assert g.n == 5 and g.m == 5
    assert all(g.degree(v) == 2 for v in range(5))
    with pytest.raises(GraphError):
        gen.cycle_graph(2)


def test_star_graph():
    g = gen.star_graph(7)
    assert g.degree(0) == 6
    assert all(g.degree(v) == 1 for v in range(1, 7))


def test_complete_graph():
    g = gen.complete_graph(5)
    assert g.m == 10
    assert all(g.degree(v) == 4 for v in range(5))


def test_complete_bipartite():
    g = gen.complete_bipartite(2, 3)
    assert g.m == 6
    assert not g.has_edge(0, 1)
    assert g.has_edge(0, 2)


def test_grid_structure():
    g = gen.grid_2d(3, 4)
    assert g.n == 12 and g.m == 3 * 3 + 2 * 4  # horizontal + vertical
    assert is_connected(g)
    assert _is_planar(g)
    assert g.max_degree() == 4


def test_grid_1xn_is_path():
    assert gen.grid_2d(1, 5) == gen.path_graph(5)


def test_torus_regular_not_planar():
    g = gen.torus_2d(4, 5)
    assert all(g.degree(v) == 4 for v in range(g.n))
    assert not _is_planar(g)
    with pytest.raises(GraphError):
        gen.torus_2d(2, 5)


def test_triangular_grid_planar():
    g = gen.triangular_grid(4, 4)
    assert _is_planar(g)
    assert g.max_degree() <= 6
    assert is_connected(g)


def test_king_graph_degrees():
    g = gen.king_graph(4, 4)
    assert g.max_degree() == 8
    corner_deg = g.degree(0)
    assert corner_deg == 3


def test_hex_grid_max_degree_3():
    g = gen.hex_grid(4, 6)
    assert g.max_degree() <= 3
    assert _is_planar(g)


def test_balanced_tree():
    g = gen.balanced_tree(2, 3)
    assert g.n == 15
    assert g.m == 14
    assert is_connected(g)
    g0 = gen.balanced_tree(3, 0)
    assert g0.n == 1 and g0.m == 0


def test_caterpillar():
    g = gen.caterpillar(4, 2)
    assert g.n == 4 + 8
    assert g.m == 3 + 8
    assert is_connected(g)


def test_k_tree_properties():
    for k in (1, 2, 3):
        g = gen.k_tree(20, k, seed=3)
        assert g.n == 20
        # A k-tree on n vertices has kn - k(k+1)/2 edges.
        assert g.m == k * 20 - k * (k + 1) // 2
        assert is_connected(g)
        from repro.graphs.expansion import degeneracy

        assert degeneracy(g) == k


def test_k_tree_too_small():
    with pytest.raises(GraphError):
        gen.k_tree(2, 2)


def test_maximal_outerplanar():
    g = gen.maximal_outerplanar(10, seed=1)
    # Maximal outerplanar: 2n - 3 edges.
    assert g.m == 2 * 10 - 3
    assert _is_planar(g)
    assert is_connected(g)


def test_outerplanar_determinism():
    assert gen.maximal_outerplanar(15, seed=9) == gen.maximal_outerplanar(15, seed=9)


def test_subdivide_counts():
    g = gen.cycle_graph(4)
    s1 = gen.subdivide(g, 1)
    assert s1.n == 4 + 4
    assert s1.m == 8
    s0 = gen.subdivide(g, 0)
    assert s0 == g


def test_subdivide_makes_planar():
    k5 = gen.complete_graph(5)
    assert not _is_planar(k5)
    # 1-subdivision of K5 is still non-planar (topological minor),
    # but the subdivision has max degree 4 and 2x the edges.
    s = gen.subdivide(k5, 1)
    assert s.n == 5 + 10
    assert s.m == 20
    assert not _is_planar(s)


def test_subdivide_negative():
    with pytest.raises(GraphError):
        gen.subdivide(gen.path_graph(3), -1)
