"""solve_batch: shared precomputation, cache-hit accounting, process pool."""

import pytest

from repro.api import (
    PrecomputeCache,
    SolveRequest,
    graph_digest,
    solve,
    solve_batch,
)
from repro.errors import SolverError
from repro.graphs import generators as gen


def _requests(g, algorithms, radius=1, **kw):
    return [
        SolveRequest(graph=g, radius=radius, algorithm=a, **kw)
        for a in algorithms
    ]


def test_order_cache_computed_once_across_repeats():
    """Acceptance: a repeated (graph, order strategy, radius) sweep
    computes the linear order exactly once."""
    g = gen.grid_2d(6, 6)
    cache = PrecomputeCache()
    reqs = _requests(
        g, ["seq.wreach", "seq.wreach-min", "seq.dvorak"], certify=True
    ) * 2  # repeat the whole sweep: still one order computation
    results = solve_batch(reqs, cache=cache)
    assert len(results) == 6
    stats = cache.stats()
    assert stats["order"]["misses"] == 1
    assert stats["order"]["hits"] == len(reqs) - 1
    # WReach_2r (certificates) and WReach_r (wreach-min) each swept once
    # — both served from the shared CSR category.
    assert stats["wreach_csr"]["misses"] == 2
    assert stats["wreach_csr"]["hits"] >= 1
    # And the rank-permuted adjacency they ran over was built once.
    assert stats["rank_adj"]["misses"] == 1
    # And the repeat produced identical outputs.
    for a, b in zip(results[:3], results[3:], strict=True):
        assert a.dominators == b.dominators


def test_cache_keyed_by_content_not_identity():
    """Two separately-built but equal graphs share cache entries."""
    g1 = gen.grid_2d(5, 5)
    g2 = gen.grid_2d(5, 5)
    assert g1 is not g2
    assert graph_digest(g1) == graph_digest(g2)
    cache = PrecomputeCache()
    solve(g1, 1, "seq.wreach", cache=cache)
    solve(g2, 1, "seq.wreach", cache=cache)
    assert cache.stats()["order"] == {"hits": 1, "misses": 1, "size": 1}


def test_distributed_order_shared_across_radii():
    """The H-partition simulation runs once for an r-sweep."""
    g = gen.grid_2d(5, 5)
    cache = PrecomputeCache()
    for r in (1, 2, 3):
        solve(g, r, "dist.congest", cache=cache)
    stats = cache.stats()["dist_order"]
    assert stats["misses"] == 1 and stats["hits"] == 2


def test_cache_respects_strategy_and_radius_axes():
    g = gen.grid_2d(5, 5)
    cache = PrecomputeCache()
    solve(g, 1, "seq.wreach", order_strategy="degeneracy", cache=cache)
    solve(g, 1, "seq.wreach", order_strategy="identity", cache=cache)
    solve(g, 2, "seq.wreach", order_strategy="fraternal", cache=cache)
    assert cache.stats()["order"]["misses"] == 3


def test_lru_eviction_bounds_memory():
    cache = PrecomputeCache(maxsize=2)
    graphs = [gen.path_graph(n) for n in (5, 6, 7)]
    for g in graphs:
        cache.order(g, "degeneracy", 1)
    assert cache.stats()["order"]["size"] == 2
    # Oldest entry was evicted: recomputing it is a miss again.
    cache.order(graphs[0], "degeneracy", 1)
    assert cache.stats()["order"]["misses"] == 4


def test_batch_results_in_request_order():
    g = gen.grid_2d(4, 4)
    t = gen.balanced_tree(2, 3)
    reqs = [
        SolveRequest(graph=g, radius=1, algorithm="seq.greedy"),
        SolveRequest(graph=t, radius=2, algorithm="seq.tree-exact"),
        SolveRequest(graph=g, radius=1, algorithm="seq.wreach"),
    ]
    out = solve_batch(reqs)
    assert [r.algorithm for r in out] == [
        "seq.greedy", "seq.tree-exact", "seq.wreach"
    ]
    assert out[1].radius == 2


def test_batch_rejects_non_requests():
    with pytest.raises(SolverError, match="SolveRequest"):
        solve_batch([{"graph": None}])


def test_batch_process_pool_matches_inline():
    """workers=2 fans out over processes; outputs identical to inline."""
    g = gen.grid_2d(5, 5)
    reqs = _requests(g, ["seq.wreach", "seq.dvorak", "seq.greedy",
                         "dist.parallel-greedy"], certify=True)
    inline = solve_batch(reqs)
    pooled = solve_batch(reqs, workers=2)
    assert [r.dominators for r in pooled] == [r.dominators for r in inline]
    for r in pooled:  # results round-trip the process boundary intact
        assert r.size > 0 and r.wall_time_s >= 0.0
        if r.certificate is not None:
            assert r.certificate.solution_size == r.size


def test_request_pickles_with_graph():
    import pickle

    g = gen.k_tree(12, 2, seed=3)
    req = SolveRequest(graph=g, radius=1, algorithm="seq.wreach")
    clone = pickle.loads(pickle.dumps(req))
    assert clone.graph == g
    assert solve(clone.graph, 1, "seq.wreach").dominators == \
        solve(g, 1, "seq.wreach").dominators


def test_sizes_sets_wcol_share_one_csr_sweep():
    """Satellite invariant: wreach_sizes / wreach / wcol for one
    (graph, order, reach) are all served by a single cached CSR run."""
    import numpy as np

    g = gen.grid_2d(6, 6)
    cache = PrecomputeCache()
    order = cache.order(g, "degeneracy", 2)
    sizes = cache.wreach_sizes(g, order, 2)
    sets_ = cache.wreach(g, order, 2)
    wcol = cache.wcol(g, order, 2)
    st = cache.stats()
    assert st["wreach_csr"]["misses"] == 1
    assert st["wreach_csr"]["hits"] == 2
    assert np.array_equal(sizes, [len(s) for s in sets_])
    assert wcol == int(sizes.max())
    # Derived views are consistent with the standalone kernels.
    from repro.orders.wreach import wreach_sets, wreach_sizes

    assert sets_ == wreach_sets(g, order, 2)
    assert np.array_equal(sizes, wreach_sizes(g, order, 2))
