"""Per-instance approximation certificates."""


from repro.core.certify import certify_run
from repro.core.domset import domset_sequential
from repro.core.exact import exact_domset
from repro.graphs import generators as gen
from repro.orders.degeneracy import degeneracy_order
from repro.orders.wreach import wcol_of_order


def test_certificate_fields(small_graph):
    g = small_graph
    order, _ = degeneracy_order(g)
    res = domset_sequential(g, order, 1)
    cert = certify_run(g, order, res, with_lp=True)
    assert cert.radius == 1
    assert cert.solution_size == res.size
    assert cert.certified_c == max(1, wcol_of_order(g, order, 2))
    assert cert.lp_bound is not None
    assert cert.consistent()


def test_certified_ratio_is_valid_bound(small_graph):
    """|D| <= certified_c * OPT — the Theorem 5 statement itself."""
    g = small_graph
    order, _ = degeneracy_order(g)
    for radius in (1, 2):
        res = domset_sequential(g, order, radius)
        cert = certify_run(g, order, res, with_lp=False)
        opt, _ = exact_domset(g, radius)
        assert res.size <= cert.certified_ratio * max(opt, 1)


def test_realized_ratio_upper(small_graph):
    g = small_graph
    order, _ = degeneracy_order(g)
    res = domset_sequential(g, order, 1)
    cert = certify_run(g, order, res, with_lp=True)
    opt, _ = exact_domset(g, 1)
    # realized_ratio_upper = |D| / ceil(LP) >= |D| / OPT.
    assert cert.realized_ratio_upper is not None
    assert cert.realized_ratio_upper >= res.size / max(opt, 1) - 1e-9


def test_no_lp_requested():
    g = gen.grid_2d(4, 4)
    order, _ = degeneracy_order(g)
    res = domset_sequential(g, order, 1)
    cert = certify_run(g, order, res, with_lp=False)
    assert cert.lp_bound is None
    assert cert.realized_ratio_upper is None
