"""Dominating-set pruning extension."""

import pytest

from repro.analysis.validate import is_distance_r_dominating_set
from repro.core.domset import domset_sequential
from repro.core.prune import PRUNE_LOCAL_ROUNDS, prune_dominating_set
from repro.errors import GraphError
from repro.graphs import generators as gen
from repro.graphs.build import from_edges
from repro.orders.degeneracy import degeneracy_order


@pytest.mark.parametrize("radius", [1, 2])
def test_pruned_still_dominates(small_graph, radius):
    g = small_graph
    order, _ = degeneracy_order(g)
    ds = domset_sequential(g, order, radius)
    pruned = prune_dominating_set(g, ds.dominators, radius)
    assert set(pruned) <= set(ds.dominators)
    assert is_distance_r_dominating_set(g, pruned, radius)


def test_prune_shrinks_redundant_sets():
    g = gen.grid_2d(8, 8)
    order, _ = degeneracy_order(g)
    ds = domset_sequential(g, order, 1)
    pruned = prune_dominating_set(g, ds.dominators, 1)
    assert len(pruned) < ds.size  # elect-min on grids is very redundant


def test_prune_fixed_point_on_minimal_set():
    # A single-center star is already minimal.
    g = gen.star_graph(8)
    assert prune_dominating_set(g, [0], 1) == (0,)


def test_prune_whole_vertex_set():
    g = gen.path_graph(6)
    pruned = prune_dominating_set(g, range(6), 1)
    assert is_distance_r_dominating_set(g, pruned, 1)
    assert len(pruned) <= 3


def test_prune_rejects_non_dominating():
    g = gen.path_graph(10)
    with pytest.raises(GraphError):
        prune_dominating_set(g, [0], 1)


def test_prune_rejects_empty_for_nonempty_graph():
    g = gen.path_graph(3)
    with pytest.raises(GraphError):
        prune_dominating_set(g, [], 1)


def test_prune_empty_graph():
    g = from_edges(0, [])
    assert prune_dominating_set(g, [], 1) == ()


def test_prune_orders_give_valid_results():
    g = gen.grid_2d(6, 6)
    order, _ = degeneracy_order(g)
    ds = domset_sequential(g, order, 1)
    for mode in ("desc_degree", "asc_id", "desc_id"):
        pruned = prune_dominating_set(g, ds.dominators, 1, order=mode)
        assert is_distance_r_dominating_set(g, pruned, 1)


def test_prune_unknown_order_rejected():
    g = gen.path_graph(4)
    with pytest.raises(GraphError):
        prune_dominating_set(g, [0, 1, 2, 3], 1, order="nope")


def test_prune_deterministic():
    g = gen.grid_2d(5, 5)
    order, _ = degeneracy_order(g)
    ds = domset_sequential(g, order, 1)
    assert prune_dominating_set(g, ds.dominators, 1) == prune_dominating_set(
        g, ds.dominators, 1
    )


def test_local_round_cost_formula():
    assert PRUNE_LOCAL_ROUNDS(1) == 3
    assert PRUNE_LOCAL_ROUNDS(3) == 7
