"""Registry round-trip parity: solve() == the legacy entry points.

For EVERY registered solver, the dominator set returned through the
unified API must be byte-identical to the set from the historical
direct call, on grid / tree / k-tree fixtures.  The final test asserts
the parity table actually covers the whole registry, so adding a
solver without a parity check fails loudly.
"""

import pytest

from repro.api import solve, solver_names
from repro.core.domset import domset_by_wreach, domset_sequential
from repro.core.dvorak import domset_dvorak
from repro.core.exact import exact_domset
from repro.core.greedy import domset_greedy
from repro.core.lp_rounding import lp_rounding_domset
from repro.core.rdomset_orient import rdomset_orient
from repro.core.tree_exact import is_tree, tree_domset_exact
from repro.distributed.connect_bc import run_connect_bc
from repro.distributed.domset_bc import run_domset_bc
from repro.distributed.kw_lp import kw_lp_domset
from repro.distributed.lenzen import lenzen_planar_mds
from repro.distributed.nd_order import distributed_h_partition_order
from repro.distributed.parallel_greedy import parallel_greedy_domset
from repro.distributed.ruling import ruling_domset
from repro.distributed.unified_bc import run_unified_bc
from repro.graphs import generators as gen
from repro.pipelines import make_order

FIXTURES = [
    ("grid5x5", gen.grid_2d(5, 5)),
    ("tree_b2h3", gen.balanced_tree(2, 3)),
    ("ktree14", gen.k_tree(14, 2, seed=1)),
]
RADII = (1, 2)

#: Maps every registered solver to its legacy reference computation.
#: reference(g, r) -> tuple of dominators; None return = not applicable
#: to this fixture/radius (skipped, must be inapplicable for a reason
#: encoded here, e.g. tree-exact on non-trees).
REFERENCES = {
    "seq.wreach": lambda g, r: domset_sequential(
        g, make_order(g, r, "degeneracy"), r
    ).dominators,
    "seq.wreach-min": lambda g, r: domset_by_wreach(
        g, make_order(g, r, "degeneracy"), r
    ).dominators,
    "seq.rdomset-orient": lambda g, r: rdomset_orient(
        g, make_order(g, r, "degeneracy"), r
    ).dominators,
    "seq.dvorak": lambda g, r: domset_dvorak(
        g, make_order(g, r, "degeneracy"), r
    ).dominators,
    "seq.greedy": lambda g, r: domset_greedy(g, r).dominators,
    "seq.lp-rounding": lambda g, r: lp_rounding_domset(g, r).dominators,
    "seq.exact": lambda g, r: tuple(sorted(exact_domset(g, r)[1])),
    "seq.tree-exact": lambda g, r: (
        tuple(sorted(tree_domset_exact(g, r)[1])) if is_tree(g) else None
    ),
    "dist.congest": lambda g, r: run_domset_bc(
        g, r, distributed_h_partition_order(g)
    ).dominators,
    "dist.congest-unified": lambda g, r: run_unified_bc(g, r).dominators,
    "dist.ruling": lambda g, r: ruling_domset(g, r, seed=7).dominators,
    "dist.parallel-greedy": lambda g, r: parallel_greedy_domset(g, r).dominators,
    "dist.kw-lp": lambda g, r: kw_lp_domset(g, r, seed=7).dominators,
    "local.planar-cds": lambda g, r: (
        lenzen_planar_mds(g).dominators if r == 1 else None
    ),
}


@pytest.mark.parametrize("name,g", FIXTURES, ids=[n for n, _ in FIXTURES])
@pytest.mark.parametrize("algorithm", sorted(REFERENCES))
def test_solver_parity(name, g, algorithm):
    checked = 0
    for r in RADII:
        expected = REFERENCES[algorithm](g, r)
        if expected is None:
            continue
        res = solve(g, r, algorithm, seed=7, validate=True)
        assert res.dominators == tuple(expected), (algorithm, name, r)
        assert res.extras["valid"], (algorithm, name, r)
        checked += 1
    if algorithm == "seq.tree-exact" and not is_tree(g):
        assert checked == 0
    else:
        assert checked >= 1


def test_parity_table_covers_whole_registry():
    missing = set(solver_names()) - set(REFERENCES)
    assert not missing, f"registered solvers without parity coverage: {missing}"


def test_connected_parity_congest():
    """connect=True matches the legacy Theorem-10 runner exactly."""
    g = gen.grid_2d(5, 5)
    legacy = run_connect_bc(g, 1, distributed_h_partition_order(g))
    res = solve(g, 1, "dist.congest", connect=True)
    assert res.connected_set == legacy.connected_set
    assert res.dominators == legacy.dominators


def test_connected_parity_sequential():
    from repro.core.connect import connect_via_wreach

    g = gen.grid_2d(5, 5)
    order = make_order(g, 1, "degeneracy")
    legacy = connect_via_wreach(
        g, order, domset_sequential(g, order, 1).dominators, 1
    )
    res = solve(g, 1, "seq.wreach", connect=True)
    assert res.connected_set == legacy.vertices


def test_pipeline_shims_match_solve():
    """The deprecation shims and the façade agree (same registry path)."""
    import warnings

    g = gen.grid_2d(6, 6)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        from repro.pipelines import congest_bc_pipeline, sequential_pipeline

        run = sequential_pipeline(g, 2, with_lp=False)
        res = solve(g, 2, "seq.wreach", certify=True)
        assert run.domset.dominators == res.dominators
        assert run.certificate.certified_c == res.certificate.certified_c
        crun = congest_bc_pipeline(g, 1)
        cres = solve(g, 1, "dist.congest")
        assert crun.domset.dominators == cres.dominators


def test_shims_emit_deprecation_warning():
    from repro.pipelines import sequential_pipeline

    with pytest.warns(DeprecationWarning, match="repro.api.solve"):
        sequential_pipeline(gen.grid_2d(3, 3), 1)
