"""Single-execution pipeline == phased pipeline, with a fixed schedule."""

import numpy as np
import pytest

from repro.analysis.validate import (
    is_connected_distance_r_dominating_set,
    is_distance_r_dominating_set,
)
from repro.distributed.connect_bc import run_connect_bc
from repro.distributed.domset_bc import run_domset_bc
from repro.distributed.nd_order import default_threshold, distributed_h_partition_order
from repro.distributed.unified_bc import order_budget, run_unified_bc
from repro.errors import SimulationError
from repro.graphs import generators as gen
from repro.graphs.random_models import delaunay_graph, random_tree


def _zoo():
    return [
        ("grid", gen.grid_2d(6, 6)),
        ("delaunay", delaunay_graph(60, seed=9)[0]),
        ("tree", random_tree(50, seed=2)),
        ("ktree", gen.k_tree(40, 2, seed=5)),
    ]


@pytest.mark.parametrize("radius", [1, 2])
def test_equals_phased_domset(radius):
    for name, g in _zoo():
        thr = default_threshold(g)
        oc = distributed_h_partition_order(g, thr)
        uni = run_unified_bc(g, radius, connect=False, threshold=thr)
        ph = run_domset_bc(g, radius, oc)
        assert uni.dominators == ph.dominators, name
        assert np.array_equal(uni.dominator_of, ph.dominator_of), name


@pytest.mark.parametrize("radius", [1, 2])
def test_equals_phased_connect(radius):
    for name, g in _zoo():
        thr = default_threshold(g)
        oc = distributed_h_partition_order(g, thr)
        uni = run_unified_bc(g, radius, connect=True, threshold=thr)
        ph = run_connect_bc(g, radius, oc)
        assert uni.dominators == ph.dominators, name
        assert uni.connected_set == ph.connected_set, name
        assert is_connected_distance_r_dominating_set(g, uni.connected_set, radius)


def test_schedule_is_deterministic_in_n_and_r():
    """All nodes halt at the same precomputed round."""
    g = gen.grid_2d(6, 6)
    for radius, connect in ((1, False), (2, False), (1, True)):
        res = run_unified_bc(g, radius, connect=connect)
        horizon = 2 * radius + (1 if connect else 0)
        expected = order_budget(g.n) + horizon + radius
        if connect:
            expected += 2 * radius + 1
        # The network may end one round after the last halting round.
        assert abs(res.rounds - expected) <= 1, (radius, connect, res.rounds, expected)


def test_rounds_grow_logarithmically_with_n():
    r_small = run_unified_bc(gen.grid_2d(4, 4), 1).rounds
    r_big = run_unified_bc(gen.grid_2d(16, 16), 1).rounds
    # 16x more vertices, log-factor more rounds (budget-driven).
    assert r_big <= r_small + 2 * 8  # 2 rounds per extra log2 level x8


def test_output_validity(medium_graph):
    res = run_unified_bc(medium_graph, 1)
    assert is_distance_r_dominating_set(medium_graph, res.dominators, 1)


def test_budget_violation_detected():
    # A threshold of 1 cannot peel a cycle; the budget must trip.
    g = gen.cycle_graph(12)
    with pytest.raises(SimulationError):
        run_unified_bc(g, 1, threshold=1)


def test_radius_zero_rejected():
    with pytest.raises(SimulationError):
        run_unified_bc(gen.path_graph(4), 0)


def test_levels_exported():
    g = gen.grid_2d(5, 5)
    res = run_unified_bc(g, 1)
    assert (res.levels >= 1).all()


def test_order_budget_formula():
    assert order_budget(1) == 2
    assert order_budget(2) == 2 * (2 + 8)
    assert order_budget(1024) == 2 * (20 + 8)
