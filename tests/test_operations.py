"""Graph surgery: unions, relabelings, contractions."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs import generators as gen
from repro.graphs.operations import (
    add_edges,
    contract_partition,
    disjoint_union,
    relabel,
    remove_vertices,
)


def test_disjoint_union_sizes():
    a = gen.path_graph(3)
    b = gen.cycle_graph(4)
    u = disjoint_union([a, b])
    assert u.n == 7
    assert u.m == 2 + 4
    assert u.has_edge(0, 1)
    assert u.has_edge(3, 4)  # first cycle edge shifted by 3
    assert not u.has_edge(2, 3)


def test_disjoint_union_empty_list():
    assert disjoint_union([]).n == 0


def test_relabel_is_isomorphism():
    g = gen.path_graph(4)
    perm = np.array([3, 2, 1, 0])
    h = relabel(g, perm)
    assert h.m == g.m
    assert h.has_edge(3, 2) and h.has_edge(1, 0)


def test_relabel_requires_permutation():
    g = gen.path_graph(3)
    with pytest.raises(GraphError):
        relabel(g, np.array([0, 0, 1]))
    with pytest.raises(GraphError):
        relabel(g, np.array([0, 1]))


def test_contract_partition_quotient():
    # Path 0-1-2-3 with classes {0,1} and {2,3} contracts to a single edge.
    g = gen.path_graph(4)
    q = contract_partition(g, np.array([0, 0, 1, 1]))
    assert q.n == 2 and q.m == 1


def test_contract_partition_drops_internal_edges():
    g = gen.complete_graph(4)
    q = contract_partition(g, np.array([0, 0, 0, 0]))
    assert q.n == 1 and q.m == 0


def test_contract_partition_shape_check():
    g = gen.path_graph(3)
    with pytest.raises(GraphError):
        contract_partition(g, np.array([0, 1]))
    with pytest.raises(GraphError):
        contract_partition(g, np.array([0, -1, 1]))


def test_remove_vertices():
    g = gen.cycle_graph(5)
    h, mapping = remove_vertices(g, [0])
    assert h.n == 4
    assert h.m == 3  # cycle minus a vertex = path
    assert mapping.tolist() == [1, 2, 3, 4]


def test_add_edges():
    g = gen.path_graph(4)
    h = add_edges(g, [(0, 3)])
    assert h.m == 4
    assert h.has_edge(0, 3)
    # Duplicates are merged silently.
    h2 = add_edges(g, [(0, 1)])
    assert h2 == g
