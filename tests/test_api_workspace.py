"""Workspace: graph handles, streaming execution, pooled co-location."""

import pickle

import pytest

from repro.api import (
    GraphHandle,
    SolveRequest,
    Workspace,
    graph_digest,
    solve,
    solve_request,
)
from repro.api.workspace import SolveFuture
from repro.errors import SolverError
from repro.graphs import generators as gen


class _InlinePool:
    """Executor stand-in: runs group tasks synchronously in-process.

    Injected through ``Workspace(pool_factory=...)`` so dispatch-shape
    tests observe exactly what the supervisor hands the real pool
    (including the trailing attempt counter) without forking workers.
    """

    def __init__(self, record=None):
        self.record = record

    def submit(self, fn, *args):
        from concurrent.futures import Future

        if self.record is not None:
            self.record.append(args)
        cf = Future()
        try:
            cf.set_result(fn(*args))
        except BaseException as exc:  # mirrored onto the future, like a pool
            cf.set_exception(exc)
        return cf

    def shutdown(self, wait=True, cancel_futures=False):
        pass


def test_add_returns_content_addressed_handle():
    ws = Workspace()
    g = gen.grid_2d(5, 5)
    h1 = ws.add(g)
    h2 = ws.add(gen.grid_2d(5, 5))  # equal content, separate object
    assert h1 == h2
    assert h1.digest == graph_digest(g)
    assert (h1.n, h1.m) == (g.n, g.m)
    assert ws.resolve(h1) is g


def test_handle_requests_resolve_through_workspace():
    ws = Workspace()
    g = gen.grid_2d(5, 5)
    h = ws.add(g)
    direct = solve(g, 1, "seq.wreach")
    via_detached = ws.solve_request(
        SolveRequest(graph=h.detached(), radius=1, algorithm="seq.wreach")
    )
    assert via_detached.dominators == direct.dominators
    # ws.solve takes either shape too.
    assert ws.solve(h, 1, "seq.wreach").dominators == direct.dominators


def test_detached_handle_outside_workspace_is_rejected():
    g = gen.grid_2d(4, 4)
    handle = GraphHandle.of(g).detached()
    req = SolveRequest(graph=handle, radius=1, algorithm="seq.wreach")
    with pytest.raises(SolverError, match="Workspace"):
        solve_request(req)
    # An attached handle works anywhere: it carries the graph in-process.
    attached = GraphHandle.of(g)
    res = solve_request(SolveRequest(graph=attached, radius=1))
    assert res.size > 0


def test_handle_pickles_without_graph():
    g = gen.grid_2d(5, 5)
    h = GraphHandle.of(g)
    assert h.graph is g
    clone = pickle.loads(pickle.dumps(h))
    assert clone == h  # identity is (digest, n, m)
    assert clone.graph is None  # the CSR arrays did not ride along
    assert len(pickle.dumps(h)) < len(pickle.dumps(g))


def test_unknown_digest_raises():
    ws = Workspace()
    with pytest.raises(SolverError, match="not in this workspace"):
        ws.graph("f" * 32)


def test_as_completed_streams_before_batch_finishes():
    """Acceptance: results arrive while later requests are still pending."""
    ws = Workspace()
    g = gen.grid_2d(4, 4)
    big = gen.grid_2d(12, 12)
    reqs = [
        SolveRequest(graph=g, radius=1, algorithm="seq.greedy"),
        SolveRequest(graph=big, radius=2, algorithm="seq.wreach", certify=True),
        SolveRequest(graph=big, radius=2, algorithm="seq.dvorak"),
    ]
    futures = ws.submit_all(reqs)
    assert not any(f.done() for f in futures)  # lazy until driven
    stream = ws.as_completed(futures)
    first = next(stream)
    assert first.done() and first.result().algorithm == "seq.greedy"
    # The batch is NOT finished: later futures are still pending.
    assert not futures[1].done() and not futures[2].done()
    rest = [f.result().algorithm for f in stream]
    assert rest == ["seq.wreach", "seq.dvorak"]


def test_as_completed_accepts_plain_requests():
    ws = Workspace()
    g = gen.grid_2d(5, 5)
    reqs = [SolveRequest(graph=g, radius=1, algorithm=a)
            for a in ("seq.wreach", "seq.greedy")]
    done = {f.request.algorithm: f.result().size for f in ws.as_completed(reqs)}
    assert set(done) == {"seq.wreach", "seq.greedy"}
    assert all(size > 0 for size in done.values())


def test_submit_future_result_and_done():
    ws = Workspace()
    g = gen.grid_2d(5, 5)
    fut = ws.submit(SolveRequest(graph=g, radius=1, algorithm="seq.wreach"))
    assert isinstance(fut, SolveFuture)
    assert not fut.done()
    res = fut.result()
    assert fut.done()
    assert fut.result() is res  # memoized


def test_submit_all_rejects_non_requests():
    ws = Workspace()
    with pytest.raises(SolverError, match="SolveRequest"):
        ws.submit_all([42])


def test_run_matches_solve_batch_inline():
    from repro.api import solve_batch

    g = gen.grid_2d(6, 6)
    reqs = [SolveRequest(graph=g, radius=1, algorithm=a, certify=True)
            for a in ("seq.wreach", "seq.wreach-min", "seq.dvorak")]
    with Workspace() as ws:
        ordered = ws.run(reqs)
    batch = solve_batch(reqs)
    assert [r.dominators for r in ordered] == [r.dominators for r in batch]
    assert [r.algorithm for r in ordered] == [r.algorithm for r in reqs]


def test_pooled_dispatch_groups_by_digest():
    """Acceptance: each distinct graph is serialized at most once — the
    executor builds one pool task per digest, carrying that graph's
    requests together (same-worker co-location)."""
    g = gen.grid_2d(6, 6)
    t = gen.balanced_tree(2, 3)
    reqs = [
        SolveRequest(graph=g, radius=1, algorithm="seq.wreach"),
        SolveRequest(graph=t, radius=1, algorithm="seq.greedy"),
        SolveRequest(graph=g, radius=1, algorithm="seq.dvorak"),
        SolveRequest(graph=t, radius=2, algorithm="seq.greedy"),
        SolveRequest(graph=g, radius=1, algorithm="seq.greedy"),
    ]
    submitted = []
    ws = Workspace(workers=2, pool_factory=lambda: _InlinePool(submitted))
    futures = ws.submit_all(reqs)
    submitted = [(args[1], args[2], args[3]) for args in submitted]
    # One task per distinct digest; the graph object crosses once each.
    assert len(submitted) == 2
    digests = {d for _, d, _ in submitted}
    assert digests == {graph_digest(g), graph_digest(t)}
    for graph, digest, stripped in submitted:
        assert graph_digest(graph) == digest
        # Request payloads carry detached handles, not the graph again.
        assert all(isinstance(r.graph, GraphHandle) for r in stripped)
        assert all(r.graph.graph is None for r in stripped)
    # Results come back in request order regardless of grouping.
    assert [f.result().algorithm for f in futures] == [
        r.algorithm for r in reqs
    ]


def test_pooled_matches_inline_end_to_end():
    g = gen.grid_2d(6, 6)
    t = gen.balanced_tree(2, 4)
    reqs = [
        SolveRequest(graph=g, radius=1, algorithm="seq.wreach", certify=True),
        SolveRequest(graph=t, radius=2, algorithm="seq.tree-exact"),
        SolveRequest(graph=g, radius=1, algorithm="seq.greedy"),
    ]
    inline = Workspace().run(reqs)
    with Workspace(workers=2) as ws:
        pooled = ws.run(reqs)
    assert [r.dominators for r in pooled] == [r.dominators for r in inline]
    assert pooled[0].certificate == inline[0].certificate


def test_pooled_workers_resolve_graphs_from_store(tmp_path):
    """With a store, pooled payloads carry digests only — workers load
    the CSR arrays from disk (once per process), not from the pickle."""
    g = gen.grid_2d(6, 6)
    with Workspace(store=tmp_path, workers=2) as ws:
        h = ws.add(g)
        reqs = [SolveRequest(graph=h, radius=1, algorithm=a)
                for a in ("seq.wreach", "seq.greedy")]
        results = ws.run(reqs)
    inline = [solve(g, 1, a) for a in ("seq.wreach", "seq.greedy")]
    assert [r.dominators for r in results] == [r.dominators for r in inline]


def test_workspace_info_reports_cache_and_store(tmp_path):
    ws = Workspace(store=tmp_path)
    h = ws.add(gen.grid_2d(5, 5))
    ws.warm(h, radius=1)
    info = ws.info()
    assert info["graphs_in_memory"] == 1
    assert info["store"]["categories"]["orders"]["artifacts"] == 1
    assert "order" in info["cache"]


def test_single_graph_batch_splits_across_workers():
    """A one-graph batch must still use the whole pool: the digest group
    is chunked (graph shipped once per chunk <= once per worker)."""
    g = gen.grid_2d(6, 6)
    reqs = [SolveRequest(graph=g, radius=1, algorithm="seq.greedy")
            for _ in range(4)]
    submitted = []
    ws = Workspace(workers=2, pool_factory=lambda: _InlinePool(submitted))
    futures = ws.submit_all(reqs)
    assert len(submitted) == 2  # two chunks for two workers
    assert all(len(args[3]) == 2 for args in submitted)  # balanced
    assert len({args[2] for args in submitted}) == 1  # same digest
    assert [f.result().size for f in futures] == [
        futures[0].result().size
    ] * 4


def test_pooled_failure_does_not_poison_group_siblings():
    """One bad request in a co-located group fails alone."""
    t = gen.balanced_tree(2, 3)
    g = gen.grid_2d(5, 5)
    reqs = [
        SolveRequest(graph=g, radius=1, algorithm="seq.wreach"),
        SolveRequest(graph=g, radius=1, algorithm="seq.tree-exact"),  # not a tree
        SolveRequest(graph=g, radius=1, algorithm="seq.greedy"),
        SolveRequest(graph=t, radius=1, algorithm="seq.tree-exact"),
    ]
    with Workspace(workers=2) as ws:
        futures = ws.submit_all(reqs)
        assert futures[0].result().size > 0
        with pytest.raises(SolverError, match="tree"):
            futures[1].result()
        assert futures[2].result().size > 0  # same group as the failure
        assert futures[3].result().size > 0


def test_store_workspace_rejects_unbacked_cache(tmp_path):
    from repro.api import PrecomputeCache

    with pytest.raises(SolverError, match="not backed"):
        Workspace(store=tmp_path, cache=PrecomputeCache())
    # A cache over the same store is accepted.
    from repro.api import ArtifactStore

    store = ArtifactStore(tmp_path)
    ws = Workspace(store=store, cache=PrecomputeCache(store=store))
    assert ws.cache.store is store
    # Equivalent spellings of the same directory are the same store.
    import os

    rel = os.path.relpath(tmp_path)
    ws2 = Workspace(store=rel, cache=PrecomputeCache(store=store))
    assert ws2.cache.store is store


def test_store_backed_cache_implies_store_backed_workspace(tmp_path):
    """A workspace built only from a store-backed cache adopts the store:
    graphs persist and detached handles resolve in later processes."""
    from repro.api import ArtifactStore, PrecomputeCache

    store = ArtifactStore(tmp_path)
    ws = Workspace(cache=PrecomputeCache(store=store))
    assert ws.store is store
    g = gen.grid_2d(5, 5)
    h = ws.add(g)
    fresh = Workspace(store=tmp_path)
    assert fresh.resolve(h.detached()) == g  # graph reached the store


def test_as_completed_survives_failing_requests():
    """A bad request settles its own future; the stream keeps going."""
    ws = Workspace()
    g = gen.grid_2d(5, 5)
    reqs = [
        SolveRequest(graph=g, radius=1, algorithm="seq.greedy"),
        SolveRequest(graph=g, radius=1, algorithm="seq.tree-exact"),  # not a tree
        SolveRequest(graph=g, radius=1, algorithm="seq.wreach"),
    ]
    yielded = list(ws.as_completed(reqs))
    assert len(yielded) == 3
    assert yielded[0].result().size > 0
    with pytest.raises(SolverError, match="tree"):
        yielded[1].result()
    assert yielded[2].result().size > 0


def test_failed_deferred_future_caches_its_error():
    """result() on a failed future re-raises; it never re-runs the solve."""
    ws = Workspace()
    calls = []
    req = SolveRequest(graph=gen.grid_2d(4, 4), radius=1,
                       algorithm="seq.tree-exact")
    fut = ws.submit(req)
    fut._run = lambda run=fut._run: calls.append(1) or run()
    for _ in range(2):
        with pytest.raises(SolverError, match="tree"):
            fut.result()
    assert calls == [1]  # the second call replayed the cached error
    assert fut.done()


def test_handles_list_without_loading_store_graphs(tmp_path):
    g = gen.grid_2d(5, 5)
    Workspace(store=tmp_path).add(g)
    ws = Workspace(store=tmp_path)
    (handle,) = ws.handles()
    assert (handle.n, handle.m) == (g.n, g.m)
    assert handle.graph is None  # listed from metadata, not loaded
    assert len(ws._graphs) == 0
    assert ws.resolve(handle) == g  # lazy load still works


def test_warm_covers_both_wreach_solvers(tmp_path):
    """warm() precomputes what seq.wreach (certified) and seq.wreach-min
    consume, so both run without touching the kernels afterwards."""
    g = gen.k_tree(540, 3, seed=2)
    Workspace(store=tmp_path).warm(g, radius=2)
    ws = Workspace(store=tmp_path)
    ws.solve(g, 2, "seq.wreach", certify=True)
    ws.solve(g, 2, "seq.wreach-min")
    stats = ws.cache.stats()
    assert stats["wreach_csr"]["computed"] == 0
    assert stats["order"]["computed"] == 0
    assert stats["wcol"]["computed"] == 0
