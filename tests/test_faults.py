"""Deterministic fault injection: plan parsing, hooks, and the
end-to-end recovery scenarios the supervised runtime must survive.

The ``faults``-marked tests fork real pool workers and kill them with
``os._exit`` via injected rules — they are also run as their own CI job.
"""

import os
import time

import pytest

from repro.api import FaultPlan
from repro.api import faults
from repro.api.store import ArtifactStore, graph_digest
from repro.api.workspace import Workspace
from repro.api.types import SolveRequest
from repro.errors import RequestFailed
from repro.graphs import generators as gen


# ----------------------------------------------------------------------
# Plan parsing and activation
# ----------------------------------------------------------------------


def test_spec_round_trips_through_parse():
    spec = "seed=7;kill:attempts=1,digest=3fb2;latency:category=wreach,ms=5"
    plan = FaultPlan.parse(spec)
    assert plan.seed == 7
    assert [r.kind for r in plan.rules] == ["kill", "latency"]
    assert plan.rules[0].fields == {"attempts": 1, "digest": "3fb2"}
    assert plan.rules[1].fields == {"category": "wreach", "ms": 5}
    assert FaultPlan.parse(plan.spec()).spec() == plan.spec()


def test_parse_rejects_unknown_kind_and_bad_clause():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultPlan.parse("explode:now=1")
    with pytest.raises(ValueError, match="key=value"):
        FaultPlan.parse("kill:oops")


def test_activation_exports_env_and_restores_prior_state():
    prior = os.environ.get("REPRO_FAULTS")
    plan = FaultPlan.parse("latency:ms=1")
    assert faults.active() is None or prior is not None
    with plan.activate() as active_plan:
        assert faults.active() is active_plan
        assert os.environ["REPRO_FAULTS"] == plan.spec()
    assert os.environ.get("REPRO_FAULTS") == prior
    assert faults.active() is None or prior is not None


def test_env_spec_resolves_without_explicit_activation(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "seed=3;latency:ms=2")
    plan = faults.active()
    assert plan is not None and plan.seed == 3
    assert faults.active() is plan  # parsed once, cached


def test_on_save_fires_on_nth_matching_save():
    with FaultPlan.parse("torn:category=orders,nth=2").activate():
        assert faults.on_save("orders") is None
        assert faults.on_save("wreach") is None  # category filter
        assert faults.on_save("orders") == "torn"
        assert faults.on_save("orders") is None  # only the nth


def test_on_lease_contends_for_first_holds_attempts():
    with FaultPlan.parse("lease:digest=ab,holds=2").activate():
        assert faults.on_lease("abcd") is True
        assert faults.on_lease("abcd") is True
        assert faults.on_lease("abcd") is False  # contention exhausted
        assert faults.on_lease("zzzz") is False  # digest filter


def test_on_load_latency_is_bounded_and_seeded():
    with FaultPlan.parse("seed=5;latency:ms=10,jitter_ms=5").activate():
        t0 = time.monotonic()
        faults.on_load("orders")
        elapsed = time.monotonic() - t0
    assert 0.009 <= elapsed < 0.5


def test_counters_reset_between_activations():
    plan = FaultPlan.parse("torn:nth=1")
    with plan.activate():
        assert faults.on_save("orders") == "torn"
        assert faults.on_save("orders") is None
    with plan.activate():
        assert faults.on_save("orders") == "torn"  # fresh counters


# ----------------------------------------------------------------------
# Injected store faults (in-process)
# ----------------------------------------------------------------------


@pytest.mark.faults
def test_torn_write_leaks_tmp_and_sweep_reclaims_it(tmp_path):
    g = gen.grid_2d(4, 4)
    store = ArtifactStore(tmp_path)
    with FaultPlan.parse("torn:category=graphs,nth=1").activate():
        digest = store.put_graph(g)
    # The artifact never landed; an orphaned temp file did.
    assert store.get_graph(digest) is None
    orphans = list(tmp_path.rglob("*.tmp"))
    assert len(orphans) == 1 and orphans[0].name.startswith(".")
    # Age-gated sweep: young orphan survives, old orphan goes.
    assert store.sweep_tmp() == []
    old = time.time() - 7200.0
    os.utime(orphans[0], (old, old))
    removed = store.sweep_tmp()
    assert len(removed) == 1
    assert list(tmp_path.rglob("*.tmp")) == []
    # Idempotent recompute fills the slot cleanly afterwards.
    store.put_graph(g, digest=digest)
    assert store.get_graph(digest) is not None


@pytest.mark.faults
def test_injected_corruption_reaches_quarantine(tmp_path):
    g = gen.grid_2d(4, 4)
    store = ArtifactStore(tmp_path)
    with FaultPlan.parse("corrupt:category=graphs,nth=1").activate():
        digest = store.put_graph(g)
    assert store.get_graph(digest) is None  # strike 1
    assert store.get_graph(digest) is None  # strike 2 -> quarantine
    qdir = tmp_path / "quarantine"
    assert any(qdir.rglob("*.npz"))
    status = store.status()
    assert len(status["quarantine"]) == 1
    assert status["quarantine"][0]["reason"]


@pytest.mark.faults
def test_injected_lease_contention_still_converges(tmp_path):
    store = ArtifactStore(tmp_path)
    with FaultPlan.parse("lease:holds=2").activate():
        lease = store.lease("abcd", timeout_s=5.0)
        t0 = time.monotonic()
        with lease as lk:
            assert lk.acquired  # acquired after the injected contention
        assert time.monotonic() - t0 < 5.0


# ----------------------------------------------------------------------
# Worker-kill recovery (real process pool)
# ----------------------------------------------------------------------


def _requests(g, t):
    return [
        SolveRequest(graph=g, radius=1, algorithm="seq.wreach", certify=True),
        SolveRequest(graph=t, radius=1, algorithm="seq.greedy"),
        SolveRequest(graph=g, radius=1, algorithm="seq.greedy"),
        SolveRequest(graph=t, radius=2, algorithm="seq.greedy"),
    ]


@pytest.mark.faults
def test_kill_worker_mid_batch_recovers_bit_identically(tmp_path):
    """Acceptance: a batch whose worker is killed mid-flight completes
    with results bit-identical to a fault-free run."""
    g = gen.grid_2d(6, 6)
    t = gen.balanced_tree(2, 3)
    with Workspace(store=tmp_path / "clean", workers=2) as ws:
        baseline = ws.run(_requests(g, t))
    dg = graph_digest(g)
    plan = FaultPlan.parse(f"kill:digest={dg[:10]},attempts=1")
    with plan.activate():
        with Workspace(
            store=tmp_path / "faulty", workers=2, backoff_base_s=0.01
        ) as ws:
            recovered = ws.run(_requests(g, t))
            stats = ws._pool.stats()
    assert stats["respawns"] >= 1  # a worker really died
    assert stats["retries"].get(dg, 0) >= 1
    assert stats["poisoned"] == []
    assert [r.dominators for r in recovered] == [r.dominators for r in baseline]
    assert [r.size for r in recovered] == [r.size for r in baseline]
    assert recovered[0].certificate == baseline[0].certificate


@pytest.mark.faults
def test_only_injected_group_is_retried(tmp_path):
    """Acceptance: with the sibling group already settled, a kill in one
    graph-group retries that group alone."""
    g = gen.grid_2d(6, 6)
    t = gen.balanced_tree(2, 3)
    dg = graph_digest(g)
    dt = graph_digest(t)
    plan = FaultPlan.parse(f"kill:digest={dg[:10]},attempts=1")
    with plan.activate():
        with Workspace(
            store=tmp_path, workers=2, backoff_base_s=0.01
        ) as ws:
            # Settle the sibling group first so the injected breakage
            # cannot interrupt it in flight.
            sibling = ws.submit(SolveRequest(graph=t, radius=1, algorithm="seq.greedy"))
            assert sibling.result(timeout=60).size > 0
            injected = ws.submit(SolveRequest(graph=g, radius=1, algorithm="seq.greedy"))
            assert injected.result(timeout=60).size > 0
            stats = ws._pool.stats()
    assert stats["retries"].get(dg, 0) >= 1
    assert dt not in stats["retries"]
    assert stats["poisoned"] == []


@pytest.mark.faults
def test_unrecoverable_group_poisons_with_request_context(tmp_path):
    """After exhausting its attempts, only the dying group's futures
    fail — with algorithm, digest, and attempt count attached."""
    g = gen.grid_2d(5, 5)
    dg = graph_digest(g)
    plan = FaultPlan.parse("kill:attempts=99")  # every dispatch dies
    with plan.activate():
        with Workspace(
            store=tmp_path, workers=2, max_attempts=2, backoff_base_s=0.01
        ) as ws:
            fut = ws.submit(SolveRequest(graph=g, radius=1, algorithm="seq.greedy"))
            with pytest.raises(RequestFailed) as ei:
                fut.result(timeout=120)
            stats = ws._pool.stats()
    err = ei.value
    assert err.reason == "worker-crash"
    assert err.algorithm == "seq.greedy"
    assert err.graph_digest == dg
    assert err.attempts == 2
    assert stats["poisoned"] == [dg]


@pytest.mark.faults
def test_deferred_deadline_and_cancel():
    g = gen.grid_2d(5, 5)
    ws = Workspace()
    expired = ws.submit(
        SolveRequest(graph=g, radius=1, algorithm="seq.greedy", deadline_s=0.0)
    )
    time.sleep(0.01)
    with pytest.raises(RequestFailed) as ei:
        expired.result()
    assert ei.value.reason == "deadline"
    cancelled = ws.submit(SolveRequest(graph=g, radius=1, algorithm="seq.greedy"))
    assert cancelled.cancel() is True
    with pytest.raises(RequestFailed) as ei:
        cancelled.result()
    assert ei.value.reason == "cancelled"
    assert cancelled.cancel() is False  # already settled
    # A forced future can no longer be cancelled.
    done = ws.submit(SolveRequest(graph=g, radius=1, algorithm="seq.greedy"))
    assert done.result().size > 0
    assert done.cancel() is False


@pytest.mark.faults
def test_pooled_cancel_settles_without_touching_siblings(tmp_path):
    g = gen.grid_2d(6, 6)
    with Workspace(store=tmp_path, workers=2) as ws:
        futs = ws.submit_all(
            [
                SolveRequest(graph=g, radius=1, algorithm="seq.greedy"),
                SolveRequest(graph=g, radius=1, algorithm="seq.wreach"),
            ]
        )
        cancelled = futs[0].cancel()
        if cancelled:  # racing a fast pool is legal; outcome is either way
            with pytest.raises(RequestFailed) as ei:
                futs[0].result(timeout=60)
            assert ei.value.reason == "cancelled"
        else:
            assert futs[0].result(timeout=60).size > 0
        assert futs[1].result(timeout=60).size > 0  # sibling unaffected


@pytest.mark.faults
def test_close_cancel_pending_fails_fast(tmp_path):
    g = gen.grid_2d(6, 6)
    ws = Workspace(store=tmp_path, workers=2)
    plan = FaultPlan.parse("kill:attempts=99")
    with plan.activate():
        fut = ws.submit(SolveRequest(graph=g, radius=1, algorithm="seq.greedy"))
        ws.close(cancel_pending=True)
    with pytest.raises(RequestFailed) as ei:
        fut.result(timeout=10)
    assert ei.value.reason in ("cancelled", "worker-crash")
