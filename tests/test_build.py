"""Tests for graph constructors and networkx bridges."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.build import from_adjacency, from_edges, from_networkx, to_networkx


def test_from_adjacency_symmetric():
    g = from_adjacency([[1], [0, 2], [1]])
    assert g.m == 2
    assert g.has_edge(0, 1) and g.has_edge(1, 2)


def test_from_adjacency_rejects_asymmetric():
    with pytest.raises(GraphError):
        from_adjacency([[1], [], []])


def test_from_networkx_preserves_structure():
    nxg = nx.petersen_graph()
    g, nodes = from_networkx(nxg)
    assert g.n == 10
    assert g.m == 15
    assert all(g.degree(v) == 3 for v in range(10))


def test_from_networkx_arbitrary_labels():
    nxg = nx.Graph()
    nxg.add_edge("a", "b")
    nxg.add_edge("b", "c")
    g, nodes = from_networkx(nxg)
    idx = {u: i for i, u in enumerate(nodes)}
    assert g.has_edge(idx["a"], idx["b"])
    assert g.has_edge(idx["b"], idx["c"])
    assert not g.has_edge(idx["a"], idx["c"])


def test_roundtrip_networkx():
    g = from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5), (0, 5)])
    nxg = to_networkx(g)
    g2, nodes = from_networkx(nxg)
    assert nodes == list(range(6))
    assert g2 == g


def test_to_networkx_isolated_vertices_kept():
    g = from_edges(4, [(0, 1)])
    nxg = to_networkx(g)
    assert nxg.number_of_nodes() == 4
    assert nxg.number_of_edges() == 1


def test_from_edges_numpy_input():
    arr = np.array([[0, 1], [1, 2]])
    g = from_edges(3, arr)
    assert g.m == 2


def test_from_edges_bad_shape():
    with pytest.raises(GraphError):
        from_edges(3, np.array([[0, 1, 2]]))
